//! The Advisor façade: profile → placement report.

use crate::bandwidth::{rebalance, BwThresholds, Classification};
use crate::config::AdvisorConfig;
use crate::knapsack::{self, Assignment};
use memtrace::{PlacementReport, ReportEntry, ReportStack, StackFormat, TraceError};
use profiler::ProfileSet;

/// Which placement algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// The §IV-B greedy density knapsack.
    Base,
    /// The §VII bandwidth-aware pipeline (base + classification +
    /// Algorithm 1).
    BandwidthAware,
}

/// The HMem Advisor.
#[derive(Debug, Clone)]
pub struct Advisor {
    config: AdvisorConfig,
    thresholds: BwThresholds,
}

impl Advisor {
    /// Creates an Advisor with the paper's default thresholds.
    pub fn new(config: AdvisorConfig) -> Self {
        config.validate().expect("invalid advisor configuration");
        Advisor { config, thresholds: BwThresholds::default() }
    }

    /// Overrides the bandwidth-aware thresholds (for the ablation benches).
    pub fn with_thresholds(mut self, thresholds: BwThresholds) -> Self {
        self.thresholds = thresholds;
        self
    }

    /// The configuration in use.
    pub fn config(&self) -> &AdvisorConfig {
        &self.config
    }

    /// Computes the placement assignment (and, for the bandwidth-aware
    /// algorithm, the classification — useful for Tables II–IV).
    pub fn assign(
        &self,
        profile: &ProfileSet,
        algorithm: Algorithm,
    ) -> (Assignment, Option<Classification>) {
        let base = knapsack::assign(profile, &self.config);
        match algorithm {
            Algorithm::Base => (base, None),
            Algorithm::BandwidthAware => {
                let (out, class) = rebalance(profile, &base, &self.config, &self.thresholds);
                (out, Some(class))
            }
        }
    }

    /// Produces the placement report FlexMalloc will consume, in the
    /// requested call-stack format. Human-readable reports require debug
    /// info (the profile's binary map) and fail if any frame cannot be
    /// translated — the situation the paper had to fix by hand for
    /// HPCToolkit-derived stacks.
    pub fn advise(
        &self,
        profile: &ProfileSet,
        algorithm: Algorithm,
        format: StackFormat,
    ) -> Result<PlacementReport, TraceError> {
        let (assignment, _) = self.assign(profile, algorithm);
        let mut report = PlacementReport::new(StackFormat::Bom, self.config.fallback);
        for site in &profile.sites {
            let tier = assignment.tier_of(site.site);
            report.push(ReportEntry {
                stack: ReportStack::Bom(site.stack.clone()),
                tier,
                max_size: site.max_size,
            });
        }
        report.validate()?;
        match format {
            StackFormat::Bom => Ok(report),
            StackFormat::HumanReadable => report.to_human_readable(&profile.binmap),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim::{ExecMode, FixedTier, MachineConfig};
    use memtrace::{SiteId, TierId};
    use profiler::{profile_run, ProfilerConfig};

    fn minife_profile() -> ProfileSet {
        let app = workloads::minife::model();
        let mach = MachineConfig::optane_pmem6();
        let (trace, _) = profile_run(
            &app,
            &mach,
            ExecMode::MemoryMode,
            &mut FixedTier::new(TierId::PMEM),
            &ProfilerConfig::default(),
        );
        profiler::analyze(&trace).unwrap()
    }

    #[test]
    fn minife_vectors_go_to_dram() {
        // The CG vectors (sites 3–6) are the hot, small, miss-dense set;
        // the matrix (sites 0–1) is too big for any budget.
        let profile = minife_profile();
        let advisor = Advisor::new(AdvisorConfig::loads_only(12));
        let (a, _) = advisor.assign(&profile, Algorithm::Base);
        assert_eq!(a.tier_of(SiteId(3)), TierId::DRAM, "x vector");
        assert_eq!(a.tier_of(SiteId(4)), TierId::DRAM, "p vector");
        assert_eq!(a.tier_of(SiteId(0)), TierId::PMEM, "matrix values");
    }

    #[test]
    fn even_4gib_budget_keeps_the_hot_vectors() {
        // The paper's "wins even at 4 GB" behaviour: the hottest vectors
        // still fit the smallest budget.
        let profile = minife_profile();
        let advisor = Advisor::new(AdvisorConfig::loads_only(4));
        let (a, _) = advisor.assign(&profile, Algorithm::Base);
        assert_eq!(a.tier_of(SiteId(4)), TierId::DRAM, "p vector survives at 4 GiB");
    }

    #[test]
    fn report_round_trips_and_covers_all_sites() {
        let profile = minife_profile();
        let advisor = Advisor::new(AdvisorConfig::loads_only(12));
        let report = advisor.advise(&profile, Algorithm::Base, StackFormat::Bom).unwrap();
        assert_eq!(report.len(), profile.sites.len());
        report.validate().unwrap();
        let j = report.to_json().unwrap();
        assert_eq!(PlacementReport::from_json(&j).unwrap(), report);
    }

    #[test]
    fn human_readable_report_translates() {
        let profile = minife_profile();
        let advisor = Advisor::new(AdvisorConfig::loads_only(12));
        let hr = advisor.advise(&profile, Algorithm::Base, StackFormat::HumanReadable).unwrap();
        assert_eq!(hr.format, StackFormat::HumanReadable);
        hr.validate().unwrap();
    }

    #[test]
    fn bandwidth_aware_is_a_superset_pipeline() {
        let profile = minife_profile();
        let advisor = Advisor::new(AdvisorConfig::loads_only(12));
        let (_, class) = advisor.assign(&profile, Algorithm::BandwidthAware);
        assert!(class.is_some(), "bandwidth-aware returns the classification");
        let (_, none) = advisor.assign(&profile, Algorithm::Base);
        assert!(none.is_none());
    }
}
