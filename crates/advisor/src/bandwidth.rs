//! The bandwidth-aware placement algorithm (contribution §VII).
//!
//! Step 1 — categorization (Table IV):
//!
//! | initial tier | category    | criterion |
//! |--------------|-------------|-----------|
//! | DRAM         | Fitting     | < T_ALLOC allocations and allocation-time bandwidth below T_PMEMLOW |
//! | DRAM         | Streaming-D | no writes, > T_ALLOC allocations, bandwidth below T_PMEMLOW |
//! | PMEM         | Thrashing   | > T_ALLOC allocations and bandwidth above T_PMEMHIGH |
//!
//! with T_ALLOC = 2, T_PMEMLOW = 20% and T_PMEMHIGH = 40% of the peak
//! observed bandwidth (§VII-B1). The paper's empirical insight: objects
//! with many allocations live briefly and stay in the bandwidth region of
//! their allocation, so allocation-time bandwidth is a reliable label for
//! them; rarely-allocated objects roam regions and are only safe to use as
//! *donors* of DRAM capacity.
//!
//! Step 2 — placement (Algorithm 1): Streaming-D sites are demoted to PMEM
//! outright (releasing DRAM), then Thrashing sites — sorted by bandwidth
//! consumption, then allocation/deallocation time — are moved into DRAM,
//! each evicting the smallest Fitting site(s) that can accommodate it *for
//! its entire lifetime*. Because timestamps are available here, capacity
//! is budgeted by peak live footprint rather than the base algorithm's
//! conservative total-bytes charge; the slack a large evicted Fitting site
//! leaves behind is reused before further evictions (a small refinement of
//! the paper's 1:1 swap that never does worse).

use crate::config::AdvisorConfig;
use crate::knapsack::Assignment;
use memtrace::{SiteId, TierId};
use profiler::ProfileSet;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Classification thresholds (§VII-B1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BwThresholds {
    /// Allocation-count threshold (paper: 2).
    pub t_alloc: u64,
    /// Low-bandwidth fraction of peak (paper: 0.2).
    pub low_frac: f64,
    /// High-bandwidth fraction of peak (paper: 0.4).
    pub high_frac: f64,
}

impl BwThresholds {
    /// The paper's empirically chosen thresholds (§VII-B1): T_ALLOC = 2,
    /// T_PMEMLOW = 20%, T_PMEMHIGH = 40% of peak bandwidth. The single
    /// source of truth — `Default` and the threshold ablation bench both
    /// derive from this constant.
    pub const PAPER: BwThresholds = BwThresholds { t_alloc: 2, low_frac: 0.2, high_frac: 0.4 };
}

impl Default for BwThresholds {
    fn default() -> Self {
        BwThresholds::PAPER
    }
}

/// Step-1 category of a site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Category {
    /// DRAM resident, few allocations, low allocation-time bandwidth: may
    /// donate its DRAM space.
    Fitting,
    /// DRAM resident, read-only, many allocations, low bandwidth: demote.
    StreamingD,
    /// PMEM resident, many allocations, high bandwidth: promote.
    Thrashing,
    /// Everything else: left where the base algorithm put it.
    Unclassified,
}

/// The classifier's output for one profile.
#[derive(Debug, Clone, PartialEq)]
pub struct Classification {
    /// Category per site.
    pub categories: HashMap<SiteId, Category>,
    /// The bandwidth thresholds in absolute bytes/s (resolved against the
    /// profile's peak).
    pub low_bw: f64,
    /// Absolute high threshold, bytes/s.
    pub high_bw: f64,
}

impl Classification {
    /// Category of a site.
    pub fn category(&self, site: SiteId) -> Category {
        self.categories.get(&site).copied().unwrap_or(Category::Unclassified)
    }

    /// All sites of one category, sorted.
    pub fn sites_of(&self, cat: Category) -> Vec<SiteId> {
        let mut v: Vec<SiteId> =
            self.categories.iter().filter(|(_, c)| **c == cat).map(|(s, _)| *s).collect();
        v.sort();
        v
    }
}

/// Allocation-time bandwidth made total for classification. A site whose
/// alloc and dealloc timestamps coincide (zero lifetime) divides zero
/// samples by zero seconds and reports NaN; every threshold comparison on
/// NaN is false, so such sites used to silently escape classification. The
/// convention: a degenerate lifetime exerted no measurable bandwidth
/// pressure, so it counts as zero demand — in DRAM with few allocations
/// that makes the site Fitting (a donor), exactly how a zero-traffic site
/// should be treated.
fn effective_bw(bw: f64) -> f64 {
    if bw.is_finite() {
        bw
    } else {
        0.0
    }
}

/// Step 1: classify every site (Table IV).
pub fn classify(
    profile: &ProfileSet,
    base: &Assignment,
    fast_tier: TierId,
    thresholds: &BwThresholds,
) -> Classification {
    let low_bw = thresholds.low_frac * profile.peak_bw;
    let high_bw = thresholds.high_frac * profile.peak_bw;
    let mut categories = HashMap::with_capacity(profile.sites.len());
    for s in &profile.sites {
        let tier = base.tier_of(s.site);
        let in_dram = tier == fast_tier;
        let bw_at_alloc = effective_bw(s.bw_at_alloc);
        let cat = if in_dram && s.alloc_count < thresholds.t_alloc && bw_at_alloc < low_bw {
            Category::Fitting
        } else if in_dram
            && !s.has_stores
            && s.alloc_count > thresholds.t_alloc
            && bw_at_alloc < low_bw
        {
            Category::StreamingD
        } else if !in_dram && s.alloc_count > thresholds.t_alloc && bw_at_alloc > high_bw {
            Category::Thrashing
        } else {
            Category::Unclassified
        };
        categories.insert(s.site, cat);
    }
    let tally = |cat: Category| categories.values().filter(|c| **c == cat).count() as u64;
    ecohmem_obs::count("advisor.class.fitting", tally(Category::Fitting));
    ecohmem_obs::count("advisor.class.streaming_d", tally(Category::StreamingD));
    ecohmem_obs::count("advisor.class.thrashing", tally(Category::Thrashing));
    Classification { categories, low_bw, high_bw }
}

/// Step 2: Algorithm 1. Returns the modified assignment and the
/// classification used.
pub fn rebalance(
    profile: &ProfileSet,
    base: &Assignment,
    config: &AdvisorConfig,
    thresholds: &BwThresholds,
) -> (Assignment, Classification) {
    let _span = ecohmem_obs::span("advisor.rebalance");
    let fast_tier = config.primary().tier;
    let classification = classify(profile, base, fast_tier, thresholds);
    let mut out = base.clone();

    // All Streaming-D sites go to the fallback (PMEM), releasing capacity.
    let mut slack: i64 = 0;
    for site in classification.sites_of(Category::StreamingD) {
        let p = profile.site(site).expect("classified sites exist");
        out.tiers.insert(site, config.fallback);
        slack += p.total_bytes as i64; // base had charged total bytes
    }

    // Thrashing sites, sorted by bandwidth consumption then by allocation
    // and deallocation time (Algorithm 1's ordering).
    let mut thrashing = classification.sites_of(Category::Thrashing);
    thrashing.sort_by(|a, b| {
        let pa = profile.site(*a).unwrap();
        let pb = profile.site(*b).unwrap();
        // total_cmp: degenerate-lifetime sites carry NaN bandwidths, which
        // must order deterministically instead of panicking.
        effective_bw(pb.avg_bw)
            .total_cmp(&effective_bw(pa.avg_bw))
            .then(pa.first_alloc.total_cmp(&pb.first_alloc))
            .then(pa.last_free.total_cmp(&pb.last_free))
    });

    // Fitting donors, smallest first ("smallest number in Fitting that can
    // accommodate").
    let mut fitting = classification.sites_of(Category::Fitting);
    fitting.sort_by_key(|s| profile.site(*s).unwrap().total_bytes);
    let mut fitting_iter = fitting.into_iter();

    for site in thrashing {
        let need = profile.site(site).unwrap().peak_live_bytes as i64;
        // Use leftover slack first, then evict donors smallest-first until
        // the Thrashing site's live footprint fits for its whole lifetime.
        let mut evicted = Vec::new();
        while slack < need {
            let Some(donor) = fitting_iter.next() else { break };
            slack += profile.site(donor).unwrap().total_bytes as i64;
            evicted.push(donor);
        }
        if slack >= need {
            slack -= need;
            out.tiers.insert(site, fast_tier);
            ecohmem_obs::incr("advisor.bw.swaps");
            for donor in evicted {
                out.tiers.insert(donor, config.fallback);
                ecohmem_obs::incr("advisor.bw.donors_evicted");
            }
        } else {
            // Not enough Fitting capacity left: the site stays in PMEM and
            // any donors pulled this round keep their DRAM spot.
            break;
        }
    }

    (out, classification)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knapsack;
    use memtrace::{BinaryMap, CallStack, Frame, ModuleId, ObjectId};
    use profiler::{ObjectLifetime, SiteProfile};

    /// A profile with one big Fitting DRAM site, one Streaming-D table,
    /// one Thrashing scratch site, and one unclassified PMem site.
    fn scenario() -> (ProfileSet, AdvisorConfig) {
        let mk = |id: u32,
                  alloc_count: u64,
                  total: u64,
                  peak_live: u64,
                  misses: f64,
                  stores: f64,
                  bw_at_alloc: f64,
                  avg_bw: f64| SiteProfile {
            site: SiteId(id),
            stack: CallStack::new(vec![Frame::new(ModuleId(0), 64 * id as u64)]),
            alloc_count,
            max_size: peak_live,
            total_bytes: total,
            peak_live_bytes: peak_live,
            load_misses_est: misses,
            store_misses_est: stores,
            has_stores: stores > 0.0,
            first_alloc: 0.0,
            last_free: 10.0,
            bw_at_alloc,
            avg_bw,
            objects: vec![ObjectLifetime {
                object: ObjectId(id as u64),
                size: peak_live,
                alloc_time: 0.0,
                free_time: 10.0,
                load_samples: 1,
                store_samples: 0,
                store_l1d_miss_samples: 0,
                bw_at_alloc,
            }],
        };
        let gib = 1u64 << 30;
        let profile = ProfileSet {
            app_name: "t".into(),
            duration: 10.0,
            sites: vec![
                // Fitting: dense single-allocation, quiet at alloc.
                mk(0, 1, 3 * gib, 3 * gib, 5e9, 0.0, 0.0, 1e6),
                // Streaming-D: read-only, many allocs, low bw, dense.
                mk(1, 10, gib, gib / 10, 4e9, 0.0, 1e8, 1e6),
                // Thrashing: many allocs, hot at alloc, big totals.
                mk(2, 100, 50 * gib, gib, 3e9, 1e9, 9e9, 5e9),
                // Unclassified PMem site.
                mk(3, 1, 8 * gib, 8 * gib, 1e6, 0.0, 1e8, 1e5),
            ],
            bw_series: vec![(0.0, 1e10)],
            peak_bw: 1e10,
            binmap: BinaryMap::default(),
        };
        (profile, AdvisorConfig::loads_only(4))
    }

    #[test]
    fn classification_matches_table_iv() {
        let (profile, cfg) = scenario();
        let base = knapsack::assign(&profile, &cfg);
        // Base: sites 0 and 1 are dense and fit 4 GiB; 2 and 3 go to PMEM.
        assert_eq!(base.tier_of(SiteId(0)), TierId::DRAM);
        assert_eq!(base.tier_of(SiteId(1)), TierId::DRAM);
        assert_eq!(base.tier_of(SiteId(2)), TierId::PMEM);
        let c = classify(&profile, &base, TierId::DRAM, &BwThresholds::default());
        assert_eq!(c.category(SiteId(0)), Category::Fitting);
        assert_eq!(c.category(SiteId(1)), Category::StreamingD);
        assert_eq!(c.category(SiteId(2)), Category::Thrashing);
        assert_eq!(c.category(SiteId(3)), Category::Unclassified);
    }

    #[test]
    fn algorithm1_swaps_thrashing_into_dram() {
        let (profile, cfg) = scenario();
        let base = knapsack::assign(&profile, &cfg);
        let (out, _) = rebalance(&profile, &base, &cfg, &BwThresholds::default());
        // Streaming-D demoted.
        assert_eq!(out.tier_of(SiteId(1)), TierId::PMEM);
        // Thrashing promoted — its 1 GiB live footprint fits in the slack
        // released by the Streaming-D demotion (1 GiB total bytes).
        assert_eq!(out.tier_of(SiteId(2)), TierId::DRAM);
        // Unclassified untouched.
        assert_eq!(out.tier_of(SiteId(3)), TierId::PMEM);
    }

    #[test]
    fn fitting_donors_are_evicted_when_slack_is_short() {
        let (mut profile, cfg) = scenario();
        // Make the Thrashing site need more than the Streaming-D slack.
        profile.sites[2].peak_live_bytes = 2 << 30;
        let base = knapsack::assign(&profile, &cfg);
        let (out, _) = rebalance(&profile, &base, &cfg, &BwThresholds::default());
        assert_eq!(out.tier_of(SiteId(2)), TierId::DRAM);
        assert_eq!(out.tier_of(SiteId(0)), TierId::PMEM, "Fitting donor evicted");
    }

    #[test]
    fn thrashing_stays_put_without_donors() {
        let (mut profile, cfg) = scenario();
        // No Fitting/Streaming-D at all: make sites 0 and 1 hot at alloc.
        profile.sites[0].bw_at_alloc = 9e9;
        profile.sites[1].bw_at_alloc = 9e9;
        let base = knapsack::assign(&profile, &cfg);
        let (out, c) = rebalance(&profile, &base, &cfg, &BwThresholds::default());
        assert!(c.sites_of(Category::Fitting).is_empty());
        assert_eq!(out.tier_of(SiteId(2)), TierId::PMEM, "nothing to evict");
    }

    #[test]
    fn degenerate_lifetime_site_is_fitting() {
        // Regression (satellite 2), mirroring Table IV: a DRAM site whose
        // alloc and dealloc timestamps coincide reports NaN allocation-time
        // bandwidth (0 samples / 0 seconds). All NaN comparisons are false,
        // so it used to fall through to Unclassified; the pinned convention
        // is that zero-lifetime demand is zero demand → Fitting.
        let (mut profile, cfg) = scenario();
        profile.sites[0].bw_at_alloc = f64::NAN;
        profile.sites[0].avg_bw = f64::NAN;
        profile.sites[0].last_free = profile.sites[0].first_alloc;
        let base = knapsack::assign(&profile, &cfg);
        assert_eq!(base.tier_of(SiteId(0)), TierId::DRAM);
        let c = classify(&profile, &base, TierId::DRAM, &BwThresholds::default());
        assert_eq!(c.category(SiteId(0)), Category::Fitting);
        // The other Table IV rows are unaffected by the convention.
        assert_eq!(c.category(SiteId(1)), Category::StreamingD);
        assert_eq!(c.category(SiteId(2)), Category::Thrashing);
    }

    #[test]
    fn rebalance_orders_nan_bandwidth_sites_without_panicking() {
        // Regression (satellite 2): two Thrashing sites where one carries a
        // NaN average bandwidth used to panic in the promotion sort's
        // `partial_cmp().unwrap()`. NaN orders as zero demand now, so the
        // well-measured site is promoted first.
        let (mut profile, cfg) = scenario();
        profile.sites[3].alloc_count = 100;
        profile.sites[3].bw_at_alloc = 9e9;
        profile.sites[3].avg_bw = f64::NAN;
        let base = knapsack::assign(&profile, &cfg);
        assert_eq!(base.tier_of(SiteId(3)), TierId::PMEM);
        let (out, c) = rebalance(&profile, &base, &cfg, &BwThresholds::default());
        assert_eq!(c.category(SiteId(2)), Category::Thrashing);
        assert_eq!(c.category(SiteId(3)), Category::Thrashing);
        // Site 2 (finite bandwidth) outranks the NaN site for the slack.
        assert_eq!(out.tier_of(SiteId(2)), TierId::DRAM);
    }

    #[test]
    fn thresholds_resolve_against_peak() {
        let (profile, cfg) = scenario();
        let base = knapsack::assign(&profile, &cfg);
        let c = classify(&profile, &base, TierId::DRAM, &BwThresholds::default());
        assert!((c.low_bw - 2e9).abs() < 1.0);
        assert!((c.high_bw - 4e9).abs() < 1.0);
    }

    #[test]
    fn default_thresholds_match_the_paper() {
        let t = BwThresholds::default();
        assert_eq!(t, BwThresholds::PAPER);
        assert_eq!(t.t_alloc, 2);
        assert!((t.low_frac - 0.2).abs() < 1e-12);
        assert!((t.high_frac - 0.4).abs() < 1e-12);
    }
}
