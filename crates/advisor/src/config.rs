//! Advisor configuration: the paper's per-system configuration file.
//!
//! §IV-B: "Each memory subsystem features its own coefficients representing
//! read latencies, specified in a configuration file, which enables the use
//! of the framework in systems with different heterogeneous memory
//! configurations." §V extends it with separate load and store coefficients
//! per subsystem.

use ecohmem_obs::json::Json;
use memtrace::TierId;
use serde::{Deserialize, Serialize};

/// Budget and cost coefficients for one tier.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TierBudget {
    /// The tier.
    pub tier: TierId,
    /// Capacity the Advisor may plan into this tier, bytes. For DRAM this
    /// is deliberately below the physical size (12 GB of the 16 GB node in
    /// the paper) to leave room for stacks, static data and the OS.
    pub capacity: u64,
    /// Weight of LLC load misses in the site value.
    pub load_coeff: f64,
    /// Weight of L1D store misses in the site value (0 reproduces the
    /// paper's `Loads` configuration).
    pub store_coeff: f64,
}

/// Full Advisor configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdvisorConfig {
    /// Tiers in descending performance order (knapsack fill order). The
    /// *last* tier is treated as effectively unbounded capacity-wise if its
    /// capacity covers the workload (PMEM on the paper's machine).
    pub tiers: Vec<TierBudget>,
    /// Fallback tier for unlisted sites and spills.
    pub fallback: TierId,
}

impl AdvisorConfig {
    const GIB: u64 = 1 << 30;

    /// The paper's `Loads` configuration: only LLC load misses contribute
    /// to site value. `dram_limit_gib` is the swept DRAM budget.
    pub fn loads_only(dram_limit_gib: u64) -> Self {
        AdvisorConfig {
            tiers: vec![
                TierBudget {
                    tier: TierId::DRAM,
                    capacity: dram_limit_gib * Self::GIB,
                    load_coeff: 1.0,
                    store_coeff: 0.0,
                },
                TierBudget {
                    tier: TierId::PMEM,
                    capacity: 3072 * Self::GIB,
                    load_coeff: 1.0,
                    store_coeff: 0.0,
                },
            ],
            fallback: TierId::PMEM,
        }
    }

    /// The paper's `Loads+stores` configuration (§V): L1D store misses are
    /// weighted alongside load misses. Stores are weighted *more* for
    /// placement toward DRAM because PMem penalizes writes far more than
    /// reads (write bandwidth ≈ 1/4 of read).
    pub fn loads_and_stores(dram_limit_gib: u64) -> Self {
        let mut cfg = Self::loads_only(dram_limit_gib);
        cfg.tiers[0].store_coeff = 1.5;
        cfg.tiers[1].store_coeff = 1.5;
        cfg
    }

    /// The budget entry for one tier.
    pub fn budget(&self, tier: TierId) -> Option<&TierBudget> {
        self.tiers.iter().find(|t| t.tier == tier)
    }

    /// The fastest (first) tier's budget — the DRAM budget on the paper's
    /// machine.
    pub fn primary(&self) -> &TierBudget {
        &self.tiers[0]
    }

    /// Sanity-checks the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.tiers.is_empty() {
            return Err("no tiers configured".into());
        }
        if self.budget(self.fallback).is_none() {
            return Err("fallback tier not among configured tiers".into());
        }
        for t in &self.tiers {
            if t.load_coeff < 0.0 || t.store_coeff < 0.0 {
                return Err("negative coefficient".into());
            }
        }
        let mut seen = std::collections::HashSet::new();
        for t in &self.tiers {
            if !seen.insert(t.tier) {
                return Err(format!("tier {} configured twice", t.tier));
            }
        }
        Ok(())
    }

    /// Serializes to the on-disk JSON configuration format.
    pub fn to_json(&self) -> String {
        let tiers = Json::Arr(
            self.tiers
                .iter()
                .map(|t| {
                    Json::obj(vec![
                        ("tier", Json::U64(u64::from(t.tier.0))),
                        ("capacity", Json::U64(t.capacity)),
                        ("load_coeff", Json::f64(t.load_coeff)),
                        ("store_coeff", Json::f64(t.store_coeff)),
                    ])
                })
                .collect(),
        );
        Json::obj(vec![("tiers", tiers), ("fallback", Json::U64(u64::from(self.fallback.0)))])
            .to_string_pretty()
    }

    /// Parses the on-disk JSON configuration format.
    pub fn from_json(json: &str) -> Result<Self, String> {
        let v = Json::parse(json).map_err(|e| e.to_string())?;
        let mut tiers = Vec::new();
        for t in v.get("tiers").and_then(Json::as_arr).ok_or("missing `tiers` array")? {
            tiers.push(TierBudget {
                tier: TierId(
                    t.get("tier").and_then(Json::as_u64).ok_or("tier entry missing `tier`")? as u8,
                ),
                capacity: t
                    .get("capacity")
                    .and_then(Json::as_u64)
                    .ok_or("tier entry missing `capacity`")?,
                load_coeff: t
                    .get("load_coeff")
                    .and_then(Json::as_f64)
                    .ok_or("tier entry missing `load_coeff`")?,
                store_coeff: t
                    .get("store_coeff")
                    .and_then(Json::as_f64)
                    .ok_or("tier entry missing `store_coeff`")?,
            });
        }
        let fallback = TierId(
            v.get("fallback").and_then(Json::as_u64).ok_or("missing `fallback` tier")? as u8,
        );
        let cfg = AdvisorConfig { tiers, fallback };
        cfg.validate()?;
        Ok(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        for gib in [4, 8, 12] {
            AdvisorConfig::loads_only(gib).validate().unwrap();
            AdvisorConfig::loads_and_stores(gib).validate().unwrap();
        }
    }

    #[test]
    fn loads_only_zeroes_store_coeff() {
        let c = AdvisorConfig::loads_only(12);
        assert_eq!(c.primary().store_coeff, 0.0);
        assert_eq!(c.primary().capacity, 12 << 30);
        let s = AdvisorConfig::loads_and_stores(12);
        assert!(s.primary().store_coeff > 0.0);
    }

    #[test]
    fn json_round_trip() {
        let c = AdvisorConfig::loads_and_stores(8);
        let j = c.to_json();
        assert_eq!(AdvisorConfig::from_json(&j).unwrap(), c);
    }

    #[test]
    fn rejects_bad_configs() {
        let mut c = AdvisorConfig::loads_only(12);
        c.fallback = TierId(9);
        assert!(c.validate().is_err());
        let mut c = AdvisorConfig::loads_only(12);
        c.tiers[0].load_coeff = -1.0;
        assert!(c.validate().is_err());
        let mut c = AdvisorConfig::loads_only(12);
        c.tiers[1].tier = TierId::DRAM;
        assert!(c.validate().is_err());
        assert!(AdvisorConfig::from_json("{not json").is_err());
    }
}
