//! The base placement algorithm: greedy multiple-knapsack by miss density.
//!
//! §IV-B: tiers are processed in descending performance order, each as a
//! knapsack whose items are allocation sites. A site's value is its miss
//! density — weighted misses divided by its size — so the densest sites
//! (most stall-savings per DRAM byte) go to the fastest memory first.
//!
//! Capacity accounting is deliberately conservative: a site is charged its
//! **total allocated bytes** across the run. The base algorithm has no
//! temporal information (timestamps are only collected for the
//! bandwidth-aware extension, §VII), so it cannot know that the 200
//! instances of a per-iteration scratch buffer never coexist — it must
//! assume they might. This is precisely why frequently-reallocated,
//! bandwidth-hungry scratch sites end up in PMem under the base algorithm
//! (Fig. 4) and why the timestamp-equipped bandwidth-aware pass can do
//! better.

use crate::config::AdvisorConfig;
use memtrace::{SiteId, TierId};
use profiler::{ProfileSet, SiteProfile};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Alternative knapsack value functions, for the design-choice ablation.
/// The paper's Advisor uses [`ValueFunction::MissDensity`]; the others are
/// plausible rivals the ablation bench compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ValueFunction {
    /// Weighted misses per byte (the paper, §IV-B: "the ratio of cache
    /// misses divided by object size, to represent the density of misses").
    #[default]
    MissDensity,
    /// Raw weighted misses: big hot objects beat small hot objects even if
    /// they waste budget.
    RawMisses,
    /// Weighted misses per byte-second of occupancy: like density, but a
    /// short-lived site's capacity cost is discounted by its lifetime
    /// share (a *temporal* density — closer to an optimal DRAM-byte rent).
    MissesPerByteSecond,
}

impl ValueFunction {
    /// Evaluates the function for one site under the tier's coefficients.
    pub fn value(self, s: &SiteProfile, load_coeff: f64, store_coeff: f64, duration: f64) -> f64 {
        let weighted = load_coeff * s.load_misses_est + store_coeff * s.store_misses_est;
        match self {
            ValueFunction::MissDensity => {
                if s.total_bytes == 0 {
                    0.0
                } else {
                    weighted / s.total_bytes as f64
                }
            }
            ValueFunction::RawMisses => weighted,
            ValueFunction::MissesPerByteSecond => {
                let occupancy =
                    s.peak_live_bytes as f64 * s.total_lifetime().max(1e-9) / duration.max(1e-9);
                if occupancy <= 0.0 {
                    0.0
                } else {
                    weighted / occupancy
                }
            }
        }
    }
}

/// A placement decision set: site → tier, plus the fallback.
#[derive(Debug, Clone, PartialEq)]
pub struct Assignment {
    /// Tier per site (every profiled site is present).
    pub tiers: HashMap<SiteId, TierId>,
    /// Fallback tier.
    pub fallback: TierId,
    /// Bytes the plan charged against each configured tier, in config
    /// order.
    pub charged: Vec<(TierId, u64)>,
}

impl Assignment {
    /// Tier chosen for a site (fallback if unknown).
    pub fn tier_of(&self, site: SiteId) -> TierId {
        self.tiers.get(&site).copied().unwrap_or(self.fallback)
    }

    /// Sites assigned to a given tier.
    pub fn sites_in(&self, tier: TierId) -> Vec<SiteId> {
        let mut v: Vec<SiteId> =
            self.tiers.iter().filter(|(_, t)| **t == tier).map(|(s, _)| *s).collect();
        v.sort();
        v
    }
}

/// Runs the greedy multiple-knapsack placement with the paper's value
/// function.
pub fn assign(profile: &ProfileSet, config: &AdvisorConfig) -> Assignment {
    assign_with(profile, config, ValueFunction::MissDensity)
}

/// Runs the greedy multiple-knapsack placement with a chosen value
/// function (the ablation entry point).
pub fn assign_with(
    profile: &ProfileSet,
    config: &AdvisorConfig,
    value_fn: ValueFunction,
) -> Assignment {
    config.validate().expect("invalid advisor configuration");
    let _span = ecohmem_obs::span("advisor.knapsack");

    let mut remaining: Vec<SiteId> = profile.sites.iter().map(|s| s.site).collect();
    let mut tiers: HashMap<SiteId, TierId> = HashMap::new();
    let mut charged = Vec::with_capacity(config.tiers.len());

    for budget in &config.tiers {
        // Rank the still-unplaced sites by density under this tier's
        // coefficients, tie-broken by site id for determinism.
        let mut ranked: Vec<(f64, SiteId)> = remaining
            .iter()
            .map(|&s| {
                let p = profile.site(s).expect("site came from the profile");
                (value_fn.value(p, budget.load_coeff, budget.store_coeff, profile.duration), s)
            })
            .collect();
        ranked.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));

        let mut used = 0u64;
        let mut placed = Vec::new();
        ecohmem_obs::count("advisor.knapsack.evaluations", ranked.len() as u64);
        for (density, site) in ranked {
            let p = profile.site(site).unwrap();
            // Sites with zero observed misses bring no value; leave them to
            // later tiers / the fallback rather than wasting budget.
            if density <= 0.0 {
                continue;
            }
            if used + p.total_bytes <= budget.capacity {
                used += p.total_bytes;
                tiers.insert(site, budget.tier);
                placed.push(site);
            }
        }
        if budget.capacity > 0 {
            ecohmem_obs::gauge_set(
                &format!("advisor.{}.fill_pct", budget.tier),
                100.0 * used as f64 / budget.capacity as f64,
            );
        }
        charged.push((budget.tier, used));
        remaining.retain(|s| !placed.contains(s));
    }

    // Anything left (zero-value sites, or overflow of every budget) goes to
    // the fallback.
    ecohmem_obs::count("advisor.sites.fallback", remaining.len() as u64);
    for s in remaining {
        tiers.insert(s, config.fallback);
    }

    Assignment { tiers, fallback: config.fallback, charged }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memtrace::{BinaryMap, CallStack, Frame, ModuleId, ObjectId};
    use profiler::{ObjectLifetime, SiteProfile};

    fn mk_site(
        id: u32,
        total_bytes: u64,
        load_misses: f64,
        store_misses: f64,
        alloc_count: u64,
    ) -> SiteProfile {
        SiteProfile {
            site: SiteId(id),
            stack: CallStack::new(vec![Frame::new(ModuleId(0), 64 * id as u64)]),
            alloc_count,
            max_size: total_bytes / alloc_count.max(1),
            total_bytes,
            peak_live_bytes: total_bytes / alloc_count.max(1),
            load_misses_est: load_misses,
            store_misses_est: store_misses,
            has_stores: store_misses > 0.0,
            first_alloc: 0.0,
            last_free: 10.0,
            bw_at_alloc: 0.0,
            avg_bw: 0.0,
            objects: vec![ObjectLifetime {
                object: ObjectId(id as u64),
                size: total_bytes / alloc_count.max(1),
                alloc_time: 0.0,
                free_time: 10.0,
                load_samples: 1,
                store_samples: 0,
                store_l1d_miss_samples: 0,
                bw_at_alloc: 0.0,
            }],
        }
    }

    fn mk_profile(sites: Vec<SiteProfile>) -> ProfileSet {
        ProfileSet {
            app_name: "t".into(),
            duration: 10.0,
            sites,
            bw_series: vec![(0.0, 1e9)],
            peak_bw: 1e9,
            binmap: BinaryMap::default(),
        }
    }

    #[test]
    fn densest_sites_win_dram() {
        let profile = mk_profile(vec![
            mk_site(0, 1 << 30, 1e9, 0.0, 1), // density ~0.93
            mk_site(1, 1 << 30, 1e6, 0.0, 1), // density ~0.001
            mk_site(2, 1 << 30, 1e8, 0.0, 1),
        ]);
        let cfg = AdvisorConfig::loads_only(2);
        let a = assign(&profile, &cfg);
        assert_eq!(a.tier_of(SiteId(0)), TierId::DRAM);
        assert_eq!(a.tier_of(SiteId(2)), TierId::DRAM);
        assert_eq!(a.tier_of(SiteId(1)), TierId::PMEM);
    }

    #[test]
    fn capacity_is_respected() {
        let profile = mk_profile(vec![
            mk_site(0, 3 << 30, 1e9, 0.0, 1),
            mk_site(1, 3 << 30, 9e8, 0.0, 1),
            mk_site(2, 3 << 30, 8e8, 0.0, 1),
        ]);
        let cfg = AdvisorConfig::loads_only(4);
        let a = assign(&profile, &cfg);
        let dram_bytes: u64 =
            a.sites_in(TierId::DRAM).iter().map(|s| profile.site(*s).unwrap().total_bytes).sum();
        assert!(dram_bytes <= 4 << 30);
        assert_eq!(a.sites_in(TierId::DRAM).len(), 1);
    }

    #[test]
    fn total_bytes_accounting_excludes_reallocated_scratch() {
        // A scratch site: 100 allocations of 64 MiB (total 6.4 GiB) but
        // only ever 64 MiB live. The base algorithm must charge the total
        // and therefore skip it on a 4 GiB budget, despite high density.
        let mut scratch = mk_site(0, 100 * (64 << 20), 8e9, 0.0, 100);
        scratch.peak_live_bytes = 64 << 20;
        let profile = mk_profile(vec![scratch, mk_site(1, 1 << 30, 1e8, 0.0, 1)]);
        let cfg = AdvisorConfig::loads_only(4);
        let a = assign(&profile, &cfg);
        assert_eq!(a.tier_of(SiteId(0)), TierId::PMEM, "scratch charged by total");
        assert_eq!(a.tier_of(SiteId(1)), TierId::DRAM);
    }

    #[test]
    fn store_coefficient_changes_the_ranking() {
        // Site 0: read-dense. Site 1: write-dense. Budget fits only one.
        let profile =
            mk_profile(vec![mk_site(0, 1 << 30, 5e8, 0.0, 1), mk_site(1, 1 << 30, 1e8, 4e8, 1)]);
        let loads = assign(&profile, &AdvisorConfig::loads_only(1));
        assert_eq!(loads.tier_of(SiteId(0)), TierId::DRAM);
        assert_eq!(loads.tier_of(SiteId(1)), TierId::PMEM);
        let both = assign(&profile, &AdvisorConfig::loads_and_stores(1));
        assert_eq!(both.tier_of(SiteId(1)), TierId::DRAM, "stores now dominate");
        assert_eq!(both.tier_of(SiteId(0)), TierId::PMEM);
    }

    #[test]
    fn zero_value_sites_fall_back() {
        let profile = mk_profile(vec![mk_site(0, 1 << 20, 0.0, 0.0, 1)]);
        let a = assign(&profile, &AdvisorConfig::loads_only(12));
        assert_eq!(a.tier_of(SiteId(0)), TierId::PMEM);
    }

    #[test]
    fn empty_profile_is_fine() {
        let profile = mk_profile(vec![]);
        let a = assign(&profile, &AdvisorConfig::loads_only(12));
        assert!(a.tiers.is_empty());
        assert_eq!(a.fallback, TierId::PMEM);
    }

    #[test]
    fn raw_misses_prefers_big_hot_objects() {
        // Site 0: huge, many misses. Site 1: tiny, dense. Budget fits only
        // one of them by total bytes.
        let profile =
            mk_profile(vec![mk_site(0, 3 << 30, 5e9, 0.0, 1), mk_site(1, 64 << 20, 1e9, 0.0, 1)]);
        let cfg = AdvisorConfig::loads_only(3);
        let density = assign_with(&profile, &cfg, ValueFunction::MissDensity);
        assert_eq!(density.tier_of(SiteId(1)), TierId::DRAM, "density likes the small site");
        let raw = assign_with(&profile, &cfg, ValueFunction::RawMisses);
        assert_eq!(raw.tier_of(SiteId(0)), TierId::DRAM, "raw misses likes the big one");
    }

    #[test]
    fn temporal_density_discounts_short_lived_sites() {
        // A reallocated scratch site occupies its live footprint only
        // briefly; temporal density ranks it above a same-density
        // persistent site.
        let mut scratch = mk_site(0, 100 * (64 << 20), 8e9, 0.0, 100);
        scratch.peak_live_bytes = 64 << 20;
        scratch.objects[0].free_time = 0.5; // short-lived
        let persistent = mk_site(1, 1 << 30, 1.5e9, 0.0, 1);
        let profile = mk_profile(vec![scratch, persistent]);
        let s0 = profile.site(SiteId(0)).unwrap();
        let s1 = profile.site(SiteId(1)).unwrap();
        let v = ValueFunction::MissesPerByteSecond;
        assert!(
            v.value(s0, 1.0, 0.0, profile.duration) > v.value(s1, 1.0, 0.0, profile.duration),
            "temporal density must reward short occupancy"
        );
        // The paper's density does the opposite here.
        assert!(s0.density(1.0, 0.0) < s1.density(1.0, 0.0));
    }

    #[test]
    fn unknown_site_uses_fallback() {
        let profile = mk_profile(vec![]);
        let a = assign(&profile, &AdvisorConfig::loads_only(12));
        assert_eq!(a.tier_of(SiteId(99)), TierId::PMEM);
    }
}
