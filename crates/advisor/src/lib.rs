//! # advisor — the HMem Advisor
//!
//! Computes optimized object distributions across memory subsystems from a
//! [`profiler::ProfileSet`]:
//!
//! * [`knapsack`] — the base algorithm (§IV-B): a greedy relaxation of the
//!   0/1 multiple-knapsack problem. Tiers are filled in descending
//!   performance order; each site's value is its weighted miss density
//!   (`(c_load · load_misses + c_store · store_misses) / bytes`), with
//!   separate per-tier load and store coefficients (contribution §V).
//! * [`bandwidth`] — the bandwidth-aware second pass (contribution §VII):
//!   classifies sites into *Fitting*, *Streaming-D* and *Thrashing*
//!   (Table IV) using allocation counts and allocation-time bandwidth, then
//!   runs Algorithm 1 to swap bandwidth-hungry PMem residents into DRAM
//!   against low-value Fitting occupants.
//! * [`config`] — the Advisor configuration file: per-tier capacity limits
//!   and load/store coefficients, mirroring the paper's setup where the
//!   DRAM limit is varied (4/8/12 GB in Fig. 6; 11–16 GB in Table VIII).
//!
//! The Advisor emits a [`memtrace::PlacementReport`] in either call-stack
//! format of Table I, which FlexMalloc consumes at runtime.

pub mod advise;
pub mod bandwidth;
pub mod config;
pub mod knapsack;
pub mod optimal;

pub use advise::{Advisor, Algorithm};
pub use bandwidth::{BwThresholds, Category, Classification};
pub use config::{AdvisorConfig, TierBudget};
pub use knapsack::{Assignment, ValueFunction};
pub use optimal::{assign_optimal_first_tier, first_tier_value};
