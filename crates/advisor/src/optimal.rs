//! Exact 0/1 knapsack for small instances — a quality yardstick for the
//! paper's greedy relaxation (§IV-B).
//!
//! The Advisor's base algorithm greedily fills each tier by value density.
//! Greedy 0/1 knapsack has no constant-factor guarantee in general, so this
//! module provides an exact dynamic-programming solver (capacity quantized
//! to a configurable granularity) usable when the site count is small — as
//! it always is at object granularity (tens of sites). The
//! `greedy_vs_optimal` bench and the tests quantify the gap.

use crate::config::AdvisorConfig;
use crate::knapsack::Assignment;
use memtrace::{SiteId, TierId};
use profiler::ProfileSet;
use std::collections::HashMap;

/// Solves the *first tier's* placement exactly (the DRAM knapsack — the
/// only one that is actually constrained on the paper's machine), sending
/// the rest to the fallback. Capacities are quantized to `granularity`
/// bytes; instances with more than `max_sites` sites fall back to the
/// greedy result (DP cost is `sites × capacity/granularity`).
pub fn assign_optimal_first_tier(
    profile: &ProfileSet,
    config: &AdvisorConfig,
    granularity: u64,
    max_sites: usize,
) -> Assignment {
    config.validate().expect("invalid advisor configuration");
    assert!(granularity >= 1 << 20, "granularity below 1 MiB explodes the DP table");
    if profile.sites.len() > max_sites {
        return crate::knapsack::assign(profile, config);
    }
    let budget = config.primary();
    let cap_units = (budget.capacity / granularity) as usize;

    // Item weights (quantized, rounded up: never overcommit) and values.
    let items: Vec<(SiteId, usize, f64)> = profile
        .sites
        .iter()
        .map(|s| {
            let w = (s.total_bytes.div_ceil(granularity)) as usize;
            let v = budget.load_coeff * s.load_misses_est + budget.store_coeff * s.store_misses_est;
            (s.site, w, v)
        })
        .collect();

    // Classic DP over capacity.
    let mut best = vec![0.0f64; cap_units + 1];
    let mut take = vec![vec![false; cap_units + 1]; items.len()];
    for (i, &(_, w, v)) in items.iter().enumerate() {
        if v <= 0.0 || w > cap_units {
            continue;
        }
        for c in (w..=cap_units).rev() {
            let candidate = best[c - w] + v;
            if candidate > best[c] {
                best[c] = candidate;
                take[i][c] = true;
            }
        }
    }

    // Walk back the chosen set.
    let mut tiers: HashMap<SiteId, TierId> = HashMap::new();
    let mut c = cap_units;
    let mut charged = 0u64;
    for i in (0..items.len()).rev() {
        if take[i][c] {
            let (site, w, _) = items[i];
            tiers.insert(site, budget.tier);
            charged += profile.site(site).unwrap().total_bytes;
            c -= w;
        }
    }
    for s in &profile.sites {
        tiers.entry(s.site).or_insert(config.fallback);
    }
    Assignment { tiers, fallback: config.fallback, charged: vec![(budget.tier, charged)] }
}

/// Total first-tier value of an assignment under a config (the knapsack
/// objective).
pub fn first_tier_value(
    profile: &ProfileSet,
    config: &AdvisorConfig,
    assignment: &Assignment,
) -> f64 {
    let budget = config.primary();
    profile
        .sites
        .iter()
        .filter(|s| assignment.tier_of(s.site) == budget.tier)
        .map(|s| budget.load_coeff * s.load_misses_est + budget.store_coeff * s.store_misses_est)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knapsack;
    use memtrace::{BinaryMap, CallStack, Frame, ModuleId, ObjectId};
    use profiler::{ObjectLifetime, SiteProfile};

    fn mk_site(id: u32, bytes: u64, misses: f64) -> SiteProfile {
        SiteProfile {
            site: SiteId(id),
            stack: CallStack::new(vec![Frame::new(ModuleId(0), 64 * id as u64)]),
            alloc_count: 1,
            max_size: bytes,
            total_bytes: bytes,
            peak_live_bytes: bytes,
            load_misses_est: misses,
            store_misses_est: 0.0,
            has_stores: false,
            first_alloc: 0.0,
            last_free: 10.0,
            bw_at_alloc: 0.0,
            avg_bw: 0.0,
            objects: vec![ObjectLifetime {
                object: ObjectId(id as u64),
                size: bytes,
                alloc_time: 0.0,
                free_time: 10.0,
                load_samples: 1,
                store_samples: 0,
                store_l1d_miss_samples: 0,
                bw_at_alloc: 0.0,
            }],
        }
    }

    fn profile(sites: Vec<SiteProfile>) -> ProfileSet {
        ProfileSet {
            app_name: "t".into(),
            duration: 10.0,
            sites,
            bw_series: vec![(0.0, 1e9)],
            peak_bw: 1e9,
            binmap: BinaryMap::default(),
        }
    }

    #[test]
    fn optimal_beats_greedy_on_the_classic_counterexample() {
        // Greedy-by-density takes the small dense item and wastes the rest
        // of the budget; optimal takes the two big ones.
        let gib = 1u64 << 30;
        let p = profile(vec![
            mk_site(0, gib, 1.2e9),     // density 1.12 — greedy's first pick
            mk_site(1, 6 * gib, 6.0e9), // density 0.93
            mk_site(2, 6 * gib, 6.0e9), // density 0.93
        ]);
        let cfg = AdvisorConfig::loads_only(12);
        let greedy = knapsack::assign(&p, &cfg);
        let optimal = assign_optimal_first_tier(&p, &cfg, 1 << 30, 64);
        let gv = first_tier_value(&p, &cfg, &greedy);
        let ov = first_tier_value(&p, &cfg, &optimal);
        assert!(ov >= 12e9 - 1.0, "optimal takes both big items: {ov:.2e}");
        assert!(gv < ov, "greedy {gv:.2e} < optimal {ov:.2e}");
    }

    #[test]
    fn optimal_never_loses_to_greedy() {
        // Pseudorandom instances: optimal ≥ greedy always.
        let gib = (1u64 << 30) as f64;
        for seed in 0..20u64 {
            let sites: Vec<SiteProfile> = (0..12)
                .map(|i| {
                    let x = (seed * 31 + i * 7919) % 97;
                    mk_site(i as u32, ((x % 7 + 1) as f64 * gib) as u64, (x * x) as f64 * 1e7 + 1e6)
                })
                .collect();
            let p = profile(sites);
            let cfg = AdvisorConfig::loads_only(8);
            let gv = first_tier_value(&p, &cfg, &knapsack::assign(&p, &cfg));
            let ov = first_tier_value(&p, &cfg, &assign_optimal_first_tier(&p, &cfg, 1 << 30, 64));
            assert!(ov + 1e-6 >= gv, "seed {seed}: optimal {ov:.3e} < greedy {gv:.3e}");
        }
    }

    #[test]
    fn capacity_respected_after_quantization() {
        let gib = 1u64 << 30;
        let p = profile(vec![
            mk_site(0, 3 * gib + 5, 1e9), // rounds up to 4 units
            mk_site(1, 3 * gib, 9e8),
            mk_site(2, 3 * gib, 8e8),
        ]);
        let cfg = AdvisorConfig::loads_only(7);
        let a = assign_optimal_first_tier(&p, &cfg, gib, 64);
        let planned: u64 = p
            .sites
            .iter()
            .filter(|s| a.tier_of(s.site) == TierId::DRAM)
            .map(|s| s.total_bytes.div_ceil(gib) * gib)
            .sum();
        assert!(planned <= 7 * gib);
    }

    #[test]
    fn large_instances_fall_back_to_greedy() {
        let sites: Vec<SiteProfile> =
            (0..50).map(|i| mk_site(i, 1 << 28, 1e8 + i as f64)).collect();
        let p = profile(sites);
        let cfg = AdvisorConfig::loads_only(4);
        let a = assign_optimal_first_tier(&p, &cfg, 1 << 30, 10);
        let g = knapsack::assign(&p, &cfg);
        assert_eq!(a.tiers, g.tiers);
    }
}
