//! Combined proactive + reactive placement — the paper's stated future
//! work (§III): "Kernel-level page migration approaches are orthogonal to
//! our application-level design, and may be combined to leverage an
//! initial proactive object placement provided by the latter along with
//! reactive runtime page migration capabilities provided by the former."
//!
//! The combination wraps FlexMalloc (report-driven initial placement) and
//! layers the kernel-tiering migration logic on top, so objects start
//! where the Advisor put them and may still be migrated if the observed
//! behaviour diverges from the profile.

use crate::tiering::KernelTiering;
use flexmalloc::FlexMalloc;
use memsim::policy::{AllocContext, Migration, PhaseObservation, PlacementPolicy};
use memtrace::{BinaryMap, PlacementReport, TierId, TraceError};

/// FlexMalloc initial placement + kernel-tiering reactive migration.
#[derive(Debug)]
pub struct ProactiveReactive {
    interposer: FlexMalloc,
    tiering: KernelTiering,
}

impl ProactiveReactive {
    /// Builds the combined policy from an Advisor report and the machine.
    pub fn new(
        report: &PlacementReport,
        binmap: &BinaryMap,
        machine: &memsim::MachineConfig,
        aslr_seed: u64,
        ranks: u32,
    ) -> Result<Self, TraceError> {
        Ok(ProactiveReactive {
            interposer: FlexMalloc::new(report, binmap, aslr_seed, ranks)?,
            tiering: KernelTiering::new(machine),
        })
    }

    /// The wrapped interposer (for matching statistics).
    pub fn interposer(&self) -> &FlexMalloc {
        &self.interposer
    }
}

impl PlacementPolicy for ProactiveReactive {
    fn name(&self) -> &str {
        "ecohmem+tiering"
    }

    fn place(&mut self, ctx: &AllocContext<'_>) -> TierId {
        // Proactive: the Advisor report decides the initial tier.
        self.interposer.place(ctx)
    }

    fn fallback(&self) -> TierId {
        self.interposer.fallback()
    }

    fn overhead_seconds_per_alloc(&self) -> f64 {
        self.interposer.overhead_seconds_per_alloc()
    }

    fn resident_dram_bytes(&self) -> u64 {
        // Both costs apply: matcher debug info (if any) and kernel page
        // metadata.
        self.interposer.resident_dram_bytes() + self.tiering.resident_dram_bytes()
    }

    fn observe_phase(&mut self, obs: &PhaseObservation) -> Vec<Migration> {
        // Reactive: the tiering heuristics may still move objects whose
        // observed heat contradicts the profile.
        self.tiering.observe_phase(obs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use advisor::{Advisor, AdvisorConfig, Algorithm};
    use memsim::{run, ExecMode, FixedTier, MachineConfig};
    use memtrace::StackFormat;
    use profiler::{analyze, profile_run, ProfilerConfig};

    fn advise(app: &memsim::AppModel, machine: &MachineConfig) -> PlacementReport {
        let (trace, _) = profile_run(
            app,
            machine,
            ExecMode::MemoryMode,
            &mut FixedTier::new(TierId::PMEM),
            &ProfilerConfig::default(),
        );
        let profile = analyze(&trace).unwrap();
        Advisor::new(AdvisorConfig::loads_only(12))
            .advise(&profile, Algorithm::Base, StackFormat::Bom)
            .unwrap()
    }

    #[test]
    fn combined_policy_runs_and_beats_memory_mode_on_minife() {
        let app = workloads::minife::model();
        let machine = MachineConfig::optane_pmem6();
        let report = advise(&app, &machine);
        let mut policy =
            ProactiveReactive::new(&report, &app.binmap, &machine, 202, app.ranks).unwrap();
        let combined = run(&app, &machine, ExecMode::AppDirect, &mut policy);
        let mm = crate::memory_mode::run_memory_mode(&app, &machine);
        assert!(combined.total_time < mm.total_time);
        assert!(policy.interposer().stats().matched > 0);
    }

    #[test]
    fn combined_policy_pays_the_metadata_cost() {
        let app = workloads::minife::model();
        let machine = MachineConfig::optane_pmem6();
        let report = advise(&app, &machine);
        let policy =
            ProactiveReactive::new(&report, &app.binmap, &machine, 202, app.ranks).unwrap();
        assert!(policy.resident_dram_bytes() > 3 << 30, "kernel metadata charged");
    }
}
