//! # baselines — the comparison points of the paper's evaluation
//!
//! * [`memory_mode`] — the primary baseline: Optane Memory Mode, where the
//!   DRAM acts as a hardware-managed direct-mapped write-back cache in
//!   front of PMem (§II).
//! * [`tiering`] — a kernel-level reactive page-migration baseline
//!   modelling Intel's experimental `tiering-0.71` kernels: hot data is
//!   promoted to the DRAM NUMA node and cold data demoted, based on
//!   per-window observations, at the cost of migration traffic and a DRAM
//!   reservation for page-management metadata (§VIII-A).
//! * [`combined`] — the paper's stated future work: ecoHMEM's proactive
//!   initial placement layered with reactive kernel migration.
//! * [`profdp`] — ProfDP (Wen et al., ICS'18): differential profiling over
//!   *three* runs derives per-object latency and bandwidth sensitivities
//!   that rank objects for placement; following the paper's §VIII
//!   methodology we compute all four metric/aggregation variants
//!   (latency/bandwidth × sum/average) and report the best-performing one.

pub mod combined;
pub mod memory_mode;
pub mod profdp;
pub mod tiering;

pub use combined::ProactiveReactive;
pub use memory_mode::run_memory_mode;
pub use profdp::{ProfDp, ProfDpVariant};
pub use tiering::KernelTiering;
