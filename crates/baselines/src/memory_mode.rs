//! The Memory Mode baseline.

use memsim::{run, AppModel, ExecMode, FixedTier, MachineConfig, RunResult};

/// Runs an application in Memory Mode: all data in PMem, DRAM as the
/// hardware cache. This is the paper's "baseline" against which every
/// speedup is reported.
pub fn run_memory_mode(app: &AppModel, machine: &MachineConfig) -> RunResult {
    let mut policy = FixedTier::new(machine.largest_tier());
    run(app, machine, ExecMode::MemoryMode, &mut policy)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_mode_reports_cache_statistics() {
        let app = workloads::minife::model();
        let mach = MachineConfig::optane_pmem6();
        let r = run_memory_mode(&app, &mach);
        assert_eq!(r.mode, "memory-mode");
        assert!(r.dram_cache_hit_ratio().is_some());
        assert!(r.total_time > 0.0);
    }

    #[test]
    fn pmem2_memory_mode_is_slower() {
        // One third of the PMem bandwidth must hurt the cache-miss path.
        let app = workloads::minife::model();
        let m6 = run_memory_mode(&app, &MachineConfig::optane_pmem6());
        let m2 = run_memory_mode(&app, &MachineConfig::optane_pmem2());
        assert!(m2.total_time > m6.total_time);
    }
}
