//! The Memory Mode baseline.

use memsim::{AppModel, ExecMode, MachineConfig, RunResult};

/// Runs an application in Memory Mode: all data in PMem, DRAM as the
/// hardware cache. This is the paper's "baseline" against which every
/// speedup is reported.
///
/// Memoized: every table in the paper compares against this same run, so it
/// is served from [`memsim::global_cache`] and simulated at most once per
/// `(app, machine)` per process. The engine is deterministic, so the cached
/// result is bit-identical to a direct `memsim::run`.
pub fn run_memory_mode(app: &AppModel, machine: &MachineConfig) -> RunResult {
    memsim::global_cache()
        .run_fixed(app, machine, ExecMode::MemoryMode, machine.largest_tier(), None)
        .as_ref()
        .clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_mode_reports_cache_statistics() {
        let app = workloads::minife::model();
        let mach = MachineConfig::optane_pmem6();
        let r = run_memory_mode(&app, &mach);
        assert_eq!(r.mode, "memory-mode");
        assert!(r.dram_cache_hit_ratio() > 0.0);
        assert!(r.total_time > 0.0);
    }

    #[test]
    fn pmem2_memory_mode_is_slower() {
        // One third of the PMem bandwidth must hurt the cache-miss path.
        let app = workloads::minife::model();
        let m6 = run_memory_mode(&app, &MachineConfig::optane_pmem6());
        let m2 = run_memory_mode(&app, &MachineConfig::optane_pmem2());
        assert!(m2.total_time > m6.total_time);
    }

    #[test]
    fn memoized_baseline_matches_direct_run() {
        use memsim::FixedTier;
        let app = workloads::minife::model();
        let mach = MachineConfig::optane_pmem6();
        let cached = run_memory_mode(&app, &mach);
        let direct = memsim::run(
            &app,
            &mach,
            ExecMode::MemoryMode,
            &mut FixedTier::new(mach.largest_tier()),
        );
        assert_eq!(cached, direct);
    }
}
