//! ProfDP (Wen et al., ICS'18): differential profiling for data placement.
//!
//! ProfDP estimates each object's *latency sensitivity* and *bandwidth
//! sensitivity* by profiling the application several times (three runs)
//! with data in different memories, and ranks objects by the chosen metric
//! to guide manual placement. Following the paper's §VIII methodology, we
//! re-derive the metrics from the published formulas using our profiler's
//! data, face the same multi-process aggregation ambiguity (sum vs
//! average across ranks), and therefore evaluate **four variants**
//! (latency/bandwidth × sum/avg), reporting the best-performing one.
//!
//! Differences from ecoHMEM that the paper calls out — three profiling
//! runs instead of one, no capacity-aware placement algorithm (objects are
//! taken in rank order until DRAM is full), and no runtime machinery of
//! its own (we deploy its ranking through FlexMalloc, as the paper did for
//! an apples-to-apples comparison).

use memsim::policy::SiteMapPolicy;
use memsim::{run, AppModel, ExecMode, FixedTier, MachineConfig, RunResult};
use memtrace::{SiteId, TierId};
use std::collections::HashMap;

/// Which of the four metric/aggregation combinations to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProfDpVariant {
    /// Latency sensitivity, summed across ranks.
    LatencySum,
    /// Latency sensitivity, averaged across ranks.
    LatencyAvg,
    /// Bandwidth sensitivity, summed across ranks.
    BandwidthSum,
    /// Bandwidth sensitivity, averaged across ranks.
    BandwidthAvg,
}

impl ProfDpVariant {
    /// All four variants, in a stable order.
    pub fn all() -> [ProfDpVariant; 4] {
        [
            ProfDpVariant::LatencySum,
            ProfDpVariant::LatencyAvg,
            ProfDpVariant::BandwidthSum,
            ProfDpVariant::BandwidthAvg,
        ]
    }
}

/// ProfDP's per-site measurements from the three profiling runs.
#[derive(Debug, Clone)]
pub struct ProfDp {
    /// Per-site `(latency_sensitivity, bandwidth_sensitivity,
    /// ranks_touching, total_bytes)`.
    sites: HashMap<SiteId, (f64, f64, u32, u64)>,
    ranks: u32,
}

impl ProfDp {
    /// Performs the three profiling runs (fast-tier, slow-tier and memory
    /// mode) and derives the sensitivities.
    ///
    /// * latency sensitivity ≈ misses × (loaded slow-tier latency − loaded
    ///   fast-tier latency): how much stall the object adds when demoted;
    /// * bandwidth sensitivity ≈ the object's bandwidth demand share while
    ///   alive (misses × line / lifetime), scaled by the slow tier's
    ///   bandwidth deficit.
    pub fn profile(app: &AppModel, machine: &MachineConfig) -> Self {
        let fast = machine.tiers_by_performance()[0];
        let slow = machine.largest_tier();
        // Run 1: everything in the fast tier (spills to slow when full).
        let run_fast =
            run(app, machine, ExecMode::AppDirect, &mut FixedTier::with_fallback(fast, slow));
        // Run 2: everything in the slow tier.
        let run_slow = run(app, machine, ExecMode::AppDirect, &mut FixedTier::new(slow));
        // Run 3: memory mode (ProfDP's "baseline" run).
        let _run_mm = run(app, machine, ExecMode::MemoryMode, &mut FixedTier::new(slow));

        let fast_lat = machine.tier(fast).read_curve.idle_ns();
        let slow_lat = machine.tier(slow).read_curve.idle_ns();
        let bw_deficit = machine.tier(fast).peak_read_bw / machine.tier(slow).peak_read_bw;

        // Aggregate per site from the slow run's object records (every
        // object is in the slow tier there, so its misses are fully
        // exposed).
        let mut sites: HashMap<SiteId, (f64, f64, u32, u64)> = HashMap::new();
        for o in &run_slow.objects {
            let e = sites.entry(o.site).or_insert((0.0, 0.0, 0, 0));
            let misses = o.load_misses + o.store_misses;
            e.0 += misses * (slow_lat - fast_lat);
            let lifetime = o.lifetime().max(1e-9);
            e.1 += misses * 64.0 / lifetime * bw_deficit;
            e.3 += o.size;
        }
        // Ranks touching a site: proxy from allocation counts (a site
        // allocated once is typically owned by one rank; per-rank sites
        // allocate once per rank). This is where the sum-vs-average
        // ambiguity of the paper's §VIII bites.
        let mut alloc_counts: HashMap<SiteId, u32> = HashMap::new();
        for o in &run_fast.objects {
            *alloc_counts.entry(o.site).or_insert(0) += 1;
        }
        for (site, e) in sites.iter_mut() {
            e.2 = alloc_counts.get(site).copied().unwrap_or(1).min(app.ranks);
        }
        ProfDp { sites, ranks: app.ranks }
    }

    /// Ranks sites by a variant's metric, descending.
    pub fn ranking(&self, variant: ProfDpVariant) -> Vec<SiteId> {
        let mut v: Vec<(f64, SiteId)> = self
            .sites
            .iter()
            .map(|(site, &(lat, bw, ranks_touching, _))| {
                let denom = match variant {
                    ProfDpVariant::LatencySum | ProfDpVariant::BandwidthSum => 1.0,
                    ProfDpVariant::LatencyAvg | ProfDpVariant::BandwidthAvg => {
                        ranks_touching.max(1) as f64
                    }
                };
                let metric = match variant {
                    ProfDpVariant::LatencySum | ProfDpVariant::LatencyAvg => lat / denom,
                    ProfDpVariant::BandwidthSum | ProfDpVariant::BandwidthAvg => bw / denom,
                };
                (metric, *site)
            })
            .collect();
        v.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));
        v.into_iter().map(|(_, s)| s).collect()
    }

    /// Builds the placement policy for a variant: take sites in rank order
    /// until the DRAM budget is exhausted (ProfDP has no capacity-aware
    /// algorithm, so this is a straight priority fill), everything else to
    /// PMem.
    pub fn placement(
        &self,
        variant: ProfDpVariant,
        dram_budget: u64,
        fast: TierId,
        slow: TierId,
    ) -> SiteMapPolicy {
        let mut used = 0u64;
        let mut map = Vec::new();
        for site in self.ranking(variant) {
            let bytes = self.sites[&site].3;
            if used + bytes <= dram_budget {
                used += bytes;
                map.push((site, fast));
            }
        }
        SiteMapPolicy::new(map, slow).named(&format!("profdp-{variant:?}"))
    }

    /// Runs all four variants and returns the best run plus its variant —
    /// the paper's "we used all four and present that providing the
    /// highest performance".
    pub fn best_run(
        &self,
        app: &AppModel,
        machine: &MachineConfig,
        dram_budget: u64,
    ) -> (ProfDpVariant, RunResult) {
        let fast = machine.tiers_by_performance()[0];
        let slow = machine.largest_tier();
        let mut best: Option<(ProfDpVariant, RunResult)> = None;
        for variant in ProfDpVariant::all() {
            let mut policy = self.placement(variant, dram_budget, fast, slow);
            let result = run(app, machine, ExecMode::AppDirect, &mut policy);
            if best.as_ref().map(|(_, b)| result.total_time < b.total_time).unwrap_or(true) {
                best = Some((variant, result));
            }
        }
        best.expect("at least one variant ran")
    }

    /// Number of ranks the profile represents.
    pub fn ranks(&self) -> u32 {
        self.ranks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rankings_differ_across_metrics() {
        let app = workloads::minife::model();
        let mach = MachineConfig::optane_pmem6();
        let p = ProfDp::profile(&app, &mach);
        let lat = p.ranking(ProfDpVariant::LatencySum);
        let bw = p.ranking(ProfDpVariant::BandwidthSum);
        assert_eq!(lat.len(), bw.len());
        assert!(!lat.is_empty());
        // Both rankings cover the same sites.
        let a: std::collections::HashSet<_> = lat.iter().collect();
        let b: std::collections::HashSet<_> = bw.iter().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn best_variant_beats_memory_mode_on_minife() {
        // ProfDP is ≈ on par with ecoHMEM in the paper; on MiniFE it must
        // clearly beat the memory-mode baseline.
        let app = workloads::minife::model();
        let mach = MachineConfig::optane_pmem6();
        let p = ProfDp::profile(&app, &mach);
        let (_, best) = p.best_run(&app, &mach, 12 << 30);
        let mm = crate::memory_mode::run_memory_mode(&app, &mach);
        assert!(
            best.total_time < mm.total_time,
            "profdp {:.1}s vs mm {:.1}s",
            best.total_time,
            mm.total_time
        );
    }

    #[test]
    fn placement_respects_the_budget() {
        let app = workloads::minife::model();
        let mach = MachineConfig::optane_pmem6();
        let p = ProfDp::profile(&app, &mach);
        let policy = p.placement(
            ProfDpVariant::LatencySum,
            4 << 30,
            memtrace::TierId::DRAM,
            memtrace::TierId::PMEM,
        );
        let dram_bytes: u64 = p
            .sites
            .iter()
            .filter(|(s, _)| policy.tier_for(**s) == Some(memtrace::TierId::DRAM))
            .map(|(_, &(_, _, _, bytes))| bytes)
            .sum();
        assert!(dram_bytes <= 4 << 30);
    }
}
