//! Kernel-level reactive page-migration tiering (Intel `tiering-0.71`).
//!
//! Since Linux 5.5, PMem devdax devices can be exposed as NUMA nodes, and
//! Intel's experimental tiering kernels migrate pages between the DRAM and
//! PMem nodes based on observed access activity. The paper (§VIII-A) finds
//! this reactive approach better than Memory Mode for MiniFE and HPCG but
//! below ecoHMEM, and notes a structural cost: enabling the PMem node
//! consumes DRAM for page-management metadata proportionally to the PMem
//! size, shrinking what is left for the application.
//!
//! The model: allocations start in PMem (first-touch lands there because
//! DRAM is scarce and the kernel reserves headroom); after every phase the
//! policy observes per-object LLC-miss heat and requests migrations —
//! promote the hottest PMem objects into whatever DRAM remains, demote
//! DRAM objects that went cold. Migrations cost real time in the engine
//! (bytes over the slower of the two links). Reactivity means each
//! decision helps only *subsequent* phases — exactly why a proactive
//! profile-guided placement can beat it.

use memsim::policy::{AllocContext, Migration, PhaseObservation, PlacementPolicy};
use memtrace::{ObjectId, TierId};
use std::collections::HashMap;

/// Reactive page-migration policy.
#[derive(Debug)]
pub struct KernelTiering {
    dram: TierId,
    pmem: TierId,
    /// DRAM the kernel may fill with promoted pages, bytes.
    dram_budget: u64,
    /// DRAM reserved for page metadata (struct page et al.).
    metadata_bytes: u64,
    /// Exponentially-averaged heat per object.
    heat: HashMap<ObjectId, f64>,
    /// Promotion threshold: an object must beat the coldest resident by
    /// this factor to be worth a migration.
    hysteresis: f64,
    /// Max bytes migrated per phase boundary (migration rate limit).
    migration_quota: u64,
}

impl KernelTiering {
    /// Metadata cost per byte of PMem (64 B of `struct page` per 4 KiB
    /// page ≈ 1.6%, of which the tiering kernels keep a portion resident
    /// in DRAM; we charge 0.13% ≈ 4 GB for the paper's 3 TB node — enough
    /// to visibly shrink the application's DRAM as §VIII-A describes,
    /// while leaving the baseline functional).
    const METADATA_FRACTION: f64 = 0.0013;

    /// Creates the policy for a machine's DRAM/PMem pair.
    pub fn new(machine: &memsim::MachineConfig) -> Self {
        let dram = machine.tiers_by_performance()[0];
        let pmem = machine.largest_tier();
        let pmem_bytes = machine.tier(pmem).capacity as f64;
        let metadata_bytes = (pmem_bytes * Self::METADATA_FRACTION) as u64;
        let dram_capacity = machine.tier(dram).capacity;
        KernelTiering {
            dram,
            pmem,
            dram_budget: dram_capacity.saturating_sub(metadata_bytes),
            metadata_bytes,
            heat: HashMap::new(),
            hysteresis: 3.0,
            migration_quota: 2 << 30,
        }
    }

    /// DRAM consumed by page metadata.
    pub fn metadata_bytes(&self) -> u64 {
        self.metadata_bytes
    }
}

impl PlacementPolicy for KernelTiering {
    fn name(&self) -> &str {
        "kernel-tiering"
    }

    fn place(&mut self, _ctx: &AllocContext<'_>) -> TierId {
        // First-touch lands in the capacity tier; promotion is reactive.
        self.pmem
    }

    fn fallback(&self) -> TierId {
        self.pmem
    }

    fn resident_dram_bytes(&self) -> u64 {
        self.metadata_bytes
    }

    fn observe_phase(&mut self, obs: &PhaseObservation) -> Vec<Migration> {
        // Exponential decay so stale heat fades.
        for h in self.heat.values_mut() {
            *h *= 0.5;
        }
        for (obj, _site, _size, _tier, misses) in &obs.objects {
            *self.heat.entry(*obj).or_insert(0.0) += misses;
        }
        self.heat.retain(|_, h| *h > 1.0);

        // Current DRAM residents and their coldness.
        let mut dram_used = 0u64;
        let mut residents: Vec<(ObjectId, u64, f64)> = Vec::new();
        let mut candidates: Vec<(ObjectId, u64, f64)> = Vec::new();
        for (obj, _site, size, tier, _misses) in &obs.objects {
            let heat = self.heat.get(obj).copied().unwrap_or(0.0);
            if *tier == self.dram {
                dram_used += size;
                residents.push((*obj, *size, heat));
            } else {
                candidates.push((*obj, *size, heat));
            }
        }
        residents.sort_by(|a, b| a.2.partial_cmp(&b.2).unwrap()); // coldest first
        candidates.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap()); // hottest first

        let mut migrations = Vec::new();
        let mut moved = 0u64;
        let mut res_idx = 0;
        for (obj, size, heat) in candidates {
            if heat <= 0.0 {
                break; // candidates are sorted: the rest are cold too
            }
            if moved + size > self.migration_quota {
                // Too big for this window's budget; smaller hot objects may
                // still fit.
                continue;
            }
            if dram_used + size <= self.dram_budget {
                migrations.push(Migration { object: obj, to: self.dram });
                dram_used += size;
                moved += size;
                continue;
            }
            // Evict colder residents to make room, if clearly colder.
            let mut freed = 0u64;
            let mut evictions = Vec::new();
            while res_idx < residents.len() && dram_used + size - freed > self.dram_budget {
                let (cold_obj, cold_size, cold_heat) = residents[res_idx];
                if cold_heat * self.hysteresis >= heat {
                    break;
                }
                evictions.push(Migration { object: cold_obj, to: self.pmem });
                freed += cold_size;
                res_idx += 1;
            }
            if dram_used + size - freed <= self.dram_budget {
                dram_used = dram_used + size - freed;
                moved += size + freed;
                migrations.extend(evictions);
                migrations.push(Migration { object: obj, to: self.dram });
            }
        }
        migrations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim::{run, ExecMode, MachineConfig};

    #[test]
    fn metadata_shrinks_application_dram() {
        let mach = MachineConfig::optane_pmem6();
        let t = KernelTiering::new(&mach);
        assert!(t.metadata_bytes() > 3 << 30, "≈4 GB on the 3 TB node");
        assert!(t.metadata_bytes() < 6 << 30);
        assert_eq!(t.resident_dram_bytes(), t.metadata_bytes());
    }

    #[test]
    fn promotes_hot_objects_over_time() {
        let app = workloads::minife::model();
        let mach = MachineConfig::optane_pmem6();
        let mut policy = KernelTiering::new(&mach);
        let r = run(&app, &mach, ExecMode::AppDirect, &mut policy);
        let migrated: u64 = r.phases.iter().map(|p| p.migrated_bytes).sum();
        assert!(migrated > 0, "reactive policy must migrate something");
        // Eventually some objects live in DRAM.
        assert!(r.tier_peak_bytes[0] > 0);
    }

    #[test]
    fn beats_all_pmem_for_a_hot_small_working_set() {
        // MiniFE's hot vectors should get promoted, beating a static
        // all-PMem placement.
        let app = workloads::minife::model();
        let mach = MachineConfig::optane_pmem6();
        let tiering = run(&app, &mach, ExecMode::AppDirect, &mut KernelTiering::new(&mach));
        let pmem_only = run(
            &app,
            &mach,
            ExecMode::AppDirect,
            &mut memsim::FixedTier::new(memtrace::TierId::PMEM),
        );
        assert!(
            tiering.total_time < pmem_only.total_time,
            "tiering {:.1}s vs all-pmem {:.1}s",
            tiering.total_time,
            pmem_only.total_time
        );
    }
}
