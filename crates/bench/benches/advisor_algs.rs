//! Criterion: HMem Advisor algorithm costs — the greedy density knapsack
//! (§IV-B) and the bandwidth-aware classification + Algorithm 1 (§VII) as
//! the number of allocation sites grows.

use advisor::{Advisor, AdvisorConfig, Algorithm};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use memtrace::{BinaryMap, CallStack, Frame, ModuleId, ObjectId, SiteId};
use profiler::{ObjectLifetime, ProfileSet, SiteProfile};

fn synthetic_profile(n: usize) -> ProfileSet {
    let sites = (0..n)
        .map(|i| {
            let bytes = 1u64 << (18 + (i % 12));
            let alloc_count = if i % 4 == 0 { 50 } else { 1 };
            SiteProfile {
                site: SiteId(i as u32),
                stack: CallStack::new(vec![Frame::new(ModuleId(0), 64 * i as u64)]),
                alloc_count,
                max_size: bytes / alloc_count,
                total_bytes: bytes,
                peak_live_bytes: bytes / alloc_count,
                load_misses_est: (i as f64 * 7919.0) % 1e9,
                store_misses_est: (i as f64 * 104729.0) % 1e8,
                has_stores: i % 3 == 0,
                first_alloc: (i % 50) as f64,
                last_free: 100.0,
                bw_at_alloc: ((i as f64 * 31.0) % 10.0) * 1e9,
                avg_bw: ((i as f64 * 17.0) % 5.0) * 1e9,
                objects: vec![ObjectLifetime {
                    object: ObjectId(i as u64),
                    size: bytes / alloc_count,
                    alloc_time: 0.0,
                    free_time: 100.0,
                    load_samples: 1,
                    store_samples: 0,
                    store_l1d_miss_samples: 0,
                    bw_at_alloc: 0.0,
                }],
            }
        })
        .collect();
    ProfileSet {
        app_name: "bench".into(),
        duration: 100.0,
        sites,
        bw_series: vec![(0.0, 1e10)],
        peak_bw: 1e10,
        binmap: BinaryMap::default(),
    }
}

fn bench_advisor(c: &mut Criterion) {
    let mut group = c.benchmark_group("advisor");
    for n in [100usize, 1000, 10_000] {
        let profile = synthetic_profile(n);
        let advisor = Advisor::new(AdvisorConfig::loads_only(12));
        group.bench_with_input(BenchmarkId::new("knapsack", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(advisor.assign(&profile, Algorithm::Base)))
        });
        group.bench_with_input(BenchmarkId::new("bandwidth_aware", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(advisor.assign(&profile, Algorithm::BandwidthAware)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_advisor);
criterion_main!(benches);
