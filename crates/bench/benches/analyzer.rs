//! Criterion: trace pipeline throughput — sampling-profiler trace
//! generation and Paramedir-style analysis (address-interval sample
//! matching dominates).

use criterion::{criterion_group, criterion_main, Criterion};
use memsim::{ExecMode, FixedTier, MachineConfig};
use memtrace::TierId;
use profiler::{analyze, profile_run, ProfilerConfig};

fn bench_analyzer(c: &mut Criterion) {
    let machine = MachineConfig::optane_pmem6();
    let app = workloads::lulesh::model();
    let (trace, _) = profile_run(
        &app,
        &machine,
        ExecMode::MemoryMode,
        &mut FixedTier::new(TierId::PMEM),
        &ProfilerConfig::default(),
    );
    let events = trace.events.len();
    let mut group = c.benchmark_group("trace_pipeline");
    group.sample_size(20);
    group.bench_function(format!("analyze_lulesh_{events}_events"), |b| {
        b.iter(|| std::hint::black_box(analyze(&trace).unwrap()))
    });
    group.bench_function("profile_run_lulesh", |b| {
        b.iter(|| {
            std::hint::black_box(profile_run(
                &app,
                &machine,
                ExecMode::MemoryMode,
                &mut FixedTier::new(TierId::PMEM),
                &ProfilerConfig::default(),
            ))
        })
    });
    group.bench_function("trace_json_round_trip", |b| {
        b.iter(|| {
            let json = trace.to_json().unwrap();
            std::hint::black_box(memtrace::TraceFile::from_json(&json).unwrap())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_analyzer);
criterion_main!(benches);
