//! Criterion: phase-engine throughput — a full application execution under
//! each mode, per workload model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use memsim::{run, ExecMode, FixedTier, MachineConfig};
use memtrace::TierId;

fn bench_engine(c: &mut Criterion) {
    let machine = MachineConfig::optane_pmem6();
    let mut group = c.benchmark_group("engine_run");
    group.sample_size(20);
    for name in ["minife", "lulesh", "openfoam"] {
        let app = workloads::model_by_name(name).unwrap();
        group.bench_with_input(BenchmarkId::new("memory_mode", name), &app, |b, app| {
            b.iter(|| {
                std::hint::black_box(run(
                    app,
                    &machine,
                    ExecMode::MemoryMode,
                    &mut FixedTier::new(TierId::PMEM),
                ))
            })
        });
        group.bench_with_input(BenchmarkId::new("app_direct", name), &app, |b, app| {
            b.iter(|| {
                std::hint::black_box(run(
                    app,
                    &machine,
                    ExecMode::AppDirect,
                    &mut FixedTier::new(TierId::PMEM),
                ))
            })
        });
    }
    group.finish();
}

fn bench_model_construction(c: &mut Criterion) {
    c.bench_function("build_all_models", |b| {
        b.iter(|| std::hint::black_box(workloads::all_models()))
    });
}

criterion_group!(benches, bench_engine, bench_model_construction);
criterion_main!(benches);
