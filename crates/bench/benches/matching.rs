//! Criterion: FlexMalloc call-stack matching — the §VI claim that BOM
//! reduces per-allocation matching to a handful of address comparisons
//! while human-readable matching pays an addr2line-style translation.
//!
//! These measure the *actual implementation cost* of our matcher (the
//! simulated application-level overhead is a separate, modelled quantity).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flexmalloc::Matcher;
use memtrace::{
    BinaryMapBuilder, CallStack, Frame, LoadMap, ModuleId, PlacementReport, ReportEntry,
    ReportStack, StackFormat, TierId,
};

fn setup(entries: usize) -> (memtrace::BinaryMap, PlacementReport, LoadMap, Vec<Vec<u64>>) {
    let mut b = BinaryMapBuilder::new();
    b.add_module("a.out", 1 << 20, 16 << 20, vec!["main.c".into()]);
    b.add_module("libsolver.so", 4 << 20, 64 << 20, vec!["solver.c".into()]);
    let map = b.build();
    let mut report = PlacementReport::new(StackFormat::Bom, TierId::PMEM);
    let mut stacks = Vec::new();
    for i in 0..entries {
        let stack = CallStack::new(vec![
            Frame::new(ModuleId(1), (i as u64 * 192) % ((4 << 20) - 64)),
            Frame::new(ModuleId(0), (i as u64 * 320) % ((1 << 20) - 64)),
            Frame::new(ModuleId(0), 0x40),
        ]);
        report.push(ReportEntry {
            stack: ReportStack::Bom(stack.clone()),
            tier: if i % 2 == 0 { TierId::DRAM } else { TierId::PMEM },
            max_size: 4096,
        });
        stacks.push(stack);
    }
    let layout = LoadMap::randomize(&map, 42);
    let captured = stacks.iter().map(|s| layout.absolutize(s).unwrap()).collect();
    (map, report, layout, captured)
}

fn bench_matching(c: &mut Criterion) {
    let mut group = c.benchmark_group("stack_matching");
    for entries in [16usize, 128, 1024] {
        let (map, report, layout, captured) = setup(entries);
        let bom = Matcher::new(&report, &map, &layout).unwrap();
        group.bench_with_input(BenchmarkId::new("bom", entries), &entries, |b, _| {
            let mut i = 0;
            b.iter(|| {
                let hit = bom.match_stack(&captured[i % captured.len()], &map, &layout);
                i += 1;
                std::hint::black_box(hit)
            })
        });

        let hr_report = report.to_human_readable(&map).unwrap();
        let hr = Matcher::new(&hr_report, &map, &layout).unwrap();
        group.bench_with_input(BenchmarkId::new("human_readable", entries), &entries, |b, _| {
            let mut i = 0;
            b.iter(|| {
                let hit = hr.match_stack(&captured[i % captured.len()], &map, &layout);
                i += 1;
                std::hint::black_box(hit)
            })
        });
    }
    group.finish();
}

fn bench_matcher_init(c: &mut Criterion) {
    // §VI: BOM precomputes absolute addresses once at process init.
    let (map, report, layout, _) = setup(1024);
    c.bench_function("matcher_init_1024_entries", |b| {
        b.iter(|| std::hint::black_box(Matcher::new(&report, &map, &layout).unwrap()))
    });
}

criterion_group!(benches, bench_matching, bench_matcher_init);
criterion_main!(benches);
