//! Extension experiment: object- vs page/chunk-granularity placement (the
//! §III object-vs-page design question).
//!
//! Each application is re-expressed with its large allocations split into
//! fixed-size chunks (each with its own call-stack identity), and the same
//! profile→advise→deploy pipeline runs on the chunked model. Finer
//! granularity lets the Advisor put *part* of a big object in DRAM —
//! the capacity-packing benefit page-level systems get — at the cost of
//! many more sites to profile and match. (Intra-object heat is uniform in
//! our models, so the skew benefit of page systems is out of scope; see
//! the module docs of `workloads::granularity`.)
//!
//! Usage: `ablation_granularity [--jobs N]`.

use bench::{Runner, Table};
use ecohmem_core::{run_pipeline, PipelineConfig};
use workloads::paginate_model;

fn main() {
    let runner = Runner::from_env("ablation_granularity");
    let mut grid: Vec<(&str, String, memsim::AppModel)> = Vec::new();
    for name in ["minife", "hpcg", "cloverleaf3d"] {
        let base = workloads::model_by_name(name).unwrap();
        grid.push((name, "object".into(), base.clone()));
        grid.push((name, "1 GiB chunks".into(), paginate_model(&base, 1 << 30)));
        grid.push((name, "256 MiB chunks".into(), paginate_model(&base, 256 << 20)));
        grid.push((name, "64 MiB chunks".into(), paginate_model(&base, 64 << 20)));
    }
    let rows = runner.map(grid, |(name, label, app)| {
        let cfg = PipelineConfig::paper_default();
        let t0 = std::time::Instant::now();
        let out = run_pipeline(&app, &cfg).unwrap();
        let elapsed = t0.elapsed().as_millis();
        vec![
            name.into(),
            label,
            app.sites.len().to_string(),
            format!("{:.3}", out.speedup()),
            elapsed.to_string(),
        ]
    });
    let mut t = Table::new(&["app", "granularity", "sites", "speedup", "pipeline_ms"]);
    for row in rows {
        t.row(row);
    }
    println!("{}", t.render());
    println!(
        "\nfiner chunks allow partial placement of large objects (capacity \
         packing) but multiply the sites the profiler must attribute and the \
         interposer must match — the trade the paper's object-granularity \
         choice navigates."
    );
    runner.report();
}
