//! Extension experiment: how much does the greedy knapsack relaxation
//! (§IV-B) leave on the table versus an exact 0/1 solution?
//!
//! At object granularity the paper's applications have tens of sites, so
//! the exact DP is tractable; we compare both the knapsack objective
//! (planned first-tier value) and the resulting end-to-end runtime.

use advisor::{assign_optimal_first_tier, first_tier_value, knapsack, AdvisorConfig};
use bench::Table;
use flexmalloc::FlexMalloc;
use memsim::{run, ExecMode, FixedTier, MachineConfig};
use memtrace::{PlacementReport, ReportEntry, ReportStack, StackFormat, TierId};
use profiler::{analyze, profile_run, ProfilerConfig};

fn main() {
    let runner = bench::Runner::from_env("ablation_greedy_optimal");
    let machine = MachineConfig::optane_pmem6();
    let mut t =
        Table::new(&["app", "dram_gib", "value_gap_%", "greedy_speedup", "optimal_speedup"]);
    for name in ["minife", "hpcg", "cloverleaf3d", "lulesh", "openfoam"] {
        let app = workloads::model_by_name(name).unwrap();
        let (trace, _) = profile_run(
            &app,
            &machine,
            ExecMode::MemoryMode,
            &mut FixedTier::new(TierId::PMEM),
            &ProfilerConfig::default(),
        );
        let profile = analyze(&trace).unwrap();
        for gib in [4u64, 12] {
            let cfg = AdvisorConfig::loads_only(gib);
            let greedy = knapsack::assign(&profile, &cfg);
            let optimal = assign_optimal_first_tier(&profile, &cfg, 64 << 20, 128);
            let gv = first_tier_value(&profile, &cfg, &greedy);
            let ov = first_tier_value(&profile, &cfg, &optimal);
            let gap = if ov > 0.0 { 100.0 * (ov - gv) / ov } else { 0.0 };

            let speedup_of = |assignment: &advisor::Assignment| -> f64 {
                let mut report = PlacementReport::new(StackFormat::Bom, cfg.fallback);
                for s in &profile.sites {
                    report.push(ReportEntry {
                        stack: ReportStack::Bom(s.stack.clone()),
                        tier: assignment.tier_of(s.site),
                        max_size: s.max_size,
                    });
                }
                let mut fm = FlexMalloc::new(&report, &app.binmap, 202, app.ranks).unwrap();
                let placed = run(&app, &machine, ExecMode::AppDirect, &mut fm);
                let mm = baselines::run_memory_mode(&app, &machine);
                mm.total_time / placed.total_time
            };
            t.row(vec![
                name.into(),
                gib.to_string(),
                format!("{gap:.2}"),
                format!("{:.3}", speedup_of(&greedy)),
                format!("{:.3}", speedup_of(&optimal)),
            ]);
        }
    }
    println!("{}", t.render());
    println!(
        "\nvalue_gap: planned first-tier miss value the greedy relaxation \
         forfeits vs the exact DP (negative = the DP lost to byte-exact \
         greedy because it must quantize capacities to 64 MiB units). \
         Near-zero gaps justify the paper's greedy choice at object-site \
         counts."
    );
    runner.report();
}
