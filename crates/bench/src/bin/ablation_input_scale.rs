//! Extension experiment: input-size sensitivity (the paper's explicit
//! future work, §VIII). Profile once at the nominal size, then deploy the
//! *same report* at other problem sizes, comparing against re-profiling at
//! each size.
//!
//! Call stacks are size-invariant, so the report always matches; what
//! changes is whether the profiled ranking and the DRAM budget still suit
//! the scaled footprint.
//!
//! Usage: `ablation_input_scale [--jobs N]`.

use advisor::{Advisor, AdvisorConfig, Algorithm};
use bench::{Runner, Table};
use flexmalloc::FlexMalloc;
use memsim::{run, ExecMode, MachineConfig};
use memtrace::{PlacementReport, StackFormat, TierId};
use profiler::{analyze, profile_run_cached, ProfilerConfig};
use workloads::scale_model;

fn report_for(app: &memsim::AppModel, machine: &MachineConfig) -> PlacementReport {
    let (trace, _) = profile_run_cached(
        app,
        machine,
        ExecMode::MemoryMode,
        TierId::PMEM,
        &ProfilerConfig::default(),
    );
    let profile = analyze(&trace).unwrap();
    Advisor::new(AdvisorConfig::loads_only(12))
        .advise(&profile, Algorithm::Base, StackFormat::Bom)
        .unwrap()
}

fn speedup_with(report: &PlacementReport, app: &memsim::AppModel, machine: &MachineConfig) -> f64 {
    let mut fm = FlexMalloc::new(report, &app.binmap, 202, app.ranks).unwrap();
    let placed = run(app, machine, ExecMode::AppDirect, &mut fm);
    let mm = baselines::run_memory_mode(app, machine);
    mm.total_time / placed.total_time
}

fn main() {
    let runner = Runner::from_env("ablation_input_scale");
    let machine = MachineConfig::optane_pmem6();
    let mut grid: Vec<(&str, f64)> = Vec::new();
    for name in ["minife", "hpcg", "cloverleaf3d"] {
        for scale in [0.6f64, 0.8, 1.0, 1.2, 1.4] {
            grid.push((name, scale));
        }
    }
    // Each cell re-derives the nominal ("stale") report, but its profiling
    // run is served from the cache after the first cell of each app.
    let rows = runner.map(grid, |(name, scale)| {
        let nominal = workloads::model_by_name(name).unwrap();
        let stale = report_for(&nominal, &machine);
        let scaled = scale_model(&nominal, scale);
        let s_stale = speedup_with(&stale, &scaled, &machine);
        let fresh = report_for(&scaled, &machine);
        let s_fresh = speedup_with(&fresh, &scaled, &machine);
        vec![
            name.into(),
            format!("{scale:.1}"),
            format!("{s_stale:.3}"),
            format!("{s_fresh:.3}"),
            format!("{:+.1}", 100.0 * (s_fresh - s_stale) / s_fresh),
        ]
    });
    let mut t = Table::new(&["app", "deploy_scale", "stale_report", "fresh_report", "gap_%"]);
    for row in rows {
        t.row(row);
    }
    println!("{}", t.render());
    println!(
        "\nstale_report: profiled at scale 1.0, deployed at the listed scale;\n\
         fresh_report: profiled at the deployed scale (the paper's methodology).\n\
         Small gaps mean the placement transfers across problem sizes."
    );
    runner.report();
}
