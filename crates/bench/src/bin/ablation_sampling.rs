//! Ablation: sensitivity to the PEBS sampling rate. The paper uses 100 Hz
//! and leaves input/rate sensitivity to future work (§VIII); this sweep
//! shows how the placement quality degrades as the profile gets sparser —
//! and that LAMMPS's communication buffers are exactly the kind of site a
//! sparse profile misranks (§VIII-C).
//!
//! Usage: `ablation_sampling [--jobs N]`.

use bench::{Runner, Table};
use ecohmem_core::{run_pipeline, PipelineConfig};
use profiler::ProfilerConfig;

fn main() {
    let runner = Runner::from_env("ablation_sampling");
    let mut grid = Vec::new();
    for name in ["minife", "cloverleaf3d", "lammps"] {
        for hz in [1.0f64, 10.0, 100.0, 1000.0] {
            grid.push((name, hz));
        }
    }
    let rows = runner.map(grid, |(name, hz)| {
        let app = workloads::model_by_name(name).unwrap();
        let mut cfg = PipelineConfig::paper_default();
        cfg.profiler = ProfilerConfig { sampling_hz: hz, seed: 7 };
        let out = run_pipeline(&app, &cfg).unwrap();
        let sampled = out
            .profile
            .sites
            .iter()
            .filter(|s| s.load_misses_est > 0.0 || s.store_misses_est > 0.0)
            .count();
        vec![
            name.into(),
            format!("{hz:.0}"),
            format!("{:.0}", 100.0 * sampled as f64 / out.profile.sites.len() as f64),
            format!("{:.3}", out.speedup()),
        ]
    });
    let mut t = Table::new(&["app", "rate_hz", "sampled_sites_%", "speedup"]);
    for row in rows {
        t.row(row);
    }
    println!("{}", t.render());
    println!("\npaper rate: 100 Hz for both loads and stores");
    runner.report();
}
