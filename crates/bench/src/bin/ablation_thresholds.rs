//! Ablation: sensitivity of the bandwidth-aware algorithm to its three
//! thresholds (§VII-B1 sets T_ALLOC = 2, T_PMEMLOW = 20%, T_PMEMHIGH = 40%
//! "based on empirical observations" — this sweep shows how much that
//! choice matters on the two applications the algorithm rescues).
//!
//! Usage: `ablation_thresholds [--jobs N]`.

use advisor::{Algorithm, BwThresholds};
use bench::{Runner, Table};
use ecohmem_core::{run_pipeline, PipelineConfig};

fn speedup(app: &memsim::AppModel, gib: u64, thresholds: BwThresholds) -> f64 {
    let mut cfg = PipelineConfig::paper_default();
    cfg.advisor = advisor::AdvisorConfig::loads_only(gib);
    cfg.algorithm = Algorithm::BandwidthAware;
    cfg.thresholds = thresholds;
    run_pipeline(app, &cfg).unwrap().speedup()
}

fn main() {
    let runner = Runner::from_env("ablation_thresholds");
    for (name, gib) in [("lulesh", 12u64), ("openfoam", 11u64)] {
        let app = workloads::model_by_name(name).unwrap();
        println!("== {name} (bandwidth-aware speedup vs memory mode) ==");

        // One work item per threshold variant; all three sub-tables run in
        // a single parallel batch (the profiling and Memory-Mode runs they
        // share are simulated once via the global cache).
        const T_ALLOC: [u64; 5] = [1, 2, 4, 8, 32];
        const HIGH: [f64; 5] = [0.2, 0.3, 0.4, 0.6, 0.8];
        const LOW: [f64; 4] = [0.05, 0.1, 0.2, 0.35];
        let mut variants: Vec<BwThresholds> = Vec::new();
        variants
            .extend(T_ALLOC.iter().map(|&t_alloc| BwThresholds { t_alloc, ..Default::default() }));
        variants.extend(
            HIGH.iter().map(|&high| BwThresholds { high_frac: high, ..Default::default() }),
        );
        variants
            .extend(LOW.iter().map(|&low| BwThresholds { low_frac: low, ..Default::default() }));
        let speedups = runner.map(variants, |thresholds| speedup(&app, gib, thresholds));

        let mut t = Table::new(&["t_alloc", "speedup"]);
        for (t_alloc, s) in T_ALLOC.iter().zip(&speedups) {
            t.row(vec![t_alloc.to_string(), format!("{s:.3}")]);
        }
        println!("{}", t.render());

        let mut t = Table::new(&["t_pmemhigh_frac", "speedup"]);
        for (high, s) in HIGH.iter().zip(&speedups[T_ALLOC.len()..]) {
            t.row(vec![format!("{high:.1}"), format!("{s:.3}")]);
        }
        println!("{}", t.render());

        let mut t = Table::new(&["t_pmemlow_frac", "speedup"]);
        for (low, s) in LOW.iter().zip(&speedups[T_ALLOC.len() + HIGH.len()..]) {
            t.row(vec![format!("{low:.2}"), format!("{s:.3}")]);
        }
        println!("{}\n", t.render());
    }
    let p = BwThresholds::PAPER;
    println!(
        "paper defaults: T_ALLOC={}, T_PMEMLOW={}, T_PMEMHIGH={}",
        p.t_alloc, p.low_frac, p.high_frac
    );
    runner.report();
}
