//! Ablation: sensitivity of the bandwidth-aware algorithm to its three
//! thresholds (§VII-B1 sets T_ALLOC = 2, T_PMEMLOW = 20%, T_PMEMHIGH = 40%
//! "based on empirical observations" — this sweep shows how much that
//! choice matters on the two applications the algorithm rescues).

use advisor::{Algorithm, BwThresholds};
use bench::Table;
use ecohmem_core::{run_pipeline, PipelineConfig};

fn speedup(app: &memsim::AppModel, gib: u64, thresholds: BwThresholds) -> f64 {
    let mut cfg = PipelineConfig::paper_default();
    cfg.advisor = advisor::AdvisorConfig::loads_only(gib);
    cfg.algorithm = Algorithm::BandwidthAware;
    cfg.thresholds = thresholds;
    run_pipeline(app, &cfg).unwrap().speedup()
}

fn main() {
    for (name, gib) in [("lulesh", 12u64), ("openfoam", 11u64)] {
        let app = workloads::model_by_name(name).unwrap();
        println!("== {name} (bandwidth-aware speedup vs memory mode) ==");

        let mut t = Table::new(&["t_alloc", "speedup"]);
        for t_alloc in [1u64, 2, 4, 8, 32] {
            let s = speedup(&app, gib, BwThresholds { t_alloc, ..Default::default() });
            t.row(vec![t_alloc.to_string(), format!("{s:.3}")]);
        }
        println!("{}", t.render());

        let mut t = Table::new(&["t_pmemhigh_frac", "speedup"]);
        for high in [0.2f64, 0.3, 0.4, 0.6, 0.8] {
            let s = speedup(&app, gib, BwThresholds { high_frac: high, ..Default::default() });
            t.row(vec![format!("{high:.1}"), format!("{s:.3}")]);
        }
        println!("{}", t.render());

        let mut t = Table::new(&["t_pmemlow_frac", "speedup"]);
        for low in [0.05f64, 0.1, 0.2, 0.35] {
            let s = speedup(&app, gib, BwThresholds { low_frac: low, ..Default::default() });
            t.row(vec![format!("{low:.2}"), format!("{s:.3}")]);
        }
        println!("{}\n", t.render());
    }
    println!("paper defaults: T_ALLOC=2, T_PMEMLOW=0.2, T_PMEMHIGH=0.4");
}
