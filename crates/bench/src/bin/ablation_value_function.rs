//! Extension experiment: knapsack value-function ablation (§IV-B design
//! choice). Compares the paper's miss *density* against raw misses and a
//! temporal (byte-second) density, across the applications.
//!
//! The temporal variant is interesting: it prices short-lived scratch by
//! its true occupancy, recovering part of the bandwidth-aware algorithm's
//! win *within* the base knapsack — but only the part that comes from
//! capacity packing, not the bandwidth-burst awareness.

use advisor::{knapsack, Advisor, AdvisorConfig, ValueFunction};
use bench::Table;
use flexmalloc::FlexMalloc;
use memsim::{run, ExecMode, FixedTier, MachineConfig};
use memtrace::{PlacementReport, ReportEntry, ReportStack, StackFormat, TierId};
use profiler::{analyze, profile_run, ProfilerConfig};

fn main() {
    let runner = bench::Runner::from_env("ablation_value_function");
    let machine = MachineConfig::optane_pmem6();
    let mut t = Table::new(&["app", "miss_density(paper)", "raw_misses", "temporal_density"]);
    for name in ["minife", "hpcg", "cloverleaf3d", "lulesh", "openfoam"] {
        let app = workloads::model_by_name(name).unwrap();
        let gib = if name == "openfoam" { 11 } else { 12 };
        let (trace, _) = profile_run(
            &app,
            &machine,
            ExecMode::MemoryMode,
            &mut FixedTier::new(TierId::PMEM),
            &ProfilerConfig::default(),
        );
        let profile = analyze(&trace).unwrap();
        let cfg = AdvisorConfig::loads_only(gib);
        let _ = Advisor::new(cfg.clone()); // validates

        let mut row = vec![name.to_string()];
        for vf in [
            ValueFunction::MissDensity,
            ValueFunction::RawMisses,
            ValueFunction::MissesPerByteSecond,
        ] {
            let assignment = knapsack::assign_with(&profile, &cfg, vf);
            let mut report = PlacementReport::new(StackFormat::Bom, cfg.fallback);
            for s in &profile.sites {
                report.push(ReportEntry {
                    stack: ReportStack::Bom(s.stack.clone()),
                    tier: assignment.tier_of(s.site),
                    max_size: s.max_size,
                });
            }
            let mut fm = FlexMalloc::new(&report, &app.binmap, 202, app.ranks).unwrap();
            let placed = run(&app, &machine, ExecMode::AppDirect, &mut fm);
            let mm = baselines::run_memory_mode(&app, &machine);
            row.push(format!("{:.3}", mm.total_time / placed.total_time));
        }
        t.row(row);
    }
    println!("speedups vs memory mode (base knapsack, varying value function):\n");
    println!("{}", t.render());
    runner.report();
}
