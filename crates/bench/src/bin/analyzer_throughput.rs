//! Columnar hot-path throughput: trace synthesis + analysis at 10× the
//! reference workload scale, measured against the frozen pre-columnar
//! implementations (`profiler::baseline`).
//!
//! The issue's acceptance bar is a ≥3× combined speedup on
//! synthesize+analyze at this scale with `--jobs 4`. The analysis
//! comparison runs both analyzers over the *same* trace, so the measured
//! ratio is pure algorithm, not trace-content noise.
//!
//! ```text
//! cargo run --release -p bench --bin analyzer_throughput -- --jobs 4 \
//!     --metrics-out BENCH_analyzer_throughput.json
//! ```

use bench::{Runner, Table};
use memsim::{ExecMode, FixedTier, MachineConfig};
use memtrace::TierId;
use profiler::baseline::{analyze_baseline, synthesize_baseline};
use profiler::{analyze_with_jobs, synthesize_trace_with_jobs, ProfilerConfig};
use std::time::Instant;

const SCALE: f64 = 10.0;
const ITERS: usize = 3;

/// Best-of-N wall time plus the last result (best-of suppresses scheduler
/// noise without needing a long run).
fn time<R>(mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..ITERS {
        let t0 = Instant::now();
        let r = f();
        best = best.min(t0.elapsed().as_secs_f64());
        out = Some(r);
    }
    (best, out.expect("ITERS >= 1"))
}

fn main() {
    let runner = Runner::from_env("analyzer_throughput");
    // The point of this bin is the measurement; collect metrics even when
    // --metrics-out was not given.
    ecohmem_obs::set_enabled(true);
    let jobs = runner.jobs();

    let machine = MachineConfig::optane_pmem6();
    let app = workloads::scale_model(&workloads::lulesh::model(), SCALE);
    let result =
        memsim::run(&app, &machine, ExecMode::MemoryMode, &mut FixedTier::new(TierId::PMEM));
    let cfg = ProfilerConfig::default();

    let (synth_base_s, _baseline_trace) = time(|| synthesize_baseline(&app, &result, &cfg));
    let (synth_new_s, trace) = time(|| synthesize_trace_with_jobs(&app, &result, &cfg, jobs));
    eprintln!("trace: {} events at {SCALE}x scale, jobs={jobs}", trace.events.len());

    let (analyze_base_s, _) = time(|| analyze_baseline(&trace).expect("valid trace"));
    let (analyze_new_s, profile) = time(|| analyze_with_jobs(&trace, jobs).expect("valid trace"));
    assert!(!profile.sites.is_empty(), "analysis produced no sites");

    let mut t = Table::new(&["stage", "baseline_ms", "columnar_ms", "speedup"]);
    let mut row = |stage: &str, base: f64, new: f64| {
        t.row(vec![
            stage.into(),
            format!("{:.2}", base * 1e3),
            format!("{:.2}", new * 1e3),
            format!("{:.2}x", base / new),
        ]);
    };
    row("synthesize", synth_base_s, synth_new_s);
    row("analyze", analyze_base_s, analyze_new_s);
    let combined_base = synth_base_s + analyze_base_s;
    let combined_new = synth_new_s + analyze_new_s;
    row("combined", combined_base, combined_new);
    println!("{}", t.render());
    println!("combined speedup: {:.2}x (target >= 3x)", combined_base / combined_new);
    println!(
        "synthesize throughput: {:.1}M events/s columnar vs {:.1}M events/s baseline",
        trace.events.len() as f64 / synth_new_s / 1e6,
        trace.events.len() as f64 / synth_base_s / 1e6,
    );

    runner.report();
}
