//! Calibration diagnostic: per-application engine statistics under the
//! trivial placements, used while tuning the workload models. Not a paper
//! experiment, but kept as a debugging aid.

use bench::{Runner, Table};
use memsim::policy::SiteMapPolicy;
use memsim::{run, ExecMode, MachineConfig};
use memtrace::TierId;

fn main() {
    let runner = Runner::from_env("calib");
    let mach = MachineConfig::optane_pmem6();
    // The trivial fixed-tier placements are exactly the runs the rest of
    // the harness shares, so fetch them through the global cache.
    let rows = runner.map(workloads::all_models(), |app| {
        let cache = memsim::global_cache();
        let mm = cache.run_fixed(&app, &mach, ExecMode::MemoryMode, TierId::PMEM, None);
        let pmem = cache.run_fixed(&app, &mach, ExecMode::AppDirect, TierId::PMEM, None);
        let dram =
            cache.run_fixed(&app, &mach, ExecMode::AppDirect, TierId::DRAM, Some(TierId::PMEM));
        vec![
            app.name.clone(),
            format!("{:.1}", mm.total_time),
            format!("{:.3}", mm.memory_bound_fraction()),
            format!("{:.3}", mm.dram_cache_hit_ratio()),
            format!("{:.1}", pmem.total_time),
            format!("{:.1}", dram.total_time),
            format!("{:.2}", mm.total_time / pmem.total_time),
        ]
    });
    let mut t = Table::new(&[
        "app",
        "mm_time",
        "mm_membound",
        "mm_hit",
        "pmem_time",
        "dramfirst_time",
        "mm/pmem",
    ]);
    for row in rows {
        t.row(row);
    }
    println!("{}", t.render());

    // Oracle checks used by the workload docs.
    let app = workloads::openfoam::model();
    let bad = run(
        &app,
        &mach,
        ExecMode::AppDirect,
        &mut SiteMapPolicy::new(
            workloads::openfoam::ledger_sites().into_iter().map(|s| (s, TierId::DRAM)),
            TierId::PMEM,
        ),
    );
    let good = run(
        &app,
        &mach,
        ExecMode::AppDirect,
        &mut SiteMapPolicy::new(
            workloads::openfoam::work_sites().into_iter().map(|s| (s, TierId::DRAM)),
            TierId::PMEM,
        ),
    );
    let mm =
        memsim::global_cache().run_fixed(&app, &mach, ExecMode::MemoryMode, TierId::PMEM, None);
    println!(
        "\nopenfoam: density-like {:.1}s  bw-like {:.1}s  memory-mode {:.1}s",
        bad.total_time, good.total_time, mm.total_time
    );

    let app = workloads::lulesh::model();
    let cache = memsim::global_cache();
    let mm = cache.run_fixed(&app, &mach, ExecMode::MemoryMode, TierId::PMEM, None);
    let pm = cache.run_fixed(&app, &mach, ExecMode::AppDirect, TierId::PMEM, None);
    println!("lulesh: memory-mode {:.1}s  all-pmem {:.1}s", mm.total_time, pm.total_time);
    for label in ["lagrange_nodal", "lagrange_elems", "calc_constraints"] {
        let (bw, n) = pm
            .phases
            .iter()
            .filter(|p| p.label.as_deref() == Some(label))
            .map(|p| p.tier_read_bw[1] + p.tier_write_bw[1])
            .fold((0.0, 0), |(s, n), b| (s + b, n + 1));
        let (dur, _) = pm
            .phases
            .iter()
            .filter(|p| p.label.as_deref() == Some(label))
            .map(|p| p.duration)
            .fold((0.0, 0), |(s, n), d| (s + d, n + 1));
        println!(
            "  {label}: avg pmem bw {:.2} GB/s, avg dur {:.2}s",
            bw / n as f64 / 1e9,
            dur / n as f64
        );
    }
    runner.report();
}
