//! Chaos/soak harness for the crash-safe online placement engine.
//!
//! Runs a seeded matrix of failure scenarios against the durability
//! layer — torn journal tails, corrupt checkpoints, interrupted
//! checkpoint writes, kills at random offsets, stalled consumers, clock
//! skew, panic storms, simulator kill points, and a crash-every-cycle
//! soak — and exits nonzero if *any* scenario fails to recover to the
//! exact state an uninterrupted run reaches. This is the CI `chaos` job's
//! entry point.
//!
//! ```text
//! cargo run --release -p bench --bin chaos_soak -- [--seed N] [--budget-secs N]
//! ```
//!
//! The seed drives every random choice (kill offsets, corruption bytes,
//! skew points), so a failing run reproduces with the same `--seed`. The
//! budget caps wall-clock: scenarios already started always finish, but
//! no new scenario launches past the budget (the run then reports the
//! skipped ones — skipping is visible, never silent).

use advisor::{AdvisorConfig, Algorithm};
use ecohmem_online::{
    Admission, DurabilityConfig, DurableEngine, OnlineConfig, PlacementRevision, StreamMeta,
    Supervisor, SupervisorConfig,
};
use memtrace::{
    BinaryMap, BinaryMapBuilder, CallStack, DegradationPolicy, Frame, FuncId, ModuleId, ObjectId,
    ProcessFaultKind, SiteId, TraceEvent, TraceFile,
};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("ecohmem-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn image() -> BinaryMap {
    let mut b = BinaryMapBuilder::new();
    b.add_module("a.out", 64 * 1024, 1 << 20, vec!["main.c".into()]);
    b.build()
}

/// Deterministic synthetic stream: four sites with distinct heat so the
/// advisor has real placement decisions to revise.
fn fixture_trace(seed: u64) -> TraceFile {
    let mut rng = seed;
    let mut events = Vec::new();
    let mut t = 0.0;
    for i in 0..400u64 {
        t += 0.01 + (splitmix(&mut rng) % 10) as f64 * 0.001;
        let site = (i % 4) as u32;
        events.push(TraceEvent::Alloc {
            time: t,
            object: ObjectId(i + 1),
            site: SiteId(site),
            size: 4096 << site,
            address: (1 << 44) + i * (1 << 24),
        });
        // Hotter sites draw more samples.
        for _ in 0..=site {
            t += 0.002;
            events.push(TraceEvent::LoadMissSample {
                time: t,
                address: (1 << 44) + i * (1 << 24) + (splitmix(&mut rng) % 4096),
                latency_cycles: 200.0 + (splitmix(&mut rng) % 300) as f64,
                function: FuncId((i % 8) as u16),
            });
        }
        if i % 5 == 4 {
            t += 0.002;
            events.push(TraceEvent::Free { time: t, object: ObjectId(i + 1) });
        }
    }
    TraceFile {
        app_name: "chaos".into(),
        seed,
        ranks: 1,
        sampling_hz: 100.0,
        load_sample_period: 10.0,
        store_sample_period: 10.0,
        duration: t + 1.0,
        stacks: (0..4)
            .map(|i| (SiteId(i), CallStack::new(vec![Frame::new(ModuleId(0), 64 * u64::from(i))])))
            .collect(),
        binmap: image(),
        events,
    }
}

fn open(
    dir: &Path,
    trace: &TraceFile,
    policy: DegradationPolicy,
) -> (DurableEngine, ecohmem_online::RecoveryReport) {
    let mut cfg = DurabilityConfig::new(dir);
    cfg.checkpoint_every = 16;
    cfg.segment_bytes = 16 * 1024; // small segments: rotation happens in-scenario
    DurableEngine::open(
        cfg,
        StreamMeta::of(trace),
        policy,
        OnlineConfig::default(),
        AdvisorConfig::loads_only(1),
        Algorithm::Base,
    )
    .expect("engine open")
}

/// Feeds ops `[from, to)` of the fixed plan: batches of 16 with a tick
/// every 4 batches. Returns the op count.
fn feed(engine: &mut DurableEngine, trace: &TraceFile, from: usize, to: usize) -> usize {
    let chunks: Vec<&[TraceEvent]> = trace.events.chunks(16).collect();
    let mut op = 0;
    for (i, chunk) in chunks.iter().enumerate() {
        if op >= to {
            break;
        }
        if op >= from {
            engine.ingest(chunk.to_vec()).expect("ingest");
        }
        op += 1;
        if (i + 1) % 4 == 0 {
            if op >= from && op < to {
                engine.tick(chunk.last().unwrap().time()).expect("tick");
            }
            op += 1;
        }
    }
    op
}

fn plan_len(trace: &TraceFile) -> usize {
    let chunks = trace.events.chunks(16).count();
    chunks + chunks / 4
}

/// The uninterrupted reference: full plan + final tick, closed cleanly.
fn reference(trace: &TraceFile, policy: DegradationPolicy) -> Vec<PlacementRevision> {
    let dir = tmpdir("reference");
    let (mut engine, _) = open(&dir, trace, policy);
    let n = plan_len(trace);
    feed(&mut engine, trace, 0, n);
    engine.tick(trace.duration).expect("final tick");
    let revs = engine.close().expect("close");
    let _ = std::fs::remove_dir_all(&dir);
    revs
}

/// Crash at `kill_at` ops (drop without close), recover, finish the plan.
fn crashed_run(
    trace: &TraceFile,
    policy: DegradationPolicy,
    kill_at: usize,
    mutate: impl FnOnce(&Path),
) -> (Vec<PlacementRevision>, ecohmem_online::RecoveryReport) {
    let dir = tmpdir("crashed");
    let (mut engine, _) = open(&dir, trace, policy);
    let n = plan_len(trace);
    feed(&mut engine, trace, 0, kill_at.min(n));
    drop(engine); // the kill
    mutate(&dir); // scenario-specific damage to the on-disk state
    let (mut engine, report) = open(&dir, trace, policy);
    feed(&mut engine, trace, kill_at.min(n), n);
    engine.tick(trace.duration).expect("final tick");
    let revs = engine.close().expect("close");
    let _ = std::fs::remove_dir_all(&dir);
    (revs, report)
}

fn newest_file(dir: &Path, ext: &str) -> Option<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .ok()?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some(ext))
        .collect();
    files.sort();
    files.pop()
}

struct Outcome {
    name: &'static str,
    ok: bool,
    detail: String,
}

fn check(name: &'static str, ok: bool, detail: String) -> Outcome {
    Outcome { name, ok, detail }
}

/// kill-at-offset: N seeded kills; recovery must be invisible in the log.
fn scenario_kill_at_offset(trace: &TraceFile, rng: &mut u64) -> Outcome {
    let reference = reference(trace, DegradationPolicy::Strict);
    let n = plan_len(trace);
    for _ in 0..3 {
        let kill_at = 1 + (splitmix(rng) as usize) % (n - 1);
        let (revs, report) = crashed_run(trace, DegradationPolicy::Strict, kill_at, |_| {});
        if !report.resumed {
            return check("kill-at-offset", false, format!("kill@{kill_at}: not resumed"));
        }
        if revs != reference {
            return check(
                "kill-at-offset",
                false,
                format!("kill@{kill_at}: revision log diverged"),
            );
        }
    }
    check("kill-at-offset", true, "3 seeded kills, identical revision logs".into())
}

/// wal-torn-tail: truncate the newest segment mid-record; recovery must
/// drop the torn suffix and the re-fed stream must still converge.
fn scenario_wal_torn_tail(trace: &TraceFile, rng: &mut u64) -> Outcome {
    let reference = reference(trace, DegradationPolicy::Strict);
    let n = plan_len(trace);
    let kill_at = n / 2;
    let chop = 1 + (splitmix(rng) as usize) % 64;
    let (revs, report) = crashed_run(trace, DegradationPolicy::Strict, kill_at, |dir| {
        let seg = newest_file(&dir.join("wal"), "seg").expect("a wal segment exists");
        let len = std::fs::metadata(&seg).unwrap().len();
        let f = std::fs::OpenOptions::new().write(true).open(&seg).unwrap();
        f.set_len(len.saturating_sub(chop as u64).max(20)).unwrap(); // keep the header
    });
    // The torn tail loses up to `chop` bytes of journaled-but-unapplied
    // suffix; the re-feed re-offers those same ops (they were never
    // acknowledged applied past the checkpoint), so the log still matches
    // unless truncation corrupted an *applied* record — which recovery
    // must detect as a shorter replay, not an error.
    if revs != reference {
        return check("wal-torn-tail", false, format!("chop {chop}B: revision log diverged"));
    }
    check(
        "wal-torn-tail",
        true,
        format!("chop {chop}B, {} torn bytes truncated, log identical", report.torn_bytes),
    )
}

/// ckpt-corrupt-crc: flip a payload byte in the newest checkpoint; load
/// must fall back to the previous one and replay further.
fn scenario_ckpt_corrupt(trace: &TraceFile, rng: &mut u64) -> Outcome {
    let reference = reference(trace, DegradationPolicy::Strict);
    let n = plan_len(trace);
    let kill_at = (2 * n) / 3;
    let flip = splitmix(rng);
    let (revs, report) = crashed_run(trace, DegradationPolicy::Strict, kill_at, |dir| {
        if let Some(ck) = newest_file(&dir.join("ckpt"), "ck") {
            let mut data = std::fs::read(&ck).unwrap();
            if data.len() > 16 {
                let i = 16 + (flip as usize) % (data.len() - 16);
                data[i] ^= 0xff;
                std::fs::write(&ck, &data).unwrap();
            }
        }
    });
    if report.corrupt_checkpoints == 0 {
        return check("ckpt-corrupt-crc", false, "corruption was not detected".into());
    }
    if revs != reference {
        return check("ckpt-corrupt-crc", false, "revision log diverged".into());
    }
    check(
        "ckpt-corrupt-crc",
        true,
        format!(
            "{} corrupt checkpoint(s) skipped, {} records replayed, log identical",
            report.corrupt_checkpoints, report.replayed_records
        ),
    )
}

/// mid-checkpoint-crash: a junk `.tmp` from an interrupted checkpoint
/// write must be swept, previous state intact.
fn scenario_mid_checkpoint(trace: &TraceFile, _rng: &mut u64) -> Outcome {
    let reference = reference(trace, DegradationPolicy::Strict);
    let n = plan_len(trace);
    let (revs, report) = crashed_run(trace, DegradationPolicy::Strict, n / 2, |dir| {
        std::fs::write(dir.join("ckpt").join("ckpt-ffffffffffffffff.ck.tmp"), b"ECOHCKP\0torn")
            .unwrap();
    });
    if !report.resumed || revs != reference {
        return check("mid-checkpoint-crash", false, "recovery diverged".into());
    }
    check("mid-checkpoint-crash", true, "junk .tmp swept, log identical".into())
}

/// stalled-consumer: the worker sleeps; deadline admission must shed
/// explicitly and account every dropped batch.
fn scenario_stalled_consumer(trace: &TraceFile, _rng: &mut u64) -> Outcome {
    let dir = tmpdir("stalled");
    let sup = SupervisorConfig {
        queue_capacity: 1,
        admit_deadline: Duration::from_millis(5),
        ..SupervisorConfig::default()
    };
    let s = Supervisor::spawn(
        DurabilityConfig::new(&dir),
        StreamMeta::of(trace),
        DegradationPolicy::BestEffort,
        OnlineConfig::default(),
        AdvisorConfig::loads_only(1),
        Algorithm::Base,
        sup,
        |_| {},
    );
    s.inject_stall(Duration::from_millis(200)).expect("stall injected");
    let mut shed = 0u64;
    for chunk in trace.events.chunks(16).take(16) {
        match s.offer(chunk.to_vec()) {
            Ok(Admission::Admitted) => {}
            Ok(Admission::Shed) => shed += 1,
            Err(e) => return check("stalled-consumer", false, format!("unexpected error: {e}")),
        }
    }
    let _ = s.tick(trace.duration);
    let out = match s.finish() {
        Ok(o) => o,
        Err(e) => return check("stalled-consumer", false, format!("finish failed: {e}")),
    };
    let _ = std::fs::remove_dir_all(&dir);
    if shed == 0 {
        return check("stalled-consumer", false, "nothing shed under a stalled consumer".into());
    }
    if out.shed_window.first_time.is_none() {
        return check("stalled-consumer", false, "shed window not recorded".into());
    }
    check(
        "stalled-consumer",
        true,
        format!(
            "{} batches shed, {} events accounted{}",
            shed,
            out.shed_events,
            out.shed_window.describe()
        ),
    )
}

/// clock-skew: timestamps jump backwards mid-stream; BestEffort salvage
/// plus crash recovery must replay to the identical salvaged state.
fn scenario_clock_skew(trace: &TraceFile, rng: &mut u64) -> Outcome {
    let mut skewed = trace.clone();
    let n_ev = skewed.events.len();
    for _ in 0..5 {
        let i = 1 + (splitmix(rng) as usize) % (n_ev - 1);
        let earlier = skewed.events[i - 1].time() - 2.0;
        skewed.events[i].set_time(earlier);
    }
    let reference = reference(&skewed, DegradationPolicy::BestEffort);
    let n = plan_len(&skewed);
    let kill_at = 1 + (splitmix(rng) as usize) % (n - 1);
    let (revs, _) = crashed_run(&skewed, DegradationPolicy::BestEffort, kill_at, |_| {});
    if revs != reference {
        return check("clock-skew", false, format!("kill@{kill_at}: salvage diverged"));
    }
    check("clock-skew", true, format!("5 skew points, kill@{kill_at}, salvage identical"))
}

/// panic-storm: repeated injected panics within the restart budget; every
/// recovery must land on the uninterrupted log.
fn scenario_panic_storm(trace: &TraceFile, _rng: &mut u64) -> Outcome {
    let reference = reference(trace, DegradationPolicy::Strict);
    let dir = tmpdir("storm");
    let sup = SupervisorConfig {
        restart_budget: 8,
        backoff_base_ms: 1,
        backoff_max_ms: 5,
        admit_deadline: Duration::from_secs(30),
        ..SupervisorConfig::default()
    };
    let s = Supervisor::spawn(
        DurabilityConfig::new(&dir),
        StreamMeta::of(trace),
        DegradationPolicy::Strict,
        OnlineConfig::default(),
        AdvisorConfig::loads_only(1),
        Algorithm::Base,
        sup,
        |_| {},
    );
    let chunks: Vec<&[TraceEvent]> = trace.events.chunks(16).collect();
    let storm_every = (chunks.len() / 4).max(1);
    let mut op = 0;
    for (i, chunk) in chunks.iter().enumerate() {
        if i > 0 && i % storm_every == 0 {
            s.inject_panic("storm").expect("panic injected");
        }
        // A Strict storm must not shed: a dropped alloc batch would break
        // the stream (and the identical-log check) after recovery. The 30s
        // deadline rides out every restart backoff.
        match s.offer(chunk.to_vec()).expect("offer") {
            Admission::Admitted => {}
            Admission::Shed => {
                return check("panic-storm", false, format!("batch {i} shed during a restart"));
            }
        }
        op += 1;
        if (i + 1) % 4 == 0 {
            s.tick(chunk.last().unwrap().time()).expect("tick");
            op += 1;
        }
    }
    let _ = op;
    s.tick(trace.duration).expect("final tick");
    let out = match s.finish() {
        Ok(o) => o,
        Err(e) => return check("panic-storm", false, format!("did not survive the storm: {e}")),
    };
    let _ = std::fs::remove_dir_all(&dir);
    if out.recoveries < 3 {
        return check("panic-storm", false, format!("only {} recoveries", out.recoveries));
    }
    if out.revisions != reference {
        return check("panic-storm", false, "revision log diverged across restarts".into());
    }
    check("panic-storm", true, format!("{} recoveries, log identical", out.recoveries))
}

/// restart-budget: one panic past the budget; Strict must fail fast (an
/// *unrecoverable* fault must be loud, not absorbed).
fn scenario_restart_budget(trace: &TraceFile, _rng: &mut u64) -> Outcome {
    let dir = tmpdir("budget");
    let sup = SupervisorConfig {
        restart_budget: 1,
        backoff_base_ms: 1,
        admit_deadline: Duration::from_secs(30),
        ..SupervisorConfig::default()
    };
    let s = Supervisor::spawn(
        DurabilityConfig::new(&dir),
        StreamMeta::of(trace),
        DegradationPolicy::Strict,
        OnlineConfig::default(),
        AdvisorConfig::loads_only(1),
        Algorithm::Base,
        sup,
        |_| {},
    );
    s.offer(trace.events[..16.min(trace.events.len())].to_vec()).expect("offer");
    s.inject_panic("one").expect("inject");
    s.inject_panic("two").expect("inject");
    let failed = s.finish().is_err();
    let _ = std::fs::remove_dir_all(&dir);
    if !failed {
        return check("restart-budget", false, "Strict absorbed a budget-exhausting storm".into());
    }
    check("restart-budget", true, "budget exhausted → Strict failed fast".into())
}

/// sim-kill-point: an armed simulator kill point crashes the run at a
/// deterministic phase; after disarm, the rerun is bit-identical to a
/// never-crashed run (the injection leaves no residue).
fn scenario_sim_kill_point(_trace: &TraceFile, rng: &mut u64) -> Outcome {
    use memsim::{ExecMode, FixedTier, MachineConfig};
    let app = workloads::minife::model();
    let machine = MachineConfig::optane_pmem6();
    let clean = memsim::run(
        &app,
        &machine,
        ExecMode::MemoryMode,
        &mut FixedTier::new(memtrace::TierId::PMEM),
    );
    let phase = (splitmix(rng) as usize) % app.phases.len().max(1);
    memsim::arm_kill_point(phase as u64);
    let crash = std::panic::catch_unwind(|| {
        let mut p = FixedTier::new(memtrace::TierId::PMEM);
        memsim::run(&app, &machine, ExecMode::MemoryMode, &mut p)
    });
    memsim::disarm_kill_point();
    let Err(payload) = crash else {
        return check("sim-kill-point", false, format!("armed kill at phase {phase} did not fire"));
    };
    if payload.downcast_ref::<&str>() != Some(&memsim::KILL_POINT_PAYLOAD) {
        return check("sim-kill-point", false, "crash payload was not the kill point's".into());
    }
    let rerun = memsim::run(
        &app,
        &machine,
        ExecMode::MemoryMode,
        &mut FixedTier::new(memtrace::TierId::PMEM),
    );
    if rerun != clean {
        return check("sim-kill-point", false, "rerun after injected crash diverged".into());
    }
    check("sim-kill-point", true, format!("killed at phase {phase}, rerun bit-identical"))
}

/// soak: crash on *every* cycle of a long feed; the final state must
/// still equal the uninterrupted run's.
fn scenario_soak(trace: &TraceFile, rng: &mut u64) -> Outcome {
    let reference = reference(trace, DegradationPolicy::Strict);
    let dir = tmpdir("soak");
    let n = plan_len(trace);
    let cycles = 6;
    let mut at = 0usize;
    let mut kills = 0;
    for c in 0..cycles {
        let (mut engine, _) = open(&dir, trace, DegradationPolicy::Strict);
        let stop = if c == cycles - 1 {
            n
        } else {
            (at + 1 + (splitmix(rng) as usize) % ((n - at).max(2) / 2).max(1)).min(n)
        };
        feed(&mut engine, trace, at, stop);
        at = stop;
        if c == cycles - 1 {
            engine.tick(trace.duration).expect("final tick");
            let revs = engine.close().expect("close");
            let _ = std::fs::remove_dir_all(&dir);
            if revs != reference {
                return check("soak", false, format!("diverged after {kills} kills"));
            }
        } else {
            drop(engine); // kill, every cycle
            kills += 1;
        }
    }
    check("soak", true, format!("{kills} kill/recover cycles, log identical"))
}

fn main() {
    let mut seed = 0xec0_c4a05u64;
    let mut budget = Duration::from_secs(60);
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seed" => seed = args.next().and_then(|v| v.parse().ok()).unwrap_or(seed),
            "--budget-secs" => {
                budget = Duration::from_secs(args.next().and_then(|v| v.parse().ok()).unwrap_or(60))
            }
            other => {
                eprintln!("chaos_soak: unknown argument `{other}`");
                std::process::exit(2);
            }
        }
    }

    // Injected panics are the *point* of this harness; keep their default
    // backtraces out of the report so real failures stand out.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|s| s.starts_with("injected fault:"))
            || info.payload().downcast_ref::<&str>() == Some(&memsim::KILL_POINT_PAYLOAD);
        if !injected {
            default_hook(info);
        }
    }));

    // The scenario matrix covers every process-fault kind the injection
    // vocabulary names, plus the supervisor- and simulator-level faults.
    let covered: Vec<&str> = ProcessFaultKind::ALL.iter().map(|k| k.name()).collect();
    println!(
        "chaos_soak: seed={seed:#x} budget={}s faults=[{}]",
        budget.as_secs(),
        covered.join(", ")
    );

    type Scenario = (&'static str, fn(&TraceFile, &mut u64) -> Outcome);
    let scenarios: [Scenario; 9] = [
        ("kill-at-offset", scenario_kill_at_offset),
        ("wal-torn-tail", scenario_wal_torn_tail),
        ("ckpt-corrupt-crc", scenario_ckpt_corrupt),
        ("mid-checkpoint-crash", scenario_mid_checkpoint),
        ("stalled-consumer", scenario_stalled_consumer),
        ("clock-skew", scenario_clock_skew),
        ("panic-storm", scenario_panic_storm),
        ("restart-budget", scenario_restart_budget),
        ("sim-kill-point", scenario_sim_kill_point),
    ];

    let trace = fixture_trace(seed);
    let mut rng = seed;
    let start = Instant::now();
    let mut failures = 0;
    let mut skipped = 0;
    let mut ran = 0;
    for (name, run) in scenarios {
        if start.elapsed() > budget {
            println!("SKIP {name} (budget exhausted)");
            skipped += 1;
            continue;
        }
        let o = run(&trace, &mut rng);
        ran += 1;
        if o.ok {
            println!("PASS {:<22} {}", o.name, o.detail);
        } else {
            failures += 1;
            println!("FAIL {:<22} {}", o.name, o.detail);
        }
    }
    // The soak always runs last and always runs: it is the gate's core.
    if start.elapsed() <= budget * 2 {
        let o = scenario_soak(&trace, &mut rng);
        ran += 1;
        if o.ok {
            println!("PASS {:<22} {}", o.name, o.detail);
        } else {
            failures += 1;
            println!("FAIL {:<22} {}", o.name, o.detail);
        }
    } else {
        println!("SKIP soak (budget exhausted twice over)");
        skipped += 1;
    }

    println!(
        "chaos_soak: {ran} scenarios, {failures} failures, {skipped} skipped, {:.1}s",
        start.elapsed().as_secs_f64()
    );
    if failures > 0 {
        std::process::exit(1);
    }
}
