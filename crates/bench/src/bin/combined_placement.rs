//! Future-work experiment (§III): combine ecoHMEM's proactive initial
//! placement with reactive kernel page migration, and compare against each
//! mechanism alone.

use advisor::{Advisor, AdvisorConfig, Algorithm};
use baselines::{run_memory_mode, KernelTiering, ProactiveReactive};
use bench::Table;
use flexmalloc::FlexMalloc;
use memsim::{run, ExecMode, FixedTier, MachineConfig};
use memtrace::{StackFormat, TierId};
use profiler::{analyze, profile_run, ProfilerConfig};

fn main() {
    let machine = MachineConfig::optane_pmem6();
    let mut t = Table::new(&["app", "ecohmem", "tiering", "combined"]);
    for name in ["minife", "hpcg", "lulesh", "cloverleaf3d"] {
        let app = workloads::model_by_name(name).unwrap();
        let mm = run_memory_mode(&app, &machine);

        // Profile once, advise once.
        let (trace, _) = profile_run(
            &app,
            &machine,
            ExecMode::MemoryMode,
            &mut FixedTier::new(TierId::PMEM),
            &ProfilerConfig::default(),
        );
        let profile = analyze(&trace).unwrap();
        let report = Advisor::new(AdvisorConfig::loads_only(12))
            .advise(&profile, Algorithm::Base, StackFormat::Bom)
            .unwrap();

        let mut eco = FlexMalloc::new(&report, &app.binmap, 202, app.ranks).unwrap();
        let eco_run = run(&app, &machine, ExecMode::AppDirect, &mut eco);

        let mut tiering = KernelTiering::new(&machine);
        let tiering_run = run(&app, &machine, ExecMode::AppDirect, &mut tiering);

        let mut combined =
            ProactiveReactive::new(&report, &app.binmap, &machine, 202, app.ranks).unwrap();
        let combined_run = run(&app, &machine, ExecMode::AppDirect, &mut combined);

        t.row(vec![
            name.into(),
            format!("{:.3}", mm.total_time / eco_run.total_time),
            format!("{:.3}", mm.total_time / tiering_run.total_time),
            format!("{:.3}", mm.total_time / combined_run.total_time),
        ]);
    }
    println!("speedups vs memory mode:\n{}", t.render());
    println!(
        "\nthe combination keeps the proactive placement and may refine it \
         reactively, at the cost of the kernel's page-metadata DRAM reservation \
         (the paper's §III future-work direction)."
    );
}
