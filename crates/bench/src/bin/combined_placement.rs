//! Future-work experiment (§III): combine ecoHMEM's proactive initial
//! placement with reactive kernel page migration, and compare against each
//! mechanism alone.
//!
//! Usage: `combined_placement [--jobs N]`.

use advisor::{Advisor, AdvisorConfig, Algorithm};
use baselines::{run_memory_mode, KernelTiering, ProactiveReactive};
use bench::{Runner, Table};
use flexmalloc::FlexMalloc;
use memsim::{run, ExecMode, MachineConfig};
use memtrace::{StackFormat, TierId};
use profiler::{analyze, profile_run_cached, ProfilerConfig};

fn main() {
    let runner = Runner::from_env("combined_placement");
    let machine = MachineConfig::optane_pmem6();
    let rows = runner.map(vec!["minife", "hpcg", "lulesh", "cloverleaf3d"], |name| {
        let app = workloads::model_by_name(name).unwrap();
        let mm = run_memory_mode(&app, &machine);

        // Profile once, advise once. The memoized profiling run shares its
        // engine execution with the `run_memory_mode` baseline above.
        let (trace, _) = profile_run_cached(
            &app,
            &machine,
            ExecMode::MemoryMode,
            TierId::PMEM,
            &ProfilerConfig::default(),
        );
        let profile = analyze(&trace).unwrap();
        let report = Advisor::new(AdvisorConfig::loads_only(12))
            .advise(&profile, Algorithm::Base, StackFormat::Bom)
            .unwrap();

        let mut eco = FlexMalloc::new(&report, &app.binmap, 202, app.ranks).unwrap();
        let eco_run = run(&app, &machine, ExecMode::AppDirect, &mut eco);

        let mut tiering = KernelTiering::new(&machine);
        let tiering_run = run(&app, &machine, ExecMode::AppDirect, &mut tiering);

        let mut combined =
            ProactiveReactive::new(&report, &app.binmap, &machine, 202, app.ranks).unwrap();
        let combined_run = run(&app, &machine, ExecMode::AppDirect, &mut combined);

        vec![
            name.into(),
            format!("{:.3}", mm.total_time / eco_run.total_time),
            format!("{:.3}", mm.total_time / tiering_run.total_time),
            format!("{:.3}", mm.total_time / combined_run.total_time),
        ]
    });
    let mut t = Table::new(&["app", "ecohmem", "tiering", "combined"]);
    for row in rows {
        t.row(row);
    }
    println!("speedups vs memory mode:\n{}", t.render());
    println!(
        "\nthe combination keeps the proactive placement and may refine it \
         reactively, at the cost of the kernel's page-metadata DRAM reservation \
         (the paper's §III future-work direction)."
    );
    runner.report();
}
