//! Diagnostic: dump the bandwidth-aware classification for an app.

use advisor::{Advisor, AdvisorConfig, Algorithm, BwThresholds};
use memsim::{ExecMode, FixedTier, MachineConfig};
use memtrace::TierId;
use profiler::{analyze, profile_run, ProfilerConfig};

fn main() {
    let runner = bench::Runner::from_env("debug_classify");
    let name = std::env::args().nth(1).unwrap_or_else(|| "openfoam".into());
    let gib: u64 = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(11);
    let app = workloads::model_by_name(&name).expect("known app");
    let mach = MachineConfig::optane_pmem6();
    let (trace, _) = profile_run(
        &app,
        &mach,
        ExecMode::MemoryMode,
        &mut FixedTier::new(TierId::PMEM),
        &ProfilerConfig::default(),
    );
    let profile = analyze(&trace).unwrap();
    println!(
        "peak_bw = {:.2e} B/s; thresholds low={:.2e} high={:.2e}",
        profile.peak_bw,
        0.2 * profile.peak_bw,
        0.4 * profile.peak_bw
    );

    let advisor = Advisor::new(AdvisorConfig::loads_only(gib));
    let (base, _) = advisor.assign(&profile, Algorithm::Base);
    let (bw, class) = advisor.assign(&profile, Algorithm::BandwidthAware);
    let class = class.unwrap();
    println!(
        "{:>6} {:>6} {:>6} {:>7} {:>10} {:>10} {:>10} {:>12} {:>12}",
        "site", "base", "bwa", "allocs", "totGB", "liveGB", "density", "bw@alloc", "category"
    );
    for s in &profile.sites {
        println!(
            "{:>6} {:>6} {:>6} {:>7} {:>10.2} {:>10.2} {:>10.4} {:>12.3e} {:>12?}",
            s.site.0,
            base.tier_of(s.site).0,
            bw.tier_of(s.site).0,
            s.alloc_count,
            s.total_bytes as f64 / 1e9,
            s.peak_live_bytes as f64 / 1e9,
            s.density(1.0, 0.0),
            s.bw_at_alloc,
            class.category(s.site),
        );
    }
    let t = BwThresholds::default();
    let _ = t;
    runner.report();
}
