//! Figure 2: loaded latency vs bandwidth for DDR4 DRAM and Intel PMem,
//! read-only (R) and 1-read-1-write (1R1W) traffic, 8–22 GB/s.
//!
//! Paper reference points: DRAM 90 → 117 ns, PMem 185 → 239 ns (read-only);
//! at 22 GB/s PMem costs ≈ 2.3× DRAM.

use bench::Table;
use memsim::{mlc_sweep, MachineConfig, TrafficMix};
use memtrace::TierId;

fn main() {
    let runner = bench::Runner::from_env("fig2_mlc");
    let machine = MachineConfig::optane_pmem6();
    let steps = 15;
    let (lo, hi) = (8e9, 22e9);

    let mut t = Table::new(&["bw_gb_s", "dram_R_ns", "dram_1R1W_ns", "pmem_R_ns", "pmem_1R1W_ns"]);
    let dram_r = mlc_sweep(&machine, TierId::DRAM, TrafficMix::ReadOnly, lo, hi, steps);
    let dram_rw = mlc_sweep(&machine, TierId::DRAM, TrafficMix::OneReadOneWrite, lo, hi, steps);
    let pmem_r = mlc_sweep(&machine, TierId::PMEM, TrafficMix::ReadOnly, lo, hi, steps);
    let pmem_rw = mlc_sweep(&machine, TierId::PMEM, TrafficMix::OneReadOneWrite, lo, hi, steps);
    for i in 0..steps {
        t.row(vec![
            format!("{:.1}", dram_r[i].bandwidth / 1e9),
            format!("{:.1}", dram_r[i].latency_ns),
            format!("{:.1}", dram_rw[i].latency_ns),
            format!("{:.1}", pmem_r[i].latency_ns),
            format!("{:.1}", pmem_rw[i].latency_ns),
        ]);
    }
    println!("{}", t.render());
    let last = steps - 1;
    println!(
        "\npmem/dram read-latency ratio at 22 GB/s: {:.2} (paper: 2.3x)",
        pmem_r[last].latency_ns / dram_r[last].latency_ns
    );
    runner.report();
}
