//! Figure 3: PMem bandwidth consumption across LULESH's recurring
//! execution phase under the density-based placement, annotated with the
//! allocations happening along the way.
//!
//! Shape to reproduce: low at the phase start, rising to its maximum as
//! the high-bandwidth region's objects are allocated, diminishing toward
//! the end; large allocations cluster at the start, smaller short-lived
//! ones in the middle.

use advisor::{Advisor, AdvisorConfig, Algorithm};
use bench::Table;
use flexmalloc::FlexMalloc;
use memsim::{run, ExecMode, FixedTier, MachineConfig};
use memtrace::{StackFormat, TierId};
use profiler::{analyze, profile_run, ProfilerConfig};

fn main() {
    let runner = bench::Runner::from_env("fig3_lulesh_bw");
    let app = workloads::lulesh::model();
    let machine = MachineConfig::optane_pmem6();

    // Profile → advise (density algorithm, as §VII-A does) → deploy.
    let (trace, _) = profile_run(
        &app,
        &machine,
        ExecMode::MemoryMode,
        &mut FixedTier::new(TierId::PMEM),
        &ProfilerConfig::default(),
    );
    let profile = analyze(&trace).unwrap();
    let advisor = Advisor::new(AdvisorConfig::loads_only(12));
    let report = advisor.advise(&profile, Algorithm::Base, StackFormat::Bom).unwrap();
    let mut fm = FlexMalloc::new(&report, &app.binmap, 202, app.ranks).unwrap();
    let result = run(&app, &machine, ExecMode::AppDirect, &mut fm);

    // One mid-run iteration (3 sub-phases), like the paper's single
    // recurring phase window.
    let mut t = Table::new(&["t_s", "sub_phase", "pmem_bw_gb_s", "allocs", "alloc_mb_each"]);
    let iter_phases: Vec<_> = result
        .phases
        .iter()
        .skip(2) // init phases
        .take(3 * 6) // six iterations
        .collect();
    for p in &iter_phases {
        let bw = (p.tier_read_bw[1] + p.tier_write_bw[1]) / 1e9;
        let allocs: Vec<_> = app.phases[p.index as usize]
            .allocs
            .iter()
            .map(|a| (a.count, a.size / (1 << 20)))
            .collect();
        let (n, sz) = allocs.first().map(|&(c, s)| (allocs.len() as u32 * c, s)).unwrap_or((0, 0));
        t.row(vec![
            format!("{:.1}", p.start),
            app.phases[p.index as usize].label.clone().unwrap_or_default(),
            format!("{bw:.2}"),
            n.to_string(),
            sz.to_string(),
        ]);
    }
    println!("{}", t.render());

    // Shape check across sub-phases.
    let avg = |label: &str| -> f64 {
        let v: Vec<f64> = result
            .phases
            .iter()
            .filter(|p| p.label.as_deref() == Some(label))
            .map(|p| p.tier_read_bw[1] + p.tier_write_bw[1])
            .collect();
        v.iter().sum::<f64>() / v.len() as f64 / 1e9
    };
    println!(
        "\navg PMem bw: lagrange_nodal {:.2} GB/s → lagrange_elems {:.2} GB/s → calc_constraints {:.2} GB/s",
        avg("lagrange_nodal"),
        avg("lagrange_elems"),
        avg("calc_constraints")
    );
    runner.report();
}
