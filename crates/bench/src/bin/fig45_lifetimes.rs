//! Figures 4 and 5: lifetime and bandwidth of LULESH objects living in the
//! high-bandwidth region (PMem temporaries) vs the low-bandwidth region
//! (DRAM persistents) under the density-based placement.
//!
//! Paper reference points: PMem temporaries live a fraction of a phase and
//! consume tens to hundreds of MB/s each (33–206 MB/s, avg 93 MB/s); DRAM
//! objects live essentially the whole run and consume ≤ ~10 MB/s.

use advisor::{Advisor, AdvisorConfig, Algorithm};
use bench::Table;
use flexmalloc::FlexMalloc;
use memsim::{run, ExecMode, FixedTier, MachineConfig};
use memtrace::{StackFormat, TierId};
use profiler::{analyze, profile_run, ProfilerConfig};

fn main() {
    let runner = bench::Runner::from_env("fig45_lifetimes");
    let app = workloads::lulesh::model();
    let machine = MachineConfig::optane_pmem6();
    let (trace, _) = profile_run(
        &app,
        &machine,
        ExecMode::MemoryMode,
        &mut FixedTier::new(TierId::PMEM),
        &ProfilerConfig::default(),
    );
    let profile = analyze(&trace).unwrap();
    let advisor = Advisor::new(AdvisorConfig::loads_only(12));
    let report = advisor.advise(&profile, Algorithm::Base, StackFormat::Bom).unwrap();
    let mut fm = FlexMalloc::new(&report, &app.binmap, 202, app.ranks).unwrap();
    let result = run(&app, &machine, ExecMode::AppDirect, &mut fm);
    let total = result.total_time;

    // Fig. 4: PMem-resident temporaries during one mid-run iteration.
    println!("== Fig. 4: PMem temporaries (one iteration window) ==");
    let temps = workloads::lulesh::temp_sites();
    let window_lo = total * 0.4;
    let window_hi = total * 0.6;
    let mut t = Table::new(&["object", "site", "alloc_s", "free_s", "lifetime_s", "bw_mb_s"]);
    let mut temp_bws = Vec::new();
    for o in result
        .objects
        .iter()
        .filter(|o| {
            temps.contains(&o.site) && o.alloc_time >= window_lo && o.free_time <= window_hi
        })
        .take(24)
    {
        let bw = o.avg_bandwidth(64) / 1e6;
        temp_bws.push(bw);
        t.row(vec![
            o.object.to_string(),
            o.site.to_string(),
            format!("{:.1}", o.alloc_time),
            format!("{:.1}", o.free_time),
            format!("{:.1}", o.lifetime()),
            format!("{bw:.1}"),
        ]);
    }
    println!("{}", t.render());

    // Fig. 5: DRAM-resident persistent objects.
    println!("\n== Fig. 5: DRAM persistents ==");
    let mut t = Table::new(&["object", "site", "lifetime_s", "lifetime_frac", "bw_mb_s"]);
    let mut dram_bws = Vec::new();
    for o in result.objects_in_tier(TierId::DRAM) {
        let bw = o.avg_bandwidth(64) / 1e6;
        dram_bws.push(bw);
        t.row(vec![
            o.object.to_string(),
            o.site.to_string(),
            format!("{:.1}", o.lifetime()),
            format!("{:.2}", o.lifetime() / total),
            format!("{bw:.2}"),
        ]);
    }
    println!("{}", t.render());

    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    // Split the hot gather tables (a deliberate modelling addition that
    // carries MiniFE-like latency value) from the cold Fitting/donor
    // population the paper's Fig. 5 describes.
    let donors = workloads::lulesh::donor_sites();
    let donor_bws: Vec<f64> = result
        .objects_in_tier(TierId::DRAM)
        .iter()
        .filter(|o| donors.contains(&o.site))
        .map(|o| o.avg_bandwidth(64) / 1e6)
        .collect();
    println!(
        "\ntemporaries: avg {:.0} MB/s (paper avg 93 MB/s, range 33-206)\n\
         DRAM donor objects: avg {:.1} MB/s (paper's Fig. 5 population: avg ~1 MB/s, max 10.5)\n\
         all DRAM objects (incl. hot gather tables): avg {:.1} MB/s",
        avg(&temp_bws),
        avg(&donor_bws),
        avg(&dram_bws)
    );
    runner.report();
}
