//! Figure 6: ecoHMEM speedup over Memory Mode for the five
//! mini-applications, sweeping the profiling metrics (Loads vs
//! Loads+stores), the Advisor DRAM limit (4/8/12 GB) and the PMem
//! population (PMem-6 vs PMem-2), plus the kernel-tiering and ProfDP
//! comparison points at the 12 GB limit.
//!
//! Usage: `fig6_sweep [--fast] [--jobs N]` (--fast: PMem-6 only, 12 GB
//! only). Cells run in parallel on the memoizing runner; the shared
//! profiling/Memory-Mode simulations are executed once per machine.

use advisor::Algorithm;
use baselines::{KernelTiering, ProfDp};
use bench::{Runner, Table};
use ecohmem_core::experiments::{run_cell, Metrics, SweepSpec};
use memsim::{run as engine_run, ExecMode, MachineConfig};

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    let runner = Runner::from_env("fig6_sweep");
    let apps = workloads::miniapp_models();
    let machines = if fast {
        vec![MachineConfig::optane_pmem6()]
    } else {
        vec![MachineConfig::optane_pmem6(), MachineConfig::optane_pmem2()]
    };
    let limits: &[u64] = if fast { &[12] } else { &[4, 8, 12] };

    for machine in &machines {
        println!("== {} ==", machine.name);
        let mut grid = Vec::new();
        for app in &apps {
            for &metrics in &[Metrics::Loads, Metrics::LoadsStores] {
                for &gib in limits {
                    grid.push((app, metrics, gib));
                }
            }
        }
        let cells = runner.map(grid, |(app, metrics, gib)| {
            run_cell(app, machine, SweepSpec { dram_gib: gib, metrics, algorithm: Algorithm::Base })
        });

        let mut t = Table::new(&["app", "metrics", "dram_gib", "speedup_vs_memory_mode"]);
        for cell in &cells {
            t.row(vec![
                cell.app.clone(),
                cell.spec.metrics.label().into(),
                cell.spec.dram_gib.to_string(),
                format!("{:.2}", cell.speedup),
            ]);
        }
        println!("{}\n", t.render());
    }

    // Kernel tiering and ProfDP comparison points (PMem-6, 12 GB).
    let machine = MachineConfig::optane_pmem6();
    let rows = runner.map(apps.iter().collect(), |app| {
        let mm = baselines::run_memory_mode(app, &machine);
        let tiering =
            engine_run(app, &machine, ExecMode::AppDirect, &mut KernelTiering::new(&machine));
        let profdp = ProfDp::profile(app, &machine);
        let (variant, best) = profdp.best_run(app, &machine, 12 << 30);
        vec![
            app.name.clone(),
            format!("{:.2}", mm.total_time / tiering.total_time),
            format!("{:.2}", mm.total_time / best.total_time),
            format!("{variant:?}"),
        ]
    });
    let mut t = Table::new(&["app", "kernel_tiering", "profdp_best", "profdp_variant"]);
    for row in rows {
        t.row(row);
    }
    println!("== baselines (PMem-6, speedup vs memory mode) ==\n{}", t.render());
    runner.report();
}
