//! Figure 7: PMem bandwidth usage with the main HMem Advisor algorithm
//! (baseline curve) vs the bandwidth-aware algorithm, for LULESH and
//! OpenFOAM.
//!
//! Shape to reproduce: the bandwidth-aware curve tracks the main curve but
//! with the high-bandwidth peaks shaved off — the promoted objects' demand
//! has moved to DRAM.
//!
//! Usage: `fig7_bw_aware [--jobs N]`.

use advisor::Algorithm;
use bench::{Runner, Table};
use ecohmem_core::{run_pipeline, PipelineConfig};
use memtrace::TierId;

const APPS: [(&str, u64); 2] = [("lulesh", 12), ("openfoam", 11)];

fn main() {
    let runner = Runner::from_env("fig7_bw_aware");
    // All four pipeline runs (2 apps × 2 algorithms) in one parallel
    // batch; the per-app profiling/baseline runs are shared via the cache.
    let mut grid = Vec::new();
    for (name, gib) in APPS {
        for algorithm in [Algorithm::Base, Algorithm::BandwidthAware] {
            grid.push((name, gib, algorithm));
        }
    }
    let outs = runner.map(grid, |(name, gib, algorithm)| {
        let app = workloads::model_by_name(name).unwrap();
        let mut cfg = PipelineConfig::paper_default();
        cfg.advisor = advisor::AdvisorConfig::loads_only(gib);
        cfg.algorithm = algorithm;
        run_pipeline(&app, &cfg).unwrap()
    });

    for (i, (name, _)) in APPS.iter().enumerate() {
        let base = &outs[2 * i];
        let bwa = &outs[2 * i + 1];

        println!("== {name} ==");
        let a = base.placed.tier_bw_series(TierId::PMEM);
        let b = bwa.placed.tier_bw_series(TierId::PMEM);
        let mut t = Table::new(&["t_s(main)", "main_gb_s", "t_s(bwa)", "bwa_gb_s"]);
        // Sample every few phases to keep the series readable.
        let stride = (a.len() / 30).max(1);
        for i in (0..a.len().min(b.len())).step_by(stride) {
            t.row(vec![
                format!("{:.0}", a[i].0),
                format!("{:.2}", a[i].1 / 1e9),
                format!("{:.0}", b[i].0),
                format!("{:.2}", b[i].1 / 1e9),
            ]);
        }
        println!("{}", t.render());
        // Speedups shrink the bw-aware run's wall clock, so GB/s alone can
        // mislead; the paper's "released bandwidth" is clearest as the PMem
        // *volume* the run moves.
        let volume = |r: &memsim::RunResult| -> f64 {
            r.phases
                .iter()
                .map(|p| (p.tier_read_bw[1] + p.tier_write_bw[1]) * p.duration)
                .sum::<f64>()
                / 1e9
        };
        println!(
            "peak PMem bw: main {:.2} GB/s → bw-aware {:.2} GB/s\n\
             total PMem volume: main {:.0} GB → bw-aware {:.0} GB\n\
             speedups {:.3} → {:.3}\n",
            base.placed.tier_peak_bw(TierId::PMEM) / 1e9,
            bwa.placed.tier_peak_bw(TierId::PMEM) / 1e9,
            volume(&base.placed),
            volume(&bwa.placed),
            base.speedup(),
            bwa.speedup(),
        );
    }
    runner.report();
}
