//! Fleet sweep: the default 16-node × 4-tenant mixed colocation under all
//! three schedulers, run as one memoized parallel experiment.
//!
//! Every (app, grant, share) cell goes through `parallel_map` +
//! `global_cache`, so identical cells across nodes, epochs and policies
//! simulate once. The committed `BENCH_fleet.json` snapshot records
//! per-policy scheduler decisions, storms and makespans (deterministic —
//! the perf_smoke gate asserts exact equality at the default seed) plus
//! cache hit/miss counts and simulation-event throughput for the loose
//! perf bar.
//!
//! ```text
//! cargo run --release -p bench --bin fleet_sweep -- --jobs 4
//! cargo run --release -p bench --bin fleet_sweep -- --out BENCH_fleet.json
//! ECOHMEM_FLEET_SEED=7 cargo run --release -p bench --bin fleet_sweep
//! ```

use bench::{fleet_scenario, Runner, Table};
use ecohmem_obs::Json;
use memsim::fleet::{self, FleetResult, SchedulerPolicy};

fn out_path() -> Option<String> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--out" {
            return args.next();
        }
        if let Some(v) = a.strip_prefix("--out=") {
            return Some(v.to_string());
        }
    }
    None
}

/// Total simulation events of one result: grant decisions + epochs +
/// storms — the unit the events/s throughput figure counts.
pub fn sim_events(r: &FleetResult) -> u64 {
    r.scheduler_decisions() + r.total_epochs() + r.total_storms()
}

fn main() {
    let runner = Runner::from_env("fleet_sweep");
    let seed = fleet_scenario::seed_from_env();
    let mut t = Table::new(&[
        "scheduler",
        "makespan_s",
        "epochs",
        "decisions",
        "storms",
        "storm_gib",
        "completed",
        "wall_ms",
        "events_per_s",
    ]);

    let mut policies = Vec::new();
    let mut total_events = 0u64;
    let started = std::time::Instant::now();
    for policy in SchedulerPolicy::all() {
        let (cfg, tenants) = fleet_scenario::default_scenario(policy);
        let t0 = std::time::Instant::now();
        let r = fleet::simulate(&cfg, &tenants, runner.jobs())
            .expect("default fleet scenario simulates");
        let wall = t0.elapsed().as_secs_f64();
        let events = sim_events(&r);
        total_events += events;
        let rate = events as f64 / wall.max(1e-9);
        t.row(vec![
            policy.name().into(),
            format!("{:.3}", r.makespan()),
            r.total_epochs().to_string(),
            r.scheduler_decisions().to_string(),
            r.total_storms().to_string(),
            format!("{:.3}", r.total_storm_bytes() as f64 / (1u64 << 30) as f64),
            r.completed_tenants().to_string(),
            format!("{:.1}", wall * 1e3),
            format!("{rate:.1}"),
        ]);
        policies.push((
            policy.name().to_string(),
            Json::obj(vec![
                ("makespan_s", Json::f64(r.makespan())),
                ("epochs", Json::U64(r.total_epochs())),
                ("decisions", Json::U64(r.scheduler_decisions())),
                ("storms", Json::U64(r.total_storms())),
                ("storm_bytes", Json::U64(r.total_storm_bytes())),
                ("peak_pressure", Json::f64(r.peak_pressure())),
                ("completed", Json::U64(r.completed_tenants())),
                ("wall_s", Json::f64(wall)),
                ("events_per_sec", Json::f64(rate)),
            ]),
        ));
    }
    let total_wall = started.elapsed().as_secs_f64();
    println!("{}", t.render());

    let doc = Json::obj(vec![
        ("schema", Json::str("ecohmem.bench_fleet/1")),
        (
            "scenario",
            Json::obj(vec![
                ("nodes", Json::U64(fleet_scenario::DEFAULT_NODES as u64)),
                ("per_node", Json::U64(fleet_scenario::DEFAULT_PER_NODE as u64)),
                ("seed", Json::U64(seed)),
                ("spread_s", Json::f64(fleet_scenario::DEFAULT_SPREAD_S)),
                ("machine", Json::str("optane-pmem6")),
            ]),
        ),
        ("policies", Json::Obj(policies)),
        (
            "cache",
            Json::obj(vec![
                ("hits", Json::U64(runner.cache_hits())),
                ("misses", Json::U64(runner.cache_misses())),
            ]),
        ),
        ("events", Json::U64(total_events)),
        ("events_per_sec", Json::f64(total_events as f64 / total_wall.max(1e-9))),
        ("jobs", Json::U64(runner.jobs() as u64)),
    ]);
    let path = out_path().unwrap_or_else(|| "BENCH_fleet.json".to_string());
    std::fs::write(&path, doc.to_string_pretty() + "\n")
        .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    eprintln!("[fleet_sweep] wrote {path}");
    runner.report();
}
