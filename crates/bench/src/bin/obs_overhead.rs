//! Microbenchmark for the observability layer's cost model.
//!
//! The `ecohmem-obs` contract is that instrumentation can stay compiled
//! into hot loops because the *disabled* path is a branch on one relaxed
//! atomic load — under 5 ns per call on current hardware. This bin
//! measures that directly (the `criterion` crate is not available in this
//! environment, so the harness is hand-rolled): each probe runs the call
//! in a tight loop, `std::hint::black_box` keeps the optimizer from
//! deleting it, and the median of several repetitions is reported.
//!
//! ```text
//! cargo run --release -p bench --bin obs_overhead
//! ```
//!
//! Output is a table of ns/call for `count`, `incr`, `gauge_raise`,
//! `observe` and `span` in both the disabled and the enabled state. The
//! disabled numbers are the budget quoted in DESIGN.md §11.

use bench::Table;
use std::hint::black_box;
use std::time::Instant;

const CALLS: u64 = 10_000_000;
const REPS: usize = 5;

/// Median ns/call of `f` run `CALLS` times, over `REPS` repetitions.
fn measure(f: impl Fn(u64)) -> f64 {
    let mut samples: Vec<f64> = (0..REPS)
        .map(|_| {
            let t0 = Instant::now();
            for i in 0..CALLS {
                f(black_box(i));
            }
            t0.elapsed().as_nanos() as f64 / CALLS as f64
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[REPS / 2]
}

fn probe_all() -> Vec<(&'static str, f64)> {
    vec![
        ("count", measure(|i| ecohmem_obs::count("obs_overhead.counter", i & 1))),
        ("incr", measure(|_| ecohmem_obs::incr("obs_overhead.counter"))),
        ("gauge_raise", measure(|i| ecohmem_obs::gauge_raise("obs_overhead.gauge", i as f64))),
        ("observe", measure(|i| ecohmem_obs::observe("obs_overhead.hist", i & 0xff))),
        ("span", measure(|_| drop(ecohmem_obs::span("obs_overhead.span")))),
    ]
}

fn main() {
    // Loop calibration overhead: the same loop around a pure black_box.
    let baseline = measure(|i| {
        black_box(i);
    });

    ecohmem_obs::set_enabled(false);
    let disabled = probe_all();
    ecohmem_obs::set_enabled(true);
    let enabled = probe_all();
    ecohmem_obs::reset();

    let mut t = Table::new(&["call", "disabled_ns", "enabled_ns"]);
    for ((name, off), (_, on)) in disabled.iter().zip(&enabled) {
        t.row(vec![(*name).into(), format!("{off:.2}"), format!("{on:.2}")]);
    }
    println!("empty-loop baseline: {baseline:.2} ns/iter ({CALLS} calls, median of {REPS} reps)");
    println!("{}", t.render());

    let worst = disabled.iter().map(|&(_, ns)| ns).fold(0.0, f64::max);
    let budget = 5.0;
    println!(
        "disabled-path worst case: {worst:.2} ns/call (budget {budget:.1} ns) — {}",
        if worst < budget { "PASS" } else { "FAIL" }
    );
    if worst >= budget {
        std::process::exit(1);
    }
}
