//! Online vs offline placement: what dynamic migration buys and costs.
//!
//! The paper's methodology is strictly offline — profile one run, place
//! the next. The online engine (`ecohmem-online`) plans during the run and
//! migrates objects at phase boundaries, paying for every move. This
//! experiment quantifies the trade on both regimes:
//!
//! * steady-state applications (MiniFE, LULESH, HPCG): the hot set never
//!   changes, so offline placement is optimal — online must converge to it
//!   and land within a few percent after its cold-start phases;
//! * the phase-shifting adversary (`workloads::phaseshift`): the hot array
//!   flips mid-run, so *every* static placement strands half the hot
//!   accesses in PMEM — online migrates across the shift and wins.
//!
//! Usage: `online_vs_offline [--jobs N]`.

use advisor::AdvisorConfig;
use bench::{Runner, Table};
use ecohmem_core::{run_pipeline, PipelineConfig};
use ecohmem_online::{OnlineConfig, OnlinePolicy};
use memsim::{run, ExecMode, RunResult};

struct Row {
    app: &'static str,
    memory_mode_s: f64,
    offline_s: f64,
    online: RunResult,
    revisions: usize,
}

fn measure(app_name: &'static str, gib: u64) -> Row {
    let app = workloads::model_by_name(app_name).unwrap();

    // Offline: the paper pipeline — profile, analyze, advise, deploy.
    let mut cfg = PipelineConfig::paper_default();
    cfg.advisor = AdvisorConfig::loads_only(gib);
    let offline = run_pipeline(&app, &cfg).unwrap();

    // Online: no prior profile; the incremental advisor plans in-run.
    let mut policy = OnlinePolicy::new(AdvisorConfig::loads_only(gib), OnlineConfig::reactive());
    let online = run(&app, &cfg.machine, ExecMode::AppDirect, &mut policy);

    Row {
        app: app_name,
        memory_mode_s: offline.memory_mode.total_time,
        offline_s: offline.placed.total_time,
        online,
        revisions: policy.revisions().len(),
    }
}

fn main() {
    let runner = Runner::from_env("online_vs_offline");
    let apps: Vec<(&'static str, u64)> =
        vec![("minife", 12), ("lulesh", 12), ("hpcg", 12), ("phaseshift", 12)];
    let rows = runner.map(apps, |(name, gib)| measure(name, gib));

    let mut t = Table::new(&[
        "app",
        "memmode_s",
        "offline_s",
        "online_s",
        "online/offline",
        "migrations",
        "moved_gb",
        "migr_time_s",
        "revisions",
    ]);
    for r in &rows {
        t.row(vec![
            r.app.to_string(),
            format!("{:.2}", r.memory_mode_s),
            format!("{:.2}", r.offline_s),
            format!("{:.2}", r.online.total_time),
            format!("{:.3}", r.online.total_time / r.offline_s),
            r.online.migrations.to_string(),
            format!("{:.2}", r.online.migrated_bytes as f64 / 1e9),
            format!("{:.3}", r.online.migration_time),
            r.revisions.to_string(),
        ]);
    }
    println!("{}", t.render());

    for r in &rows {
        let ratio = r.online.total_time / r.offline_s;
        if r.app == "phaseshift" {
            println!(
                "phaseshift: online {} offline ({:.2}s vs {:.2}s) — dynamic migration {}",
                if ratio < 1.0 { "beats" } else { "does NOT beat" },
                r.online.total_time,
                r.offline_s,
                if ratio < 1.0 { "pays for itself across the phase shift" } else { "fell short" },
            );
        } else if ratio > 1.05 {
            println!(
                "{}: online {:.1}% behind offline (expected ≤ 5% on steady state)",
                r.app,
                (ratio - 1.0) * 100.0
            );
        }
    }
    runner.report();
}
