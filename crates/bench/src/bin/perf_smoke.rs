//! Perf-smoke gate: re-runs the golden pipeline and fails (exit 1) if the
//! trace hot path regressed more than 2× against the committed baseline.
//!
//! The committed `BENCH_pipeline.json` records per-stage `mean_ns` from
//! the last blessed run of the `pipeline` bin. This bin replays the same
//! three-workload pipeline with observability on, then compares the
//! stages the columnar engine owns — `profiler.synthesize`,
//! `analyzer.analyze` and `pipeline.profile` — against that baseline. A
//! 2× bar is deliberately loose: CI machines vary widely, but an
//! accidental O(n²) or a lost fast path shows up as 5–50×, never 2×.
//!
//! Wall-time ratios alone can hide a throughput regression when a PR
//! also shrinks the workload, so the gate additionally freezes
//! *synthesize throughput*: `profiler.events.emitted` over the
//! `profiler.synthesize` span time, in events/second. Falling below half
//! the baseline rate fails the gate even if absolute stage time stayed
//! under the 2× bar.
//!
//! ```text
//! cargo run --release -p bench --bin perf_smoke -- --jobs 4
//! cargo run --release -p bench --bin perf_smoke -- --baseline BENCH_pipeline.json
//! ```

use bench::{Runner, Table};
use ecohmem_core::{run_pipeline, PipelineConfig};
use ecohmem_obs::Json;

/// Stages gated by this bin. Only the analyzer/sampler hot path is held
/// to the bar: engine simulation time scales with model content, which
/// other PRs legitimately change.
const GATED_STAGES: [&str; 3] = ["profiler.synthesize", "analyzer.analyze", "pipeline.profile"];
const MAX_REGRESSION: f64 = 2.0;
/// Synthesize throughput may not fall below this fraction of the
/// baseline events/second.
const MIN_THROUGHPUT_FRACTION: f64 = 0.5;

fn baseline_path() -> String {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--baseline" {
            if let Some(v) = args.next() {
                return v;
            }
        }
        if let Some(v) = a.strip_prefix("--baseline=") {
            return v.to_string();
        }
    }
    "BENCH_pipeline.json".to_string()
}

/// `mean_ns` of `stage` inside a `RunMetrics` document.
fn stage_mean_ns(doc: &Json, stage: &str) -> Option<f64> {
    doc.get("stages")?.get(stage)?.get("mean_ns")?.as_f64()
}

/// Synthesize throughput in events/second: total emitted events over the
/// total time spent inside the `profiler.synthesize` span.
fn synthesize_events_per_sec(doc: &Json) -> Option<f64> {
    let emitted = doc.get("metrics")?.get("counters")?.get("profiler.events.emitted")?.as_f64()?;
    let total_ns = doc.get("stages")?.get("profiler.synthesize")?.get("total_ns")?.as_f64()?;
    Some(emitted / (total_ns.max(1.0) / 1e9))
}

fn main() {
    let path = baseline_path();
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            // No baseline means nothing to gate against (fresh checkout,
            // baseline intentionally regenerated later in the job) — a
            // skip, not a failure.
            eprintln!("[perf_smoke] no baseline at {path} ({e}); skipping gate");
            return;
        }
    };
    let root = Json::parse(&text).expect("baseline file parses as JSON");
    // The aggregate keys RunMetrics documents by runner label; accept a
    // bare RunMetrics document too so `--metrics-out` output also works.
    let baseline = root.get("pipeline").unwrap_or(&root);

    let runner = Runner::from_env("perf_smoke");
    ecohmem_obs::set_enabled(true);
    let started = std::time::Instant::now();
    let cfg = PipelineConfig::paper_default();
    runner.map(vec!["minife", "lulesh", "hpcg"], |name| {
        let app = workloads::model_by_name(name).expect("built-in workload");
        run_pipeline(&app, &cfg).expect("strict pipeline on a built-in workload")
    });
    let fresh = ecohmem_obs::run_metrics("perf_smoke", started.elapsed().as_secs_f64());

    let mut t = Table::new(&["stage", "baseline_ms", "fresh_ms", "ratio", "verdict"]);
    let mut failed = false;
    for stage in GATED_STAGES {
        let Some(base) = stage_mean_ns(baseline, stage) else {
            eprintln!("[perf_smoke] baseline has no stage {stage}; skipping it");
            continue;
        };
        let fresh_ns = stage_mean_ns(&fresh, stage)
            .unwrap_or_else(|| panic!("pipeline run recorded no {stage} span"));
        let ratio = fresh_ns / base.max(1.0);
        let ok = ratio <= MAX_REGRESSION;
        failed |= !ok;
        t.row(vec![
            stage.into(),
            format!("{:.2}", base / 1e6),
            format!("{:.2}", fresh_ns / 1e6),
            format!("{ratio:.2}x"),
            if ok { "ok" } else { "REGRESSED" }.into(),
        ]);
    }
    match (synthesize_events_per_sec(baseline), synthesize_events_per_sec(&fresh)) {
        (Some(base_rate), Some(fresh_rate)) => {
            let ok = fresh_rate >= base_rate * MIN_THROUGHPUT_FRACTION;
            failed |= !ok;
            t.row(vec![
                "synthesize ev/s".into(),
                format!("{:.1}M", base_rate / 1e6),
                format!("{:.1}M", fresh_rate / 1e6),
                format!("{:.2}x", fresh_rate / base_rate.max(1.0)),
                if ok { "ok" } else { "REGRESSED" }.into(),
            ]);
        }
        _ => eprintln!("[perf_smoke] baseline lacks synthesize throughput data; skipping it"),
    }
    println!("{}", t.render());
    runner.report();
    if failed {
        eprintln!("[perf_smoke] hot-path stage regressed more than {MAX_REGRESSION}x vs {path}");
        std::process::exit(1);
    }
}
