//! Perf-smoke gate: re-runs the golden pipeline and fails (exit 1) if the
//! trace hot path regressed more than 2× against the committed baseline.
//!
//! The committed `BENCH_pipeline.json` records per-stage `mean_ns` from
//! the last blessed run of the `pipeline` bin. This bin replays the same
//! three-workload pipeline with observability on, then compares the
//! stages the columnar engine owns — `profiler.synthesize` and
//! `analyzer.analyze` — against that baseline. A 2× bar is deliberately
//! loose: CI machines vary widely, but an accidental O(n²) or a lost
//! fast path shows up as 5–50×, never 2×.
//!
//! ```text
//! cargo run --release -p bench --bin perf_smoke -- --jobs 4
//! cargo run --release -p bench --bin perf_smoke -- --baseline BENCH_pipeline.json
//! ```

use bench::{Runner, Table};
use ecohmem_core::{run_pipeline, PipelineConfig};
use ecohmem_obs::Json;

/// Stages gated by this bin. Only the analyzer/sampler hot path is held
/// to the bar: engine simulation time scales with model content, which
/// other PRs legitimately change.
const GATED_STAGES: [&str; 2] = ["profiler.synthesize", "analyzer.analyze"];
const MAX_REGRESSION: f64 = 2.0;

fn baseline_path() -> String {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--baseline" {
            if let Some(v) = args.next() {
                return v;
            }
        }
        if let Some(v) = a.strip_prefix("--baseline=") {
            return v.to_string();
        }
    }
    "BENCH_pipeline.json".to_string()
}

/// `mean_ns` of `stage` inside a `RunMetrics` document.
fn stage_mean_ns(doc: &Json, stage: &str) -> Option<f64> {
    doc.get("stages")?.get(stage)?.get("mean_ns")?.as_f64()
}

fn main() {
    let path = baseline_path();
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            // No baseline means nothing to gate against (fresh checkout,
            // baseline intentionally regenerated later in the job) — a
            // skip, not a failure.
            eprintln!("[perf_smoke] no baseline at {path} ({e}); skipping gate");
            return;
        }
    };
    let root = Json::parse(&text).expect("baseline file parses as JSON");
    // The aggregate keys RunMetrics documents by runner label; accept a
    // bare RunMetrics document too so `--metrics-out` output also works.
    let baseline = root.get("pipeline").unwrap_or(&root);

    let runner = Runner::from_env("perf_smoke");
    ecohmem_obs::set_enabled(true);
    let started = std::time::Instant::now();
    let cfg = PipelineConfig::paper_default();
    runner.map(vec!["minife", "lulesh", "hpcg"], |name| {
        let app = workloads::model_by_name(name).expect("built-in workload");
        run_pipeline(&app, &cfg).expect("strict pipeline on a built-in workload")
    });
    let fresh = ecohmem_obs::run_metrics("perf_smoke", started.elapsed().as_secs_f64());

    let mut t = Table::new(&["stage", "baseline_ms", "fresh_ms", "ratio", "verdict"]);
    let mut failed = false;
    for stage in GATED_STAGES {
        let Some(base) = stage_mean_ns(baseline, stage) else {
            eprintln!("[perf_smoke] baseline has no stage {stage}; skipping it");
            continue;
        };
        let fresh_ns = stage_mean_ns(&fresh, stage)
            .unwrap_or_else(|| panic!("pipeline run recorded no {stage} span"));
        let ratio = fresh_ns / base.max(1.0);
        let ok = ratio <= MAX_REGRESSION;
        failed |= !ok;
        t.row(vec![
            stage.into(),
            format!("{:.2}", base / 1e6),
            format!("{:.2}", fresh_ns / 1e6),
            format!("{ratio:.2}x"),
            if ok { "ok" } else { "REGRESSED" }.into(),
        ]);
    }
    println!("{}", t.render());
    runner.report();
    if failed {
        eprintln!("[perf_smoke] hot-path stage regressed more than {MAX_REGRESSION}x vs {path}");
        std::process::exit(1);
    }
}
