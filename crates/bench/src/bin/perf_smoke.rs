//! Perf-smoke gate: re-runs the golden pipeline and fails (exit 1) if the
//! trace hot path regressed more than 2× against the committed baseline.
//!
//! The committed `BENCH_pipeline.json` records per-stage `mean_ns` from
//! the last blessed run of the `pipeline` bin. This bin replays the same
//! three-workload pipeline with observability on, then compares the
//! stages the columnar engine owns — `profiler.synthesize`,
//! `analyzer.analyze` and `pipeline.profile` — against that baseline. A
//! 2× bar is deliberately loose: CI machines vary widely, but an
//! accidental O(n²) or a lost fast path shows up as 5–50×, never 2×.
//!
//! Wall-time ratios alone can hide a throughput regression when a PR
//! also shrinks the workload, so the gate additionally freezes
//! *synthesize throughput*: `profiler.events.emitted` over the
//! `profiler.synthesize` span time, in events/second. Falling below half
//! the baseline rate fails the gate even if absolute stage time stayed
//! under the 2× bar.
//!
//! The gate also freezes the *fleet* sweep against `BENCH_fleet.json`
//! (when present): the default 16×4 paper-greedy scenario must reproduce
//! the baseline's scheduler decisions, epochs, storms and completions
//! *exactly* — the simulation is deterministic, so any drift is a
//! correctness bug, not noise — and its simulation-event throughput must
//! stay above 0.3× the baseline rate.
//!
//! Finally the gate drives the serve daemon over real TCP against
//! `BENCH_serve.json` (when present): a 1000-tenant blast through the
//! event-driven reactor must complete every session, reproduce the
//! isolated revision logs byte-for-byte on the per-shape probes, and
//! hold event throughput above 0.3× the committed 10k-tenant rate.
//!
//! ```text
//! cargo run --release -p bench --bin perf_smoke -- --jobs 4
//! cargo run --release -p bench --bin perf_smoke -- --baseline BENCH_pipeline.json
//! cargo run --release -p bench --bin perf_smoke -- --fleet-baseline BENCH_fleet.json
//! ```

use bench::{fleet_scenario, serve_scenario, Runner, Table};
use ecohmem_core::{run_pipeline, PipelineConfig};
use ecohmem_obs::Json;
use memsim::fleet::{self, SchedulerPolicy};

/// Stages gated by this bin. Only the analyzer/sampler hot path is held
/// to the bar: engine simulation time scales with model content, which
/// other PRs legitimately change.
const GATED_STAGES: [&str; 3] = ["profiler.synthesize", "analyzer.analyze", "pipeline.profile"];
const MAX_REGRESSION: f64 = 2.0;
/// Synthesize throughput may not fall below this fraction of the
/// baseline events/second.
const MIN_THROUGHPUT_FRACTION: f64 = 0.5;
/// Fleet simulation-event throughput may not fall below this fraction of
/// the baseline rate (loose: fleet walls are sub-second, so scheduling
/// noise is proportionally larger than on the pipeline stages).
const MIN_FLEET_THROUGHPUT_FRACTION: f64 = 0.3;
/// Served event throughput (TCP reactor) may not fall below this
/// fraction of the committed `BENCH_serve.json` 10k-tenant rate. Loose
/// for the same reason as the fleet gate — a lost reactor fast path
/// shows up as 10–100×, never 3×.
const MIN_SERVE_THROUGHPUT_FRACTION: f64 = 0.3;
/// Tenants the serve gate drives over TCP — small enough to finish in
/// well under a second, large enough to exercise the rolling window.
const SERVE_GATE_TENANTS: usize = 1000;

fn flag_path(flag: &str, default: &str) -> String {
    let eq = format!("{flag}=");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == flag {
            if let Some(v) = args.next() {
                return v;
            }
        }
        if let Some(v) = a.strip_prefix(&eq) {
            return v.to_string();
        }
    }
    default.to_string()
}

fn baseline_path() -> String {
    flag_path("--baseline", "BENCH_pipeline.json")
}

/// `mean_ns` of `stage` inside a `RunMetrics` document.
fn stage_mean_ns(doc: &Json, stage: &str) -> Option<f64> {
    doc.get("stages")?.get(stage)?.get("mean_ns")?.as_f64()
}

/// Synthesize throughput in events/second: total emitted events over the
/// total time spent inside the `profiler.synthesize` span.
fn synthesize_events_per_sec(doc: &Json) -> Option<f64> {
    let emitted = doc.get("metrics")?.get("counters")?.get("profiler.events.emitted")?.as_f64()?;
    let total_ns = doc.get("stages")?.get("profiler.synthesize")?.get("total_ns")?.as_f64()?;
    Some(emitted / (total_ns.max(1.0) / 1e9))
}

fn main() {
    let path = baseline_path();
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            // No baseline means nothing to gate against (fresh checkout,
            // baseline intentionally regenerated later in the job) — a
            // skip, not a failure.
            eprintln!("[perf_smoke] no baseline at {path} ({e}); skipping gate");
            return;
        }
    };
    let root = Json::parse(&text).expect("baseline file parses as JSON");
    // The aggregate keys RunMetrics documents by runner label; accept a
    // bare RunMetrics document too so `--metrics-out` output also works.
    let baseline = root.get("pipeline").unwrap_or(&root);

    let runner = Runner::from_env("perf_smoke");
    ecohmem_obs::set_enabled(true);
    let started = std::time::Instant::now();
    let cfg = PipelineConfig::paper_default();
    runner.map(vec!["minife", "lulesh", "hpcg"], |name| {
        let app = workloads::model_by_name(name).expect("built-in workload");
        run_pipeline(&app, &cfg).expect("strict pipeline on a built-in workload")
    });
    let fresh = ecohmem_obs::run_metrics("perf_smoke", started.elapsed().as_secs_f64());

    let mut t = Table::new(&["stage", "baseline_ms", "fresh_ms", "ratio", "verdict"]);
    let mut failed = false;
    for stage in GATED_STAGES {
        let Some(base) = stage_mean_ns(baseline, stage) else {
            eprintln!("[perf_smoke] baseline has no stage {stage}; skipping it");
            continue;
        };
        let fresh_ns = stage_mean_ns(&fresh, stage)
            .unwrap_or_else(|| panic!("pipeline run recorded no {stage} span"));
        let ratio = fresh_ns / base.max(1.0);
        let ok = ratio <= MAX_REGRESSION;
        failed |= !ok;
        t.row(vec![
            stage.into(),
            format!("{:.2}", base / 1e6),
            format!("{:.2}", fresh_ns / 1e6),
            format!("{ratio:.2}x"),
            if ok { "ok" } else { "REGRESSED" }.into(),
        ]);
    }
    match (synthesize_events_per_sec(baseline), synthesize_events_per_sec(&fresh)) {
        (Some(base_rate), Some(fresh_rate)) => {
            let ok = fresh_rate >= base_rate * MIN_THROUGHPUT_FRACTION;
            failed |= !ok;
            t.row(vec![
                "synthesize ev/s".into(),
                format!("{:.1}M", base_rate / 1e6),
                format!("{:.1}M", fresh_rate / 1e6),
                format!("{:.2}x", fresh_rate / base_rate.max(1.0)),
                if ok { "ok" } else { "REGRESSED" }.into(),
            ]);
        }
        _ => eprintln!("[perf_smoke] baseline lacks synthesize throughput data; skipping it"),
    }
    failed |= fleet_gate(&mut t, runner.jobs());
    failed |= serve_gate(&mut t, runner.jobs());
    println!("{}", t.render());
    runner.report();
    if failed {
        eprintln!("[perf_smoke] hot-path stage regressed more than {MAX_REGRESSION}x vs {path}");
        std::process::exit(1);
    }
}

/// Replays the default paper-greedy fleet scenario against the frozen
/// `BENCH_fleet.json` baseline. Deterministic figures (decisions, epochs,
/// storms, completions) must match exactly; throughput is gated loosely.
/// Returns true on failure; a missing baseline or a non-default seed
/// skips the gate.
fn fleet_gate(t: &mut Table, jobs: usize) -> bool {
    let path = flag_path("--fleet-baseline", "BENCH_fleet.json");
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("[perf_smoke] no fleet baseline at {path} ({e}); skipping fleet gate");
            return false;
        }
    };
    let root = Json::parse(&text).expect("fleet baseline parses as JSON");
    let seed = fleet_scenario::seed_from_env();
    if root.get("scenario").and_then(|s| s.get("seed")).and_then(Json::as_u64) != Some(seed) {
        eprintln!("[perf_smoke] fleet baseline is for another seed; skipping fleet gate");
        return false;
    }
    let Some(base) = root.get("policies").and_then(|p| p.get("paper-greedy")) else {
        eprintln!("[perf_smoke] fleet baseline has no paper-greedy entry; skipping fleet gate");
        return false;
    };

    let (cfg, tenants) = fleet_scenario::default_scenario(SchedulerPolicy::PaperGreedy);
    let started = std::time::Instant::now();
    let r = fleet::simulate(&cfg, &tenants, jobs).expect("default fleet scenario simulates");
    let wall = started.elapsed().as_secs_f64();
    let events = r.scheduler_decisions() + r.total_epochs() + r.total_storms();
    let rate = events as f64 / wall.max(1e-9);

    let mut failed = false;
    let exact: [(&str, u64); 4] = [
        ("fleet decisions", r.scheduler_decisions()),
        ("fleet epochs", r.total_epochs()),
        ("fleet storms", r.total_storms()),
        ("fleet completed", r.completed_tenants()),
    ];
    let keys = ["decisions", "epochs", "storms", "completed"];
    for ((label, fresh), key) in exact.into_iter().zip(keys) {
        let Some(want) = base.get(key).and_then(Json::as_u64) else {
            eprintln!("[perf_smoke] fleet baseline has no {key}; skipping it");
            continue;
        };
        let ok = fresh == want;
        failed |= !ok;
        t.row(vec![
            label.into(),
            want.to_string(),
            fresh.to_string(),
            if ok { "==" } else { "!=" }.into(),
            if ok { "ok" } else { "DIVERGED" }.into(),
        ]);
    }
    if let Some(base_rate) = base.get("events_per_sec").and_then(Json::as_f64) {
        let ok = rate >= base_rate * MIN_FLEET_THROUGHPUT_FRACTION;
        failed |= !ok;
        t.row(vec![
            "fleet events/s".into(),
            format!("{base_rate:.0}"),
            format!("{rate:.0}"),
            format!("{:.2}x", rate / base_rate.max(1.0)),
            if ok { "ok" } else { "REGRESSED" }.into(),
        ]);
    }
    failed
}

/// Drives [`SERVE_GATE_TENANTS`] scripted sessions over real TCP against
/// the reactor daemon (the exact `serve_load` workload, scaled down) and
/// gates on three things: zero failed sessions, zero divergent probe
/// logs, and event throughput above [`MIN_SERVE_THROUGHPUT_FRACTION`] of
/// the committed `BENCH_serve.json` 10k-tenant rate. Returns true on
/// failure; a missing baseline skips the gate.
fn serve_gate(t: &mut Table, jobs: usize) -> bool {
    let path = flag_path("--serve-baseline", "BENCH_serve.json");
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("[perf_smoke] no serve baseline at {path} ({e}); skipping serve gate");
            return false;
        }
    };
    let root = Json::parse(&text).expect("serve baseline parses as JSON");
    let base_rate = root
        .get("scenarios")
        .and_then(|s| s.get("tenants_10000"))
        .and_then(|s| s.get("events_per_sec"))
        .and_then(Json::as_f64);
    let Some(base_rate) = base_rate else {
        eprintln!("[perf_smoke] serve baseline has no tenants_10000 rate; skipping serve gate");
        return false;
    };

    let traces = serve_scenario::shape_traces();
    let reference = serve_scenario::reference_logs(&traces);
    let r = serve_scenario::run_tcp_fleet(
        SERVE_GATE_TENANTS,
        jobs.clamp(1, 4),
        2,
        None,
        &traces,
        &reference,
    );

    let mut failed = false;
    let sessions_ok = r.failed == 0 && r.completed == SERVE_GATE_TENANTS;
    failed |= !sessions_ok;
    t.row(vec![
        "serve sessions".into(),
        SERVE_GATE_TENANTS.to_string(),
        format!("{} ok / {} failed", r.completed, r.failed),
        if sessions_ok { "==" } else { "!=" }.into(),
        if sessions_ok { "ok" } else { "FAILED" }.into(),
    ]);
    if !sessions_ok && !r.errors.is_empty() {
        eprintln!("[perf_smoke] serve session failures: {:?}", r.errors);
    }
    let diverge_ok = r.divergent == 0;
    failed |= !diverge_ok;
    t.row(vec![
        "serve divergence".into(),
        "0".into(),
        r.divergent.to_string(),
        if diverge_ok { "==" } else { "!=" }.into(),
        if diverge_ok { "ok" } else { "DIVERGED" }.into(),
    ]);
    let rate = r.events_per_sec();
    let rate_ok = rate >= base_rate * MIN_SERVE_THROUGHPUT_FRACTION;
    failed |= !rate_ok;
    t.row(vec![
        "serve events/s".into(),
        format!("{:.1}M", base_rate / 1e6),
        format!("{:.1}M", rate / 1e6),
        format!("{:.2}x", rate / base_rate.max(1.0)),
        if rate_ok { "ok" } else { "REGRESSED" }.into(),
    ]);
    failed
}
