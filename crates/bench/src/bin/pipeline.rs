//! End-to-end pipeline benchmark: profile → analyze → advise → deploy →
//! baseline for the three golden workloads, with full observability on.
//!
//! This is the bin CI drives to produce `BENCH_pipeline.json`: it forces
//! metrics collection, runs the paper pipeline for minife, lulesh and
//! hpcg on the shared worker pool, prints the speedup table, and lets
//! [`bench::Runner::report`] write the `RunMetrics` document — per-stage
//! `pipeline.*` span timings plus every counter/gauge/histogram the
//! toolchain recorded along the way.
//!
//! ```text
//! cargo run --release -p bench --bin pipeline -- --metrics-out BENCH_pipeline.json
//! ```
//!
//! (`ECOHMEM_BENCH_OUT=FILE` aggregates instead of overwriting, merging
//! this run under its label next to other bench bins' documents.)

use bench::{Runner, Table};
use ecohmem_core::{run_pipeline, PipelineConfig};

fn main() {
    let runner = Runner::from_env("pipeline");
    // The whole point of this bin is the metrics document; collect even
    // when neither --metrics-out nor ECOHMEM_OBS was given.
    ecohmem_obs::set_enabled(true);

    let apps = ["minife", "lulesh", "hpcg"];
    let cfg = PipelineConfig::paper_default();
    let rows = runner.map(apps.to_vec(), |name| {
        let app = workloads::model_by_name(name).expect("built-in workload");
        let out = run_pipeline(&app, &cfg).expect("strict pipeline on a built-in workload");
        (name, out.placed.total_time, out.memory_mode.total_time, out.speedup(), out.report.len())
    });

    let mut t = Table::new(&["app", "placed_s", "memory_mode_s", "speedup", "report_sites"]);
    for (name, placed, baseline, speedup, sites) in rows {
        t.row(vec![
            name.into(),
            format!("{placed:.2}"),
            format!("{baseline:.2}"),
            format!("{speedup:.3}"),
            sites.to_string(),
        ]);
    }
    println!("{}", t.render());
    runner.report();
}
