//! Renders the paper's key figures as SVG files into `figures/`.
//!
//!     cargo run -p bench --release --bin render_figures [outdir]

use advisor::Algorithm;
use ecohmem_core::experiments::{run_cell, Metrics, SweepSpec};
use ecohmem_core::{run_pipeline, PipelineConfig};
use memsim::{mlc_sweep, MachineConfig, TrafficMix};
use memtrace::TierId;
use viz::{BarChart, BarGroup, LineChart, Series};

fn main() {
    let runner = bench::Runner::from_env("render_figures");
    let outdir = std::env::args().nth(1).unwrap_or_else(|| "figures".into());
    std::fs::create_dir_all(&outdir).expect("create output dir");
    let machine = MachineConfig::optane_pmem6();

    // Fig. 2 — loaded latency curves.
    let sweep = |tier, mix| -> Vec<(f64, f64)> {
        mlc_sweep(&machine, tier, mix, 8e9, 22e9, 15)
            .into_iter()
            .map(|p| (p.bandwidth / 1e9, p.latency_ns))
            .collect()
    };
    let fig2 = LineChart {
        title: "Fig. 2 — loaded latency vs bandwidth".into(),
        x_label: "injected bandwidth (GB/s)".into(),
        y_label: "read latency (ns)".into(),
        series: vec![
            Series { label: "DRAM (R)".into(), points: sweep(TierId::DRAM, TrafficMix::ReadOnly) },
            Series {
                label: "DRAM (1R1W)".into(),
                points: sweep(TierId::DRAM, TrafficMix::OneReadOneWrite),
            },
            Series { label: "PMem (R)".into(), points: sweep(TierId::PMEM, TrafficMix::ReadOnly) },
            Series {
                label: "PMem (1R1W)".into(),
                points: sweep(TierId::PMEM, TrafficMix::OneReadOneWrite),
            },
        ],
        size: (680, 420),
    };
    write(&outdir, "fig2_mlc.svg", &fig2.render());

    // Fig. 6 — speedups at 12 GB, both metric configs.
    let mut groups = Vec::new();
    for app in workloads::miniapp_models() {
        let mut values = Vec::new();
        for metrics in [Metrics::Loads, Metrics::LoadsStores] {
            values.push(
                run_cell(
                    &app,
                    &machine,
                    SweepSpec { dram_gib: 12, metrics, algorithm: Algorithm::Base },
                )
                .speedup,
            );
        }
        groups.push(BarGroup { label: app.name.clone(), values });
    }
    let fig6 = BarChart {
        title: "Fig. 6 — speedup vs memory mode (PMem-6, 12 GB)".into(),
        y_label: "speedup".into(),
        series_labels: vec!["loads".into(), "loads+stores".into()],
        groups,
        baseline: Some(1.0),
        size: (680, 420),
    };
    write(&outdir, "fig6_speedups.svg", &fig6.render());

    // Fig. 3 — LULESH PMem bandwidth across phases (density placement).
    let app = workloads::lulesh::model();
    let mut cfg = PipelineConfig::paper_default();
    let base = run_pipeline(&app, &cfg).unwrap();
    let window: Vec<(f64, f64)> = base
        .placed
        .phases
        .iter()
        .skip(2)
        .take(18)
        .map(|p| (p.start, (p.tier_read_bw[1] + p.tier_write_bw[1]) / 1e9))
        .collect();
    let fig3 = LineChart {
        title: "Fig. 3 — LULESH PMem bandwidth (density placement)".into(),
        x_label: "time (s)".into(),
        y_label: "PMem bandwidth (GB/s)".into(),
        series: vec![Series { label: "PMem bw".into(), points: window }],
        size: (680, 360),
    };
    write(&outdir, "fig3_lulesh_bw.svg", &fig3.render());

    // Fig. 7 — main vs bandwidth-aware PMem bandwidth (LULESH).
    cfg.algorithm = Algorithm::BandwidthAware;
    let bwa = run_pipeline(&app, &cfg).unwrap();
    let series_of = |r: &memsim::RunResult, label: &str| -> Series {
        Series {
            label: label.into(),
            points: r
                .phases
                .iter()
                .skip(2)
                .take(18)
                .map(|p| (p.start, (p.tier_read_bw[1] + p.tier_write_bw[1]) / 1e9))
                .collect(),
        }
    };
    let fig7 = LineChart {
        title: "Fig. 7 — LULESH PMem bandwidth: main vs bandwidth-aware".into(),
        x_label: "time (s)".into(),
        y_label: "PMem bandwidth (GB/s)".into(),
        series: vec![series_of(&base.placed, "main"), series_of(&bwa.placed, "bandwidth-aware")],
        size: (680, 360),
    };
    write(&outdir, "fig7_bw_aware.svg", &fig7.render());

    // Table VIII as a bar chart (production apps).
    let mut groups = Vec::new();
    for (name, main_gib, bw_gib) in
        [("openfoam", 11u64, 11u64), ("lammps", 14, 16), ("lulesh", 12, 12)]
    {
        let app = workloads::model_by_name(name).unwrap();
        let main = run_cell(
            &app,
            &machine,
            SweepSpec { dram_gib: main_gib, metrics: Metrics::Loads, algorithm: Algorithm::Base },
        )
        .speedup;
        let bwa = run_cell(
            &app,
            &machine,
            SweepSpec {
                dram_gib: bw_gib,
                metrics: Metrics::Loads,
                algorithm: Algorithm::BandwidthAware,
            },
        )
        .speedup;
        groups.push(BarGroup { label: name.into(), values: vec![main, bwa] });
    }
    let t8 = BarChart {
        title: "Table VIII — main vs bandwidth-aware".into(),
        y_label: "speedup vs memory mode".into(),
        series_labels: vec!["main".into(), "bandwidth-aware".into()],
        groups,
        baseline: Some(1.0),
        size: (680, 420),
    };
    write(&outdir, "table8_production.svg", &t8.render());

    eprintln!("figures written to {outdir}/");
    runner.report();
}

fn write(dir: &str, name: &str, content: &str) {
    let path = format!("{dir}/{name}");
    std::fs::write(&path, content).expect("write svg");
    eprintln!("  {path}");
}
