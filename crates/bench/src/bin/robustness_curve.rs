//! Robustness curve: how the end-to-end speedup over Memory Mode decays as
//! injected fault severity grows, for every injector in `memtrace::fault`.
//! Severity 0 rows are the clean-pipeline reference for each fault kind.
//!
//! ```text
//! robustness_curve [--app minife] [--machine pmem6|pmem2|hbm]
//!                  [--policy strict|warn|best-effort] [--seed N]
//!                  [--jobs N] [--inject kind:severity]...
//! ```
//!
//! Without `--inject`, sweeps every fault kind at severities
//! 0.00/0.25/0.50/0.75/1.00.

use bench::{Runner, Table};
use ecohmem_core::{run_pipeline, DegradationPolicy, PipelineConfig};
use memsim::MachineConfig;
use memtrace::{FaultKind, FaultSpec};

const USAGE: &str = "robustness_curve [--app NAME] [--machine pmem6|pmem2|hbm] \
                     [--policy strict|warn|best-effort] [--seed N] [--jobs N] \
                     [--inject kind:severity]...";

fn die(msg: &str) -> ! {
    eprintln!("robustness_curve: {msg}\n\nusage: {USAGE}");
    std::process::exit(2);
}

fn main() {
    let mut app_name = "minife".to_string();
    let mut machine_name = "pmem6".to_string();
    let mut policy = DegradationPolicy::BestEffort;
    let mut seed: u64 = 0xFA_017;
    let mut injects: Vec<FaultSpec> = Vec::new();

    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].as_str();
        let Some(value) = argv.get(i + 1) else {
            die(&format!("{flag} needs a value"));
        };
        match flag {
            "--app" => app_name = value.clone(),
            "--machine" => machine_name = value.clone(),
            "--policy" => {
                policy = match value.as_str() {
                    "strict" => DegradationPolicy::Strict,
                    "warn" => DegradationPolicy::Warn,
                    "best-effort" => DegradationPolicy::BestEffort,
                    other => die(&format!("unknown policy `{other}`")),
                }
            }
            "--seed" => seed = value.parse().unwrap_or_else(|_| die("--seed wants an integer")),
            "--jobs" => {
                // Consumed by Runner::from_env; validated here for usage errors.
                value.parse::<usize>().unwrap_or_else(|_| die("--jobs wants an integer"));
            }
            "--inject" => injects.push(FaultSpec::parse(value).unwrap_or_else(|e| die(&e))),
            other => die(&format!("unknown argument `{other}`")),
        }
        i += 2;
    }
    for f in &mut injects {
        f.seed = seed;
    }

    let Some(app) = workloads::model_by_name(&app_name) else {
        die(&format!("unknown application `{app_name}`"));
    };
    let machine = match machine_name.as_str() {
        "pmem6" | "optane-pmem6" => MachineConfig::optane_pmem6(),
        "pmem2" | "optane-pmem2" => MachineConfig::optane_pmem2(),
        "hbm" | "hbm-ddr" => MachineConfig::hbm_ddr(),
        other => die(&format!("unknown machine `{other}`")),
    };

    let sweep: Vec<FaultSpec> = if injects.is_empty() {
        FaultKind::ALL
            .iter()
            .flat_map(|&k| {
                [0.0, 0.25, 0.5, 0.75, 1.0].iter().map(move |&s| FaultSpec::with_seed(k, s, seed))
            })
            .collect()
    } else {
        injects
    };

    let runner = Runner::from_env("robustness_curve");
    let rows = runner.map(sweep, |spec| {
        let mut cfg = PipelineConfig::paper_default();
        cfg.machine = machine.clone();
        cfg.policy = policy;
        cfg.faults = vec![spec];
        match run_pipeline(&app, &cfg) {
            Ok(out) => vec![
                spec.kind.name().into(),
                format!("{:.2}", spec.severity),
                "ok".into(),
                out.degraded.to_string(),
                format!("{:.3}", out.speedup()),
                out.match_stats.matched.to_string(),
                out.match_stats.unmatched.to_string(),
                out.match_stats.unresolvable.to_string(),
                out.warnings.len().to_string(),
            ],
            Err(e) => vec![
                spec.kind.name().into(),
                format!("{:.2}", spec.severity),
                format!("error: {e}"),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ],
        }
    });

    let mut t = Table::new(&[
        "fault",
        "severity",
        "status",
        "degraded",
        "speedup",
        "matched",
        "unmatched",
        "unresolvable",
        "warnings",
    ]);
    for row in rows {
        t.row(row);
    }
    println!(
        "== robustness curve: {app_name} on {}, policy {policy:?}, seed {seed:#x} ==\n{}",
        machine.name,
        t.render()
    );
    runner.report();
}
