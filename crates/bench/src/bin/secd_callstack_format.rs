//! §VIII-D: impact of the call-stack format on OpenFOAM.
//!
//! Paper reference: with human-readable call stacks, the bandwidth-aware
//! Loads+stores speedup drops from ≈1.06 to 0.66 — mostly because the
//! per-process debug information needed for translation shrinks the DRAM
//! available to the application (11 GB → 9 GB across 16 ranks), plus the
//! per-allocation translation cost. BOM (contribution VI) avoids both.

use advisor::Algorithm;
use bench::Table;
use ecohmem_core::{run_pipeline, PipelineConfig};
use memtrace::StackFormat;

fn main() {
    let runner = bench::Runner::from_env("secd_callstack_format");
    let app = workloads::openfoam::model();
    let debug_bytes = app.binmap.total_debug_info_bytes() * app.ranks as u64;
    let debug_gib = debug_bytes.div_ceil(1 << 30);

    let mut t = Table::new(&[
        "format",
        "advisor_dram_gib",
        "speedup",
        "match_overhead_s",
        "resident_debug_gib",
    ]);
    for (format, gib) in [
        (StackFormat::Bom, 11u64),
        // HR mode: the Advisor limit must leave room for the per-rank debug
        // info (the paper's 11 → 9 GB adjustment).
        (StackFormat::HumanReadable, 11 - debug_gib.max(1)),
    ] {
        let mut cfg = PipelineConfig::paper_default();
        cfg.advisor = advisor::AdvisorConfig::loads_and_stores(gib);
        cfg.algorithm = Algorithm::BandwidthAware;
        cfg.stack_format = format;
        let out = run_pipeline(&app, &cfg).unwrap();
        t.row(vec![
            format.to_string(),
            gib.to_string(),
            format!("{:.3}", out.speedup()),
            format!("{:.3}", out.placed.alloc_overhead),
            format!(
                "{:.2}",
                (app.binmap.total_debug_info_bytes() * app.ranks as u64) as f64
                    / (1u64 << 30) as f64
            ),
        ]);
    }
    println!("{}", t.render());
    println!("\npaper: BOM ≈ 1.061, human-readable ≈ 0.66");
    runner.report();
}
