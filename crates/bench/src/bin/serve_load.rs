//! `serve_load` — load harness for the multi-tenant advisor daemon core.
//!
//! Drives synthetic tenants through an in-process [`ServiceCore`] (no
//! TCP — this measures the service, not the loopback stack) and reports:
//!
//! * sustained throughput (ticks/s, events/s) at 100 and 1000 concurrent
//!   tenants;
//! * exact p50/p99 revision latency, measured driver-side from tick
//!   submission to revision delivery;
//! * **zero cross-tenant divergence**: one served tenant per trace shape
//!   is checked byte-for-byte against an isolated single-stream run
//!   (non-zero divergence is a hard failure, exit 1);
//! * stalled-reader isolation: one tenant whose outbox is never drained
//!   runs alongside normal tenants; the normal tenants' p99 must stay
//!   within 2× the solo baseline.
//!
//! ```text
//! serve_load [--workers N] [--quick] [--out FILE]
//! ```
//!
//! `--quick` skips the 1000-tenant scenario. `--out` writes the JSON
//! document (schema `ecohmem.serve_load/1`) that is committed as
//! `BENCH_serve.json`.

use advisor::{AdvisorConfig, Algorithm};
use ecohmem_obs::Json;
use ecohmem_online::durability::queue;
use ecohmem_online::{
    IncrementalAdvisor, OnlineConfig, PlacementRevision, StreamIngestor, StreamMeta,
};
use ecohmem_serve::core::{Outbound, ServeConfig, ServiceCore, TenantClient};
use ecohmem_serve::proto;
use memtrace::{
    BinaryMap, CallStack, DegradationPolicy, EventBatch, Frame, FuncId, ModuleId, ObjectId, SiteId,
    TraceEvent, TraceFile,
};
use std::sync::Mutex;
use std::time::{Duration, Instant};

const SHAPES: usize = 4;
const SITES: usize = 16;
const SAMPLES: usize = 2048;
const DRAM_GIB: u64 = 12;
const BATCH: usize = 256;
const TICK_STRIDE: usize = 4;
const MIB: u64 = 1 << 20;

/// Deterministic synthetic trace; the four shapes exercise different
/// hot-set geometries so co-tenant engines never walk in lockstep.
fn synth_trace(shape: usize) -> TraceFile {
    let stacks: Vec<(SiteId, CallStack)> = (0..SITES)
        .map(|i| {
            (
                SiteId(i as u32),
                CallStack::new(vec![Frame::new(ModuleId(0), 0x100 + 0x10 * i as u64)]),
            )
        })
        .collect();
    let base = |site: usize| ((site as u64) + 1) << 33;
    let size = |site: usize| (1 + ((site + shape) % 4) as u64) * 512 * MIB;
    let mut events = Vec::new();
    for i in 0..SITES {
        events.push(TraceEvent::Alloc {
            time: 0.001 * i as f64,
            object: ObjectId(i as u64 + 1),
            site: SiteId(i as u32),
            size: size(i),
            address: base(i),
        });
    }
    for k in 0..SAMPLES {
        let site = match shape {
            0 => k % 4,
            1 => 12 + k % 4,
            2 => (k / 128) % SITES, // hot set rotates: a phase-shifter
            _ => {
                if k % 3 == 0 {
                    k % SITES
                } else {
                    k % 2
                }
            }
        };
        events.push(TraceEvent::LoadMissSample {
            time: 0.1 + 3.8 * (k as f64) / SAMPLES as f64,
            address: base(site) + 64 * ((k % 100) as u64),
            latency_cycles: 300.0,
            function: FuncId(0),
        });
    }
    TraceFile {
        app_name: format!("synth{shape}"),
        seed: shape as u64,
        ranks: 1,
        sampling_hz: 1000.0,
        load_sample_period: 100.0,
        store_sample_period: 200.0,
        duration: 4.0,
        stacks,
        binmap: BinaryMap::default(),
        events,
    }
}

enum Op {
    Batch(Vec<TraceEvent>),
    Tick(f64),
}

fn feed_plan(trace: &TraceFile) -> Vec<Op> {
    let mut ops = Vec::new();
    let chunks: Vec<&[TraceEvent]> = trace.events.chunks(BATCH).collect();
    for (i, chunk) in chunks.iter().enumerate() {
        ops.push(Op::Batch(chunk.to_vec()));
        if (i + 1) % TICK_STRIDE == 0 {
            ops.push(Op::Tick(chunk.last().unwrap().time()));
        }
    }
    ops.push(Op::Tick(trace.duration));
    ops
}

fn isolated_run(trace: &TraceFile) -> Vec<PlacementRevision> {
    let cfg = OnlineConfig::default();
    let mut ingestor = StreamIngestor::new(StreamMeta::of(trace), DegradationPolicy::Strict, cfg);
    let mut advisor = IncrementalAdvisor::new(AdvisorConfig::loads_only(DRAM_GIB), Algorithm::Base)
        .with_hysteresis(cfg.hysteresis);
    let mut revisions = Vec::new();
    for op in feed_plan(trace) {
        match op {
            Op::Batch(events) => {
                ingestor.push_batch(&EventBatch::from_events(&events)).unwrap();
            }
            Op::Tick(now) => revisions.extend(advisor.tick(&mut ingestor, now)),
        }
    }
    revisions
}

/// Streams one tenant to completion, recording driver-side tick→revision
/// latencies. Returns (latencies µs, revision log, shed count).
fn drive_tenant(
    client: &TenantClient,
    outbox: &queue::Receiver<Outbound>,
    trace: &TraceFile,
) -> (Vec<u64>, Vec<PlacementRevision>, u64) {
    let mut lat = Vec::new();
    let mut log = Vec::new();
    let mut shed = 0u64;
    for op in feed_plan(trace) {
        match op {
            Op::Batch(events) => {
                if client.ingest(events).unwrap() == ecohmem_serve::Admitted::Shed {
                    shed += 1;
                }
            }
            Op::Tick(now) => {
                let t0 = Instant::now();
                if client.tick(now).unwrap() == ecohmem_serve::Admitted::Shed {
                    shed += 1;
                    continue;
                }
                loop {
                    match outbox.recv_deadline(Duration::from_secs(60)) {
                        Ok(Outbound::Revisions(revs)) => {
                            lat.push(t0.elapsed().as_micros() as u64);
                            log.extend(revs);
                            break;
                        }
                        Ok(Outbound::Shed { dropped }) => shed += dropped,
                        Ok(other) => panic!("unexpected outbound {other:?}"),
                        Err(e) => panic!("tick ack never arrived: {e:?}"),
                    }
                }
            }
        }
    }
    client.finish().unwrap();
    loop {
        match outbox.recv_deadline(Duration::from_secs(60)) {
            Ok(Outbound::Finished { .. }) => break,
            Ok(Outbound::Shed { dropped }) => shed += dropped,
            Ok(_) => {}
            Err(e) => panic!("Finished never arrived: {e:?}"),
        }
    }
    (lat, log, shed)
}

fn quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

struct ScenarioResult {
    tenants: usize,
    workers: usize,
    wall: Duration,
    latencies: Vec<u64>,
    events: u64,
    ticks: u64,
    revisions: u64,
    shed: u64,
    divergent: usize,
}

impl ScenarioResult {
    fn to_json(&self, name: &str) -> (String, Json) {
        let mut sorted = self.latencies.clone();
        sorted.sort_unstable();
        let wall = self.wall.as_secs_f64();
        (
            name.to_string(),
            Json::obj(vec![
                ("tenants", Json::U64(self.tenants as u64)),
                ("workers", Json::U64(self.workers as u64)),
                ("wall_seconds", Json::F64(wall)),
                ("events", Json::U64(self.events)),
                ("ticks", Json::U64(self.ticks)),
                ("revisions", Json::U64(self.revisions)),
                ("shed", Json::U64(self.shed)),
                ("events_per_sec", Json::F64(self.events as f64 / wall)),
                ("placements_per_sec", Json::F64(self.ticks as f64 / wall)),
                ("revision_latency_p50_us", Json::U64(quantile(&sorted, 0.50))),
                ("revision_latency_p99_us", Json::U64(quantile(&sorted, 0.99))),
                ("revision_latency_max_us", Json::U64(sorted.last().copied().unwrap_or(0))),
                ("divergent_tenants", Json::U64(self.divergent as u64)),
            ]),
        )
    }
}

/// Runs `tenants` synthetic tenants over `drivers` threads and checks
/// one tenant per shape against the isolated reference logs.
fn run_fleet(
    tenants: usize,
    workers: usize,
    drivers: usize,
    traces: &[TraceFile],
    reference: &[Vec<u8>],
) -> ScenarioResult {
    let core = ServiceCore::new(ServeConfig {
        workers,
        max_tenants: tenants + 8,
        inbox_capacity: 64,
        admission_timeout: Duration::from_secs(10),
        dram_gib: DRAM_GIB,
        ..ServeConfig::default()
    });
    let latencies = Mutex::new(Vec::new());
    let logs = Mutex::new(Vec::new()); // (shape, encoded log) for shape representatives
    let shed_total = Mutex::new(0u64);
    let revisions_total = Mutex::new(0u64);
    let start = Instant::now();
    std::thread::scope(|s| {
        for d in 0..drivers {
            let core = &core;
            let latencies = &latencies;
            let logs = &logs;
            let shed_total = &shed_total;
            let revisions_total = &revisions_total;
            s.spawn(move || {
                let mut local_lat = Vec::new();
                let mut local_shed = 0;
                let mut local_revs = 0u64;
                for t in (d..tenants).step_by(drivers) {
                    let shape = t % SHAPES;
                    let trace = &traces[shape];
                    let name = format!("tenant-{t}");
                    let (client, outbox) = core.register(&name, &proto::header_of(trace)).unwrap();
                    let (lat, log, shed) = drive_tenant(&client, &outbox, trace);
                    local_lat.extend(lat);
                    local_shed += shed;
                    local_revs += log.len() as u64;
                    if t < SHAPES {
                        // First tenant of each shape doubles as the
                        // divergence probe.
                        let mut bytes = Vec::new();
                        proto::encode_revisions(&log, &mut bytes);
                        logs.lock().unwrap().push((shape, bytes));
                    }
                }
                latencies.lock().unwrap().extend(local_lat);
                *shed_total.lock().unwrap() += local_shed;
                *revisions_total.lock().unwrap() += local_revs;
            });
        }
    });
    let wall = start.elapsed();
    core.shutdown();

    let divergent =
        logs.lock().unwrap().iter().filter(|(shape, bytes)| bytes != &reference[*shape]).count();
    let latencies = latencies.into_inner().unwrap();
    let events_per_tenant = traces[0].events.len() as u64;
    let ticks = latencies.len() as u64;
    ScenarioResult {
        tenants,
        workers,
        wall,
        events: events_per_tenant * tenants as u64,
        ticks,
        revisions: revisions_total.into_inner().unwrap(),
        shed: shed_total.into_inner().unwrap(),
        latencies,
        divergent,
    }
}

/// One tenant alone on the pool — the latency baseline the stalled-
/// reader scenario is judged against.
fn run_solo(workers: usize, traces: &[TraceFile]) -> Vec<u64> {
    let core = ServiceCore::new(ServeConfig {
        workers,
        dram_gib: DRAM_GIB,
        admission_timeout: Duration::from_secs(10),
        ..ServeConfig::default()
    });
    let (client, outbox) = core.register("solo", &proto::header_of(&traces[0])).unwrap();
    let (mut lat, _log, _shed) = drive_tenant(&client, &outbox, &traces[0]);
    core.shutdown();
    lat.sort_unstable();
    lat
}

/// Normal tenants alongside one tenant whose outbox nobody drains.
///
/// The stalled tenant stays *live* the whole time — streaming its trace,
/// then ticking continuously (throttled) into a capacity-1 outbox that
/// nobody reads. The normal tenants are driven one at a time so the
/// measurement captures head-of-line blocking, not CPU contention from
/// a pile of driver threads; any p99 inflation versus solo is therefore
/// the stalled tenant's doing.
fn run_stalled(workers: usize, traces: &[TraceFile]) -> (Vec<u64>, u64) {
    let core = ServiceCore::new(ServeConfig {
        workers,
        outbox_capacity: 1,
        dram_gib: DRAM_GIB,
        admission_timeout: Duration::from_secs(10),
        ..ServeConfig::default()
    });
    let (stalled, stalled_rx) = core.register("stalled", &proto::header_of(&traces[1])).unwrap();
    let stalled_trace = &traces[1];
    let latencies = Mutex::new(Vec::new());
    let done = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|s| {
        let stalled = &stalled;
        let done = &done;
        s.spawn(move || {
            for op in feed_plan(stalled_trace) {
                match op {
                    Op::Batch(events) => {
                        let _ = stalled.ingest(events);
                    }
                    Op::Tick(now) => {
                        let _ = stalled.tick(now);
                    }
                }
            }
            // Keep the tenant hot (and its outbox overflowing) until the
            // normal fleet is done — a realistic tick cadence, not a spin.
            let mut now = stalled_trace.duration;
            while !done.load(std::sync::atomic::Ordering::Relaxed) {
                now += 0.1;
                if stalled.tick(now).is_err() {
                    break;
                }
                std::thread::sleep(Duration::from_micros(500));
            }
            let _ = stalled.finish();
        });
        for t in 0..8 {
            let trace = &traces[t % SHAPES];
            let name = format!("normal-{t}");
            let (client, outbox) = core.register(&name, &proto::header_of(trace)).unwrap();
            let (lat, _, _) = drive_tenant(&client, &outbox, trace);
            latencies.lock().unwrap().extend(lat);
        }
        done.store(true, std::sync::atomic::Ordering::Relaxed);
    });
    let drops = stalled.stalled_drops();
    drop(stalled_rx);
    core.shutdown();
    let mut lat = latencies.into_inner().unwrap();
    lat.sort_unstable();
    (lat, drops)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opt = |key: &str| args.iter().position(|a| a == key).and_then(|i| args.get(i + 1)).cloned();
    let workers: usize = opt("--workers").and_then(|v| v.parse().ok()).unwrap_or(4);
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = opt("--out");

    let traces: Vec<TraceFile> = (0..SHAPES).map(synth_trace).collect();
    let reference: Vec<Vec<u8>> = traces
        .iter()
        .map(|t| {
            let mut bytes = Vec::new();
            proto::encode_revisions(&isolated_run(t), &mut bytes);
            bytes
        })
        .collect();
    eprintln!("serve_load: solo baseline (workers={workers})");
    let solo = run_solo(workers, &traces);
    let solo_p99 = quantile(&solo, 0.99);

    let mut scenarios = Vec::new();
    for &n in &[100usize, 1000] {
        if quick && n == 1000 {
            eprintln!("serve_load: --quick, skipping {n}-tenant scenario");
            continue;
        }
        eprintln!("serve_load: {n} tenants (workers={workers})");
        let r = run_fleet(n, workers, 8.min(n), &traces, &reference);
        let total_failures = r.divergent;
        scenarios.push(r.to_json(&format!("tenants_{n}")));
        if total_failures > 0 {
            eprintln!(
                "serve_load: FAIL — {total_failures} tenant log(s) diverged from isolated runs"
            );
            std::process::exit(1);
        }
    }

    eprintln!("serve_load: stalled-reader isolation (workers={workers})");
    let (normal, stalled_drops) = run_stalled(workers, &traces);
    let normal_p99 = quantile(&normal, 0.99);
    // The bar: 2× the solo p99, with a 1 ms jitter floor so a sub-200 µs
    // solo baseline doesn't turn scheduler noise into a failure.
    let bar_us = solo_p99.saturating_mul(2).max(solo_p99 + 1000);
    let isolation_ok = normal_p99 <= bar_us;
    scenarios.push((
        "stalled_reader".to_string(),
        Json::obj(vec![
            ("normal_tenants", Json::U64(8)),
            ("stalled_drops", Json::U64(stalled_drops)),
            ("solo_p99_us", Json::U64(solo_p99)),
            ("normal_p99_us", Json::U64(normal_p99)),
            ("bar_us", Json::U64(bar_us)),
            ("within_2x_solo", Json::Bool(isolation_ok)),
        ]),
    ));
    if !isolation_ok {
        eprintln!(
            "serve_load: WARN — normal-tenant p99 {normal_p99}µs vs solo {solo_p99}µs exceeds 2×"
        );
    }

    let doc = Json::obj(vec![
        ("schema", Json::str("ecohmem.serve_load/1")),
        ("label", Json::str("serve_load")),
        ("workers", Json::U64(workers as u64)),
        ("shapes", Json::U64(SHAPES as u64)),
        ("events_per_tenant", Json::U64(traces[0].events.len() as u64)),
        ("solo_p50_us", Json::U64(quantile(&solo, 0.50))),
        ("solo_p99_us", Json::U64(solo_p99)),
        ("scenarios", Json::Obj(scenarios)),
    ]);
    let text = doc.to_string_pretty();
    match out_path {
        Some(path) => {
            std::fs::write(&path, text + "\n").expect("write --out");
            eprintln!("serve_load: wrote {path}");
        }
        None => println!("{text}"),
    }
}
