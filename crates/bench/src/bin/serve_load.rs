//! `serve_load` — load harness for the multi-tenant advisor daemon.
//!
//! Drives synthetic tenants through an in-process [`ServiceCore`]
//! (measuring the service, not the loopback stack) and reports:
//!
//! * sustained throughput (ticks/s, events/s) at 100 and 1000 concurrent
//!   tenants;
//! * exact p50/p99 revision latency, measured driver-side from tick
//!   submission to revision delivery;
//! * **zero cross-tenant divergence**: one served tenant per trace shape
//!   is checked byte-for-byte against an isolated single-stream run
//!   (non-zero divergence is a hard failure, exit 1);
//! * stalled-reader isolation: one tenant whose outbox is never drained
//!   runs alongside normal tenants; the normal tenants' p99 must stay
//!   within 2× the solo baseline.
//!
//! The headline scenario goes the rest of the way: **10,000 tenants over
//! real TCP** against the event-driven reactor, driven by the
//! single-threaded [`ecohmem_serve::blast`] poll loop so the driver
//! never spawns per-tenant threads either. The daemon runs
//! `io-threads + workers` threads throughout; zero divergence on the
//! per-shape probes is a hard failure, exit 1.
//!
//! ```text
//! serve_load [--workers N] [--io-threads N] [--window N] [--quick] [--out FILE]
//! ```
//!
//! `--quick` skips the 1000- and 10,000-tenant scenarios. `--out` writes
//! the JSON document (schema `ecohmem.serve_load/1`) that is committed
//! as `BENCH_serve.json`.

use bench::serve_scenario::{self, feed_plan, reference_logs, shape_traces, Op, DRAM_GIB, SHAPES};
use ecohmem_obs::Json;
use ecohmem_online::durability::queue;
use ecohmem_online::PlacementRevision;
use ecohmem_serve::core::{Outbound, ServeConfig, ServiceCore, TenantClient};
use ecohmem_serve::proto;
use memtrace::TraceFile;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Streams one tenant to completion, recording driver-side tick→revision
/// latencies. Returns (latencies µs, revision log, shed count).
fn drive_tenant(
    client: &TenantClient,
    outbox: &queue::Receiver<Outbound>,
    trace: &TraceFile,
) -> (Vec<u64>, Vec<PlacementRevision>, u64) {
    let mut lat = Vec::new();
    let mut log = Vec::new();
    let mut shed = 0u64;
    for op in feed_plan(trace) {
        match op {
            Op::Batch(events) => {
                if client.ingest(events).unwrap() == ecohmem_serve::Admitted::Shed {
                    shed += 1;
                }
            }
            Op::Tick(now) => {
                let t0 = Instant::now();
                if client.tick(now).unwrap() == ecohmem_serve::Admitted::Shed {
                    shed += 1;
                    continue;
                }
                loop {
                    match outbox.recv_deadline(Duration::from_secs(60)) {
                        Ok(Outbound::Revisions(revs)) => {
                            lat.push(t0.elapsed().as_micros() as u64);
                            log.extend(revs);
                            break;
                        }
                        Ok(Outbound::Shed { dropped }) => shed += dropped,
                        Ok(other) => panic!("unexpected outbound {other:?}"),
                        Err(e) => panic!("tick ack never arrived: {e:?}"),
                    }
                }
            }
        }
    }
    client.finish().unwrap();
    loop {
        match outbox.recv_deadline(Duration::from_secs(60)) {
            Ok(Outbound::Finished { .. }) => break,
            Ok(Outbound::Shed { dropped }) => shed += dropped,
            Ok(_) => {}
            Err(e) => panic!("Finished never arrived: {e:?}"),
        }
    }
    (lat, log, shed)
}

fn quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

struct ScenarioResult {
    tenants: usize,
    workers: usize,
    wall: Duration,
    latencies: Vec<u64>,
    events: u64,
    ticks: u64,
    revisions: u64,
    shed: u64,
    divergent: usize,
}

impl ScenarioResult {
    fn to_json(&self, name: &str) -> (String, Json) {
        let mut sorted = self.latencies.clone();
        sorted.sort_unstable();
        let wall = self.wall.as_secs_f64();
        (
            name.to_string(),
            Json::obj(vec![
                ("tenants", Json::U64(self.tenants as u64)),
                ("workers", Json::U64(self.workers as u64)),
                ("wall_seconds", Json::F64(wall)),
                ("events", Json::U64(self.events)),
                ("ticks", Json::U64(self.ticks)),
                ("revisions", Json::U64(self.revisions)),
                ("shed", Json::U64(self.shed)),
                ("events_per_sec", Json::F64(self.events as f64 / wall)),
                ("placements_per_sec", Json::F64(self.ticks as f64 / wall)),
                ("revision_latency_p50_us", Json::U64(quantile(&sorted, 0.50))),
                ("revision_latency_p99_us", Json::U64(quantile(&sorted, 0.99))),
                ("revision_latency_max_us", Json::U64(sorted.last().copied().unwrap_or(0))),
                ("divergent_tenants", Json::U64(self.divergent as u64)),
            ]),
        )
    }
}

/// Runs `tenants` synthetic tenants over `drivers` threads and checks
/// one tenant per shape against the isolated reference logs.
fn run_fleet(
    tenants: usize,
    workers: usize,
    drivers: usize,
    traces: &[TraceFile],
    reference: &[Vec<u8>],
) -> ScenarioResult {
    let core = ServiceCore::new(ServeConfig {
        workers,
        max_tenants: tenants + 8,
        inbox_capacity: 64,
        admission_timeout: Duration::from_secs(10),
        dram_gib: DRAM_GIB,
        ..ServeConfig::default()
    });
    let latencies = Mutex::new(Vec::new());
    let logs = Mutex::new(Vec::new()); // (shape, encoded log) for shape representatives
    let shed_total = Mutex::new(0u64);
    let revisions_total = Mutex::new(0u64);
    let start = Instant::now();
    std::thread::scope(|s| {
        for d in 0..drivers {
            let core = &core;
            let latencies = &latencies;
            let logs = &logs;
            let shed_total = &shed_total;
            let revisions_total = &revisions_total;
            s.spawn(move || {
                let mut local_lat = Vec::new();
                let mut local_shed = 0;
                let mut local_revs = 0u64;
                for t in (d..tenants).step_by(drivers) {
                    let shape = t % SHAPES;
                    let trace = &traces[shape];
                    let name = format!("tenant-{t}");
                    let (client, outbox) = core.register(&name, &proto::header_of(trace)).unwrap();
                    let (lat, log, shed) = drive_tenant(&client, &outbox, trace);
                    local_lat.extend(lat);
                    local_shed += shed;
                    local_revs += log.len() as u64;
                    if t < SHAPES {
                        // First tenant of each shape doubles as the
                        // divergence probe.
                        let mut bytes = Vec::new();
                        proto::encode_revisions(&log, &mut bytes);
                        logs.lock().unwrap().push((shape, bytes));
                    }
                }
                latencies.lock().unwrap().extend(local_lat);
                *shed_total.lock().unwrap() += local_shed;
                *revisions_total.lock().unwrap() += local_revs;
            });
        }
    });
    let wall = start.elapsed();
    core.shutdown();

    let divergent =
        logs.lock().unwrap().iter().filter(|(shape, bytes)| bytes != &reference[*shape]).count();
    let latencies = latencies.into_inner().unwrap();
    let events_per_tenant = traces[0].events.len() as u64;
    let ticks = latencies.len() as u64;
    ScenarioResult {
        tenants,
        workers,
        wall,
        events: events_per_tenant * tenants as u64,
        ticks,
        revisions: revisions_total.into_inner().unwrap(),
        shed: shed_total.into_inner().unwrap(),
        latencies,
        divergent,
    }
}

/// The headline scenario: `tenants` sessions over real TCP against the
/// reactor, all driven from one blast thread as a rolling window sized
/// to the fd budget. Exits the process on any failed session.
fn run_tcp_fleet(
    tenants: usize,
    workers: usize,
    io_threads: usize,
    window_override: Option<usize>,
    traces: &[TraceFile],
    reference: &[Vec<u8>],
) -> (String, Json) {
    let r = serve_scenario::run_tcp_fleet(
        tenants,
        workers,
        io_threads,
        window_override,
        traces,
        reference,
    );
    if r.failed > 0 {
        eprintln!("serve_load: FAIL — {} session(s) failed: {:?}", r.failed, r.errors);
        std::process::exit(1);
    }
    if r.divergent > 0 {
        eprintln!(
            "serve_load: FAIL — {} TCP probe log(s) diverged from isolated runs",
            r.divergent
        );
        std::process::exit(1);
    }
    let wall = r.elapsed.as_secs_f64();
    (
        format!("tenants_{tenants}"),
        Json::obj(vec![
            ("tenants", Json::U64(tenants as u64)),
            ("workers", Json::U64(workers as u64)),
            ("io_threads", Json::U64(io_threads as u64)),
            ("transport", Json::str("tcp")),
            ("concurrency_window", Json::U64(r.window as u64)),
            ("wall_seconds", Json::F64(wall)),
            ("events", Json::U64(r.events)),
            ("revision_frames", Json::U64(r.revision_frames)),
            ("shed", Json::U64(r.shed)),
            ("events_per_sec", Json::F64(r.events_per_sec())),
            ("divergent_tenants", Json::U64(r.divergent as u64)),
        ]),
    )
}

/// One tenant alone on the pool — the latency baseline the stalled-
/// reader scenario is judged against.
fn run_solo(workers: usize, traces: &[TraceFile]) -> Vec<u64> {
    let core = ServiceCore::new(ServeConfig {
        workers,
        dram_gib: DRAM_GIB,
        admission_timeout: Duration::from_secs(10),
        ..ServeConfig::default()
    });
    let (client, outbox) = core.register("solo", &proto::header_of(&traces[0])).unwrap();
    let (mut lat, _log, _shed) = drive_tenant(&client, &outbox, &traces[0]);
    core.shutdown();
    lat.sort_unstable();
    lat
}

/// Normal tenants alongside one tenant whose outbox nobody drains.
///
/// The stalled tenant stays *live* the whole time — streaming its trace,
/// then ticking continuously (throttled) into a capacity-1 outbox that
/// nobody reads. The normal tenants are driven one at a time so the
/// measurement captures head-of-line blocking, not CPU contention from
/// a pile of driver threads; any p99 inflation versus solo is therefore
/// the stalled tenant's doing.
fn run_stalled(workers: usize, traces: &[TraceFile]) -> (Vec<u64>, u64) {
    let core = ServiceCore::new(ServeConfig {
        workers,
        outbox_capacity: 1,
        dram_gib: DRAM_GIB,
        admission_timeout: Duration::from_secs(10),
        ..ServeConfig::default()
    });
    let (stalled, stalled_rx) = core.register("stalled", &proto::header_of(&traces[1])).unwrap();
    let stalled_trace = &traces[1];
    let latencies = Mutex::new(Vec::new());
    let done = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|s| {
        let stalled = &stalled;
        let done = &done;
        s.spawn(move || {
            for op in feed_plan(stalled_trace) {
                match op {
                    Op::Batch(events) => {
                        let _ = stalled.ingest(events);
                    }
                    Op::Tick(now) => {
                        let _ = stalled.tick(now);
                    }
                }
            }
            // Keep the tenant hot (and its outbox overflowing) until the
            // normal fleet is done — a realistic tick cadence, not a spin.
            let mut now = stalled_trace.duration;
            while !done.load(std::sync::atomic::Ordering::Relaxed) {
                now += 0.1;
                if stalled.tick(now).is_err() {
                    break;
                }
                std::thread::sleep(Duration::from_micros(500));
            }
            let _ = stalled.finish();
        });
        for t in 0..8 {
            let trace = &traces[t % SHAPES];
            let name = format!("normal-{t}");
            let (client, outbox) = core.register(&name, &proto::header_of(trace)).unwrap();
            let (lat, _, _) = drive_tenant(&client, &outbox, trace);
            latencies.lock().unwrap().extend(lat);
        }
        done.store(true, std::sync::atomic::Ordering::Relaxed);
    });
    let drops = stalled.stalled_drops();
    drop(stalled_rx);
    core.shutdown();
    let mut lat = latencies.into_inner().unwrap();
    lat.sort_unstable();
    (lat, drops)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opt = |key: &str| args.iter().position(|a| a == key).and_then(|i| args.get(i + 1)).cloned();
    let workers: usize = opt("--workers").and_then(|v| v.parse().ok()).unwrap_or(4);
    let io_threads: usize = opt("--io-threads").and_then(|v| v.parse().ok()).unwrap_or(2);
    let window: Option<usize> = opt("--window").and_then(|v| v.parse().ok());
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = opt("--out");

    let traces: Vec<TraceFile> = shape_traces();
    let reference: Vec<Vec<u8>> = reference_logs(&traces);
    eprintln!("serve_load: solo baseline (workers={workers})");
    let solo = run_solo(workers, &traces);
    let solo_p99 = quantile(&solo, 0.99);

    let mut scenarios = Vec::new();
    for &n in &[100usize, 1000] {
        if quick && n == 1000 {
            eprintln!("serve_load: --quick, skipping {n}-tenant scenario");
            continue;
        }
        eprintln!("serve_load: {n} tenants (workers={workers})");
        let r = run_fleet(n, workers, 8.min(n), &traces, &reference);
        let total_failures = r.divergent;
        scenarios.push(r.to_json(&format!("tenants_{n}")));
        if total_failures > 0 {
            eprintln!(
                "serve_load: FAIL — {total_failures} tenant log(s) diverged from isolated runs"
            );
            std::process::exit(1);
        }
    }

    if quick {
        eprintln!("serve_load: --quick, skipping 10000-tenant TCP scenario");
    } else {
        eprintln!(
            "serve_load: 10000 tenants over TCP (io-threads={io_threads}, workers={workers})"
        );
        scenarios.push(run_tcp_fleet(10_000, workers, io_threads, window, &traces, &reference));
    }

    eprintln!("serve_load: stalled-reader isolation (workers={workers})");
    let (normal, stalled_drops) = run_stalled(workers, &traces);
    let normal_p99 = quantile(&normal, 0.99);
    // The bar: 2× the solo p99, with a 1 ms jitter floor so a sub-200 µs
    // solo baseline doesn't turn scheduler noise into a failure.
    let bar_us = solo_p99.saturating_mul(2).max(solo_p99 + 1000);
    let isolation_ok = normal_p99 <= bar_us;
    scenarios.push((
        "stalled_reader".to_string(),
        Json::obj(vec![
            ("normal_tenants", Json::U64(8)),
            ("stalled_drops", Json::U64(stalled_drops)),
            ("solo_p99_us", Json::U64(solo_p99)),
            ("normal_p99_us", Json::U64(normal_p99)),
            ("bar_us", Json::U64(bar_us)),
            ("within_2x_solo", Json::Bool(isolation_ok)),
        ]),
    ));
    if !isolation_ok {
        eprintln!(
            "serve_load: WARN — normal-tenant p99 {normal_p99}µs vs solo {solo_p99}µs exceeds 2×"
        );
    }

    let doc = Json::obj(vec![
        ("schema", Json::str("ecohmem.serve_load/1")),
        ("label", Json::str("serve_load")),
        ("workers", Json::U64(workers as u64)),
        ("shapes", Json::U64(SHAPES as u64)),
        ("events_per_tenant", Json::U64(traces[0].events.len() as u64)),
        ("solo_p50_us", Json::U64(quantile(&solo, 0.50))),
        ("solo_p99_us", Json::U64(solo_p99)),
        ("scenarios", Json::Obj(scenarios)),
    ]);
    let text = doc.to_string_pretty();
    match out_path {
        Some(path) => {
            std::fs::write(&path, text + "\n").expect("write --out");
            eprintln!("serve_load: wrote {path}");
        }
        None => println!("{text}"),
    }
}
