//! Table I: the two supported call-stack formats of a placement report
//! (human-readable `file:line` pairs vs binary-object-matching
//! `module!offset` pairs), rendered from the same MiniFE placement.

use advisor::{Advisor, AdvisorConfig, Algorithm};
use memsim::{ExecMode, FixedTier, MachineConfig};
use memtrace::{StackFormat, TierId};
use profiler::{analyze, profile_run, ProfilerConfig};

fn main() {
    let runner = bench::Runner::from_env("table1_formats");
    let app = workloads::minife::model();
    let machine = MachineConfig::optane_pmem6();
    let (trace, _) = profile_run(
        &app,
        &machine,
        ExecMode::MemoryMode,
        &mut FixedTier::new(TierId::PMEM),
        &ProfilerConfig::default(),
    );
    let profile = analyze(&trace).unwrap();
    let advisor = Advisor::new(AdvisorConfig::loads_only(12));
    let tier_name = |t: TierId| machine.tier(t).name.clone();

    let bom = advisor.advise(&profile, Algorithm::Base, StackFormat::Bom).unwrap();
    println!("== BOM format (contribution VI) ==");
    for line in bom.render_text(&profile.binmap, tier_name).lines().take(6) {
        println!("{line}");
    }

    let hr = advisor.advise(&profile, Algorithm::Base, StackFormat::HumanReadable).unwrap();
    println!("\n== human-readable format ==");
    let tier_name = |t: TierId| machine.tier(t).name.clone();
    for line in hr.render_text(&profile.binmap, tier_name).lines().take(6) {
        println!("{line}");
    }
    runner.report();
}
