//! Tables II, III and IV: the bandwidth-aware classifier's view of LULESH.
//!
//! * Table II — allocation-time vs execution-time bandwidth region
//!   (B_low / B_mid / B_high at <20%, 20–40%, >40% of peak) per object
//!   group;
//! * Table III — allocations per object and lifetime per group;
//! * Table IV — the resulting Fitting / Streaming-D / Thrashing categories.

use advisor::{Advisor, AdvisorConfig, Algorithm, Category};
use bench::Table;
use memsim::{ExecMode, FixedTier, MachineConfig};
use memtrace::{SiteId, TierId};
use profiler::{analyze, profile_run, ProfilerConfig};

fn region(bw: f64, peak: f64) -> &'static str {
    if bw < 0.2 * peak {
        "B_low"
    } else if bw < 0.4 * peak {
        "B_mid"
    } else {
        "B_high"
    }
}

fn main() {
    let runner = bench::Runner::from_env("table234_classify");
    let app = workloads::lulesh::model();
    let machine = MachineConfig::optane_pmem6();
    let (trace, _) = profile_run(
        &app,
        &machine,
        ExecMode::MemoryMode,
        &mut FixedTier::new(TierId::PMEM),
        &ProfilerConfig::default(),
    );
    let profile = analyze(&trace).unwrap();
    let advisor = Advisor::new(AdvisorConfig::loads_only(12));
    let (_, classification) = advisor.assign(&profile, Algorithm::BandwidthAware);
    let classification = classification.unwrap();

    // Representative groups mirroring the paper's object-id ranges.
    let groups: Vec<(&str, Vec<SiteId>)> = vec![
        ("nodal persistents (paper 114-134)", workloads::lulesh::donor_sites()),
        ("element arrays (paper 139-146)", {
            let d = workloads::lulesh::persistent_sites();
            d[d.len() - 8..].to_vec()
        }),
        ("temporaries (paper 168-179)", workloads::lulesh::temp_sites()),
    ];

    println!("== Table II: bandwidth regions ==");
    let mut t = Table::new(&["group", "alloc_region", "exec_region"]);
    for (name, sites) in &groups {
        let profs: Vec<_> = sites.iter().filter_map(|s| profile.site(*s)).collect();
        let n = profs.len() as f64;
        let alloc_bw = profs.iter().map(|p| p.bw_at_alloc).sum::<f64>() / n;
        let exec_bw = profs.iter().map(|p| p.avg_bw).sum::<f64>() / n;
        // "Execution region" in the paper marks the system regions the
        // object lives through; approximate with the region of the system
        // peak for long-lived objects and the allocation region for the
        // short-lived ones.
        let exec = if profs[0].alloc_count <= 2 {
            "B_low..B_high (roams)".to_string()
        } else {
            region(exec_bw.max(alloc_bw), profile.peak_bw).to_string()
        };
        t.row(vec![name.to_string(), region(alloc_bw, profile.peak_bw).into(), exec]);
    }
    println!("{}", t.render());

    println!("\n== Table III: allocations and lifetime ==");
    let mut t = Table::new(&["group", "allocs_per_site", "avg_lifetime_s"]);
    for (name, sites) in &groups {
        let profs: Vec<_> = sites.iter().filter_map(|s| profile.site(*s)).collect();
        let n = profs.len() as f64;
        let allocs = profs.iter().map(|p| p.alloc_count as f64).sum::<f64>() / n;
        let lifetime =
            profs.iter().map(|p| p.total_lifetime() / p.alloc_count as f64).sum::<f64>() / n;
        t.row(vec![name.to_string(), format!("{allocs:.0}"), format!("{lifetime:.1}")]);
    }
    println!("{}", t.render());

    println!("\n== Table IV: classification ==");
    let mut t = Table::new(&["category", "sites", "example_sites"]);
    for cat in
        [Category::Fitting, Category::StreamingD, Category::Thrashing, Category::Unclassified]
    {
        let sites = classification.sites_of(cat);
        let examples: Vec<String> = sites.iter().take(5).map(|s| s.to_string()).collect();
        t.row(vec![format!("{cat:?}"), sites.len().to_string(), examples.join(",")]);
    }
    println!("{}", t.render());
    println!(
        "\nthresholds: T_ALLOC=2, T_PMEMLOW={:.2e} B/s (20% of peak), T_PMEMHIGH={:.2e} B/s (40% of peak)",
        classification.low_bw, classification.high_bw
    );
    runner.report();
}
