//! Table V: characteristics of the applications used in the evaluation,
//! from the workload models (version, ranks/threads, input, memory
//! high-water mark).

use bench::Table;

fn main() {
    let runner = bench::Runner::from_env("table5_apps");
    let mut t = Table::new(&[
        "app",
        "version",
        "ranks/threads",
        "input",
        "hwm_mb_rank(paper)",
        "hwm_mb_rank(model)",
    ]);
    for (spec, model) in workloads::all_specs().iter().zip(workloads::all_models()) {
        let model_hwm = model.high_water_mark() / 1_000_000 / spec.ranks as u64;
        t.row(vec![
            spec.name.into(),
            spec.version.into(),
            format!("{}/{}", spec.ranks, spec.threads),
            spec.input.into(),
            spec.hwm_mb_per_rank.to_string(),
            model_hwm.to_string(),
        ]);
    }
    println!("{}", t.render());
    runner.report();
}
