//! Table VI: memory-related profiling of the Memory Mode executions —
//! memory-bound pipeline slots and DRAM-cache hit ratio per
//! mini-application (VTune numbers in the paper).
//!
//! Paper reference points: MiniFE 90.2%/39.9%, MiniMD 41.5%/61.5%,
//! LULESH 65.5%/61.7%, HPCG 80.5%/54.4%, CloverLeaf3D 93.5%/59.2%
//! (plus LAMMPS 29.2%/63.5% from §VIII-C).
//!
//! Usage: `table6_memstats [--jobs N]`.

use baselines::run_memory_mode;
use bench::{Runner, Table};
use memsim::MachineConfig;

fn main() {
    let runner = Runner::from_env("table6_memstats");
    let machine = MachineConfig::optane_pmem6();
    let paper: &[(&str, f64, f64)] = &[
        ("minife", 90.2, 39.9),
        ("minimd", 41.5, 61.5),
        ("lulesh", 65.5, 61.7),
        ("hpcg", 80.5, 54.4),
        ("cloverleaf3d", 93.5, 59.2),
        ("lammps", 29.2, 63.5),
    ];
    let rows = runner.map(paper.to_vec(), |(name, p_mb, p_hit)| {
        let app = workloads::model_by_name(name).unwrap();
        let r = run_memory_mode(&app, &machine);
        vec![
            name.into(),
            format!("{:.1}", 100.0 * r.memory_bound_fraction()),
            format!("{p_mb:.1}"),
            format!("{:.1}", 100.0 * r.dram_cache_hit_ratio()),
            format!("{p_hit:.1}"),
        ]
    });
    let mut t =
        Table::new(&["app", "membound_%", "membound_paper_%", "dram_cache_hit_%", "hit_paper_%"]);
    for row in rows {
        t.row(row);
    }
    println!("{}", t.render());
    runner.report();
}
