//! Table VII: CloverLeaf3D per-function IPC and average load latency of the
//! FlexMalloc execution, relative to memory mode.
//!
//! Paper shape: functions whose data landed in DRAM show >100% relative IPC
//! and <100% relative latency (advec_cell, calc_dt, flux_calc, pdv,
//! viscosity); functions stuck on PMem-resident data show the inverse
//! (ideal_gas, pack_message, reset_field, update_halo).

use bench::{Runner, Table};
use ecohmem_core::{run_pipeline, PipelineConfig};

fn main() {
    let runner = Runner::from_env("table7_cloverleaf");
    let app = workloads::cloverleaf3d::model();
    let mut cfg = PipelineConfig::paper_default();
    cfg.advisor = advisor::AdvisorConfig::loads_and_stores(12);
    // A single pipeline invocation: the runner still memoizes its profiling
    // and Memory-Mode runs and reports the cache stats at exit.
    let out = runner.map(vec![&app], |app| run_pipeline(app, &cfg).unwrap()).remove(0);

    let mut t = Table::new(&["function", "rel_ipc_%", "rel_latency_%"]);
    let mut rows: Vec<(String, f64, f64)> = Vec::new();
    for (fid, placed_stats) in &out.placed.functions {
        let Some(mm_stats) = out.memory_mode.function(*fid) else { continue };
        if placed_stats.instructions <= 0.0 || mm_stats.ipc() <= 0.0 {
            continue;
        }
        let rel_ipc = 100.0 * placed_stats.ipc() / mm_stats.ipc();
        let rel_lat = if mm_stats.avg_load_latency_ns() > 0.0 {
            100.0 * placed_stats.avg_load_latency_ns() / mm_stats.avg_load_latency_ns()
        } else {
            f64::NAN
        };
        rows.push((app.function_name(*fid).to_string(), rel_ipc, rel_lat));
    }
    rows.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    for (name, ipc, lat) in &rows {
        t.row(vec![name.clone(), format!("{ipc:.1}"), format!("{lat:.1}")]);
    }
    println!("{}", t.render());

    // The paper's observation is the inverse correlation between relative
    // IPC and relative latency across the promoted vs demoted function
    // groups. (Our analytic loaded-latency model saturates DRAM during
    // bandwidth-bound placed phases, so absolute latency ratios compress;
    // the group *ordering* is the preserved signal — see EXPERIMENTS.md.)
    let promoted = [
        "advec_cell_kernel",
        "calc_dt_kernel",
        "flux_calc_kernel",
        "pdv_kernel",
        "viscosity_kernel",
    ];
    let demoted = [
        "ideal_gas_kernel",
        "clover_pack_message_top",
        "clover_pack_message_front",
        "reset_field_kernel",
        "update_halo_kernel",
    ];
    let group = |names: &[&str], idx: usize| -> f64 {
        let v: Vec<f64> = rows
            .iter()
            .filter(|(n, ..)| names.contains(&n.as_str()))
            .map(|r| if idx == 0 { r.1 } else { r.2 })
            .collect();
        v.iter().sum::<f64>() / v.len().max(1) as f64
    };
    println!(
        "\npromoted group: rel IPC {:.1}%, rel latency {:.1}%\n\
         demoted group:  rel IPC {:.1}%, rel latency {:.1}%\n\
         inverse correlation holds: {} (paper: promoted IPC 122-212%, latency 44-78%)",
        group(&promoted, 0),
        group(&promoted, 1),
        group(&demoted, 0),
        group(&demoted, 1),
        group(&promoted, 0) > group(&demoted, 0) && group(&promoted, 1) < group(&demoted, 1),
    );
    runner.report();
}
