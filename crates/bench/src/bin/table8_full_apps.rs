//! Table VIII: speedup of OpenFOAM and LAMMPS w.r.t. memory mode, for the
//! main (density) and bandwidth-aware HMem Advisor algorithms under both
//! metric configurations — plus the §VIII-C LULESH numbers (7% → 19%).
//!
//! Paper reference points: OpenFOAM main ≈ 0.50/0.52, bandwidth-aware ≈
//! 1.056/1.061; LAMMPS ≈ 0.96–0.97 everywhere; LULESH base 1.07 →
//! bandwidth-aware 1.19.
//!
//! Usage: `table8_full_apps [--jobs N]`.

use advisor::Algorithm;
use bench::{Runner, Table};
use ecohmem_core::experiments::{run_cell, Metrics, SweepSpec};
use memsim::MachineConfig;

fn main() {
    let runner = Runner::from_env("table8_full_apps");
    let machine = MachineConfig::optane_pmem6();
    // DRAM limits per the paper: OpenFOAM 11 GB; LAMMPS 14 GB (main) /
    // 16 GB (bw-aware); LULESH 12 GB.
    let apps: Vec<(memsim::AppModel, u64, u64)> = vec![
        (workloads::openfoam::model(), 11, 11),
        (workloads::lammps::model(), 14, 16),
        (workloads::lulesh::model(), 12, 12),
    ];

    let mut grid = Vec::new();
    for (app, main_gib, bw_gib) in &apps {
        for &(algorithm, gib, alg_label) in &[
            (Algorithm::Base, *main_gib, "main"),
            (Algorithm::BandwidthAware, *bw_gib, "bw-aware"),
        ] {
            for &metrics in &[Metrics::Loads, Metrics::LoadsStores] {
                grid.push((app, algorithm, gib, alg_label, metrics));
            }
        }
    }
    let rows = runner.map(grid, |(app, algorithm, gib, alg_label, metrics)| {
        let cell = run_cell(app, &machine, SweepSpec { dram_gib: gib, metrics, algorithm });
        vec![
            app.name.clone(),
            alg_label.into(),
            metrics.label().into(),
            gib.to_string(),
            format!("{:.3}", cell.speedup),
        ]
    });

    let mut t = Table::new(&["app", "algorithm", "metrics", "dram_gib", "speedup"]);
    for row in rows {
        t.row(row);
    }
    println!("{}", t.render());
    runner.report();
}
