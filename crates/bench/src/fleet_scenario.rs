//! The pinned fleet scenario shared by the `fleet_sweep` bench, the
//! `perf_smoke` fleet gate, and the golden snapshot test: one definition,
//! so the frozen `BENCH_fleet.json` baseline and the fresh runs it gates
//! can never drift apart silently.

use memsim::fleet::{ChurnConfig, FleetConfig, SchedulerPolicy};
use memsim::{MachineConfig, TenantSpec};
use workloads::colocations;

/// Nodes in the default sweep scenario.
pub const DEFAULT_NODES: u32 = 16;
/// Co-resident tenants per node.
pub const DEFAULT_PER_NODE: usize = 4;
/// Churn seed; override with `ECOHMEM_FLEET_SEED` in the seed-matrix CI
/// job (the baseline equality gate only applies at the default seed).
pub const DEFAULT_SEED: u64 = 0xEC0;
/// Arrivals spread over this many seconds of simulated time.
pub const DEFAULT_SPREAD_S: f64 = 5.0;

/// Churn seed from `ECOHMEM_FLEET_SEED`, defaulting to [`DEFAULT_SEED`].
pub fn seed_from_env() -> u64 {
    std::env::var("ECOHMEM_FLEET_SEED").ok().and_then(|v| v.parse().ok()).unwrap_or(DEFAULT_SEED)
}

/// Builds the scenario: `nodes` × `per_node` rotated mixed
/// minife/lulesh/hpcg/phaseshift colocations on the paper's PMem-6 node,
/// 1 GiB grant quanta, seeded arrival churn.
pub fn scenario(
    nodes: u32,
    per_node: usize,
    scheduler: SchedulerPolicy,
    seed: u64,
) -> (FleetConfig, Vec<TenantSpec>) {
    let mut cfg = FleetConfig::new(MachineConfig::optane_pmem6(), nodes, scheduler);
    cfg.quantum_bytes = 1 << 30;
    cfg.churn = ChurnConfig { seed, arrival_spread_s: DEFAULT_SPREAD_S };
    (cfg, colocations::mixed_colocations(nodes, per_node))
}

/// The default 16-node × 4-tenant sweep cell for `scheduler`.
pub fn default_scenario(scheduler: SchedulerPolicy) -> (FleetConfig, Vec<TenantSpec>) {
    scenario(DEFAULT_NODES, DEFAULT_PER_NODE, scheduler, seed_from_env())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scenario_validates() {
        let (cfg, tenants) = default_scenario(SchedulerPolicy::PaperGreedy);
        cfg.validate().unwrap();
        assert_eq!(tenants.len(), DEFAULT_NODES as usize * DEFAULT_PER_NODE);
    }
}
