//! # bench — experiment harness for the ecoHMEM reproduction
//!
//! One binary per paper table/figure (see `src/bin/`), plus shared table
//! formatting helpers and the parallel memoizing experiment runner here.

pub mod fleet_scenario;
pub mod runner;
pub mod serve_scenario;
pub mod table;

pub use runner::Runner;
pub use table::Table;
