//! # bench — experiment harness for the ecoHMEM reproduction
//!
//! One binary per paper table/figure (see `src/bin/`), plus shared table
//! formatting helpers here.

pub mod table;

pub use table::Table;
