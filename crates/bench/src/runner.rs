//! The bench experiment runner: one object every `src/bin/` harness drives
//! its simulations through.
//!
//! The runner owns three things:
//!
//! * **Worker count.** `Runner::from_env` reads `--jobs N` (or `--jobs=N`)
//!   from the command line, falling back to the `ECOHMEM_JOBS` environment
//!   variable and then to the machine's available parallelism (see
//!   [`memsim::jobs_from_env`]).
//! * **Parallel mapping.** [`Runner::map`] spreads independent experiment
//!   cells over [`memsim::parallel_map`]'s work-stealing scoped-thread pool.
//!   Results come back in submission order, so tables rendered from them
//!   are byte-identical at any job count; only stderr stats differ.
//! * **End-of-run stats.** [`Runner::report`] prints cache hits/misses,
//!   engine invocations, wall time and the estimated speedup over a serial
//!   run to *stderr*, keeping stdout reserved for table output. Counters
//!   are snapshotted at construction, so the report shows this process's
//!   deltas even if earlier code already touched the global cache.
//!
//! Memoization itself lives a layer down, in [`memsim::global_cache`]: any
//! job that routes fixed-tier runs through the cache (directly or via
//! `baselines::run_memory_mode` / `profiler::profile_run_cached` /
//! `ecohmem_core::run_pipeline`) shares those simulations with every other
//! job in the process, across threads.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Parallel experiment driver with end-of-run statistics.
pub struct Runner {
    label: String,
    jobs: usize,
    started: Instant,
    /// Total nanoseconds spent inside jobs, summed over all workers — the
    /// serial-time estimate the speedup figure is computed from.
    busy_nanos: AtomicU64,
    hits_at_start: u64,
    misses_at_start: u64,
    engine_runs_at_start: u64,
}

impl Runner {
    /// Builds a runner named `label` (shown in the stats line), taking the
    /// worker count from `--jobs N` / `--jobs=N` on the command line, then
    /// `ECOHMEM_JOBS`, then the available parallelism.
    pub fn from_env(label: &str) -> Self {
        let jobs = jobs_from_args(std::env::args().skip(1)).unwrap_or_else(memsim::jobs_from_env);
        Self::with_jobs(label, jobs)
    }

    /// Builds a runner with an explicit worker count (clamped to ≥ 1).
    pub fn with_jobs(label: &str, jobs: usize) -> Self {
        Runner {
            label: label.to_string(),
            jobs: jobs.max(1),
            started: Instant::now(),
            busy_nanos: AtomicU64::new(0),
            hits_at_start: memsim::global_cache().hits(),
            misses_at_start: memsim::global_cache().misses(),
            engine_runs_at_start: memsim::run_invocations(),
        }
    }

    /// The worker count this runner maps with.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Runs `f` over every item on the work-stealing pool and returns the
    /// results in the items' original order (scheduling never reorders
    /// output — see [`memsim::parallel_map`]).
    pub fn map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        let busy = &self.busy_nanos;
        memsim::parallel_map(items, self.jobs, |item| {
            let t0 = Instant::now();
            let out = f(item);
            busy.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
            out
        })
    }

    /// Cache hits observed since this runner was built.
    pub fn cache_hits(&self) -> u64 {
        memsim::global_cache().hits().saturating_sub(self.hits_at_start)
    }

    /// Cache misses observed since this runner was built.
    pub fn cache_misses(&self) -> u64 {
        memsim::global_cache().misses().saturating_sub(self.misses_at_start)
    }

    /// Engine invocations since this runner was built.
    pub fn engine_runs(&self) -> u64 {
        memsim::run_invocations().saturating_sub(self.engine_runs_at_start)
    }

    /// Prints the end-of-run statistics line to stderr. Call once, after
    /// the last `map`; stdout stays clean for table output.
    pub fn report(&self) {
        let wall = self.started.elapsed().as_secs_f64();
        let busy = self.busy_nanos.load(Ordering::Relaxed) as f64 / 1e9;
        let speedup = if wall > 0.0 { busy / wall } else { 1.0 };
        eprintln!(
            "[runner] {}: jobs={} engine_runs={} cache_hits={} cache_misses={} \
             wall={:.2}s serial_est={:.2}s speedup={:.2}x",
            self.label,
            self.jobs,
            self.engine_runs(),
            self.cache_hits(),
            self.cache_misses(),
            wall,
            busy,
            speedup,
        );
    }
}

/// Extracts `--jobs N` / `--jobs=N` from an argument stream. Returns `None`
/// when absent or malformed (the caller falls back to the environment).
fn jobs_from_args<I: Iterator<Item = String>>(mut args: I) -> Option<usize> {
    while let Some(a) = args.next() {
        if a == "--jobs" {
            return args.next().and_then(|v| v.parse::<usize>().ok()).map(|n| n.max(1));
        }
        if let Some(v) = a.strip_prefix("--jobs=") {
            return v.parse::<usize>().ok().map(|n| n.max(1));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(items: &[&str]) -> impl Iterator<Item = String> {
        items.iter().map(|s| s.to_string()).collect::<Vec<_>>().into_iter()
    }

    #[test]
    fn jobs_flag_parses_both_spellings() {
        assert_eq!(jobs_from_args(argv(&["--jobs", "4"])), Some(4));
        assert_eq!(jobs_from_args(argv(&["--fast", "--jobs=7"])), Some(7));
        assert_eq!(jobs_from_args(argv(&["--jobs", "0"])), Some(1));
        assert_eq!(jobs_from_args(argv(&["--jobs", "soup"])), None);
        assert_eq!(jobs_from_args(argv(&["--fast"])), None);
    }

    #[test]
    fn map_preserves_order_and_counts_busy_time() {
        let r = Runner::with_jobs("test", 3);
        let out = r.map((0..20u64).collect(), |x| x * x);
        assert_eq!(out, (0..20u64).map(|x| x * x).collect::<Vec<_>>());
        // report() must not panic even with trivial jobs.
        r.report();
    }

    #[test]
    fn runner_observes_cache_and_engine_deltas() {
        let app = workloads::minife::model();
        let mach = memsim::MachineConfig::optane_pmem6();
        let r = Runner::with_jobs("delta-test", 2);
        let results = r.map(vec![(); 4], |()| {
            memsim::global_cache()
                .run_fixed(&app, &mach, memsim::ExecMode::MemoryMode, mach.largest_tier(), None)
                .total_time
        });
        assert!(results.iter().all(|&t| t == results[0]));
        // Four fetches of one key: at most one miss charged to this runner
        // (another harness may have populated the key already), and the
        // hit/miss deltas must add up to the four fetches.
        assert!(r.cache_misses() <= 1);
        assert_eq!(r.cache_hits() + r.cache_misses(), 4);
    }
}
