//! The bench experiment runner: one object every `src/bin/` harness drives
//! its simulations through.
//!
//! The runner owns three things:
//!
//! * **Worker count.** `Runner::from_env` reads `--jobs N` (or `--jobs=N`)
//!   from the command line, falling back to the `ECOHMEM_JOBS` environment
//!   variable and then to the machine's available parallelism (see
//!   [`memsim::jobs_from_env`]).
//! * **Parallel mapping.** [`Runner::map`] spreads independent experiment
//!   cells over [`memsim::parallel_map`]'s work-stealing scoped-thread pool.
//!   Results come back in submission order, so tables rendered from them
//!   are byte-identical at any job count; only stderr stats differ.
//! * **End-of-run stats.** [`Runner::report`] prints cache hits/misses,
//!   engine invocations, wall time and the estimated speedup over a serial
//!   run to *stderr*, keeping stdout reserved for table output. Counters
//!   are snapshotted at construction, so the report shows this process's
//!   deltas even if earlier code already touched the global cache.
//!
//! Memoization itself lives a layer down, in [`memsim::global_cache`]: any
//! job that routes fixed-tier runs through the cache (directly or via
//! `baselines::run_memory_mode` / `profiler::profile_run_cached` /
//! `ecohmem_core::run_pipeline`) shares those simulations with every other
//! job in the process, across threads.

use ecohmem_obs::Json;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Parallel experiment driver with end-of-run statistics.
pub struct Runner {
    label: String,
    jobs: usize,
    started: Instant,
    /// Total nanoseconds spent inside jobs, summed over all workers — the
    /// serial-time estimate the speedup figure is computed from.
    busy_nanos: AtomicU64,
    hits_at_start: u64,
    misses_at_start: u64,
    engine_runs_at_start: u64,
    /// Where to write the `RunMetrics` JSON document, if requested.
    metrics_out: Option<String>,
}

impl Runner {
    /// Builds a runner named `label` (shown in the stats line), taking the
    /// worker count from `--jobs N` / `--jobs=N` on the command line, then
    /// `ECOHMEM_JOBS`, then the available parallelism. `--metrics-out PATH`
    /// (or `--metrics-out=PATH`) additionally turns observability on and
    /// makes [`Runner::report`] write the run's `RunMetrics` document there.
    pub fn from_env(label: &str) -> Self {
        let jobs = jobs_from_args(std::env::args().skip(1)).unwrap_or_else(memsim::jobs_from_env);
        let runner = Self::with_jobs(label, jobs);
        match metrics_out_from_args(std::env::args().skip(1)) {
            Some(path) => runner.with_metrics_out(path),
            None => runner,
        }
    }

    /// Builds a runner with an explicit worker count (clamped to ≥ 1).
    pub fn with_jobs(label: &str, jobs: usize) -> Self {
        Runner {
            label: label.to_string(),
            jobs: jobs.max(1),
            started: Instant::now(),
            busy_nanos: AtomicU64::new(0),
            hits_at_start: memsim::global_cache().hits(),
            misses_at_start: memsim::global_cache().misses(),
            engine_runs_at_start: memsim::run_invocations(),
            metrics_out: None,
        }
    }

    /// Routes the `RunMetrics` document to `path` at [`Runner::report`]
    /// time. Forces observability on so there is something to report.
    pub fn with_metrics_out(mut self, path: impl Into<String>) -> Self {
        ecohmem_obs::set_enabled(true);
        self.metrics_out = Some(path.into());
        self
    }

    /// The worker count this runner maps with.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Runs `f` over every item on the work-stealing pool and returns the
    /// results in the items' original order (scheduling never reorders
    /// output — see [`memsim::parallel_map`]).
    pub fn map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        let busy = &self.busy_nanos;
        memsim::parallel_map(items, self.jobs, |item| {
            let t0 = Instant::now();
            let out = f(item);
            busy.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
            out
        })
    }

    /// Cache hits observed since this runner was built.
    pub fn cache_hits(&self) -> u64 {
        memsim::global_cache().hits().saturating_sub(self.hits_at_start)
    }

    /// Cache misses observed since this runner was built.
    pub fn cache_misses(&self) -> u64 {
        memsim::global_cache().misses().saturating_sub(self.misses_at_start)
    }

    /// Engine invocations since this runner was built.
    pub fn engine_runs(&self) -> u64 {
        memsim::run_invocations().saturating_sub(self.engine_runs_at_start)
    }

    /// Prints the end-of-run statistics line to stderr. Call once, after
    /// the last `map`; stdout stays clean for table output.
    ///
    /// When `--metrics-out` was given, also writes the `RunMetrics` JSON
    /// document there, and when `ECOHMEM_BENCH_OUT` names an aggregate
    /// file, merges this run's document into it under the runner's label
    /// (so a sequence of bench bins builds up one `BENCH_pipeline.json`).
    pub fn report(&self) {
        let wall = self.started.elapsed().as_secs_f64();
        let busy = self.busy_nanos.load(Ordering::Relaxed) as f64 / 1e9;
        let speedup = if wall > 0.0 { busy / wall } else { 1.0 };
        eprintln!(
            "[runner] {}: jobs={} engine_runs={} cache_hits={} cache_misses={} \
             wall={:.2}s serial_est={:.2}s speedup={:.2}x",
            self.label,
            self.jobs,
            self.engine_runs(),
            self.cache_hits(),
            self.cache_misses(),
            wall,
            busy,
            speedup,
        );
        let doc = ecohmem_obs::run_metrics(&self.label, wall);
        if let Some(path) = &self.metrics_out {
            if let Err(e) = std::fs::write(path, doc.to_string_pretty() + "\n") {
                eprintln!("[runner] {}: cannot write {path}: {e}", self.label);
            }
        }
        if let Ok(agg) = std::env::var("ECOHMEM_BENCH_OUT") {
            if !agg.is_empty() {
                if let Err(e) = merge_into_aggregate(&agg, &self.label, doc) {
                    eprintln!("[runner] {}: cannot update {agg}: {e}", self.label);
                }
            }
        }
    }
}

/// Merges one run's `RunMetrics` document into the aggregate JSON file at
/// `path`, keyed by the runner label (replacing an earlier entry with the
/// same label). The aggregate is a plain object so post-processing stays a
/// one-liner in any language.
fn merge_into_aggregate(path: &str, label: &str, doc: Json) -> std::io::Result<()> {
    let mut root = match std::fs::read_to_string(path) {
        Ok(text) => Json::parse(&text).unwrap_or(Json::Null),
        Err(_) => Json::Null,
    };
    if !matches!(root, Json::Obj(_)) {
        root = Json::obj(vec![("schema", Json::str("ecohmem.bench_aggregate/1"))]);
    }
    if let Json::Obj(pairs) = &mut root {
        match pairs.iter_mut().find(|(k, _)| k == label) {
            Some(slot) => slot.1 = doc,
            None => pairs.push((label.to_string(), doc)),
        }
    }
    std::fs::write(path, root.to_string_pretty() + "\n")
}

/// Extracts `--jobs N` / `--jobs=N` from an argument stream. Returns `None`
/// when absent or malformed (the caller falls back to the environment).
fn jobs_from_args<I: Iterator<Item = String>>(mut args: I) -> Option<usize> {
    while let Some(a) = args.next() {
        if a == "--jobs" {
            return args.next().and_then(|v| v.parse::<usize>().ok()).map(|n| n.max(1));
        }
        if let Some(v) = a.strip_prefix("--jobs=") {
            return v.parse::<usize>().ok().map(|n| n.max(1));
        }
    }
    None
}

/// Extracts `--metrics-out PATH` / `--metrics-out=PATH` from an argument
/// stream. Returns `None` when absent or missing its value.
fn metrics_out_from_args<I: Iterator<Item = String>>(mut args: I) -> Option<String> {
    while let Some(a) = args.next() {
        if a == "--metrics-out" {
            return args.next().filter(|v| !v.is_empty());
        }
        if let Some(v) = a.strip_prefix("--metrics-out=") {
            return Some(v.to_string()).filter(|v| !v.is_empty());
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(items: &[&str]) -> impl Iterator<Item = String> {
        items.iter().map(|s| s.to_string()).collect::<Vec<_>>().into_iter()
    }

    #[test]
    fn jobs_flag_parses_both_spellings() {
        assert_eq!(jobs_from_args(argv(&["--jobs", "4"])), Some(4));
        assert_eq!(jobs_from_args(argv(&["--fast", "--jobs=7"])), Some(7));
        assert_eq!(jobs_from_args(argv(&["--jobs", "0"])), Some(1));
        assert_eq!(jobs_from_args(argv(&["--jobs", "soup"])), None);
        assert_eq!(jobs_from_args(argv(&["--fast"])), None);
    }

    #[test]
    fn metrics_out_flag_parses_both_spellings() {
        assert_eq!(
            metrics_out_from_args(argv(&["--metrics-out", "m.json"])),
            Some("m.json".into())
        );
        assert_eq!(
            metrics_out_from_args(argv(&["--metrics-out=x/y.json"])),
            Some("x/y.json".into())
        );
        assert_eq!(metrics_out_from_args(argv(&["--metrics-out"])), None);
        assert_eq!(metrics_out_from_args(argv(&["--metrics-out="])), None);
        assert_eq!(metrics_out_from_args(argv(&["--jobs", "4"])), None);
    }

    #[test]
    fn report_writes_metrics_document_and_aggregate() {
        let dir = std::env::temp_dir().join(format!("ecohmem-runner-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let metrics = dir.join("metrics.json");
        let agg = dir.join("agg.json");

        let r = Runner::with_jobs("emit-test", 2)
            .with_metrics_out(metrics.to_string_lossy().into_owned());
        ecohmem_obs::count("runner.emit.test", 3);
        std::env::set_var("ECOHMEM_BENCH_OUT", &agg);
        r.report();
        // A second runner must merge, not clobber, the aggregate.
        Runner::with_jobs("emit-test-2", 1)
            .with_metrics_out(metrics.to_string_lossy().into_owned())
            .report();
        std::env::remove_var("ECOHMEM_BENCH_OUT");

        let doc = Json::parse(&std::fs::read_to_string(&metrics).unwrap()).unwrap();
        assert_eq!(doc.get("schema").and_then(Json::as_str), Some("ecohmem.run_metrics/1"));
        let counters = doc.get("metrics").unwrap().get("counters").unwrap();
        assert!(counters.get("runner.emit.test").and_then(Json::as_u64) >= Some(3));

        let agg_doc = Json::parse(&std::fs::read_to_string(&agg).unwrap()).unwrap();
        assert!(agg_doc.get("emit-test").is_some(), "first label present");
        assert!(agg_doc.get("emit-test-2").is_some(), "second label merged in");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn map_preserves_order_and_counts_busy_time() {
        let r = Runner::with_jobs("test", 3);
        let out = r.map((0..20u64).collect(), |x| x * x);
        assert_eq!(out, (0..20u64).map(|x| x * x).collect::<Vec<_>>());
        // report() must not panic even with trivial jobs.
        r.report();
    }

    #[test]
    fn runner_observes_cache_and_engine_deltas() {
        let app = workloads::minife::model();
        let mach = memsim::MachineConfig::optane_pmem6();
        let r = Runner::with_jobs("delta-test", 2);
        let results = r.map(vec![(); 4], |()| {
            memsim::global_cache()
                .run_fixed(&app, &mach, memsim::ExecMode::MemoryMode, mach.largest_tier(), None)
                .total_time
        });
        assert!(results.iter().all(|&t| t == results[0]));
        // Four fetches of one key: at most one miss charged to this runner
        // (another harness may have populated the key already), and the
        // hit/miss deltas must add up to the four fetches.
        assert!(r.cache_misses() <= 1);
        assert_eq!(r.cache_hits() + r.cache_misses(), 4);
    }
}
