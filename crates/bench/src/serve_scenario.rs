//! Shared synthetic-tenant scenario for the serve daemon: trace shapes,
//! the deterministic feed plan, the isolated reference runs, and the
//! TCP blast fleet — used by `serve_load` (the benchmark) and
//! `perf_smoke` (the CI regression gate) so both measure the exact same
//! workload.

use advisor::{AdvisorConfig, Algorithm};
use ecohmem_online::{
    IncrementalAdvisor, OnlineConfig, PlacementRevision, StreamIngestor, StreamMeta,
};
use ecohmem_serve::blast::{self, BlastTenant};
use ecohmem_serve::core::ServeConfig;
use ecohmem_serve::proto::{self, Frame as WireFrame};
use ecohmem_serve::{Mode, Server, ServerConfig};
use memtrace::{
    BinaryMap, CallStack, DegradationPolicy, EventBatch, Frame, FuncId, ModuleId, ObjectId, SiteId,
    TraceEvent, TraceFile,
};
use std::sync::Arc;
use std::time::Duration;

/// Distinct hot-set geometries; one tenant per shape doubles as a
/// divergence probe checked byte-for-byte against an isolated run.
pub const SHAPES: usize = 4;
/// Allocation sites per synthetic trace.
pub const SITES: usize = 16;
/// Load-miss samples per synthetic trace.
pub const SAMPLES: usize = 2048;
/// DRAM budget handed to every tenant's advisor.
pub const DRAM_GIB: u64 = 12;
/// Events per ingest batch in the feed plan.
pub const BATCH: usize = 256;
/// A tick lands after every `TICK_STRIDE` batches.
pub const TICK_STRIDE: usize = 4;
const MIB: u64 = 1 << 20;

/// Deterministic synthetic trace; the four shapes exercise different
/// hot-set geometries so co-tenant engines never walk in lockstep.
pub fn synth_trace(shape: usize) -> TraceFile {
    let stacks: Vec<(SiteId, CallStack)> = (0..SITES)
        .map(|i| {
            (
                SiteId(i as u32),
                CallStack::new(vec![Frame::new(ModuleId(0), 0x100 + 0x10 * i as u64)]),
            )
        })
        .collect();
    let base = |site: usize| ((site as u64) + 1) << 33;
    let size = |site: usize| (1 + ((site + shape) % 4) as u64) * 512 * MIB;
    let mut events = Vec::new();
    for i in 0..SITES {
        events.push(TraceEvent::Alloc {
            time: 0.001 * i as f64,
            object: ObjectId(i as u64 + 1),
            site: SiteId(i as u32),
            size: size(i),
            address: base(i),
        });
    }
    for k in 0..SAMPLES {
        let site = match shape {
            0 => k % 4,
            1 => 12 + k % 4,
            2 => (k / 128) % SITES, // hot set rotates: a phase-shifter
            _ => {
                if k % 3 == 0 {
                    k % SITES
                } else {
                    k % 2
                }
            }
        };
        events.push(TraceEvent::LoadMissSample {
            time: 0.1 + 3.8 * (k as f64) / SAMPLES as f64,
            address: base(site) + 64 * ((k % 100) as u64),
            latency_cycles: 300.0,
            function: FuncId(0),
        });
    }
    TraceFile {
        app_name: format!("synth{shape}"),
        seed: shape as u64,
        ranks: 1,
        sampling_hz: 1000.0,
        load_sample_period: 100.0,
        store_sample_period: 200.0,
        duration: 4.0,
        stacks,
        binmap: BinaryMap::default(),
        events,
    }
}

/// All [`SHAPES`] traces.
pub fn shape_traces() -> Vec<TraceFile> {
    (0..SHAPES).map(synth_trace).collect()
}

/// One step of the scripted session.
pub enum Op {
    /// Ingest a batch of events.
    Batch(Vec<TraceEvent>),
    /// Advance the advisor clock.
    Tick(f64),
}

/// The deterministic batch/tick schedule every driver follows.
pub fn feed_plan(trace: &TraceFile) -> Vec<Op> {
    let mut ops = Vec::new();
    let chunks: Vec<&[TraceEvent]> = trace.events.chunks(BATCH).collect();
    for (i, chunk) in chunks.iter().enumerate() {
        ops.push(Op::Batch(chunk.to_vec()));
        if (i + 1) % TICK_STRIDE == 0 {
            ops.push(Op::Tick(chunk.last().unwrap().time()));
        }
    }
    ops.push(Op::Tick(trace.duration));
    ops
}

/// The single-stream ground truth a served tenant must reproduce.
pub fn isolated_run(trace: &TraceFile) -> Vec<PlacementRevision> {
    let cfg = OnlineConfig::default();
    let mut ingestor = StreamIngestor::new(StreamMeta::of(trace), DegradationPolicy::Strict, cfg);
    let mut advisor = IncrementalAdvisor::new(AdvisorConfig::loads_only(DRAM_GIB), Algorithm::Base)
        .with_hysteresis(cfg.hysteresis);
    let mut revisions = Vec::new();
    for op in feed_plan(trace) {
        match op {
            Op::Batch(events) => {
                ingestor.push_batch(&EventBatch::from_events(&events)).unwrap();
            }
            Op::Tick(now) => revisions.extend(advisor.tick(&mut ingestor, now)),
        }
    }
    revisions
}

/// Encoded isolated revision logs, one per shape — what the divergence
/// probes compare against.
pub fn reference_logs(traces: &[TraceFile]) -> Vec<Vec<u8>> {
    traces
        .iter()
        .map(|t| {
            let mut bytes = Vec::new();
            proto::encode_revisions(&isolated_run(t), &mut bytes);
            bytes
        })
        .collect()
}

/// Pre-encoded post-handshake byte stream for one shape: the feed plan
/// as Events/Tick frames, terminated by Shutdown. Shared across all
/// same-shape tenants via `Arc` — the driver never re-encodes.
pub fn blast_body(trace: &TraceFile) -> Arc<Vec<u8>> {
    let mut body = Vec::new();
    for op in feed_plan(trace) {
        match op {
            Op::Batch(events) => {
                body.extend_from_slice(&proto::encode_events_frame(&events, Mode::Bin))
            }
            Op::Tick(now) => proto::encode_into(&WireFrame::Tick { now }, &mut body),
        }
    }
    proto::encode_into(&WireFrame::Shutdown, &mut body);
    Arc::new(body)
}

/// What a TCP fleet run observed. `divergent` counts per-shape probe
/// logs that differ from the isolated reference.
pub struct TcpFleetResult {
    /// Sessions that reached Bye.
    pub completed: usize,
    /// Sessions that ended any other way.
    pub failed: usize,
    /// Up to 8 failure descriptions.
    pub errors: Vec<String>,
    /// Probe logs differing from the isolated reference.
    pub divergent: usize,
    /// Total events streamed by completed sessions.
    pub events: u64,
    /// Revision frames received across all sessions.
    pub revision_frames: u64,
    /// Shed items reported across all sessions.
    pub shed: u64,
    /// Concurrency window the blast ran with.
    pub window: usize,
    /// First connect to last close.
    pub elapsed: Duration,
}

impl TcpFleetResult {
    /// Sustained event throughput over the whole run.
    pub fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

/// Boots a reactor daemon bound to loopback, blasts `tenants` scripted
/// sessions at it from one driver thread, and checks the per-shape
/// probes against `reference` ([`reference_logs`]).
pub fn run_tcp_fleet(
    tenants: usize,
    workers: usize,
    io_threads: usize,
    window_override: Option<usize>,
    traces: &[TraceFile],
    reference: &[Vec<u8>],
) -> TcpFleetResult {
    let server = Server::bind(ServerConfig {
        listen: "127.0.0.1:0".into(),
        once: Some(tenants),
        io_threads,
        idle_timeout: Duration::from_secs(120),
        serve: ServeConfig {
            workers,
            max_tenants: tenants + 8,
            inbox_capacity: 64,
            admission_timeout: Duration::from_secs(10),
            dram_gib: DRAM_GIB,
            ..ServeConfig::default()
        },
    })
    .expect("bind blast server");
    let addr = server.local_addr().expect("server addr").to_string();
    let daemon = std::thread::spawn(move || server.run().expect("server run"));

    let bodies: Vec<Arc<Vec<u8>>> = traces.iter().map(|t| blast_body(t)).collect();
    let plan: Vec<BlastTenant> = (0..tenants)
        .map(|t| {
            let shape = t % SHAPES;
            BlastTenant {
                name: format!("tenant-{t}"),
                hello: blast::hello_bytes(&format!("tenant-{t}"), Mode::Bin, &traces[shape])
                    .expect("encode hello"),
                body: Arc::clone(&bodies[shape]),
                collect: t < SHAPES,
            }
        })
        .collect();
    // Each live session pins two fds in this process (client + server
    // end of the loopback pair); leave headroom for the daemon itself.
    // Capped at 1024: wider windows stop adding throughput once the
    // core is saturated and only grow live buffer footprint.
    let window = window_override.unwrap_or_else(|| {
        (ecohmem_serve::sys::nofile_limit().saturating_sub(512) / 2).clamp(64, 1024)
    });

    let out = blast::run_blast(&addr, plan, window).expect("blast run");
    let _stats = daemon.join().expect("daemon join");

    let divergent = (0..SHAPES)
        .filter(|shape| {
            let name = format!("tenant-{shape}");
            match out.revisions.get(&name) {
                Some(revs) => {
                    let mut bytes = Vec::new();
                    proto::encode_revisions(revs, &mut bytes);
                    bytes != reference[*shape]
                }
                None => true,
            }
        })
        .count();
    TcpFleetResult {
        completed: out.completed,
        failed: out.failed,
        errors: out.errors,
        divergent,
        events: traces[0].events.len() as u64 * out.completed as u64,
        revision_frames: out.revision_frames,
        shed: out.shed,
        window,
        elapsed: out.elapsed,
    }
}
