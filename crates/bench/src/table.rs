//! Minimal fixed-width table rendering for experiment binaries.

/// A simple text table with a header row.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Appends a row; must have as many cells as the header.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
                .trim_end()
                .to_string()
        };
        let mut out = Vec::with_capacity(self.rows.len() + 2);
        out.push(fmt_row(&self.header));
        out.push(widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>().join("  "));
        for row in &self.rows {
            out.push(fmt_row(row));
        }
        let _ = ncols;
        out.join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["app", "speedup"]);
        t.row(vec!["minife".into(), "2.22".into()]);
        t.row(vec!["hpcg".into(), "1.67".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("app"));
        assert!(lines[2].starts_with("minife"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only".into()]);
    }
}
