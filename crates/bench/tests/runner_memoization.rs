//! Acceptance test for the parallel memoized runner (ISSUE tentpole): at
//! `--jobs 4`, regenerating a Fig. 6-style sweep plus Table V-style rows in
//! one process must perform strictly fewer `engine::run` invocations than
//! the serial seed path (which simulated profiling + placed + Memory-Mode
//! baseline per cell), must hit the cache, and must render byte-identical
//! tables to a jobs=1 run.
//!
//! This lives in its own integration-test binary: the engine invocation
//! counter and the global cache are process-wide, so sharing a binary with
//! other tests would pollute the deltas.

use advisor::Algorithm;
use bench::{Runner, Table};
use ecohmem_core::experiments::{sweep_with_jobs, Metrics, SweepCell, SweepSpec};
use memsim::MachineConfig;

fn render_sweep(cells: &[SweepCell]) -> String {
    let mut t = Table::new(&["app", "metrics", "dram_gib", "speedup_vs_memory_mode"]);
    for c in cells {
        t.row(vec![
            c.app.clone(),
            c.spec.metrics.label().into(),
            c.spec.dram_gib.to_string(),
            format!("{:.2}", c.speedup),
        ]);
    }
    t.render()
}

#[test]
fn jobs4_regeneration_memoizes_and_matches_serial_output() {
    let apps = workloads::miniapp_models();
    let machine = MachineConfig::optane_pmem6();
    let specs = vec![
        SweepSpec { dram_gib: 4, metrics: Metrics::Loads, algorithm: Algorithm::Base },
        SweepSpec { dram_gib: 8, metrics: Metrics::Loads, algorithm: Algorithm::Base },
        SweepSpec { dram_gib: 12, metrics: Metrics::LoadsStores, algorithm: Algorithm::Base },
    ];
    let cells = (apps.len() * specs.len()) as u64;

    // --jobs 4 regeneration: fig6-style sweep + table5-style rows, one process.
    let runner = Runner::with_jobs("acceptance", 4);
    let parallel_cells = sweep_with_jobs(&apps, &machine, &specs, runner.jobs());
    let fig6_jobs4 = render_sweep(&parallel_cells);

    let table5_rows = runner.map(workloads::all_specs(), |spec| {
        let model = workloads::model_by_name(spec.name).unwrap();
        vec![spec.name.to_string(), (model.high_water_mark() / 1_000_000).to_string()]
    });
    let mut t5 = Table::new(&["app", "hwm_mb"]);
    for row in table5_rows.clone() {
        t5.row(row);
    }
    let table5_jobs4 = t5.render();

    // The serial seed path simulated profiling + placed + Memory-Mode
    // baseline for every cell: 3 engine runs per cell. The memoized runner
    // must do strictly fewer (expected: one shared fixed-tier run per app
    // plus one uncached placed run per cell).
    let used = runner.engine_runs();
    assert!(used > 0, "the sweep must actually simulate");
    assert!(
        used < 3 * cells,
        "memoized path used {used} engine runs, serial seed path used {}",
        3 * cells
    );
    assert!(runner.cache_hits() > 0, "shared runs across cells must hit the cache");

    // Byte-identical output at jobs=1 (placed runs re-simulate, shared
    // runs come from the cache — either way the rendering must match).
    let serial_cells = sweep_with_jobs(&apps, &machine, &specs, 1);
    assert_eq!(fig6_jobs4, render_sweep(&serial_cells), "fig6 table must be byte-identical");

    let serial_runner = Runner::with_jobs("acceptance-serial", 1);
    let serial_rows = serial_runner.map(workloads::all_specs(), |spec| {
        let model = workloads::model_by_name(spec.name).unwrap();
        vec![spec.name.to_string(), (model.high_water_mark() / 1_000_000).to_string()]
    });
    assert_eq!(table5_rows, serial_rows, "table5 rows must be identical at any job count");
    assert_eq!(table5_jobs4, {
        let mut t = Table::new(&["app", "hwm_mb"]);
        for row in serial_rows {
            t.row(row);
        }
        t.render()
    });
}
