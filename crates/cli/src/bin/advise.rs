//! `ecohmem-advise` — the HMem Advisor stage: trace file in, placement
//! report out (JSON for the toolchain, or the Table I text format with
//! `--text`).
//!
//! ```text
//! ecohmem-advise <trace.json> [--dram-gib N] [--config advisor.json]
//!                [--stores] [--bw-aware] [--format bom|hr]
//!                [--text] [--out FILE] [--stream]
//! ```
//!
//! `--stream` routes the trace through the online engine's bounded-channel
//! streaming ingestor (`ecohmem_online::stream_profile`) instead of the
//! batch analyzer — same profile, same report (the convergence contract),
//! but constant memory in the number of *live* objects rather than total
//! events. Degradation follows the toolchain contract: strict by default,
//! salvage-and-warn with `--lenient`.

use advisor::{Advisor, AdvisorConfig, Algorithm};
use cli::{ok_or_die, usage_error, Args, MetricsOut};
use ecohmem_online::{stream_profile, DegradationPolicy, OnlineConfig};
use memtrace::{StackFormat, TierId};

const USAGE: &str = "ecohmem-advise <trace.json> [--dram-gib N] [--config advisor.json] \
                     [--stores] [--bw-aware] [--format bom|hr] [--text] [--out FILE] \
                     [--stream] [--lenient] [--metrics-out FILE]";

fn main() {
    let args = Args::from_env();
    let metrics = MetricsOut::from_args("ecohmem-advise", &args);
    let Some(path) = args.positional.first() else {
        usage_error("ecohmem-advise", "missing trace file", USAGE);
    };
    let profile = match (args.has("stream"), args.has("lenient")) {
        (true, lenient) => {
            // Streaming ingestion. Load leniently only when asked: the
            // loader must not mask what the ingestor would catch.
            let (trace, mut warnings) = if lenient {
                ok_or_die("ecohmem-advise", cli::load_trace_lenient(path))
            } else {
                (ok_or_die("ecohmem-advise", cli::load_trace(path)), Vec::new())
            };
            let policy = if lenient { DegradationPolicy::Warn } else { DegradationPolicy::Strict };
            let (profile, w) = ok_or_die(
                "ecohmem-advise",
                stream_profile(&trace, policy, OnlineConfig::default()),
            );
            warnings.extend(w);
            cli::print_warnings("ecohmem-advise", &warnings);
            profile
        }
        (false, true) => {
            let (trace, mut warnings) = ok_or_die("ecohmem-advise", cli::load_trace_lenient(path));
            let (profile, w) = profiler::analyze_lenient(&trace);
            warnings.extend(w);
            cli::print_warnings("ecohmem-advise", &warnings);
            profile
        }
        (false, false) => {
            let trace = ok_or_die("ecohmem-advise", cli::load_trace(path));
            ok_or_die("ecohmem-advise", profiler::analyze(&trace))
        }
    };

    let config = if let Some(cfg_path) = args.opt("config") {
        let text = ok_or_die("ecohmem-advise", std::fs::read_to_string(cfg_path));
        ok_or_die("ecohmem-advise", AdvisorConfig::from_json(&text))
    } else {
        let gib = args.opt_or("dram-gib", 12u64);
        if args.has("stores") {
            AdvisorConfig::loads_and_stores(gib)
        } else {
            AdvisorConfig::loads_only(gib)
        }
    };
    let algorithm = if args.has("bw-aware") { Algorithm::BandwidthAware } else { Algorithm::Base };
    let format = match args.opt("format").unwrap_or("bom") {
        "bom" => StackFormat::Bom,
        "hr" | "human-readable" => StackFormat::HumanReadable,
        other => usage_error("ecohmem-advise", &format!("unknown format `{other}`"), USAGE),
    };

    let advisor = Advisor::new(config);
    let report = ok_or_die("ecohmem-advise", advisor.advise(&profile, algorithm, format));

    let out = args
        .opt("out")
        .map(String::from)
        .unwrap_or_else(|| format!("{}.report.json", profile.app_name));
    if args.has("text") {
        let text = report.render_text(&profile.binmap, |t| {
            if t == TierId::DRAM {
                "dram".into()
            } else {
                "pmem".into()
            }
        });
        ok_or_die("ecohmem-advise", std::fs::write(&out, text + "\n"));
    } else {
        ok_or_die("ecohmem-advise", report.save(&out));
    }
    eprintln!(
        "wrote {out}: {} sites ({} dram, {} pmem), algorithm {:?}, format {}",
        report.len(),
        report.count_for_tier(TierId::DRAM),
        report.count_for_tier(TierId::PMEM),
        algorithm,
        format,
    );
    metrics.finish();
}
