//! `ecohmem-fleet` — simulate M nodes × K co-scheduled tenants.
//!
//! ```text
//! ecohmem-fleet --nodes 4 --colocate minife,lulesh,hpcg,phaseshift \
//!               --scheduler paper-greedy --seed 7 --spread 5 --jobs 4
//! ecohmem-fleet --nodes 16 --colocate mixed:4 --json
//! ```
//!
//! `--colocate` is either a comma-separated workload mix stamped on every
//! node, or `mixed[:K]` for the rotated mixed colocation builder. `--json`
//! prints the full deterministic fleet document; the default output is a
//! human summary plus a per-node table.

use cli::{machine_by_name, ok_or_die, usage_error, Args, MetricsOut};
use memsim::fleet::{self, ChurnConfig, FleetConfig, SchedulerPolicy};
use memsim::TenantSpec;
use workloads::colocations;

const TOOL: &str = "ecohmem-fleet";
const USAGE: &str = "ecohmem-fleet [--nodes N] [--colocate MIX|mixed[:K]] \
[--scheduler priority|proportional-share|paper-greedy] [--machine pmem6|pmem2|hbm] \
[--seed S] [--spread SECONDS] [--quantum-mib M] [--jobs N] [--json] [--metrics-out PATH]";

fn build_tenants(nodes: u32, spec: &str) -> Result<Vec<TenantSpec>, String> {
    if let Some(rest) = spec.strip_prefix("mixed") {
        let per_node = match rest.strip_prefix(':') {
            Some(k) => k.parse::<usize>().map_err(|_| format!("bad mixed count {k:?}"))?,
            None if rest.is_empty() => colocations::MIXED.len(),
            _ => return Err(format!("bad colocation spec {spec:?}")),
        };
        return Ok(colocations::mixed_colocations(nodes, per_node));
    }
    let mix: Vec<&str> = spec.split(',').map(str::trim).filter(|s| !s.is_empty()).collect();
    if mix.is_empty() {
        return Err("empty colocation mix".into());
    }
    colocations::colocate(nodes, &mix)
}

fn main() {
    let args = Args::from_env();
    let metrics = MetricsOut::from_args(TOOL, &args);

    let nodes = args.opt_or("nodes", 4u32);
    if nodes == 0 {
        usage_error(TOOL, "--nodes must be at least 1", USAGE);
    }
    let machine_name = args.opt("machine").unwrap_or("pmem6");
    let Some(machine) = machine_by_name(machine_name) else {
        usage_error(TOOL, &format!("unknown machine {machine_name:?}"), USAGE);
    };
    let sched_name = args.opt("scheduler").unwrap_or("paper-greedy");
    let Some(scheduler) = SchedulerPolicy::parse(sched_name) else {
        usage_error(TOOL, &format!("unknown scheduler {sched_name:?}"), USAGE);
    };

    let mut cfg = FleetConfig::new(machine, nodes, scheduler);
    cfg.churn = ChurnConfig {
        seed: args.opt_or("seed", ChurnConfig::default().seed),
        arrival_spread_s: args.opt_or("spread", 0.0f64),
    };
    if let Some(mib) = args.opt("quantum-mib") {
        let mib: u64 =
            ok_or_die(TOOL, mib.parse::<u64>().map_err(|e| format!("--quantum-mib: {e}")));
        cfg.quantum_bytes = mib << 20;
    }

    let spec = args.opt("colocate").unwrap_or("mixed");
    let tenants = ok_or_die(TOOL, build_tenants(nodes, spec));
    let result = ok_or_die(TOOL, fleet::simulate(&cfg, &tenants, args.jobs()));

    if args.has("json") {
        println!("{}", result.to_json().to_string_pretty());
    } else {
        println!(
            "fleet: {} nodes, {} tenants, scheduler {}",
            nodes,
            tenants.len(),
            result.scheduler
        );
        println!(
            "makespan {:.3}s  epochs {}  decisions {}  storms {} ({} bytes)  peak pressure {:.2}",
            result.makespan(),
            result.total_epochs(),
            result.scheduler_decisions(),
            result.total_storms(),
            result.total_storm_bytes(),
            result.peak_pressure()
        );
        for n in &result.nodes {
            let last = n.tenants.iter().map(|t| t.completion).fold(0.0f64, f64::max);
            println!(
                "  node {:>3}: {} tenants, {} epochs, {} storms, done at {:.3}s",
                n.node,
                n.tenants.len(),
                n.epochs.len(),
                n.epochs.iter().map(|e| e.storms).sum::<u64>(),
                last
            );
            for t in &n.tenants {
                println!(
                    "    {:<24} arrive {:>7.3}s  finish {:>8.3}s  segments {:>2}  storms {}",
                    t.name,
                    t.arrival,
                    t.completion,
                    t.segments.len(),
                    t.storms
                );
            }
        }
        let cache = memsim::global_cache();
        eprintln!("[fleet] cache hits {} misses {}", cache.hits(), cache.misses());
    }
    metrics.finish();
}
