//! `ecohmem-inspect` — the Paramedir stage: aggregate a trace file into
//! per-site statistics and print them.
//!
//! ```text
//! ecohmem-inspect <trace.json> [--top N] [--bw-series]
//! ```

use cli::{ok_or_die, usage_error, Args, MetricsOut};

const USAGE: &str = "ecohmem-inspect <trace.json> [--top N] [--bw-series] [--timeline] \
                     [--lenient] [--metrics-out FILE]";

fn main() {
    let args = Args::from_env();
    let metrics = MetricsOut::from_args("ecohmem-inspect", &args);
    let Some(path) = args.positional.first() else {
        usage_error("ecohmem-inspect", "missing trace file", USAGE);
    };
    let (trace, profile) = if args.has("lenient") {
        let (trace, mut warnings) = ok_or_die("ecohmem-inspect", cli::load_trace_lenient(path));
        let (profile, w) = profiler::analyze_lenient(&trace);
        warnings.extend(w);
        cli::print_warnings("ecohmem-inspect", &warnings);
        (trace, profile)
    } else {
        let trace = ok_or_die("ecohmem-inspect", cli::load_trace(path));
        let profile = ok_or_die("ecohmem-inspect", profiler::analyze(&trace));
        (trace, profile)
    };

    println!(
        "application {} — {} ranks, {:.1}s, {} sites, peak off-chip bw {:.2} GB/s",
        profile.app_name,
        trace.ranks,
        profile.duration,
        profile.sites.len(),
        profile.peak_bw / 1e9
    );

    let top = args.opt_or("top", 15usize);
    let mut ranked: Vec<_> = profile.sites.iter().collect();
    ranked.sort_by(|a, b| b.load_misses_est.total_cmp(&a.load_misses_est));
    println!(
        "\n{:>6} {:>8} {:>10} {:>10} {:>12} {:>12} {:>10} {:>12}",
        "site", "allocs", "maxMB", "totalMB", "loadMiss", "storeMiss", "life_s", "bw@alloc"
    );
    for s in ranked.iter().take(top) {
        println!(
            "{:>6} {:>8} {:>10.1} {:>10.1} {:>12.3e} {:>12.3e} {:>10.1} {:>12.3e}",
            s.site.0,
            s.alloc_count,
            s.max_size as f64 / 1e6,
            s.total_bytes as f64 / 1e6,
            s.load_misses_est,
            s.store_misses_est,
            s.total_lifetime(),
            s.bw_at_alloc,
        );
    }

    if args.has("timeline") {
        let rows = ok_or_die("ecohmem-inspect", profiler::timeline(&trace));
        print!("\n{}", profiler::to_csv(&rows));
    }

    if args.has("bw-series") {
        println!("\nsystem bandwidth series (t_s, GB/s):");
        for &(t, bw) in profile.bw_series.iter().take(50) {
            println!("{t:8.1} {:8.2}", bw / 1e9);
        }
    }
    metrics.finish();
}
