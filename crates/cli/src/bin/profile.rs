//! `ecohmem-profile` — the Extrae stage: run an application under the
//! sampling profiler and write the trace file.
//!
//! ```text
//! ecohmem-profile <app> [--machine pmem6|pmem2|hbm] [--rate HZ]
//!                 [--seed N] [--out FILE]
//! ```
//!
//! `--binary` writes the v2 bucketed binary format (decodable per
//! time-bucket via `memtrace::TraceBuf`); without it the JSON encoding is
//! used. Either way the trace stays columnar through synthesis — the
//! event vector is only materialized for the JSON writer.

use cli::{machine_by_name, ok_or_die, usage_error, Args, MetricsOut};
use memsim::{ExecMode, FixedTier};
use profiler::{synthesize_columns, ProfilerConfig};

const USAGE: &str = "ecohmem-profile <app> [--machine pmem6|pmem2|hbm] [--rate HZ] \
                     [--seed N] [--out FILE] [--binary] [--metrics-out FILE]";

fn main() {
    let args = Args::from_env();
    let metrics = MetricsOut::from_args("ecohmem-profile", &args);
    let Some(app_name) = args.positional.first() else {
        usage_error("ecohmem-profile", "missing application name", USAGE);
    };
    let Some(app) = workloads::model_by_name(app_name) else {
        usage_error("ecohmem-profile", &format!("unknown application `{app_name}`"), USAGE);
    };
    let machine_name = args.opt("machine").unwrap_or("pmem6");
    let Some(machine) = machine_by_name(machine_name) else {
        usage_error("ecohmem-profile", &format!("unknown machine `{machine_name}`"), USAGE);
    };
    let cfg = ProfilerConfig {
        sampling_hz: args.opt_or("rate", 100.0),
        seed: args.opt_or("seed", ProfilerConfig::default().seed),
    };
    let out = args.opt("out").map(String::from).unwrap_or_else(|| format!("{app_name}.trace.json"));

    eprintln!(
        "profiling {app_name} on {} at {} Hz (memory mode, as a user would)...",
        machine.name, cfg.sampling_hz
    );
    let backing = machine.largest_tier();
    let result = memsim::run(&app, &machine, ExecMode::MemoryMode, &mut FixedTier::new(backing));
    let trace = synthesize_columns(&app, &result, &cfg);
    if args.has("binary") {
        let f = ok_or_die("ecohmem-profile", std::fs::File::create(&out));
        ok_or_die(
            "ecohmem-profile",
            memtrace::write_columnar_v2(&trace, std::io::BufWriter::new(f)),
        );
    } else {
        ok_or_die("ecohmem-profile", trace.to_trace_file().save(&out));
    }
    eprintln!(
        "wrote {out}: {} allocation events, {} samples, {:.1}s profiled run",
        trace.alloc_count(),
        trace.sample_count(),
        result.total_time
    );
    metrics.finish();
}
