//! `ecohmem-run` — the FlexMalloc stage: execute an application with its
//! allocations placed per a report, and compare against Memory Mode.
//!
//! ```text
//! ecohmem-run <app> --report FILE [--machine pmem6|pmem2|hbm]
//!             [--aslr N] [--no-baseline] [--jobs N]
//! ecohmem-run <app> --online [--dram-gib N] [--epoch-phases N]
//!             [--machine pmem6|pmem2|hbm] [--no-baseline] [--jobs N]
//! ```
//!
//! With `--jobs` ≥ 2 (or `ECOHMEM_JOBS`), the placed run and the
//! Memory-Mode baseline execute concurrently; the baseline is additionally
//! served from the process-wide memoization cache.
//!
//! `--online` replaces the report-driven FlexMalloc interposer with the
//! online placement engine: no profiling run, no report file — the
//! incremental advisor plans placements from phase observations during the
//! run itself and migrates objects across tiers at phase boundaries, each
//! migration paying bytes/bandwidth plus a fixed overhead.

use cli::{machine_by_name, ok_or_die, usage_error, Args, MetricsOut};
use ecohmem_online::{
    Admission, DurabilityConfig, OnlineConfig, OnlinePolicy, Supervisor, SupervisorConfig,
};
use flexmalloc::FlexMalloc;
use memsim::{run, ExecMode};
use memtrace::PlacementReport;

const USAGE: &str = "ecohmem-run <app> --report FILE [--machine pmem6|pmem2|hbm] [--aslr N] \
                     [--no-baseline] [--lenient] [--jobs N] [--metrics-out FILE] | ecohmem-run \
                     <app> --online [--dram-gib N] [--epoch-phases N] [--machine ...] \
                     [--no-baseline] [--jobs N] [--metrics-out FILE] [--journal-dir DIR \
                     [--checkpoint-every N] [--lenient]]";

fn main() {
    let args = Args::from_env();
    let metrics = MetricsOut::from_args("ecohmem-run", &args);
    let Some(app_name) = args.positional.first() else {
        usage_error("ecohmem-run", "missing application name", USAGE);
    };
    let Some(app) = workloads::model_by_name(app_name) else {
        usage_error("ecohmem-run", &format!("unknown application `{app_name}`"), USAGE);
    };
    let machine_name = args.opt("machine").unwrap_or("pmem6");
    let Some(machine) = machine_by_name(machine_name) else {
        usage_error("ecohmem-run", &format!("unknown machine `{machine_name}`"), USAGE);
    };

    if args.has("online") {
        if args.opt("journal-dir").is_some() {
            run_durable(&args, app_name, &app, &machine);
        } else {
            run_online(&args, app_name, &app, &machine);
        }
        metrics.finish();
        return;
    }

    let Some(report_path) = args.opt("report") else {
        usage_error("ecohmem-run", "missing --report (or --online)", USAGE);
    };
    let report = ok_or_die("ecohmem-run", PlacementReport::load(report_path));

    // A production run gets a fresh ASLR layout — matching must survive it.
    let aslr = args.opt_or("aslr", 0xec0_u64);
    let mut interposer = if args.has("lenient") {
        // Stale or partially unresolvable reports degrade to fallback
        // placement instead of aborting the run.
        let (fm, warnings) = FlexMalloc::new_lenient(&report, &app.binmap, aslr, app.ranks);
        cli::print_warnings("ecohmem-run", &warnings);
        fm
    } else {
        ok_or_die("ecohmem-run", report.validate());
        ok_or_die("ecohmem-run", FlexMalloc::new(&report, &app.binmap, aslr, app.ranks))
    };
    // Overlap the placed run with the Memory-Mode baseline when allowed;
    // the baseline also hits the memoization cache if already simulated.
    let wants_baseline = !args.has("no-baseline");
    let (placed, baseline) = std::thread::scope(|s| {
        let handle = (wants_baseline && args.jobs() > 1)
            .then(|| s.spawn(|| baselines::run_memory_mode(&app, &machine)));
        let placed = run(&app, &machine, ExecMode::AppDirect, &mut interposer);
        let baseline = match handle {
            Some(h) => Some(h.join().expect("baseline thread panicked")),
            None => wants_baseline.then(|| baselines::run_memory_mode(&app, &machine)),
        };
        (placed, baseline)
    });
    println!(
        "{app_name} under flexmalloc ({}): {:.2}s wall, {} matched / {} fallback allocations",
        interposer.matcher().format(),
        placed.total_time,
        interposer.stats().matched,
        interposer.stats().unmatched,
    );
    println!(
        "tier peaks: dram {:.2} GB, pmem {:.2} GB; interposer overhead {:.3}s",
        placed.tier_peak_bytes[0] as f64 / 1e9,
        placed.tier_peak_bytes.get(1).copied().unwrap_or(0) as f64 / 1e9,
        placed.alloc_overhead,
    );
    if let Some(mm) = baseline {
        println!(
            "memory mode: {:.2}s  →  speedup {:.3}x",
            mm.total_time,
            mm.total_time / placed.total_time
        );
    }
    metrics.finish();
}

/// The `--online --journal-dir DIR` mode: the crash-safe streaming
/// replanner. The app's event stream is fed through a supervised
/// [`ecohmem_online::DurableEngine`] — every batch journaled before it is
/// applied, checkpoints every `--checkpoint-every N` records — so killing
/// the process and re-running with the same `--journal-dir` resumes from
/// the recovered state instead of starting over. `--lenient` selects
/// `BestEffort` degradation (serve the last good placement, marked stale,
/// through worker outages) instead of `Strict` fail-fast.
fn run_durable(
    args: &Args,
    app_name: &str,
    app: &memsim::AppModel,
    machine: &memsim::MachineConfig,
) {
    use ecohmem_online::channel::STREAM_BATCH;
    use ecohmem_online::StreamMeta;
    use memsim::FixedTier;
    use profiler::{profile_run, ProfilerConfig};
    use std::sync::{Arc, Condvar, Mutex};

    let dir = args.opt("journal-dir").expect("checked by caller");
    let mut durability = DurabilityConfig::new(dir);
    durability.checkpoint_every = args.opt_or("checkpoint-every", durability.checkpoint_every);
    let policy = if args.has("lenient") {
        ecohmem_online::DegradationPolicy::BestEffort
    } else {
        ecohmem_online::DegradationPolicy::Strict
    };
    let gib = args.opt_or("dram-gib", 12u64);
    let mut online_cfg = OnlineConfig::default();
    online_cfg.epoch_phases = args.opt_or("epoch-phases", online_cfg.epoch_phases);

    // The event source: a profiled run of the app on the large tier (the
    // stand-in for a live sampling profiler attached to the process).
    let backing = machine.largest_tier();
    let (trace, _) = profile_run(
        app,
        machine,
        ExecMode::MemoryMode,
        &mut FixedTier::new(backing),
        &ProfilerConfig::default(),
    );

    // The first recovery callback tells us how many events the recovered
    // state already consumed from the stream, so a re-fed recorded stream
    // can skip exactly that prefix. A count, not a time cutoff: distinct
    // events may legally share a timestamp, and a time filter would skip
    // not-yet-ingested events that tie with the recovered stream time.
    let first_open: Arc<(Mutex<Option<u64>>, Condvar)> =
        Arc::new((Mutex::new(None), Condvar::new()));
    let opened = Arc::clone(&first_open);
    let supervisor = Supervisor::spawn(
        durability,
        StreamMeta::of(&trace),
        policy,
        online_cfg,
        advisor::AdvisorConfig::loads_only(gib),
        advisor::Algorithm::Base,
        SupervisorConfig::default(),
        move |report| {
            if report.resumed {
                eprintln!(
                    "ecohmem-run: recovered prior state (checkpoint {:?}, {} journal records \
                     replayed, {} torn bytes truncated, {} events ingested + {} shed, stream at \
                     t={:?})",
                    report.checkpoint_seq,
                    report.replayed_records,
                    report.torn_bytes,
                    report.events_seen,
                    report.shed_events,
                    report.stream_time,
                );
            }
            let (slot, cv) = &*opened;
            let mut guard = slot.lock().unwrap();
            if guard.is_none() {
                // Shed events never reached the ingestor, but they *were*
                // consumed from the recorded stream — skip both.
                *guard = Some(report.events_seen + report.shed_events);
                cv.notify_all();
            }
        },
    );
    let resume_skip = {
        let (slot, cv) = &*first_open;
        let guard = slot.lock().unwrap();
        let (guard, timed_out) = cv
            .wait_timeout_while(guard, std::time::Duration::from_secs(30), |g| g.is_none())
            .unwrap();
        if timed_out.timed_out() {
            0 // open failed or is stuck; feed everything, errors surface below
        } else {
            guard.unwrap_or(0)
        }
    };

    let events: Vec<memtrace::TraceEvent> =
        trace.events.iter().skip(resume_skip as usize).cloned().collect();
    let mut shed_batches = 0u64;
    let stride = (events.len() / 8).max(1);
    let mut fed = 0usize;
    'feed: for chunk in events.chunks(STREAM_BATCH) {
        match supervisor.offer(chunk.to_vec()) {
            Ok(Admission::Admitted) => {}
            Ok(Admission::Shed) => shed_batches += 1,
            Err(e) => {
                eprintln!("ecohmem-run: stream stopped early: {e}");
                break 'feed;
            }
        }
        let before = fed / stride;
        fed += chunk.len();
        if fed / stride > before {
            // Mid-stream replan ticks, like a live epoch timer would fire.
            if let Err(e) = supervisor.tick(chunk.last().map(event_time).unwrap_or(0.0)) {
                eprintln!("ecohmem-run: tick failed: {e}");
                break 'feed;
            }
        }
    }
    let _ = supervisor.tick(trace.duration);
    let outcome = ok_or_die("ecohmem-run", supervisor.finish());
    println!(
        "{app_name} durable online replan: {} plan revisions over {} events, {} recoveries{}",
        outcome.revisions.len(),
        events.len(),
        outcome.recoveries,
        if outcome.degraded { " (degraded: serving stale state)" } else { "" },
    );
    if outcome.shed_events > 0 {
        println!(
            "overload: {} events shed in {} batches{}",
            outcome.shed_events,
            shed_batches,
            outcome.shed_window.describe(),
        );
    } else {
        println!("overload: none (0 events shed)");
    }
}

fn event_time(e: &memtrace::TraceEvent) -> f64 {
    e.time()
}

/// The `--online` mode: dynamic placement by the incremental advisor, no
/// prior profiling run and no report file.
fn run_online(
    args: &Args,
    app_name: &str,
    app: &memsim::AppModel,
    machine: &memsim::MachineConfig,
) {
    let gib = args.opt_or("dram-gib", 12u64);
    let cfg = advisor::AdvisorConfig::loads_only(gib);
    let mut online_cfg = OnlineConfig::reactive();
    online_cfg.epoch_phases = args.opt_or("epoch-phases", online_cfg.epoch_phases);
    let mut policy = OnlinePolicy::new(cfg, online_cfg);

    let wants_baseline = !args.has("no-baseline");
    let (placed, baseline) = std::thread::scope(|s| {
        let handle = (wants_baseline && args.jobs() > 1)
            .then(|| s.spawn(|| baselines::run_memory_mode(app, machine)));
        let placed = run(app, machine, ExecMode::AppDirect, &mut policy);
        let baseline = match handle {
            Some(h) => Some(h.join().expect("baseline thread panicked")),
            None => wants_baseline.then(|| baselines::run_memory_mode(app, machine)),
        };
        (placed, baseline)
    });

    println!(
        "{app_name} under online placement: {:.2}s wall, {} epochs, {} plan revisions",
        placed.total_time,
        policy.epochs(),
        policy.revisions().len(),
    );
    println!(
        "migrations: {} applied of {} requested, {:.2} GB moved, {:.3}s migration time",
        placed.migrations,
        policy.migrations_requested(),
        placed.migrated_bytes as f64 / 1e9,
        placed.migration_time,
    );
    println!(
        "tier peaks: dram {:.2} GB, pmem {:.2} GB",
        placed.tier_peak_bytes[0] as f64 / 1e9,
        placed.tier_peak_bytes.get(1).copied().unwrap_or(0) as f64 / 1e9,
    );
    if let Some(mm) = baseline {
        println!(
            "memory mode: {:.2}s  →  speedup {:.3}x",
            mm.total_time,
            mm.total_time / placed.total_time
        );
    }
}
