//! `ecohmem-run` — the FlexMalloc stage: execute an application with its
//! allocations placed per a report, and compare against Memory Mode.
//!
//! ```text
//! ecohmem-run <app> --report FILE [--machine pmem6|pmem2|hbm]
//!             [--aslr N] [--no-baseline] [--jobs N]
//! ```
//!
//! With `--jobs` ≥ 2 (or `ECOHMEM_JOBS`), the placed run and the
//! Memory-Mode baseline execute concurrently; the baseline is additionally
//! served from the process-wide memoization cache.

use cli::{machine_by_name, ok_or_die, usage_error, Args};
use flexmalloc::FlexMalloc;
use memsim::{run, ExecMode};
use memtrace::PlacementReport;

const USAGE: &str = "ecohmem-run <app> --report FILE [--machine pmem6|pmem2|hbm] [--aslr N] \
                     [--no-baseline] [--lenient] [--jobs N]";

fn main() {
    let args = Args::from_env();
    let Some(app_name) = args.positional.first() else {
        usage_error("ecohmem-run", "missing application name", USAGE);
    };
    let Some(app) = workloads::model_by_name(app_name) else {
        usage_error("ecohmem-run", &format!("unknown application `{app_name}`"), USAGE);
    };
    let Some(report_path) = args.opt("report") else {
        usage_error("ecohmem-run", "missing --report", USAGE);
    };
    let machine_name = args.opt("machine").unwrap_or("pmem6");
    let Some(machine) = machine_by_name(machine_name) else {
        usage_error("ecohmem-run", &format!("unknown machine `{machine_name}`"), USAGE);
    };
    let report = ok_or_die("ecohmem-run", PlacementReport::load(report_path));

    // A production run gets a fresh ASLR layout — matching must survive it.
    let aslr = args.opt_or("aslr", 0xec0_u64);
    let mut interposer = if args.has("lenient") {
        // Stale or partially unresolvable reports degrade to fallback
        // placement instead of aborting the run.
        let (fm, warnings) = FlexMalloc::new_lenient(&report, &app.binmap, aslr, app.ranks);
        cli::print_warnings("ecohmem-run", &warnings);
        fm
    } else {
        ok_or_die("ecohmem-run", report.validate());
        ok_or_die("ecohmem-run", FlexMalloc::new(&report, &app.binmap, aslr, app.ranks))
    };
    // Overlap the placed run with the Memory-Mode baseline when allowed;
    // the baseline also hits the memoization cache if already simulated.
    let wants_baseline = !args.has("no-baseline");
    let (placed, baseline) = std::thread::scope(|s| {
        let handle = (wants_baseline && args.jobs() > 1)
            .then(|| s.spawn(|| baselines::run_memory_mode(&app, &machine)));
        let placed = run(&app, &machine, ExecMode::AppDirect, &mut interposer);
        let baseline = match handle {
            Some(h) => Some(h.join().expect("baseline thread panicked")),
            None => wants_baseline.then(|| baselines::run_memory_mode(&app, &machine)),
        };
        (placed, baseline)
    });
    println!(
        "{app_name} under flexmalloc ({}): {:.2}s wall, {} matched / {} fallback allocations",
        interposer.matcher().format(),
        placed.total_time,
        interposer.stats().matched,
        interposer.stats().unmatched,
    );
    println!(
        "tier peaks: dram {:.2} GB, pmem {:.2} GB; interposer overhead {:.3}s",
        placed.tier_peak_bytes[0] as f64 / 1e9,
        placed.tier_peak_bytes.get(1).copied().unwrap_or(0) as f64 / 1e9,
        placed.alloc_overhead,
    );
    if let Some(mm) = baseline {
        println!(
            "memory mode: {:.2}s  →  speedup {:.3}x",
            mm.total_time,
            mm.total_time / placed.total_time
        );
    }
}
