//! `ecohmem-serve` — the placement-as-a-service daemon.
//!
//! ```text
//! ecohmem-serve [--listen ADDR] [--io-threads N] [--workers N]
//!               [--max-tenants N] [--journal-dir DIR] [--dram-gib N]
//!               [--bw-aware] [--once N] [--idle-timeout-secs N]
//!               [--metrics-out FILE]
//! ```
//!
//! Hosts N independent tenant sessions over the framed TCP protocol
//! (see `ecohmem-serve` crate docs): each tenant streams event batches
//! and ticks, and receives placement revisions back. `--journal-dir`
//! threads the crash-safe durability engine under every tenant — each
//! gets its own write-ahead log and checkpoints under
//! `<DIR>/<tenant>/`. `--once N` exits after N sessions complete
//! (for CI and scripted runs); without it the daemon serves forever.
//!
//! Connections are multiplexed across `--io-threads` event-driven
//! reactor shards (default: one per core), so the daemon runs exactly
//! `io-threads + workers` threads no matter how many tenants connect.
//! `--idle-timeout-secs` bounds how long a silent connection may hold
//! its slot (default 120).

use cli::{ok_or_die, Args, MetricsOut};
use ecohmem_serve::{ServeConfig, Server, ServerConfig};

const USAGE: &str = "ecohmem-serve [--listen ADDR] [--io-threads N] [--workers N] \
                     [--max-tenants N] [--journal-dir DIR] [--dram-gib N] [--bw-aware] \
                     [--once N] [--idle-timeout-secs N] [--metrics-out FILE]";

fn main() {
    let args = Args::from_env();
    let metrics = MetricsOut::from_args("ecohmem-serve", &args);
    if args.positional.first().is_some() {
        cli::usage_error("ecohmem-serve", "unexpected positional argument", USAGE);
    }

    let mut serve = ServeConfig {
        workers: args.opt_or("workers", 2usize),
        max_tenants: args.opt_or("max-tenants", 1024usize),
        dram_gib: args.opt_or("dram-gib", 12u64),
        journal_dir: args.opt("journal-dir").map(std::path::PathBuf::from),
        ..ServeConfig::default()
    };
    if args.has("bw-aware") {
        serve.algorithm = advisor::Algorithm::BandwidthAware;
    }

    let cfg = ServerConfig {
        listen: args.opt("listen").unwrap_or("127.0.0.1:7878").to_string(),
        once: args.opt("once").and_then(|v| v.parse().ok()),
        io_threads: args.opt_or("io-threads", 0usize),
        idle_timeout: std::time::Duration::from_secs(args.opt_or("idle-timeout-secs", 120u64)),
        serve,
    };
    let once = cfg.once;
    let io_threads = cfg.resolved_io_threads();
    let server = ok_or_die("ecohmem-serve", Server::bind(cfg));
    let addr = ok_or_die("ecohmem-serve", server.local_addr());
    eprintln!(
        "ecohmem-serve: listening on {addr} (io-threads={io_threads}, workers={n})",
        n = args.opt_or("workers", 2usize)
    );
    if let Some(n) = once {
        eprintln!("ecohmem-serve: will exit after {n} session(s)");
    }
    let stats = ok_or_die("ecohmem-serve", server.run());
    eprintln!("ecohmem-serve: done — {} session(s), {} frame(s)", stats.sessions, stats.frames);
    metrics.finish();
}
