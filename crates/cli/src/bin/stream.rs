//! `ecohmem-stream` — replay a trace against a running advisor daemon.
//!
//! ```text
//! ecohmem-stream <app|trace-file> [--connect ADDR] [--tenant NAME]
//!                [--mode bin|jsonl] [--batch N] [--tick-stride N]
//!                [--machine pmem6|pmem2|hbm] [--revisions-out FILE]
//!                [--metrics-out FILE]
//! ```
//!
//! The positional argument is either a trace file (any on-disk format
//! `ecohmem-inspect` accepts) or a built-in application model name
//! (`minife`, `lulesh`, …), in which case a profiling run generates the
//! trace first — the two-terminal demo needs no files at all.
//!
//! Events stream in `--batch`-sized frames with a tick every
//! `--tick-stride` batches (plus a final tick at the trace end), the
//! same cadence the offline acceptance tests use. Revisions the daemon
//! pushes back are written as JSONL to `--revisions-out` (stdout
//! summary otherwise).

use cli::{machine_by_name, ok_or_die, usage_error, Args, MetricsOut};
use ecohmem_obs::Json;
use ecohmem_serve::{Mode, StreamClient};
use memsim::{ExecMode, FixedTier};
use memtrace::TraceFile;
use profiler::{profile_run, ProfilerConfig};
use std::io::Write;
use std::time::Duration;

const USAGE: &str = "ecohmem-stream <app|trace-file> [--connect ADDR] [--tenant NAME] \
                     [--mode bin|jsonl] [--batch N] [--tick-stride N] \
                     [--machine pmem6|pmem2|hbm] [--revisions-out FILE] [--metrics-out FILE]";

fn load_or_profile(args: &Args, source: &str) -> TraceFile {
    if std::path::Path::new(source).is_file() {
        return ok_or_die("ecohmem-stream", cli::load_trace(source));
    }
    let Some(app) = workloads::model_by_name(source) else {
        usage_error(
            "ecohmem-stream",
            &format!("`{source}` is neither a trace file nor a known application"),
            USAGE,
        );
    };
    let machine_name = args.opt("machine").unwrap_or("pmem6");
    let Some(machine) = machine_by_name(machine_name) else {
        usage_error("ecohmem-stream", &format!("unknown machine `{machine_name}`"), USAGE);
    };
    let (trace, _) = profile_run(
        &app,
        &machine,
        ExecMode::MemoryMode,
        &mut FixedTier::new(machine.largest_tier()),
        &ProfilerConfig::default(),
    );
    trace
}

fn revision_json(r: &ecohmem_online::PlacementRevision) -> Json {
    Json::obj(vec![
        ("epoch", Json::U64(r.epoch)),
        ("time", Json::F64(r.time)),
        ("site", Json::U64(r.site.0 as u64)),
        ("from", Json::U64(r.from.0 as u64)),
        ("to", Json::U64(r.to.0 as u64)),
    ])
}

fn main() {
    let args = Args::from_env();
    let metrics = MetricsOut::from_args("ecohmem-stream", &args);
    let Some(source) = args.positional.first() else {
        usage_error("ecohmem-stream", "missing application or trace file", USAGE);
    };
    let mode_name = args.opt("mode").unwrap_or("bin");
    let Some(mode) = Mode::parse(mode_name) else {
        usage_error("ecohmem-stream", &format!("unknown mode `{mode_name}` (bin|jsonl)"), USAGE);
    };
    let addr = args.opt("connect").unwrap_or("127.0.0.1:7878");
    let default_tenant = format!("{source}-{}", std::process::id());
    let tenant = args.opt("tenant").unwrap_or(&default_tenant);
    let batch = args.opt_or("batch", 512usize).max(1);
    let tick_stride = args.opt_or("tick-stride", 6usize).max(1);

    let trace = load_or_profile(&args, source);
    eprintln!(
        "ecohmem-stream: {} events as tenant {tenant:?} → {addr} ({mode_name}, batch {batch})",
        trace.events.len()
    );

    let mut client = ok_or_die(
        "ecohmem-stream",
        StreamClient::connect_retry(addr, tenant, mode, &trace, Duration::from_secs(10)),
    );
    let chunks: Vec<&[memtrace::TraceEvent]> = trace.events.chunks(batch).collect();
    for (i, chunk) in chunks.iter().enumerate() {
        ok_or_die("ecohmem-stream", client.send_events(chunk));
        if (i + 1) % tick_stride == 0 {
            ok_or_die("ecohmem-stream", client.tick(chunk.last().unwrap().time()));
        }
    }
    ok_or_die("ecohmem-stream", client.tick(trace.duration));
    let outcome = ok_or_die("ecohmem-stream", client.finish());

    if let Some(path) = args.opt("revisions-out") {
        let mut out = ok_or_die("ecohmem-stream", std::fs::File::create(path));
        for r in &outcome.revisions {
            ok_or_die("ecohmem-stream", writeln!(out, "{}", revision_json(r).to_string_compact()));
        }
        eprintln!("ecohmem-stream: wrote {} revisions to {path}", outcome.revisions.len());
    }
    println!(
        "tenant {tenant:?}: {} revisions over {} ticks, {} shed (server total {})",
        outcome.revisions.len(),
        outcome.revision_frames,
        outcome.shed,
        outcome.bye_revisions.unwrap_or(0),
    );
    metrics.finish();
}
