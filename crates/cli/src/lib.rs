//! # cli — the ecoHMEM command-line toolchain
//!
//! The original ecoHMEM release is a *toolchain*, not a library: users run
//! a profiling launcher, explore the trace, run the Advisor on it, and
//! launch the application under FlexMalloc with the resulting report. This
//! crate mirrors that workflow with on-disk artifacts:
//!
//! ```text
//! ecohmem-profile minife -o minife.trace.json        # Extrae
//! ecohmem-inspect minife.trace.json                  # Paramedir
//! ecohmem-advise  minife.trace.json --dram-gib 12 \
//!                 -o minife.report.json              # HMem Advisor
//! ecohmem-run     minife --report minife.report.json # FlexMalloc
//! ```
//!
//! Applications are the built-in workload models (`minife`, `minimd`,
//! `lulesh`, `hpcg`, `cloverleaf3d`, `lammps`, `openfoam`); machines are
//! the built-in presets (`pmem6`, `pmem2`, `hbm`).

use memsim::MachineConfig;
use memtrace::{TraceError, TraceFile, Warning};
use std::collections::HashMap;

/// Minimal flag parser: positional arguments plus `--key value` /
/// `--switch` options. No external dependency needed for four tools.
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// Positional arguments, in order.
    pub positional: Vec<String>,
    /// `--key value` options (last occurrence wins).
    pub options: HashMap<String, String>,
    /// Bare `--switch` flags.
    pub switches: Vec<String>,
}

impl Args {
    /// Parses an argument list. A token starting with `--` consumes the
    /// next token as its value unless the next token also starts with `--`
    /// (or is absent), in which case it is a switch.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Args {
        let mut out = Args::default();
        let mut iter = args.into_iter().peekable();
        while let Some(tok) = iter.next() {
            if let Some(key) = tok.strip_prefix("--") {
                match iter.peek() {
                    Some(next) if !next.starts_with("--") => {
                        let value = iter.next().expect("peeked");
                        out.options.insert(key.to_string(), value);
                    }
                    _ => out.switches.push(key.to_string()),
                }
            } else {
                out.positional.push(tok);
            }
        }
        out
    }

    /// Parses the process's own arguments (skipping `argv[0]`).
    pub fn from_env() -> Args {
        Self::parse(std::env::args().skip(1))
    }

    /// An option value, if present.
    pub fn opt(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// An option parsed into any `FromStr` type, with a default.
    pub fn opt_or<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.opt(key).and_then(|v| v.parse().ok()).unwrap_or(default)
    }

    /// True if a bare switch was given.
    pub fn has(&self, switch: &str) -> bool {
        self.switches.iter().any(|s| s == switch)
    }

    /// Worker count for tools that can overlap simulations: `--jobs N` if
    /// given (clamped to ≥ 1), else `ECOHMEM_JOBS`, else the machine's
    /// available parallelism (see [`memsim::jobs_from_env`]).
    pub fn jobs(&self) -> usize {
        self.opt("jobs")
            .and_then(|v| v.parse::<usize>().ok())
            .map(|n| n.max(1))
            .unwrap_or_else(memsim::jobs_from_env)
    }
}

/// Handles the shared `--metrics-out PATH` flag: when the flag is present,
/// construction turns observability on ([`ecohmem_obs::set_enabled`]) so
/// the run records metrics, and [`MetricsOut::finish`] writes the
/// `RunMetrics` JSON document (schema `ecohmem.run_metrics/1`) to PATH.
/// Without the flag both are no-ops, so tools can call this
/// unconditionally.
#[derive(Debug)]
pub struct MetricsOut {
    label: String,
    path: Option<String>,
    started: std::time::Instant,
}

impl MetricsOut {
    /// Reads `--metrics-out` from parsed arguments; `label` (the tool
    /// name) becomes the document's `label` field.
    pub fn from_args(label: &str, args: &Args) -> MetricsOut {
        let path = args.opt("metrics-out").map(str::to_string);
        if path.is_some() {
            ecohmem_obs::set_enabled(true);
        }
        MetricsOut { label: label.to_string(), path, started: std::time::Instant::now() }
    }

    /// Writes the `RunMetrics` document if `--metrics-out` was given. Call
    /// once, after the tool's real work.
    pub fn finish(&self) {
        let Some(path) = &self.path else { return };
        let wall = self.started.elapsed().as_secs_f64();
        let doc = ecohmem_obs::run_metrics(&self.label, wall);
        if let Err(e) = std::fs::write(path, doc.to_string_pretty() + "\n") {
            eprintln!("{}: error: cannot write metrics to {path}: {e}", self.label);
        }
    }
}

/// Loads a trace file in either encoding, sniffing the binary magic.
pub fn load_trace(path: &str) -> Result<TraceFile, TraceError> {
    let data = std::fs::read(path)?;
    if data.starts_with(b"ECOHMEM\0") {
        memtrace::read_trace(&data[..])
    } else {
        TraceFile::from_json(std::str::from_utf8(&data).map_err(|e| {
            TraceError::Malformed(format!("trace is neither binary nor UTF-8 JSON: {e}"))
        })?)
    }
}

/// Loads a trace file leniently, sniffing the binary magic like
/// [`load_trace`]: a truncated JSON tail is repaired when possible, and
/// malformed events are dropped with warnings instead of failing the load.
pub fn load_trace_lenient(path: &str) -> Result<(TraceFile, Vec<Warning>), TraceError> {
    let data = std::fs::read(path)?;
    if data.starts_with(b"ECOHMEM\0") {
        let mut trace = memtrace::read_trace(&data[..])?;
        let warnings = trace.sanitize();
        Ok((trace, warnings))
    } else {
        let (mut trace, mut warnings) =
            TraceFile::from_json_lenient(&String::from_utf8_lossy(&data))?;
        warnings.extend(trace.sanitize());
        Ok((trace, warnings))
    }
}

/// Prints accumulated warnings to stderr, one per line.
pub fn print_warnings(tool: &str, warnings: &[Warning]) {
    for w in warnings {
        eprintln!("{tool}: warning: {w}");
    }
}

/// Resolves a machine preset name.
pub fn machine_by_name(name: &str) -> Option<MachineConfig> {
    match name {
        "pmem6" | "optane-pmem6" => Some(MachineConfig::optane_pmem6()),
        "pmem2" | "optane-pmem2" => Some(MachineConfig::optane_pmem2()),
        "hbm" | "hbm-ddr" => Some(MachineConfig::hbm_ddr()),
        _ => None,
    }
}

/// Prints a message to stderr and exits with status 2 (usage error).
pub fn usage_error(tool: &str, msg: &str, usage: &str) -> ! {
    eprintln!("{tool}: {msg}\n\nusage: {usage}");
    std::process::exit(2);
}

/// Unwraps a result or exits with status 1 and the error on stderr.
pub fn ok_or_die<T, E: std::fmt::Display>(tool: &str, r: Result<T, E>) -> T {
    match r {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{tool}: error: {e}");
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_positionals_options_and_switches() {
        let a = Args::parse(
            ["minife", "--dram-gib", "12", "--stores", "--out", "r.json", "extra"]
                .map(String::from),
        );
        assert_eq!(a.positional, vec!["minife", "extra"]);
        assert_eq!(a.opt("dram-gib"), Some("12"));
        assert_eq!(a.opt("out"), Some("r.json"));
        assert!(a.has("stores"));
        assert!(!a.has("bw-aware"));
        assert_eq!(a.opt_or("dram-gib", 0u64), 12);
        assert_eq!(a.opt_or("missing", 7u64), 7);
    }

    #[test]
    fn jobs_prefers_the_flag_and_clamps() {
        let a = Args::parse(["--jobs", "3"].map(String::from));
        assert_eq!(a.jobs(), 3);
        let a = Args::parse(["--jobs", "0"].map(String::from));
        assert_eq!(a.jobs(), 1);
        // Without the flag it falls back to the environment/parallelism
        // default, which is always at least one worker.
        assert!(Args::default().jobs() >= 1);
    }

    #[test]
    fn trailing_switch_has_no_value() {
        let a = Args::parse(["--fast"].map(String::from));
        assert!(a.has("fast"));
        assert!(a.opt("fast").is_none());
    }

    #[test]
    fn double_dash_value_becomes_switch_pair() {
        let a = Args::parse(["--a", "--b"].map(String::from));
        assert!(a.has("a"));
        assert!(a.has("b"));
    }

    #[test]
    fn metrics_out_writes_a_document_only_when_asked() {
        // Without the flag, finish() is a no-op.
        MetricsOut::from_args("unit", &Args::default()).finish();

        let path = std::env::temp_dir().join(format!("ecohmem-cli-metrics-{}", std::process::id()));
        let path_str = path.to_string_lossy().into_owned();
        let a = Args::parse(["--metrics-out", path_str.as_str()].map(String::from));
        let m = MetricsOut::from_args("unit", &a);
        ecohmem_obs::incr("cli.metrics.test");
        m.finish();
        let doc = ecohmem_obs::Json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(doc.get("label").and_then(ecohmem_obs::Json::as_str), Some("unit"));
        assert!(doc.get("metrics").is_some());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn machine_presets_resolve() {
        assert!(machine_by_name("pmem6").is_some());
        assert!(machine_by_name("pmem2").is_some());
        assert!(machine_by_name("hbm").is_some());
        assert!(machine_by_name("knl").is_none());
    }
}
