//! End-to-end robustness tests for the four CLI tools: bad inputs must
//! produce a one-line diagnostic and a nonzero exit, never a panic, and
//! `--lenient` must salvage a truncated trace.

use std::path::PathBuf;
use std::process::{Command, Output};

fn bin(tool: &str) -> &'static str {
    match tool {
        "profile" => env!("CARGO_BIN_EXE_ecohmem-profile"),
        "inspect" => env!("CARGO_BIN_EXE_ecohmem-inspect"),
        "advise" => env!("CARGO_BIN_EXE_ecohmem-advise"),
        "run" => env!("CARGO_BIN_EXE_ecohmem-run"),
        other => panic!("unknown tool {other}"),
    }
}

fn invoke(tool: &str, args: &[&str]) -> Output {
    Command::new(bin(tool)).args(args).output().expect("tool binary spawns")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn assert_clean_failure(out: &Output, context: &str) {
    assert!(!out.status.success(), "{context}: expected a failing exit status");
    let err = stderr(out);
    assert!(
        err.contains("error") || err.contains("usage"),
        "{context}: no diagnostic on stderr: {err:?}"
    );
    assert!(!err.contains("panicked"), "{context}: tool panicked: {err}");
}

fn scratch(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ecohmem-cli-{}-{name}", std::process::id()))
}

#[test]
fn missing_input_files_fail_cleanly() {
    let gone = "/nonexistent/ecohmem/missing.json";
    for tool in ["inspect", "advise"] {
        let out = invoke(tool, &[gone]);
        assert_clean_failure(&out, tool);
        assert_eq!(out.status.code(), Some(1), "{tool} exit code");
        assert!(stderr(&out).contains("i/o error"), "{tool}: {}", stderr(&out));
    }
    let out = invoke("run", &["minife", "--report", gone]);
    assert_clean_failure(&out, "run");
}

#[test]
fn unknown_names_are_usage_errors() {
    let out = invoke("profile", &["no-such-app"]);
    assert_clean_failure(&out, "profile unknown app");
    assert_eq!(out.status.code(), Some(2));

    let out = invoke("run", &["minife"]); // missing --report
    assert_clean_failure(&out, "run without report");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn truncated_trace_fails_strict_but_loads_lenient() {
    let trace_path = scratch("t.trace.json");
    let trace = trace_path.to_str().unwrap();
    let out = invoke("profile", &["minife", "--rate", "20", "--out", trace]);
    assert!(out.status.success(), "profile: {}", stderr(&out));

    let json = std::fs::read_to_string(&trace_path).unwrap();
    let cut_path = scratch("t.cut.json");
    let cut = cut_path.to_str().unwrap();
    std::fs::write(&cut_path, &json[..json.len() - 40]).unwrap();

    let out = invoke("inspect", &[cut]);
    assert_clean_failure(&out, "inspect strict on truncated trace");
    assert!(stderr(&out).contains("parse error"), "{}", stderr(&out));

    let out = invoke("inspect", &[cut, "--lenient"]);
    assert!(out.status.success(), "inspect --lenient: {}", stderr(&out));
    assert!(stderr(&out).contains("warning"), "{}", stderr(&out));

    let report_path = scratch("t.report.json");
    let out = invoke("advise", &[cut, "--lenient", "--out", report_path.to_str().unwrap()]);
    assert!(out.status.success(), "advise --lenient: {}", stderr(&out));

    for p in [trace_path, cut_path, report_path] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn truncated_report_fails_cleanly() {
    let trace_path = scratch("r.trace.json");
    let report_path = scratch("r.report.json");
    let out = invoke("profile", &["minife", "--rate", "20", "--out", trace_path.to_str().unwrap()]);
    assert!(out.status.success(), "profile: {}", stderr(&out));
    let out =
        invoke("advise", &[trace_path.to_str().unwrap(), "--out", report_path.to_str().unwrap()]);
    assert!(out.status.success(), "advise: {}", stderr(&out));

    let json = std::fs::read_to_string(&report_path).unwrap();
    let cut_path = scratch("r.cut.json");
    std::fs::write(&cut_path, &json[..json.len() / 2]).unwrap();

    let out = invoke("run", &["minife", "--report", cut_path.to_str().unwrap()]);
    assert_clean_failure(&out, "run with truncated report");

    for p in [trace_path, report_path, cut_path] {
        let _ = std::fs::remove_file(p);
    }
}
