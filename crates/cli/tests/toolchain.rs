//! Integration tests driving the actual CLI binaries end to end through
//! temp files, the way a user runs the toolchain.

use std::path::PathBuf;
use std::process::Command;

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ecohmem-cli-{name}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn bin(name: &str) -> Command {
    let path = match name {
        "profile" => env!("CARGO_BIN_EXE_ecohmem-profile"),
        "inspect" => env!("CARGO_BIN_EXE_ecohmem-inspect"),
        "advise" => env!("CARGO_BIN_EXE_ecohmem-advise"),
        "run" => env!("CARGO_BIN_EXE_ecohmem-run"),
        _ => unreachable!(),
    };
    Command::new(path)
}

#[test]
fn full_toolchain_round_trip() {
    let dir = tmpdir("roundtrip");
    let trace = dir.join("minife.trace.json");
    let report = dir.join("minife.report.json");

    let out = bin("profile")
        .args(["minife", "--out", trace.to_str().unwrap(), "--rate", "50"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(trace.exists());

    let out = bin("inspect").args([trace.to_str().unwrap(), "--top", "3"]).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("application minife"), "{stdout}");

    let out = bin("advise")
        .args([trace.to_str().unwrap(), "--dram-gib", "12", "--out", report.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(report.exists());

    let out = bin("run").args(["minife", "--report", report.to_str().unwrap()]).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("speedup"), "{stdout}");
    // MiniFE's win must survive the file round trip.
    let speedup: f64 = stdout
        .split("speedup ")
        .nth(1)
        .and_then(|s| s.split('x').next())
        .and_then(|s| s.trim().parse().ok())
        .expect("speedup in output");
    assert!(speedup > 1.5, "speedup {speedup}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn advise_emits_parseable_text_reports() {
    let dir = tmpdir("text");
    let trace = dir.join("t.json");
    let report_txt = dir.join("r.txt");

    assert!(bin("profile")
        .args(["minife", "--out", trace.to_str().unwrap()])
        .output()
        .unwrap()
        .status
        .success());
    assert!(bin("advise")
        .args([
            trace.to_str().unwrap(),
            "--dram-gib",
            "8",
            "--text",
            "--out",
            report_txt.to_str().unwrap(),
        ])
        .output()
        .unwrap()
        .status
        .success());

    // The emitted text parses back with the library parser.
    let text = std::fs::read_to_string(&report_txt).unwrap();
    let tracefile = memtrace::TraceFile::load(&trace).unwrap();
    let parsed = memtrace::parse_report(&text, &tracefile.binmap, &|name| match name {
        "dram" => Some(memtrace::TierId::DRAM),
        "pmem" => Some(memtrace::TierId::PMEM),
        _ => None,
    })
    .unwrap();
    assert!(!parsed.is_empty());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn binary_traces_round_trip_through_the_toolchain() {
    let dir = tmpdir("binary");
    let trace = dir.join("t.bin");
    let report = dir.join("r.json");
    assert!(bin("profile")
        .args(["minife", "--out", trace.to_str().unwrap(), "--binary"])
        .output()
        .unwrap()
        .status
        .success());
    // The file really is binary.
    let head = std::fs::read(&trace).unwrap();
    assert_eq!(&head[..8], b"ECOHMEM\0");
    // advise and inspect sniff the format.
    assert!(bin("inspect").args([trace.to_str().unwrap()]).output().unwrap().status.success());
    assert!(bin("advise")
        .args([trace.to_str().unwrap(), "--out", report.to_str().unwrap()])
        .output()
        .unwrap()
        .status
        .success());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn usage_errors_exit_with_status_2() {
    let out = bin("profile").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let out = bin("advise").args(["nonexistent-app"]).output().unwrap();
    assert_eq!(out.status.code(), Some(1), "missing file is a runtime error");
    let out = bin("run").args(["minife"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2), "missing --report");
}
