//! Experiment sweeps: the grids behind Fig. 6 and Table VIII.

use crate::pipeline::{run_pipeline, DegradationPolicy, PipelineConfig};
use advisor::{AdvisorConfig, Algorithm};
use memsim::{AppModel, MachineConfig};
use memtrace::StackFormat;
use profiler::ProfilerConfig;

/// Which metric configuration a sweep cell uses (Fig. 6's two bars).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metrics {
    /// LLC load misses only.
    Loads,
    /// LLC load misses + L1D store misses (§V).
    LoadsStores,
}

impl Metrics {
    /// Builds the matching Advisor configuration for a DRAM budget.
    pub fn advisor_config(self, dram_gib: u64) -> AdvisorConfig {
        match self {
            Metrics::Loads => AdvisorConfig::loads_only(dram_gib),
            Metrics::LoadsStores => AdvisorConfig::loads_and_stores(dram_gib),
        }
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Metrics::Loads => "loads",
            Metrics::LoadsStores => "loads+stores",
        }
    }
}

/// One cell of a sweep grid.
#[derive(Debug, Clone, Copy)]
pub struct SweepSpec {
    /// DRAM budget in GiB.
    pub dram_gib: u64,
    /// Metric configuration.
    pub metrics: Metrics,
    /// Placement algorithm.
    pub algorithm: Algorithm,
}

/// A computed sweep cell.
#[derive(Debug, Clone)]
pub struct SweepCell {
    /// Application name.
    pub app: String,
    /// Machine name.
    pub machine: String,
    /// The sweep parameters.
    pub spec: SweepSpec,
    /// Speedup of ecoHMEM over Memory Mode.
    pub speedup: f64,
    /// Placed run wall time, seconds.
    pub placed_time: f64,
    /// Memory Mode wall time, seconds.
    pub memory_mode_time: f64,
}

/// Runs a grid of pipeline configurations over a set of applications on the
/// memoizing runner: cells are spread over `ECOHMEM_JOBS` work-stealing
/// workers (see [`memsim::parallel_map`]), and the profiling and
/// Memory-Mode baseline runs shared between cells are simulated once via
/// [`memsim::global_cache`]. Results come back in grid order regardless of
/// scheduling, so sweep output is identical at any job count.
pub fn sweep(apps: &[AppModel], machine: &MachineConfig, specs: &[SweepSpec]) -> Vec<SweepCell> {
    sweep_with_jobs(apps, machine, specs, memsim::jobs_from_env())
}

/// [`sweep`] with an explicit worker count (the bench runner's `--jobs`).
pub fn sweep_with_jobs(
    apps: &[AppModel],
    machine: &MachineConfig,
    specs: &[SweepSpec],
    jobs: usize,
) -> Vec<SweepCell> {
    let grid: Vec<(&AppModel, SweepSpec)> =
        apps.iter().flat_map(|app| specs.iter().map(move |s| (app, *s))).collect();
    memsim::parallel_map(grid, jobs, |(app, spec)| run_cell(app, machine, spec))
}

/// Runs one sweep cell.
pub fn run_cell(app: &AppModel, machine: &MachineConfig, spec: SweepSpec) -> SweepCell {
    let cfg = PipelineConfig {
        machine: machine.clone(),
        advisor: spec.metrics.advisor_config(spec.dram_gib),
        algorithm: spec.algorithm,
        stack_format: StackFormat::Bom,
        profiler: ProfilerConfig::default(),
        thresholds: Default::default(),
        profile_aslr_seed: 101,
        deploy_aslr_seed: 202,
        policy: DegradationPolicy::Strict,
        faults: Vec::new(),
    };
    let out = run_pipeline(app, &cfg).expect("pipeline runs on valid models");
    SweepCell {
        app: app.name.clone(),
        machine: machine.name.clone(),
        spec,
        speedup: out.speedup(),
        placed_time: out.placed.total_time,
        memory_mode_time: out.memory_mode.total_time,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_the_grid() {
        let apps = vec![workloads::minife::model()];
        let mach = MachineConfig::optane_pmem6();
        let specs = vec![
            SweepSpec { dram_gib: 4, metrics: Metrics::Loads, algorithm: Algorithm::Base },
            SweepSpec { dram_gib: 12, metrics: Metrics::Loads, algorithm: Algorithm::Base },
        ];
        let cells = sweep(&apps, &mach, &specs);
        assert_eq!(cells.len(), 2);
        for c in &cells {
            assert_eq!(c.app, "minife");
            assert!(c.speedup > 0.0);
        }
    }

    #[test]
    fn metrics_map_to_configs() {
        assert_eq!(Metrics::Loads.advisor_config(8).primary().store_coeff, 0.0);
        assert!(Metrics::LoadsStores.advisor_config(8).primary().store_coeff > 0.0);
        assert_eq!(Metrics::Loads.label(), "loads");
    }
}
