//! Experiment sweeps: the grids behind Fig. 6 and Table VIII.

use crate::pipeline::{run_pipeline, DegradationPolicy, PipelineConfig};
use advisor::{AdvisorConfig, Algorithm};
use memsim::{AppModel, MachineConfig};
use memtrace::StackFormat;
use profiler::ProfilerConfig;

/// Which metric configuration a sweep cell uses (Fig. 6's two bars).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metrics {
    /// LLC load misses only.
    Loads,
    /// LLC load misses + L1D store misses (§V).
    LoadsStores,
}

impl Metrics {
    /// Builds the matching Advisor configuration for a DRAM budget.
    pub fn advisor_config(self, dram_gib: u64) -> AdvisorConfig {
        match self {
            Metrics::Loads => AdvisorConfig::loads_only(dram_gib),
            Metrics::LoadsStores => AdvisorConfig::loads_and_stores(dram_gib),
        }
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Metrics::Loads => "loads",
            Metrics::LoadsStores => "loads+stores",
        }
    }
}

/// One cell of a sweep grid.
#[derive(Debug, Clone, Copy)]
pub struct SweepSpec {
    /// DRAM budget in GiB.
    pub dram_gib: u64,
    /// Metric configuration.
    pub metrics: Metrics,
    /// Placement algorithm.
    pub algorithm: Algorithm,
}

/// A computed sweep cell.
#[derive(Debug, Clone)]
pub struct SweepCell {
    /// Application name.
    pub app: String,
    /// Machine name.
    pub machine: String,
    /// The sweep parameters.
    pub spec: SweepSpec,
    /// Speedup of ecoHMEM over Memory Mode.
    pub speedup: f64,
    /// Placed run wall time, seconds.
    pub placed_time: f64,
    /// Memory Mode wall time, seconds.
    pub memory_mode_time: f64,
}

/// Runs a grid of pipeline configurations over a set of applications,
/// parallelized across cells with scoped threads.
pub fn sweep(apps: &[AppModel], machine: &MachineConfig, specs: &[SweepSpec]) -> Vec<SweepCell> {
    let jobs: Vec<(usize, &AppModel, SweepSpec)> = apps
        .iter()
        .flat_map(|app| specs.iter().map(move |s| (*s, app)))
        .enumerate()
        .map(|(i, (s, app))| (i, app, s))
        .collect();

    let workers =
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).min(jobs.len().max(1));
    let results = parking_lot::Mutex::new(vec![None; jobs.len()]);
    let next = std::sync::atomic::AtomicUsize::new(0);

    crossbeam::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= jobs.len() {
                    break;
                }
                let (_, app, spec) = &jobs[i];
                let cell = run_cell(app, machine, *spec);
                results.lock()[i] = Some(cell);
            });
        }
    })
    .expect("sweep worker panicked");

    results.into_inner().into_iter().map(|c| c.expect("every job ran")).collect()
}

/// Runs one sweep cell.
pub fn run_cell(app: &AppModel, machine: &MachineConfig, spec: SweepSpec) -> SweepCell {
    let cfg = PipelineConfig {
        machine: machine.clone(),
        advisor: spec.metrics.advisor_config(spec.dram_gib),
        algorithm: spec.algorithm,
        stack_format: StackFormat::Bom,
        profiler: ProfilerConfig::default(),
        thresholds: Default::default(),
        profile_aslr_seed: 101,
        deploy_aslr_seed: 202,
        policy: DegradationPolicy::Strict,
        faults: Vec::new(),
    };
    let out = run_pipeline(app, &cfg).expect("pipeline runs on valid models");
    SweepCell {
        app: app.name.clone(),
        machine: machine.name.clone(),
        spec,
        speedup: out.speedup(),
        placed_time: out.placed.total_time,
        memory_mode_time: out.memory_mode.total_time,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_the_grid() {
        let apps = vec![workloads::minife::model()];
        let mach = MachineConfig::optane_pmem6();
        let specs = vec![
            SweepSpec { dram_gib: 4, metrics: Metrics::Loads, algorithm: Algorithm::Base },
            SweepSpec { dram_gib: 12, metrics: Metrics::Loads, algorithm: Algorithm::Base },
        ];
        let cells = sweep(&apps, &mach, &specs);
        assert_eq!(cells.len(), 2);
        for c in &cells {
            assert_eq!(c.app, "minife");
            assert!(c.speedup > 0.0);
        }
    }

    #[test]
    fn metrics_map_to_configs() {
        assert_eq!(Metrics::Loads.advisor_config(8).primary().store_coeff, 0.0);
        assert!(Metrics::LoadsStores.advisor_config(8).primary().store_coeff > 0.0);
        assert_eq!(Metrics::Loads.label(), "loads");
    }
}
