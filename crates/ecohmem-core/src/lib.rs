//! # ecohmem-core — the ecoHMEM pipeline
//!
//! Ties the whole workflow of Fig. 1 together:
//!
//! ```text
//! production binary ──► Extrae-like profiler ──► trace file
//!                                                   │
//!                                              Paramedir-like
//!                                                analyzer
//!                                                   │
//!                                             HMem Advisor ──► placement report
//!                                                                    │
//! same binary, new run ───────────────► FlexMalloc interposer ◄──────┘
//!                                              │
//!                                       placed execution
//! ```
//!
//! [`pipeline`] runs the five steps end to end for one application on one
//! machine; [`experiments`] sweeps pipelines across applications, DRAM
//! budgets, metric configurations and machines (the Fig. 6 / Table VIII
//! grids), optionally in parallel.

pub mod experiments;
pub mod pipeline;

pub use experiments::{sweep, SweepCell, SweepSpec};
pub use pipeline::{run_pipeline, DegradationPolicy, PipelineConfig, PipelineOutcome};
