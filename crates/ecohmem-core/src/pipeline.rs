//! The end-to-end ecoHMEM pipeline for one application.

use advisor::{Advisor, AdvisorConfig, Algorithm, BwThresholds, Classification};
use flexmalloc::{FlexMalloc, MatchStats};
use memsim::{run, AppModel, ExecMode, MachineConfig, RunResult};
use memtrace::{
    FaultSpec, FaultTarget, PlacementReport, StackFormat, TraceError, TraceFile, Warning,
    WarningKind,
};
use profiler::{
    analyze, analyze_columnar, analyze_lenient, profile_run_cached, profile_run_cached_columnar,
    ProfileSet, ProfilerConfig,
};

// The policy is shared with the streaming ingestor (`ecohmem-online`), so
// it lives with the warning vocabulary in `memtrace`; re-exported here to
// keep the original API path working.
pub use memtrace::DegradationPolicy;

/// Everything a pipeline run needs.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// The machine to run on.
    pub machine: MachineConfig,
    /// Advisor configuration (tier budgets + coefficients).
    pub advisor: AdvisorConfig,
    /// Placement algorithm.
    pub algorithm: Algorithm,
    /// Call-stack format of the placement report (BOM unless reproducing
    /// the §VIII-D comparison).
    pub stack_format: StackFormat,
    /// Profiler settings (rate + sampling seed).
    pub profiler: ProfilerConfig,
    /// Bandwidth-aware thresholds.
    pub thresholds: BwThresholds,
    /// ASLR seed of the profiling execution.
    pub profile_aslr_seed: u64,
    /// ASLR seed of the production (deployed) execution — deliberately
    /// different: matching must survive relocation.
    pub deploy_aslr_seed: u64,
    /// How to react to damaged intermediate artifacts.
    pub policy: DegradationPolicy,
    /// Deterministic faults injected into the intermediate artifacts
    /// (robustness experiments only; empty in production use).
    pub faults: Vec<FaultSpec>,
}

impl PipelineConfig {
    /// The paper's main setup: PMem-6 machine, 12 GB DRAM budget,
    /// loads-only metrics, base algorithm, BOM stacks, 100 Hz sampling.
    pub fn paper_default() -> Self {
        PipelineConfig {
            machine: MachineConfig::optane_pmem6(),
            advisor: AdvisorConfig::loads_only(12),
            algorithm: Algorithm::Base,
            stack_format: StackFormat::Bom,
            profiler: ProfilerConfig::default(),
            thresholds: BwThresholds::default(),
            profile_aslr_seed: 101,
            deploy_aslr_seed: 202,
            policy: DegradationPolicy::Strict,
            faults: Vec::new(),
        }
    }
}

/// The artifacts and results of one pipeline run.
#[derive(Debug)]
pub struct PipelineOutcome {
    /// The profiling trace (what Extrae wrote).
    pub trace: TraceFile,
    /// The analyzed profile (what Paramedir extracted).
    pub profile: ProfileSet,
    /// The Advisor's placement report.
    pub report: PlacementReport,
    /// Bandwidth-aware classification, when that algorithm ran.
    pub classification: Option<Classification>,
    /// The placed (FlexMalloc) execution.
    pub placed: RunResult,
    /// The Memory Mode baseline execution.
    pub memory_mode: RunResult,
    /// FlexMalloc matching statistics of the placed run.
    pub match_stats: MatchStats,
    /// True when any stage degraded: a lenient path repaired or dropped
    /// something, or a fault injector mutated an artifact.
    pub degraded: bool,
    /// Everything the lenient paths repaired, dropped or fell back on
    /// (always empty under [`DegradationPolicy::Strict`] with no faults).
    pub warnings: Vec<Warning>,
}

impl PipelineOutcome {
    /// Speedup of the placed run over the Memory Mode baseline — the
    /// number every paper figure reports.
    pub fn speedup(&self) -> f64 {
        self.placed.speedup_vs(&self.memory_mode)
    }
}

/// Runs the full pipeline for one application.
///
/// Under [`DegradationPolicy::Strict`] any malformed artifact aborts the
/// run, exactly as before. The lenient policies salvage damaged artifacts
/// stage by stage, collect [`Warning`]s, and set
/// [`PipelineOutcome::degraded`]; `BestEffort` always completes — in the
/// worst case with an all-fallback placement, which is a slower run, not a
/// failed one.
pub fn run_pipeline(app: &AppModel, cfg: &PipelineConfig) -> Result<PipelineOutcome, TraceError> {
    let _span = ecohmem_obs::span("pipeline.run");
    let mut warnings: Vec<Warning> = Vec::new();

    // 1. Profile: the paper profiles the production-ready binary on the
    // target machine; the memory mode it runs under does not change the
    // LLC-miss statistics the Advisor consumes. The engine run is memoized:
    // it has the same inputs as the Memory-Mode baseline of step 5, so the
    // two share a single simulation, and sweeps that vary only the advisor
    // configuration re-profile for free.
    let backing = cfg.machine.largest_tier();
    let has_trace_faults = cfg.faults.iter().any(|f| f.kind.target() == FaultTarget::Trace);
    let (trace, profile) = if cfg.policy == DegradationPolicy::Strict && !has_trace_faults {
        // Hot path (strict, no injected trace damage): the trace stays
        // columnar from the profiler straight into the analyzer — no
        // `Vec<TraceEvent>` between the two stages. The AoS view the
        // outcome carries is materialized once, after analysis.
        let (columnar, _profiling_run) = {
            let _span = ecohmem_obs::span("pipeline.profile");
            profile_run_cached_columnar(
                app,
                &cfg.machine,
                ExecMode::MemoryMode,
                backing,
                &cfg.profiler,
            )
        };
        let profile = {
            let _span = ecohmem_obs::span("pipeline.analyze");
            analyze_columnar(&columnar)?
        };
        let trace = {
            let _span = ecohmem_obs::span("pipeline.materialize");
            columnar.into_trace_file()
        };
        (trace, profile)
    } else {
        let (mut trace, _profiling_run) = {
            let _span = ecohmem_obs::span("pipeline.profile");
            profile_run_cached(app, &cfg.machine, ExecMode::MemoryMode, backing, &cfg.profiler)
        };
        for f in cfg.faults.iter().filter(|f| f.kind.target() == FaultTarget::Trace) {
            warnings.extend(f.apply_to_trace(&mut trace));
        }

        // 2. Analyze (Paramedir). Strict fails on the first malformed
        // event; the lenient policies sanitize the trace and analyze the
        // remainder.
        let _analyze_span = ecohmem_obs::span("pipeline.analyze");
        let profile = match cfg.policy {
            DegradationPolicy::Strict => analyze(&trace)?,
            policy => {
                let events_before = trace.events.len();
                let (sanitize_warnings, window) = trace.sanitize_verbose();
                warnings.extend(sanitize_warnings);
                // Sanitize warns per damage class; surface the aggregate
                // data loss too — with the time window it covered — so a
                // lenient run can't silently discard events and the blind
                // spot is auditable.
                let dropped = events_before - trace.events.len();
                if dropped > 0 {
                    warnings.push(Warning::new(
                        WarningKind::DroppedEvents,
                        format!(
                            "sanitization dropped {dropped} of {events_before} trace events{}",
                            window.describe()
                        ),
                    ));
                }
                if policy == DegradationPolicy::Warn && trace.events.is_empty() && events_before > 0
                {
                    return Err(TraceError::Malformed(format!(
                        "trace unusable after sanitization: all {events_before} events dropped"
                    )));
                }
                let (p, w) = analyze_lenient(&trace);
                warnings.extend(w);
                p
            }
        };
        (trace, profile)
    };

    // 3. Advise.
    let _advise_span = ecohmem_obs::span("pipeline.advise");
    let advisor = Advisor::new(cfg.advisor.clone()).with_thresholds(cfg.thresholds);
    let (_, classification) = advisor.assign(&profile, cfg.algorithm);
    let mut report = match advisor.advise(&profile, cfg.algorithm, cfg.stack_format) {
        Ok(r) => r,
        Err(e) if cfg.policy == DegradationPolicy::BestEffort => {
            warnings.push(Warning::new(
                WarningKind::UnusableReport,
                format!("advisor failed ({e}); deploying an all-fallback placement"),
            ));
            PlacementReport::new(cfg.stack_format, cfg.advisor.fallback)
        }
        Err(e) => return Err(e),
    };
    for f in cfg.faults.iter().filter(|f| f.kind.target() == FaultTarget::Report) {
        warnings.extend(f.apply_to_report(&mut report));
    }

    drop(_advise_span);

    // 4. Deploy: same binary, new execution, new ASLR layout, FlexMalloc
    // interposing with the report. A stale report aborts Strict runs; the
    // lenient policies drop unresolvable entries so their allocations take
    // the fallback tier, and Warn still refuses a report with nothing left.
    let mut interposer = match cfg.policy {
        DegradationPolicy::Strict => {
            FlexMalloc::new(&report, &app.binmap, cfg.deploy_aslr_seed, app.ranks)?
        }
        policy => {
            let (fm, w) =
                FlexMalloc::new_lenient(&report, &app.binmap, cfg.deploy_aslr_seed, app.ranks);
            warnings.extend(w);
            if policy == DegradationPolicy::Warn
                && !report.is_empty()
                && fm.stats().unresolvable as usize == report.len()
            {
                return Err(TraceError::Malformed(format!(
                    "placement report unusable: 0 of {} entries resolve in this process image",
                    report.len()
                )));
            }
            fm
        }
    };
    let placed = {
        let _span = ecohmem_obs::span("pipeline.deploy");
        run(app, &cfg.machine, ExecMode::AppDirect, &mut interposer)
    };
    let match_stats = interposer.stats();

    // 5. Baseline for comparison.
    let memory_mode = {
        let _span = ecohmem_obs::span("pipeline.baseline");
        baselines::run_memory_mode(app, &cfg.machine)
    };

    let degraded = !warnings.is_empty();
    Ok(PipelineOutcome {
        trace,
        profile,
        report,
        classification,
        placed,
        memory_mode,
        match_stats,
        degraded,
        warnings,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minife_pipeline_reproduces_the_headline_win() {
        let app = workloads::minife::model();
        let cfg = PipelineConfig::paper_default();
        let out = run_pipeline(&app, &cfg).unwrap();
        let s = out.speedup();
        assert!(s > 1.6, "MiniFE speedup {s:.2} (paper: up to 2.22x)");
        // Every allocation matched: profiling and deployment use the same
        // binary.
        assert_eq!(out.match_stats.unmatched, 0);
        assert!(out.match_stats.matched > 0);
        // A healthy Strict run is never degraded.
        assert!(!out.degraded);
        assert!(out.warnings.is_empty());
    }

    #[test]
    fn best_effort_completes_under_every_injector_at_full_severity() {
        use memtrace::FaultKind;
        let app = workloads::minife::model();
        for kind in FaultKind::ALL {
            for severity in [0.5, 1.0] {
                let mut cfg = PipelineConfig::paper_default();
                cfg.policy = DegradationPolicy::BestEffort;
                cfg.faults = vec![FaultSpec::new(kind, severity)];
                let out = run_pipeline(&app, &cfg)
                    .unwrap_or_else(|e| panic!("{kind}@{severity} failed BestEffort: {e}"));
                if severity == 1.0 {
                    assert!(out.degraded, "{kind}@1.0 should flag degradation");
                    assert!(!out.warnings.is_empty());
                }
                let s = out.speedup();
                assert!(s.is_finite() && s > 0.0, "{kind}@{severity}: speedup {s}");
            }
        }
    }

    #[test]
    fn strict_fails_on_faults_that_break_validation() {
        use memtrace::FaultKind;
        let app = workloads::hpcg::model();
        for kind in
            [FaultKind::CorruptTimestamps, FaultKind::FreeBeforeAlloc, FaultKind::DropModules]
        {
            let mut cfg = PipelineConfig::paper_default();
            cfg.faults = vec![FaultSpec::new(kind, 1.0)];
            assert!(run_pipeline(&app, &cfg).is_err(), "{kind} should abort a Strict run");
        }
    }

    #[test]
    fn warn_salvages_partial_damage_but_rejects_a_dead_report() {
        use memtrace::FaultKind;
        let app = workloads::minife::model();

        let mut cfg = PipelineConfig::paper_default();
        cfg.policy = DegradationPolicy::Warn;
        cfg.faults = vec![FaultSpec::new(FaultKind::DropSamples, 0.5)];
        let out = run_pipeline(&app, &cfg).unwrap();
        assert!(out.degraded);

        cfg.faults = vec![FaultSpec::new(FaultKind::DropModules, 1.0)];
        assert!(
            run_pipeline(&app, &cfg).is_err(),
            "Warn must reject a report with no resolvable entry"
        );
    }

    #[test]
    fn deterministic_given_seeds() {
        let app = workloads::hpcg::model();
        let cfg = PipelineConfig::paper_default();
        let a = run_pipeline(&app, &cfg).unwrap();
        let b = run_pipeline(&app, &cfg).unwrap();
        assert_eq!(a.placed, b.placed);
        assert_eq!(a.report, b.report);
    }

    #[test]
    fn bandwidth_aware_never_collapses_lammps() {
        // §VIII-C: "even in this unfavorable case, the bandwidth-aware
        // algorithm does not introduce any performance penalty, and the
        // slowdown of our framework is kept below 4%". The paper runs the
        // bandwidth-aware algorithm with a 16 GB limit (it is "less
        // aggressive trying to utilize all the DRAM available").
        let app = workloads::lammps::model();
        let mut cfg = PipelineConfig::paper_default();
        cfg.advisor = AdvisorConfig::loads_only(16);
        cfg.algorithm = Algorithm::BandwidthAware;
        let out = run_pipeline(&app, &cfg).unwrap();
        let s = out.speedup();
        assert!(s > 0.9, "LAMMPS bandwidth-aware speedup {s:.3}");
    }
}
