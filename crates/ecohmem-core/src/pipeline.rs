//! The end-to-end ecoHMEM pipeline for one application.

use advisor::{Advisor, AdvisorConfig, Algorithm, BwThresholds, Classification};
use flexmalloc::{FlexMalloc, MatchStats};
use memsim::{run, AppModel, ExecMode, FixedTier, MachineConfig, RunResult};
use memtrace::{PlacementReport, StackFormat, TraceError, TraceFile};
use profiler::{analyze, profile_run, ProfileSet, ProfilerConfig};

/// Everything a pipeline run needs.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// The machine to run on.
    pub machine: MachineConfig,
    /// Advisor configuration (tier budgets + coefficients).
    pub advisor: AdvisorConfig,
    /// Placement algorithm.
    pub algorithm: Algorithm,
    /// Call-stack format of the placement report (BOM unless reproducing
    /// the §VIII-D comparison).
    pub stack_format: StackFormat,
    /// Profiler settings (rate + sampling seed).
    pub profiler: ProfilerConfig,
    /// Bandwidth-aware thresholds.
    pub thresholds: BwThresholds,
    /// ASLR seed of the profiling execution.
    pub profile_aslr_seed: u64,
    /// ASLR seed of the production (deployed) execution — deliberately
    /// different: matching must survive relocation.
    pub deploy_aslr_seed: u64,
}

impl PipelineConfig {
    /// The paper's main setup: PMem-6 machine, 12 GB DRAM budget,
    /// loads-only metrics, base algorithm, BOM stacks, 100 Hz sampling.
    pub fn paper_default() -> Self {
        PipelineConfig {
            machine: MachineConfig::optane_pmem6(),
            advisor: AdvisorConfig::loads_only(12),
            algorithm: Algorithm::Base,
            stack_format: StackFormat::Bom,
            profiler: ProfilerConfig::default(),
            thresholds: BwThresholds::default(),
            profile_aslr_seed: 101,
            deploy_aslr_seed: 202,
        }
    }
}

/// The artifacts and results of one pipeline run.
#[derive(Debug)]
pub struct PipelineOutcome {
    /// The profiling trace (what Extrae wrote).
    pub trace: TraceFile,
    /// The analyzed profile (what Paramedir extracted).
    pub profile: ProfileSet,
    /// The Advisor's placement report.
    pub report: PlacementReport,
    /// Bandwidth-aware classification, when that algorithm ran.
    pub classification: Option<Classification>,
    /// The placed (FlexMalloc) execution.
    pub placed: RunResult,
    /// The Memory Mode baseline execution.
    pub memory_mode: RunResult,
    /// FlexMalloc matching statistics of the placed run.
    pub match_stats: MatchStats,
}

impl PipelineOutcome {
    /// Speedup of the placed run over the Memory Mode baseline — the
    /// number every paper figure reports.
    pub fn speedup(&self) -> f64 {
        self.placed.speedup_vs(&self.memory_mode)
    }
}

/// Runs the full pipeline for one application.
pub fn run_pipeline(app: &AppModel, cfg: &PipelineConfig) -> Result<PipelineOutcome, TraceError> {
    // 1. Profile: the paper profiles the production-ready binary on the
    // target machine; the memory mode it runs under does not change the
    // LLC-miss statistics the Advisor consumes.
    let backing = cfg.machine.largest_tier();
    let (trace, _profiling_run) = profile_run(
        app,
        &cfg.machine,
        ExecMode::MemoryMode,
        &mut FixedTier::new(backing),
        &cfg.profiler,
    );

    // 2. Analyze (Paramedir).
    let profile = analyze(&trace)?;

    // 3. Advise.
    let advisor = Advisor::new(cfg.advisor.clone()).with_thresholds(cfg.thresholds);
    let (_, classification) = advisor.assign(&profile, cfg.algorithm);
    let report = advisor.advise(&profile, cfg.algorithm, cfg.stack_format)?;

    // 4. Deploy: same binary, new execution, new ASLR layout, FlexMalloc
    // interposing with the report.
    let mut interposer =
        FlexMalloc::new(&report, &app.binmap, cfg.deploy_aslr_seed, app.ranks)?;
    let placed = run(app, &cfg.machine, ExecMode::AppDirect, &mut interposer);
    let match_stats = interposer.stats();

    // 5. Baseline for comparison.
    let memory_mode = baselines::run_memory_mode(app, &cfg.machine);

    Ok(PipelineOutcome {
        trace,
        profile,
        report,
        classification,
        placed,
        memory_mode,
        match_stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minife_pipeline_reproduces_the_headline_win() {
        let app = workloads::minife::model();
        let cfg = PipelineConfig::paper_default();
        let out = run_pipeline(&app, &cfg).unwrap();
        let s = out.speedup();
        assert!(s > 1.6, "MiniFE speedup {s:.2} (paper: up to 2.22x)");
        // Every allocation matched: profiling and deployment use the same
        // binary.
        assert_eq!(out.match_stats.unmatched, 0);
        assert!(out.match_stats.matched > 0);
    }

    #[test]
    fn deterministic_given_seeds() {
        let app = workloads::hpcg::model();
        let cfg = PipelineConfig::paper_default();
        let a = run_pipeline(&app, &cfg).unwrap();
        let b = run_pipeline(&app, &cfg).unwrap();
        assert_eq!(a.placed, b.placed);
        assert_eq!(a.report, b.report);
    }

    #[test]
    fn bandwidth_aware_never_collapses_lammps() {
        // §VIII-C: "even in this unfavorable case, the bandwidth-aware
        // algorithm does not introduce any performance penalty, and the
        // slowdown of our framework is kept below 4%". The paper runs the
        // bandwidth-aware algorithm with a 16 GB limit (it is "less
        // aggressive trying to utilize all the DRAM available").
        let app = workloads::lammps::model();
        let mut cfg = PipelineConfig::paper_default();
        cfg.advisor = AdvisorConfig::loads_only(16);
        cfg.algorithm = Algorithm::BandwidthAware;
        let out = run_pipeline(&app, &cfg).unwrap();
        let s = out.speedup();
        assert!(s > 0.9, "LAMMPS bandwidth-aware speedup {s:.3}");
    }
}
