//! The interposer: a [`memsim::PlacementPolicy`] driven by a placement
//! report.

use crate::matching::{MatchStats, Matcher};
use memsim::policy::{AllocContext, PlacementPolicy};
use memtrace::{BinaryMap, LoadMap, PlacementReport, TierId, TraceError, Warning};

/// FlexMalloc: intercepts every allocation, matches its call stack against
/// the Advisor report, and routes it to the assigned tier's heap manager.
#[derive(Debug)]
pub struct FlexMalloc {
    matcher: Matcher,
    binmap: BinaryMap,
    layout: LoadMap,
    ranks: u32,
    stats: MatchStats,
    name: String,
}

impl FlexMalloc {
    /// Initializes the interposer for a process image: the report, the
    /// program's binary map, and the ASLR seed of *this* execution (which
    /// differs from the profiling run's — the whole point of the Table I
    /// formats).
    pub fn new(
        report: &PlacementReport,
        binmap: &BinaryMap,
        aslr_seed: u64,
        ranks: u32,
    ) -> Result<Self, TraceError> {
        let layout = LoadMap::randomize(binmap, aslr_seed);
        let matcher = Matcher::new(report, binmap, &layout)?;
        let name = format!("flexmalloc-{}", matcher.format());
        let stats = MatchStats { collisions: matcher.colliding_entries(), ..MatchStats::default() };
        Ok(FlexMalloc { matcher, binmap: binmap.clone(), layout, ranks, stats, name })
    }

    /// Lenient initialization: never fails. Report entries that cannot be
    /// resolved in this process image — a stale report after a rebuild —
    /// are dropped and counted in [`MatchStats::unresolvable`]; their
    /// allocations take the fallback tier at runtime, the same graceful
    /// path FlexMalloc has always used for unlisted stacks.
    pub fn new_lenient(
        report: &PlacementReport,
        binmap: &BinaryMap,
        aslr_seed: u64,
        ranks: u32,
    ) -> (Self, Vec<Warning>) {
        let layout = LoadMap::randomize(binmap, aslr_seed);
        let (matcher, warnings) = Matcher::new_lenient(report, binmap, &layout);
        let name = format!("flexmalloc-{}", matcher.format());
        let stats = MatchStats {
            unresolvable: matcher.unresolvable_entries(),
            collisions: matcher.colliding_entries(),
            ..MatchStats::default()
        };
        (FlexMalloc { matcher, binmap: binmap.clone(), layout, ranks, stats, name }, warnings)
    }

    /// Matching statistics so far.
    pub fn stats(&self) -> MatchStats {
        self.stats
    }

    /// The matcher in use (for cost inspection).
    pub fn matcher(&self) -> &Matcher {
        &self.matcher
    }
}

impl PlacementPolicy for FlexMalloc {
    fn name(&self) -> &str {
        &self.name
    }

    fn place(&mut self, ctx: &AllocContext<'_>) -> TierId {
        // Capture the call stack: the runtime sees absolute addresses under
        // this execution's ASLR layout.
        let Some(captured) = self.layout.absolutize(ctx.stack) else {
            self.stats.unmatched += 1;
            return self.matcher.fallback();
        };
        match self.matcher.match_stack(&captured, &self.binmap, &self.layout) {
            Some(tier) => {
                self.stats.matched += 1;
                tier
            }
            None => {
                self.stats.unmatched += 1;
                self.matcher.fallback()
            }
        }
    }

    fn fallback(&self) -> TierId {
        self.matcher.fallback()
    }

    fn overhead_seconds_per_alloc(&self) -> f64 {
        self.matcher.cost_per_alloc()
    }

    fn resident_dram_bytes(&self) -> u64 {
        // Debug info is loaded by every MPI process (§VIII-D: "the same
        // data is loaded in each MPI process, 16 in this case").
        self.matcher.debug_info_bytes() * self.ranks as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim::{run, ExecMode, MachineConfig};
    use memtrace::{CallStack, Frame, ModuleId, ReportEntry, ReportStack, SiteId, StackFormat};

    fn toy_app() -> memsim::AppModel {
        let mut b = memtrace::BinaryMapBuilder::new();
        b.add_module("a.out", 64 * 1024, 1 << 20, vec!["main.c".into()]);
        memsim::AppModel {
            name: "toy".into(),
            ranks: 2,
            threads_per_rank: 1,
            input_desc: String::new(),
            sites: vec![
                (SiteId(0), CallStack::new(vec![Frame::new(ModuleId(0), 0x40)])),
                (SiteId(1), CallStack::new(vec![Frame::new(ModuleId(0), 0x240)])),
            ],
            binmap: b.build(),
            function_names: vec!["k".into()],
            phases: vec![memsim::PhaseSpec {
                label: None,
                compute_instructions: 1e9,
                allocs: vec![
                    memsim::AllocOp { site: SiteId(0), size: 1 << 20, count: 1 },
                    memsim::AllocOp { site: SiteId(1), size: 1 << 20, count: 3 },
                ],
                frees: vec![],
                accesses: vec![],
            }],
        }
    }

    fn report_for_toy() -> PlacementReport {
        let app = toy_app();
        let mut r = PlacementReport::new(StackFormat::Bom, memtrace::TierId::PMEM);
        r.push(ReportEntry {
            stack: ReportStack::Bom(app.sites[0].1.clone()),
            tier: memtrace::TierId::DRAM,
            max_size: 1 << 20,
        });
        r
    }

    #[test]
    fn listed_sites_follow_the_report_and_others_fall_back() {
        let app = toy_app();
        let mach = MachineConfig::optane_pmem6();
        let mut fm = FlexMalloc::new(&report_for_toy(), &app.binmap, 42, app.ranks).unwrap();
        let result = run(&app, &mach, ExecMode::AppDirect, &mut fm);
        let dram: Vec<_> = result.objects_in_tier(memtrace::TierId::DRAM);
        let pmem: Vec<_> = result.objects_in_tier(memtrace::TierId::PMEM);
        assert_eq!(dram.len(), 1);
        assert_eq!(pmem.len(), 3);
        assert_eq!(fm.stats().matched, 1);
        assert_eq!(fm.stats().unmatched, 3);
    }

    #[test]
    fn works_under_any_aslr_seed() {
        let app = toy_app();
        let mach = MachineConfig::optane_pmem6();
        for seed in [1, 99, 12345] {
            let mut fm = FlexMalloc::new(&report_for_toy(), &app.binmap, seed, app.ranks).unwrap();
            let result = run(&app, &mach, ExecMode::AppDirect, &mut fm);
            assert_eq!(result.objects_in_tier(memtrace::TierId::DRAM).len(), 1);
        }
    }

    #[test]
    fn hr_mode_pins_debug_info_per_rank() {
        let app = toy_app();
        let hr = report_for_toy().to_human_readable(&app.binmap).unwrap();
        let fm = FlexMalloc::new(&hr, &app.binmap, 1, app.ranks).unwrap();
        assert_eq!(fm.resident_dram_bytes(), (1 << 20) * 2);
        assert!(fm.overhead_seconds_per_alloc() > 0.0);
    }

    #[test]
    fn bom_mode_has_no_resident_footprint() {
        let app = toy_app();
        let fm = FlexMalloc::new(&report_for_toy(), &app.binmap, 1, app.ranks).unwrap();
        assert_eq!(fm.resident_dram_bytes(), 0);
    }

    #[test]
    fn lenient_init_survives_a_fully_stale_report() {
        let app = toy_app();
        let mach = MachineConfig::optane_pmem6();
        let mut stale = report_for_toy();
        for e in &mut stale.entries {
            if let ReportStack::Bom(s) = &mut e.stack {
                *s = CallStack::new(vec![Frame::new(ModuleId(400), 0x40)]);
            }
        }
        assert!(FlexMalloc::new(&stale, &app.binmap, 42, app.ranks).is_err());
        let (mut fm, warnings) = FlexMalloc::new_lenient(&stale, &app.binmap, 42, app.ranks);
        assert!(!warnings.is_empty());
        assert_eq!(fm.stats().unresolvable, 1);
        let result = run(&app, &mach, ExecMode::AppDirect, &mut fm);
        // Everything falls back: degraded placement, completed run.
        assert_eq!(result.objects_in_tier(memtrace::TierId::PMEM).len(), 4);
        assert_eq!(fm.stats().matched, 0);
    }

    #[test]
    fn empty_report_routes_everything_to_fallback() {
        let app = toy_app();
        let mach = MachineConfig::optane_pmem6();
        let empty = PlacementReport::new(StackFormat::Bom, memtrace::TierId::PMEM);
        let mut fm = FlexMalloc::new(&empty, &app.binmap, 7, app.ranks).unwrap();
        let result = run(&app, &mach, ExecMode::AppDirect, &mut fm);
        assert_eq!(result.objects_in_tier(memtrace::TierId::PMEM).len(), 4);
    }
}
