//! # flexmalloc — the runtime allocation interposer
//!
//! FlexMalloc (§IV-C) is an LD_PRELOAD interposition library that reads the
//! Advisor's placement report at process initialization and, on every heap
//! allocation, captures the call stack, matches it against the report, and
//! forwards the request to the heap manager of the assigned memory tier
//! (memkind for PMem, POSIX malloc for DRAM on the paper's machine), with a
//! fallback tier for unlisted stacks and out-of-space conditions.
//!
//! The crate models both Table I matching modes with their real cost
//! structure (contribution §VI):
//!
//! * **BOM** — at init, the library computes the absolute address of every
//!   frame of every report entry under the current ASLR layout; at each
//!   allocation it compares raw captured addresses — a handful of integer
//!   comparisons.
//! * **Human-readable** — the library must keep the binaries' debug
//!   information resident (a per-rank DRAM footprint) and translate every
//!   captured frame to `file:line` before string-comparing against the
//!   report — a per-allocation cost that grows with binary size.

pub mod interposer;
pub mod matching;

pub use interposer::FlexMalloc;
pub use matching::{MatchStats, Matcher};
