//! Call-stack matching against the placement report, in both Table I
//! formats, with the §VI cost model.

use memtrace::{
    BinaryMap, CallStack, LoadMap, PlacementReport, ReportStack, StackFormat, TierId, TraceError,
    Warning, WarningKind,
};
use std::collections::{HashMap, HashSet};

/// Matching statistics maintained by the interposer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MatchStats {
    /// Allocations whose stack matched a report entry.
    pub matched: u64,
    /// Allocations that fell back (unlisted stack).
    pub unmatched: u64,
    /// Report entries dropped at initialization by the lenient
    /// constructor — stale stacks that do not resolve in this process
    /// image. Their allocations take the fallback path at runtime.
    pub unresolvable: u64,
    /// Distinct report entries that resolved to the same match key at
    /// initialization (same absolute BOM addresses, or same rendered HR
    /// location). The entry with the larger `max_size` keeps the key.
    pub collisions: u64,
}

/// A report matcher bound to one process image (ASLR layout).
#[derive(Debug)]
pub struct Matcher {
    format: StackFormat,
    fallback: TierId,
    /// BOM mode: absolute frame addresses (computed once at init, as the
    /// real library does) → tier.
    by_address: HashMap<Vec<u64>, TierId>,
    /// HR mode: rendered `file:line` stacks → tier.
    by_location: HashMap<String, TierId>,
    /// Per-allocation matching cost, seconds.
    cost_per_alloc: f64,
    /// Resident debug-information bytes (HR mode only), per rank.
    debug_info_bytes: u64,
    /// Entries the lenient constructor dropped as unresolvable (0 when the
    /// strict constructor succeeded).
    unresolvable_entries: u64,
    /// Distinct entries that resolved to an already-claimed match key; the
    /// higher-value (larger `max_size`) entry kept the key.
    colliding_entries: u64,
}

/// BOM: a few address comparisons plus a hash — ~100 ns per allocation.
const BOM_COST_PER_FRAME: f64 = 40e-9;
/// HR: an addr2line-style lookup in the (binutils-parsed) line tables plus
/// string comparison; dominated by debug-info parsing state proportional to
/// the binary's size.
const HR_BASE_COST_PER_FRAME: f64 = 2e-6;
const HR_COST_PER_TEXT_MIB: f64 = 0.4e-6;

impl Matcher {
    /// Builds a matcher for a report under a concrete ASLR layout.
    ///
    /// BOM reports absolutize every entry's frames once here (§VI: "during
    /// the process initialization the library obtains the base address
    /// where each shared-library is loaded ... and calculates the absolute
    /// addresses for each frame of every call-stack").
    pub fn new(
        report: &PlacementReport,
        binmap: &BinaryMap,
        layout: &LoadMap,
    ) -> Result<Self, TraceError> {
        report.validate()?;
        Self::build(report, binmap, layout, false).map(|(m, _)| m)
    }

    /// Lenient variant of [`Self::new`]: never fails. Entries that cannot
    /// be resolved against this process image (stale reports after a
    /// rebuild), duplicate stacks (first occurrence wins) and entries in
    /// the wrong format are dropped and reported as warnings; their
    /// allocations take the fallback path at runtime, exactly as unlisted
    /// stacks always have.
    pub fn new_lenient(
        report: &PlacementReport,
        binmap: &BinaryMap,
        layout: &LoadMap,
    ) -> (Self, Vec<Warning>) {
        Self::build(report, binmap, layout, true)
            .expect("lenient matcher construction is infallible")
    }

    fn build(
        report: &PlacementReport,
        binmap: &BinaryMap,
        layout: &LoadMap,
        lenient: bool,
    ) -> Result<(Self, Vec<Warning>), TraceError> {
        // Match keys carry `(tier, max_size)` during construction so that
        // two *distinct* report entries resolving to the same key — BOM
        // stacks whose offsets absolutize to identical addresses, or HR
        // stacks rendering to the same location — are detected instead of
        // silently last-writer-wins. The higher-value entry (larger
        // `max_size`, the paper's per-site size bound) keeps the key; ties
        // keep the first occurrence, so resolution is order-independent.
        let mut by_address: HashMap<Vec<u64>, (TierId, u64)> = HashMap::new();
        let mut by_location: HashMap<String, (TierId, u64)> = HashMap::new();
        let mut seen: HashSet<&ReportStack> = HashSet::new();
        let mut depth_sum = 0.0;
        let mut used = 0usize;
        let mut unresolvable = 0u64;
        let mut duplicates = 0u64;
        let mut mixed = 0u64;
        let mut collisions = 0u64;
        fn claim(slot: &mut (TierId, u64), tier: TierId, max_size: u64, collisions: &mut u64) {
            *collisions += 1;
            if max_size > slot.1 {
                *slot = (tier, max_size);
            }
        }
        for entry in &report.entries {
            if entry.stack.format() != report.format {
                // Strict construction pre-validates, which rejects this.
                mixed += 1;
                continue;
            }
            if !seen.insert(&entry.stack) {
                duplicates += 1;
                continue;
            }
            match &entry.stack {
                ReportStack::Bom(stack) => match layout.absolutize(stack) {
                    Some(abs) => match by_address.entry(abs) {
                        std::collections::hash_map::Entry::Occupied(mut e) => {
                            claim(e.get_mut(), entry.tier, entry.max_size, &mut collisions);
                        }
                        std::collections::hash_map::Entry::Vacant(v) => {
                            v.insert((entry.tier, entry.max_size));
                            depth_sum += entry.stack.depth() as f64;
                            used += 1;
                        }
                    },
                    None if lenient => unresolvable += 1,
                    None => {
                        return Err(TraceError::Malformed(
                            "report references a module absent from this process".into(),
                        ))
                    }
                },
                ReportStack::Human(h) => match by_location.entry(h.render()) {
                    std::collections::hash_map::Entry::Occupied(mut e) => {
                        claim(e.get_mut(), entry.tier, entry.max_size, &mut collisions);
                    }
                    std::collections::hash_map::Entry::Vacant(v) => {
                        v.insert((entry.tier, entry.max_size));
                        depth_sum += entry.stack.depth() as f64;
                        used += 1;
                    }
                },
            }
        }
        let by_address: HashMap<Vec<u64>, TierId> =
            by_address.into_iter().map(|(k, (t, _))| (k, t)).collect();
        let by_location: HashMap<String, TierId> =
            by_location.into_iter().map(|(k, (t, _))| (k, t)).collect();
        let avg_depth = if used > 0 { depth_sum / used as f64 } else { 0.0 };

        let (cost_per_alloc, debug_info_bytes) = match report.format {
            StackFormat::Bom => (BOM_COST_PER_FRAME * avg_depth.max(1.0), 0),
            StackFormat::HumanReadable => {
                let text_mib: f64 =
                    binmap.modules().iter().map(|m| m.text_size as f64 / (1 << 20) as f64).sum();
                (
                    (HR_BASE_COST_PER_FRAME + HR_COST_PER_TEXT_MIB * text_mib) * avg_depth.max(1.0),
                    binmap.total_debug_info_bytes(),
                )
            }
        };

        let mut warnings = Vec::new();
        if mixed > 0 {
            warnings.push(Warning::new(
                WarningKind::MixedFormatEntry,
                format!("{mixed} entry(s) in the wrong stack format were ignored"),
            ));
        }
        if duplicates > 0 {
            warnings.push(Warning::new(
                WarningKind::DuplicateEntry,
                format!("{duplicates} duplicate stack(s) ignored; first occurrence wins"),
            ));
        }
        if unresolvable > 0 {
            warnings.push(Warning::new(
                WarningKind::UnresolvableEntry,
                format!(
                    "{unresolvable} of {} report entries do not resolve in this process \
                     image; their allocations will fall back",
                    report.len()
                ),
            ));
        }
        if collisions > 0 {
            warnings.push(Warning::new(
                WarningKind::CollidingEntry,
                format!(
                    "{collisions} distinct report entry(s) resolved to an already-claimed \
                     match key; the higher-value entry wins"
                ),
            ));
        }

        ecohmem_obs::count("flexmalloc.entries.unresolvable", unresolvable);
        ecohmem_obs::count("flexmalloc.entries.collisions", collisions);

        Ok((
            Matcher {
                format: report.format,
                fallback: report.fallback,
                by_address,
                by_location,
                cost_per_alloc,
                debug_info_bytes,
                unresolvable_entries: unresolvable,
                colliding_entries: collisions,
            },
            warnings,
        ))
    }

    /// Entries dropped at initialization as unresolvable (lenient mode).
    pub fn unresolvable_entries(&self) -> u64 {
        self.unresolvable_entries
    }

    /// Distinct entries that lost a match-key collision at initialization.
    pub fn colliding_entries(&self) -> u64 {
        self.colliding_entries
    }

    /// The report's stack format.
    pub fn format(&self) -> StackFormat {
        self.format
    }

    /// The report's fallback tier.
    pub fn fallback(&self) -> TierId {
        self.fallback
    }

    /// Modelled per-allocation matching cost, seconds.
    pub fn cost_per_alloc(&self) -> f64 {
        self.cost_per_alloc
    }

    /// Debug-info bytes the matcher keeps resident per rank (0 in BOM).
    pub fn debug_info_bytes(&self) -> u64 {
        self.debug_info_bytes
    }

    /// Matches a captured call stack. `captured` is the raw absolute
    /// addresses FlexMalloc collected from the stack walk; `binmap` and
    /// `layout` describe the running process. Returns the assigned tier,
    /// or `None` for unlisted (→ fallback) stacks.
    pub fn match_stack(
        &self,
        captured: &[u64],
        binmap: &BinaryMap,
        layout: &LoadMap,
    ) -> Option<TierId> {
        let hit = match self.format {
            StackFormat::Bom => self.by_address.get(captured).copied(),
            StackFormat::HumanReadable => {
                // Translate each captured address via debug info, then
                // compare the rendered human-readable stack.
                (|| {
                    let canonical: CallStack = layout.canonicalize(captured)?;
                    let human = binmap.translate(&canonical).ok()?;
                    self.by_location.get(&human.render()).copied()
                })()
            }
        };
        if hit.is_some() {
            ecohmem_obs::incr("flexmalloc.match.hits");
        } else {
            ecohmem_obs::incr("flexmalloc.match.misses");
        }
        hit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memtrace::{BinaryMapBuilder, Frame, ModuleId, ReportEntry};

    fn image() -> BinaryMap {
        let mut b = BinaryMapBuilder::new();
        b.add_module("a.out", 128 * 1024, 4 << 20, vec!["main.c".into()]);
        b.add_module("libsolver.so", 512 * 1024, 16 << 20, vec!["solver.c".into()]);
        b.build()
    }

    fn bom_report() -> PlacementReport {
        let mut r = PlacementReport::new(StackFormat::Bom, TierId::PMEM);
        r.push(ReportEntry {
            stack: ReportStack::Bom(CallStack::new(vec![
                Frame::new(ModuleId(1), 0x400),
                Frame::new(ModuleId(0), 0x80),
            ])),
            tier: TierId::DRAM,
            max_size: 4096,
        });
        r
    }

    #[test]
    fn bom_matching_is_aslr_invariant() {
        let map = image();
        let report = bom_report();
        let stack =
            CallStack::new(vec![Frame::new(ModuleId(1), 0x400), Frame::new(ModuleId(0), 0x80)]);
        for seed in [1, 2, 3] {
            let layout = LoadMap::randomize(&map, seed);
            let m = Matcher::new(&report, &map, &layout).unwrap();
            let captured = layout.absolutize(&stack).unwrap();
            assert_eq!(m.match_stack(&captured, &map, &layout), Some(TierId::DRAM), "seed {seed}");
        }
    }

    #[test]
    fn unlisted_stacks_do_not_match() {
        let map = image();
        let layout = LoadMap::randomize(&map, 9);
        let m = Matcher::new(&bom_report(), &map, &layout).unwrap();
        let other = CallStack::new(vec![Frame::new(ModuleId(0), 0x100)]);
        let captured = layout.absolutize(&other).unwrap();
        assert_eq!(m.match_stack(&captured, &map, &layout), None);
        assert_eq!(m.fallback(), TierId::PMEM);
    }

    #[test]
    fn hr_matching_translates_and_matches() {
        let map = image();
        let layout = LoadMap::randomize(&map, 5);
        let hr = bom_report().to_human_readable(&map).unwrap();
        let m = Matcher::new(&hr, &map, &layout).unwrap();
        let stack =
            CallStack::new(vec![Frame::new(ModuleId(1), 0x400), Frame::new(ModuleId(0), 0x80)]);
        let captured = layout.absolutize(&stack).unwrap();
        assert_eq!(m.match_stack(&captured, &map, &layout), Some(TierId::DRAM));
    }

    #[test]
    fn hr_costs_more_and_pins_debug_info() {
        let map = image();
        let layout = LoadMap::randomize(&map, 5);
        let bom = Matcher::new(&bom_report(), &map, &layout).unwrap();
        let hr_report = bom_report().to_human_readable(&map).unwrap();
        let hr = Matcher::new(&hr_report, &map, &layout).unwrap();
        assert!(
            hr.cost_per_alloc() > 10.0 * bom.cost_per_alloc(),
            "HR {} vs BOM {}",
            hr.cost_per_alloc(),
            bom.cost_per_alloc()
        );
        assert_eq!(bom.debug_info_bytes(), 0);
        assert_eq!(hr.debug_info_bytes(), 20 << 20);
    }

    #[test]
    fn hr_offsets_in_same_line_range_still_match() {
        // Two offsets within the same 64-byte line-table range translate to
        // the same file:line — HR matching is coarser than BOM, exactly as
        // with real debug info.
        let map = image();
        let layout = LoadMap::randomize(&map, 5);
        let hr_report = bom_report().to_human_readable(&map).unwrap();
        let m = Matcher::new(&hr_report, &map, &layout).unwrap();
        let nearby = CallStack::new(vec![
            Frame::new(ModuleId(1), 0x410), // same 64 B range as 0x400
            Frame::new(ModuleId(0), 0x90),  // same range as 0x80
        ]);
        let captured = layout.absolutize(&nearby).unwrap();
        assert_eq!(m.match_stack(&captured, &map, &layout), Some(TierId::DRAM));
    }

    #[test]
    fn rejects_report_for_foreign_image() {
        let map = image();
        let layout = LoadMap::randomize(&map, 5);
        let mut r = bom_report();
        r.push(ReportEntry {
            stack: ReportStack::Bom(CallStack::new(vec![Frame::new(ModuleId(7), 0)])),
            tier: TierId::DRAM,
            max_size: 1,
        });
        assert!(Matcher::new(&r, &map, &layout).is_err());
    }

    #[test]
    fn lenient_drops_foreign_entries_and_keeps_the_rest() {
        let map = image();
        let layout = LoadMap::randomize(&map, 5);
        let mut r = bom_report();
        r.push(ReportEntry {
            stack: ReportStack::Bom(CallStack::new(vec![Frame::new(ModuleId(7), 0)])),
            tier: TierId::DRAM,
            max_size: 1,
        });
        let (m, warnings) = Matcher::new_lenient(&r, &map, &layout);
        assert_eq!(m.unresolvable_entries(), 1);
        assert_eq!(warnings.len(), 1);
        assert_eq!(warnings[0].kind, WarningKind::UnresolvableEntry);
        // The resolvable entry still matches.
        let stack =
            CallStack::new(vec![Frame::new(ModuleId(1), 0x400), Frame::new(ModuleId(0), 0x80)]);
        let captured = layout.absolutize(&stack).unwrap();
        assert_eq!(m.match_stack(&captured, &map, &layout), Some(TierId::DRAM));
    }

    #[test]
    fn lenient_keeps_first_of_duplicate_stacks() {
        let map = image();
        let layout = LoadMap::randomize(&map, 5);
        let mut r = bom_report();
        let mut dup = r.entries[0].clone();
        dup.tier = TierId::PMEM; // conflicting duplicate
        r.entries.push(dup);
        assert!(Matcher::new(&r, &map, &layout).is_err(), "strict still rejects");
        let (m, warnings) = Matcher::new_lenient(&r, &map, &layout);
        assert!(warnings.iter().any(|w| w.kind == WarningKind::DuplicateEntry));
        let stack =
            CallStack::new(vec![Frame::new(ModuleId(1), 0x400), Frame::new(ModuleId(0), 0x80)]);
        let captured = layout.absolutize(&stack).unwrap();
        assert_eq!(m.match_stack(&captured, &map, &layout), Some(TierId::DRAM));
    }

    #[test]
    fn bom_collision_keeps_the_higher_value_entry() {
        // Regression (satellite 4): two *distinct* BOM stacks can absolutize
        // to the same addresses when one frames a module directly and the
        // other overshoots a lower-based module by exactly the base delta.
        // `validate()` cannot catch this (the stacks differ); the matcher
        // used to let the last writer win silently.
        let map = image();
        for seed in [5, 6, 7] {
            let layout = LoadMap::randomize(&map, seed);
            let b0 = layout.base(ModuleId(0)).unwrap();
            let b1 = layout.base(ModuleId(1)).unwrap();
            let (lo, hi, delta) = if b0 <= b1 {
                (ModuleId(0), ModuleId(1), b1 - b0)
            } else {
                (ModuleId(1), ModuleId(0), b0 - b1)
            };
            let direct = CallStack::new(vec![Frame::new(hi, 0x40)]);
            let overshoot = CallStack::new(vec![Frame::new(lo, delta + 0x40)]);
            assert_eq!(
                layout.absolutize(&direct),
                layout.absolutize(&overshoot),
                "construction must collide, seed {seed}"
            );
            let mut r = PlacementReport::new(StackFormat::Bom, TierId::PMEM);
            // The high-value entry comes first: pre-fix, the later low-value
            // entry overwrote it.
            r.push(ReportEntry {
                stack: ReportStack::Bom(direct.clone()),
                tier: TierId::DRAM,
                max_size: 4096,
            });
            r.push(ReportEntry {
                stack: ReportStack::Bom(overshoot.clone()),
                tier: TierId::PMEM,
                max_size: 64,
            });
            let m = Matcher::new(&r, &map, &layout).unwrap();
            assert_eq!(m.colliding_entries(), 1, "seed {seed}");
            let captured = layout.absolutize(&direct).unwrap();
            assert_eq!(
                m.match_stack(&captured, &map, &layout),
                Some(TierId::DRAM),
                "higher-value site must keep the colliding key, seed {seed}"
            );

            // Order independence: pushing the entries the other way round
            // resolves identically.
            let mut rev = PlacementReport::new(StackFormat::Bom, TierId::PMEM);
            rev.push(ReportEntry {
                stack: ReportStack::Bom(overshoot.clone()),
                tier: TierId::PMEM,
                max_size: 64,
            });
            rev.push(ReportEntry {
                stack: ReportStack::Bom(direct.clone()),
                tier: TierId::DRAM,
                max_size: 4096,
            });
            let (m2, warnings) = Matcher::new_lenient(&rev, &map, &layout);
            assert_eq!(m2.colliding_entries(), 1);
            assert!(warnings.iter().any(|w| w.kind == WarningKind::CollidingEntry));
            assert_eq!(m2.match_stack(&captured, &map, &layout), Some(TierId::DRAM));
        }
    }

    #[test]
    fn lenient_on_a_clean_report_is_warning_free() {
        let map = image();
        let layout = LoadMap::randomize(&map, 5);
        let (m, warnings) = Matcher::new_lenient(&bom_report(), &map, &layout);
        assert!(warnings.is_empty());
        assert_eq!(m.unresolvable_entries(), 0);
        let strict = Matcher::new(&bom_report(), &map, &layout).unwrap();
        assert_eq!(m.cost_per_alloc(), strict.cost_per_alloc());
    }

    #[test]
    fn lenient_on_a_fully_stale_report_matches_nothing() {
        let map = image();
        let layout = LoadMap::randomize(&map, 5);
        let mut r = bom_report();
        for e in &mut r.entries {
            if let ReportStack::Bom(s) = &mut e.stack {
                *s = CallStack::new(vec![Frame::new(ModuleId(99), 0)]);
            }
        }
        let (m, warnings) = Matcher::new_lenient(&r, &map, &layout);
        assert_eq!(m.unresolvable_entries(), r.len() as u64);
        assert!(!warnings.is_empty());
        let stack = CallStack::new(vec![Frame::new(ModuleId(0), 0x80)]);
        let captured = layout.absolutize(&stack).unwrap();
        assert_eq!(m.match_stack(&captured, &map, &layout), None);
        assert_eq!(m.fallback(), TierId::PMEM);
    }
}
