//! Memory Mode DRAM-cache model.
//!
//! In Memory Mode the memory controllers use DRAM as a direct-mapped,
//! write-back, inclusive cache in front of PMem (§II). For many workloads
//! the cache hides PMem latency; for working sets larger than DRAM, or
//! access patterns prone to conflict misses in a direct-mapped structure,
//! it does not — exactly the gap ecoHMEM exploits (Table VI correlates the
//! win with low DRAM-cache hit ratios and high memory-boundness).
//!
//! The model is analytic, per phase: each access stream receives a share of
//! the cache proportional to its miss intensity (intense streams keep their
//! lines resident), giving a capacity-hit probability `min(1, share /
//! footprint)`, which is then degraded by a pattern-dependent conflict
//! factor reflecting direct-mapped conflicts. Dirty lines evicted on a miss
//! produce PMem write-back traffic.

use crate::model::AccessPattern;
use serde::{Deserialize, Serialize};

/// Tunables of the DRAM-cache model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CacheModelCfg {
    /// Fraction of DRAM available to the cache that is effective (metadata,
    /// tags and OS residue shave some off).
    pub effective_fraction: f64,
}

impl Default for CacheModelCfg {
    fn default() -> Self {
        CacheModelCfg { effective_fraction: 0.94 }
    }
}

/// One access stream's footprint for the cache model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamDemand {
    /// LLC load misses the stream generates this phase.
    pub load_misses: f64,
    /// L1D store misses (write-back producers) this phase.
    pub store_misses: f64,
    /// Live bytes the stream touches.
    pub footprint: f64,
    /// Access pattern (conflict behaviour).
    pub pattern: AccessPattern,
    /// Average number of times each cache line of the footprint is touched
    /// (at LLC-miss granularity) during the phase. Single-sweep streaming
    /// data (`reuse ≈ 1`) cannot hit in the DRAM cache no matter how big it
    /// is: the first touch always misses. `reuse = k` caps the hit ratio at
    /// `1 - 1/k`.
    pub reuse: f64,
}

/// The cache model's verdict for one stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheSplit {
    /// DRAM-cache hit probability applied to the stream's LLC misses.
    pub hit_ratio: f64,
    /// LLC misses served by the DRAM cache.
    pub dram_hits: f64,
    /// LLC misses that also miss the DRAM cache and go to PMem.
    pub pmem_misses: f64,
    /// Bytes of dirty write-back traffic to PMem caused by the stream.
    pub writeback_bytes: f64,
    /// Bytes of store traffic absorbed by the DRAM cache.
    pub dram_store_bytes: f64,
}

/// Splits each stream's traffic between the DRAM cache and PMem.
///
/// `dram_capacity` is the raw DRAM size serving as cache; `cacheline` the
/// fetch granularity.
pub fn split_streams(
    cfg: &CacheModelCfg,
    dram_capacity: u64,
    cacheline: u64,
    streams: &[StreamDemand],
) -> Vec<CacheSplit> {
    let cache = dram_capacity as f64 * cfg.effective_fraction;
    // Waterfilling: cache capacity is handed out in rounds, each round
    // splitting the remaining capacity among still-unsatisfied streams in
    // proportion to their miss intensity. A stream never takes more than
    // its footprint, and the surplus of small hot streams flows to the
    // rest — as competition for a shared cache actually resolves.
    let n = streams.len();
    let mut coverage = vec![0.0_f64; n];
    let mut remaining = cache;
    for _ in 0..6 {
        let active: Vec<usize> =
            (0..n).filter(|&i| streams[i].footprint > 0.0 && coverage[i] < 1.0 - 1e-9).collect();
        if active.is_empty() || remaining <= 1.0 {
            break;
        }
        let total_intensity: f64 =
            active.iter().map(|&i| streams[i].load_misses + streams[i].store_misses).sum();
        if total_intensity <= 0.0 {
            // No intensity information: split evenly.
            let share = remaining / active.len() as f64;
            let mut used = 0.0;
            for &i in &active {
                let need = streams[i].footprint * (1.0 - coverage[i]);
                let take = share.min(need);
                coverage[i] += take / streams[i].footprint;
                used += take;
            }
            remaining -= used;
            continue;
        }
        let mut used = 0.0;
        for &i in &active {
            let intensity = streams[i].load_misses + streams[i].store_misses;
            let share = remaining * intensity / total_intensity;
            let need = streams[i].footprint * (1.0 - coverage[i]);
            let take = share.min(need);
            coverage[i] += take / streams[i].footprint;
            used += take;
        }
        remaining -= used;
    }
    streams
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let cov = if s.footprint > 0.0 { coverage[i].min(1.0) } else { 1.0 };
            let reuse_cap = if s.reuse > 1.0 { 1.0 - 1.0 / s.reuse } else { 0.0 };
            let hit = (cov * s.pattern.cache_conflict_factor()).min(reuse_cap).clamp(0.0, 1.0);
            let dram_hits = s.load_misses * hit;
            let pmem_misses = s.load_misses - dram_hits;
            // Stores land in the cache; dirty lines belonging to the
            // non-resident part of the footprint are written back to PMem.
            let dirty_evicted = s.store_misses * (1.0 - hit);
            CacheSplit {
                hit_ratio: hit,
                dram_hits,
                pmem_misses,
                writeback_bytes: dirty_evicted * cacheline as f64,
                dram_store_bytes: s.store_misses * cacheline as f64,
            }
        })
        .collect()
}

/// Aggregate hit ratio over a set of splits, weighted by load misses —
/// comparable to the "DRAM Cache Hit Ratio" row of Table VI.
pub fn aggregate_hit_ratio(streams: &[StreamDemand], splits: &[CacheSplit]) -> f64 {
    let total: f64 = streams.iter().map(|s| s.load_misses).sum();
    if total <= 0.0 {
        return 1.0;
    }
    let hits: f64 = splits.iter().map(|c| c.dram_hits).sum();
    hits / total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(misses: f64, footprint: f64, pattern: AccessPattern) -> StreamDemand {
        let touches = misses * 1.2; // loads + stores
        StreamDemand {
            load_misses: misses,
            store_misses: misses * 0.2,
            footprint,
            pattern,
            // Plenty of reuse: these tests exercise the coverage and
            // conflict terms, not the reuse cap.
            reuse: (touches * 64.0 / footprint).max(8.0),
        }
    }

    #[test]
    fn single_sweep_streams_cannot_hit() {
        let cfg = CacheModelCfg::default();
        let gib = (1u64 << 30) as f64;
        // One sweep over 14 GiB: misses == lines.
        let s = [StreamDemand {
            load_misses: 14.0 * gib / 64.0,
            store_misses: 0.0,
            footprint: 14.0 * gib,
            pattern: AccessPattern::Sequential,
            reuse: 1.0,
        }];
        let out = split_streams(&cfg, 16 << 30, 64, &s);
        assert!(out[0].hit_ratio < 1e-9, "no reuse, no hits: {}", out[0].hit_ratio);
    }

    #[test]
    fn reuse_caps_hit_ratio() {
        let cfg = CacheModelCfg::default();
        let gib = (1u64 << 30) as f64;
        let s = [StreamDemand {
            load_misses: 3.0 * gib / 64.0,
            store_misses: 0.0,
            footprint: gib,
            pattern: AccessPattern::Sequential,
            reuse: 3.0,
        }];
        let out = split_streams(&cfg, 16 << 30, 64, &s);
        assert!(out[0].hit_ratio <= 1.0 - 1.0 / 3.0 + 1e-9);
        assert!(out[0].hit_ratio > 0.5);
    }

    #[test]
    fn small_hot_stream_hits() {
        let cfg = CacheModelCfg::default();
        let s = [stream(1e6, 1e6, AccessPattern::Sequential)];
        let out = split_streams(&cfg, 16 << 30, 64, &s);
        assert!(out[0].hit_ratio > 0.9, "hot small data should be cached");
    }

    #[test]
    fn oversized_stream_mostly_misses() {
        let cfg = CacheModelCfg::default();
        let s = [stream(1e6, 64.0 * (1 << 30) as f64, AccessPattern::Random)];
        let out = split_streams(&cfg, 16 << 30, 64, &s);
        assert!(out[0].hit_ratio < 0.2, "hit={}", out[0].hit_ratio);
    }

    #[test]
    fn intensity_weighting_prefers_hot_streams() {
        let cfg = CacheModelCfg::default();
        let gib = (1u64 << 30) as f64;
        let s = [
            stream(9e6, 12.0 * gib, AccessPattern::Sequential), // hot
            stream(1e6, 12.0 * gib, AccessPattern::Sequential), // cold
        ];
        let out = split_streams(&cfg, 16 << 30, 64, &s);
        assert!(out[0].hit_ratio > out[1].hit_ratio);
    }

    #[test]
    fn random_pattern_conflicts_reduce_hits() {
        let cfg = CacheModelCfg::default();
        let gib = (1u64 << 30) as f64;
        let seq = [stream(1e6, 4.0 * gib, AccessPattern::Sequential)];
        let rnd = [stream(1e6, 4.0 * gib, AccessPattern::Random)];
        let a = split_streams(&cfg, 16 << 30, 64, &seq)[0].hit_ratio;
        let b = split_streams(&cfg, 16 << 30, 64, &rnd)[0].hit_ratio;
        assert!(a > b, "direct-mapped conflicts must hurt random access");
    }

    #[test]
    fn traffic_is_conserved() {
        let cfg = CacheModelCfg::default();
        let s = [stream(1e7, 40.0 * (1u64 << 30) as f64, AccessPattern::Strided)];
        let out = split_streams(&cfg, 16 << 30, 64, &s);
        let c = out[0];
        assert!((c.dram_hits + c.pmem_misses - 1e7).abs() < 1.0);
        assert!(c.writeback_bytes >= 0.0);
    }

    #[test]
    fn aggregate_ratio_weights_by_misses() {
        let cfg = CacheModelCfg::default();
        let gib = (1u64 << 30) as f64;
        let s = [
            stream(9e6, 0.5 * gib, AccessPattern::Sequential),
            stream(1e6, 100.0 * gib, AccessPattern::Random),
        ];
        let out = split_streams(&cfg, 16 << 30, 64, &s);
        let agg = aggregate_hit_ratio(&s, &out);
        assert!(agg > 0.5, "dominated by the hot cached stream, agg={agg}");
    }

    #[test]
    fn empty_streams_are_fine() {
        let cfg = CacheModelCfg::default();
        let out = split_streams(&cfg, 16 << 30, 64, &[]);
        assert!(out.is_empty());
        assert_eq!(aggregate_hit_ratio(&[], &out), 1.0);
    }
}
