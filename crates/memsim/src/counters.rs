//! Run results: everything the profilers, baselines, and experiment
//! harness read off an execution.

use memtrace::{FuncId, ObjectId, SiteId, TierId};
use serde::{Deserialize, Serialize};

/// Lifetime record of one dynamic allocation, with its accumulated access
/// counts — the per-object data behind Figs. 4/5 and the bandwidth-aware
/// Advisor inputs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObjectRecord {
    /// Instance id.
    pub object: ObjectId,
    /// Allocation site.
    pub site: SiteId,
    /// Size in bytes.
    pub size: u64,
    /// Simulated virtual address.
    pub address: u64,
    /// Tier the object finally resided in (last tier if migrated).
    pub tier: TierId,
    /// Allocation time, seconds.
    pub alloc_time: f64,
    /// Free time, seconds (end of run for objects alive at exit).
    pub free_time: f64,
    /// Phase ordinal of the allocation.
    pub alloc_phase: u32,
    /// Loads issued against the object over its lifetime.
    pub loads: f64,
    /// Stores issued against the object.
    pub stores: f64,
    /// LLC load misses served from memory for this object.
    pub load_misses: f64,
    /// L1D store misses (write-back producers) for this object.
    pub store_misses: f64,
    /// Per-phase activity: `(phase, load_misses, store_misses, stores)`
    /// increments, in phase order. Lets the profiler place samples in the
    /// phases where the accesses actually happened.
    #[serde(default)]
    pub phase_activity: Vec<(u32, f64, f64, f64)>,
}

impl ObjectRecord {
    /// Object lifetime in seconds.
    pub fn lifetime(&self) -> f64 {
        (self.free_time - self.alloc_time).max(0.0)
    }

    /// Average memory bandwidth the object consumed over its lifetime,
    /// bytes/second (misses × cache line / lifetime).
    pub fn avg_bandwidth(&self, cacheline: u64) -> f64 {
        let lt = self.lifetime();
        if lt <= 0.0 {
            return 0.0;
        }
        (self.load_misses + self.store_misses) * cacheline as f64 / lt
    }
}

/// Aggregated statistics for one phase.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseStats {
    /// Phase ordinal.
    pub index: u32,
    /// Optional model label.
    pub label: Option<String>,
    /// Phase start time, seconds.
    pub start: f64,
    /// Phase duration, seconds.
    pub duration: f64,
    /// Pure-compute time of the phase (no memory stalls), seconds.
    pub compute_time: f64,
    /// Achieved read bandwidth per tier, bytes/second.
    pub tier_read_bw: Vec<f64>,
    /// Achieved write bandwidth per tier, bytes/second.
    pub tier_write_bw: Vec<f64>,
    /// DRAM-cache hit ratio (Memory Mode phases only).
    pub dram_cache_hit_ratio: Option<f64>,
    /// Bytes migrated between tiers at this phase's start.
    pub migrated_bytes: u64,
}

/// Per-function accumulators for Table VII.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct FunctionStats {
    /// Instructions retired by the function.
    pub instructions: f64,
    /// Cycle-slots attributed to the function.
    pub cycles: f64,
    /// LLC load misses issued by the function.
    pub load_misses: f64,
    /// Σ (miss × latency_ns), for the average-load-latency column.
    pub latency_ns_weighted: f64,
}

impl FunctionStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles <= 0.0 {
            return 0.0;
        }
        self.instructions / self.cycles
    }

    /// Average load-miss latency in nanoseconds.
    pub fn avg_load_latency_ns(&self) -> f64 {
        if self.load_misses <= 0.0 {
            return 0.0;
        }
        self.latency_ns_weighted / self.load_misses
    }
}

/// The complete result of one engine run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunResult {
    /// Application name.
    pub app: String,
    /// Machine configuration name.
    pub machine: String,
    /// Execution mode label (`app-direct` / `memory-mode`).
    pub mode: String,
    /// Placement policy name.
    pub policy: String,
    /// Total wall-clock time, seconds (includes allocator overhead).
    pub total_time: f64,
    /// Total pure-compute time, seconds.
    pub compute_time: f64,
    /// Total instructions retired.
    pub instructions: f64,
    /// Seconds spent in allocation interception/matching overhead.
    pub alloc_overhead: f64,
    /// Aggregate cycle-slots of the run (cores × freq × time).
    pub cycles: f64,
    /// Per-phase statistics, in order.
    pub phases: Vec<PhaseStats>,
    /// Per-function statistics.
    pub functions: Vec<(FuncId, FunctionStats)>,
    /// Per-object lifetime records.
    pub objects: Vec<ObjectRecord>,
    /// Peak heap bytes per tier.
    pub tier_peak_bytes: Vec<u64>,
    /// Allocations that could not be served by the policy's preferred tier
    /// and spilled to another.
    pub fallback_allocs: u64,
    /// Allocations that exceeded every tier's capacity (overcommitted into
    /// the largest tier; zero in all paper configurations).
    pub oom_events: u64,
    /// Inter-tier migrations applied over the run (dynamic policies only).
    #[serde(default)]
    pub migrations: u64,
    /// Total bytes moved between tiers by those migrations.
    #[serde(default)]
    pub migrated_bytes: u64,
    /// Seconds charged for migrations: Σ (bytes / min(src read bw, dst
    /// write bw) + per-migration fixed overhead). Included in `total_time`.
    #[serde(default)]
    pub migration_time: f64,
}

impl RunResult {
    /// Overall instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles <= 0.0 {
            return 0.0;
        }
        self.instructions / self.cycles
    }

    /// Fraction of time the pipeline was bound on memory — the analogue of
    /// VTune's "Memory Bound pipeline slots" of Table VI.
    pub fn memory_bound_fraction(&self) -> f64 {
        if self.total_time <= 0.0 {
            return 0.0;
        }
        (1.0 - self.compute_time / self.total_time).clamp(0.0, 1.0)
    }

    /// Load-miss-weighted DRAM-cache hit ratio over all Memory Mode phases.
    ///
    /// Total by convention: a run with no Memory-Mode phases, or one whose
    /// Memory-Mode phases carried no off-LLC read traffic, has ratio 0.0 —
    /// nothing hit the DRAM cache because nothing reached it. (Previously
    /// returned `Option`, which callers `unwrap()`ed and panicked on
    /// App-Direct or traffic-free runs.)
    pub fn dram_cache_hit_ratio(&self) -> f64 {
        let mut num = 0.0;
        let mut den = 0.0;
        for p in &self.phases {
            if let Some(h) = p.dram_cache_hit_ratio {
                // Weight by the phase's total off-LLC read traffic.
                let w: f64 = p.tier_read_bw.iter().sum::<f64>() * p.duration;
                num += h * w;
                den += w;
            }
        }
        if den > 0.0 {
            num / den
        } else {
            0.0
        }
    }

    /// Speedup of this run relative to a baseline run of the same model
    /// (baseline_time / this_time, so >1 means faster).
    pub fn speedup_vs(&self, baseline: &RunResult) -> f64 {
        if self.total_time <= 0.0 {
            return 0.0;
        }
        baseline.total_time / self.total_time
    }

    /// Time series of a tier's total (read + write) bandwidth:
    /// `(phase_start_seconds, bytes_per_second)` — Figs. 3 and 7.
    pub fn tier_bw_series(&self, tier: TierId) -> Vec<(f64, f64)> {
        self.phases
            .iter()
            .map(|p| {
                let i = tier.0 as usize;
                let bw = p.tier_read_bw.get(i).copied().unwrap_or(0.0)
                    + p.tier_write_bw.get(i).copied().unwrap_or(0.0);
                (p.start, bw)
            })
            .collect()
    }

    /// Peak total bandwidth seen on a tier across phases.
    pub fn tier_peak_bw(&self, tier: TierId) -> f64 {
        self.tier_bw_series(tier).into_iter().map(|(_, bw)| bw).fold(0.0, f64::max)
    }

    /// Stats for one function.
    pub fn function(&self, f: FuncId) -> Option<&FunctionStats> {
        self.functions.iter().find(|(id, _)| *id == f).map(|(_, s)| s)
    }

    /// Objects that lived in a given tier.
    pub fn objects_in_tier(&self, tier: TierId) -> Vec<&ObjectRecord> {
        self.objects.iter().filter(|o| o.tier == tier).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(tier: TierId, misses: f64, lifetime: f64) -> ObjectRecord {
        ObjectRecord {
            object: ObjectId(1),
            site: SiteId(0),
            size: 1024,
            address: 0,
            tier,
            alloc_time: 1.0,
            free_time: 1.0 + lifetime,
            alloc_phase: 0,
            loads: misses * 10.0,
            stores: 0.0,
            load_misses: misses,
            store_misses: 0.0,
            phase_activity: vec![(0, misses, 0.0, 0.0)],
        }
    }

    #[test]
    fn object_lifetime_and_bandwidth() {
        let o = obj(TierId::PMEM, 1e9, 10.0);
        assert!((o.lifetime() - 10.0).abs() < 1e-12);
        assert!((o.avg_bandwidth(64) - 6.4e9).abs() < 1.0);
        let degenerate = obj(TierId::PMEM, 1e9, 0.0);
        assert_eq!(degenerate.avg_bandwidth(64), 0.0);
    }

    #[test]
    fn function_stats_derivations() {
        let f = FunctionStats {
            instructions: 100.0,
            cycles: 50.0,
            load_misses: 10.0,
            latency_ns_weighted: 2000.0,
        };
        assert!((f.ipc() - 2.0).abs() < 1e-12);
        assert!((f.avg_load_latency_ns() - 200.0).abs() < 1e-12);
        assert_eq!(FunctionStats::default().ipc(), 0.0);
    }

    fn result(total: f64, compute: f64) -> RunResult {
        RunResult {
            app: "t".into(),
            machine: "m".into(),
            mode: "app-direct".into(),
            policy: "p".into(),
            total_time: total,
            compute_time: compute,
            instructions: 1e9,
            alloc_overhead: 0.0,
            cycles: 2e9,
            phases: vec![],
            functions: vec![],
            objects: vec![],
            tier_peak_bytes: vec![],
            fallback_allocs: 0,
            oom_events: 0,
            migrations: 0,
            migrated_bytes: 0,
            migration_time: 0.0,
        }
    }

    #[test]
    fn memory_bound_fraction_and_speedup() {
        let fast = result(10.0, 5.0);
        let slow = result(20.0, 5.0);
        assert!((fast.memory_bound_fraction() - 0.5).abs() < 1e-12);
        assert!((slow.memory_bound_fraction() - 0.75).abs() < 1e-12);
        assert!((fast.speedup_vs(&slow) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn bw_series_sums_read_and_write() {
        let mut r = result(1.0, 0.5);
        r.phases.push(PhaseStats {
            index: 0,
            label: None,
            start: 0.0,
            duration: 1.0,
            compute_time: 0.5,
            tier_read_bw: vec![1e9, 2e9],
            tier_write_bw: vec![0.5e9, 0.25e9],
            dram_cache_hit_ratio: None,
            migrated_bytes: 0,
        });
        let s = r.tier_bw_series(TierId::PMEM);
        assert_eq!(s.len(), 1);
        assert!((s[0].1 - 2.25e9).abs() < 1.0);
        assert!((r.tier_peak_bw(TierId::DRAM) - 1.5e9).abs() < 1.0);
    }

    #[test]
    fn hit_ratio_weighted_over_phases() {
        let mut r = result(2.0, 1.0);
        for (hit, bw) in [(0.9, 3e9), (0.3, 1e9)] {
            r.phases.push(PhaseStats {
                index: 0,
                label: None,
                start: 0.0,
                duration: 1.0,
                compute_time: 0.5,
                tier_read_bw: vec![bw],
                tier_write_bw: vec![0.0],
                dram_cache_hit_ratio: Some(hit),
                migrated_bytes: 0,
            });
        }
        let h = r.dram_cache_hit_ratio();
        assert!((h - (0.9 * 3.0 + 0.3 * 1.0) / 4.0).abs() < 1e-9);
    }

    #[test]
    fn hit_ratio_is_total() {
        // Regression (satellite 3): runs with no Memory-Mode phases (or no
        // read traffic in them) report 0.0 instead of forcing callers to
        // unwrap an Option.
        assert_eq!(result(1.0, 1.0).dram_cache_hit_ratio(), 0.0);
        let mut r = result(1.0, 1.0);
        r.phases.push(PhaseStats {
            index: 0,
            label: None,
            start: 0.0,
            duration: 1.0,
            compute_time: 1.0,
            tier_read_bw: vec![0.0],
            tier_write_bw: vec![0.0],
            dram_cache_hit_ratio: Some(1.0),
            migrated_bytes: 0,
        });
        assert_eq!(r.dram_cache_hit_ratio(), 0.0, "zero traffic carries zero weight");
    }
}
