//! Loaded-latency curves: access latency as a function of bandwidth
//! utilization.
//!
//! Fig. 2 of the paper (measured with Intel MLC) shows that both DRAM and
//! PMem latencies are flat at low bandwidth and grow quickly as traffic
//! approaches the device's peak — and that the gap *widens*: at 22 GB/s,
//! PMem read latency is 2.3× DRAM's. This queueing behaviour is the whole
//! reason a bandwidth-unaware placement can lose (§VII's A/B example), so
//! the model must capture the shape, not just two endpoints.
//!
//! We use a polynomial loading model, `lat(u) = base + span·u^alpha` with
//! `u` the device utilization (demand/peak, clamped), which matches the
//! convex "hockey stick" of measured loaded-latency curves and is cheap and
//! smooth for the fixed-point solve in the engine.

use serde::{Deserialize, Serialize};

/// A loaded-latency curve for one access direction of one tier.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyCurve {
    /// Unloaded (idle) latency in nanoseconds.
    pub base_ns: f64,
    /// Additional latency at full utilization, nanoseconds.
    pub span_ns: f64,
    /// Convexity exponent; larger keeps the curve flat longer before the
    /// knee (measured DRAM curves are flatter than PMem's).
    pub alpha: f64,
}

impl LatencyCurve {
    /// Creates a curve. `base_ns` and `span_ns` must be non-negative and
    /// `alpha` at least 1 (concave curves are not physical here).
    pub fn new(base_ns: f64, span_ns: f64, alpha: f64) -> Self {
        assert!(base_ns >= 0.0 && span_ns >= 0.0 && alpha >= 1.0);
        LatencyCurve { base_ns, span_ns, alpha }
    }

    /// Latency in nanoseconds at a given utilization. Utilization is
    /// clamped to `[0, 1.25]`: beyond saturation latency keeps growing a
    /// little, but throughput (handled by the engine's bandwidth term) is
    /// what actually limits progress there.
    pub fn latency_ns(&self, utilization: f64) -> f64 {
        let u = utilization.clamp(0.0, 1.25);
        self.base_ns + self.span_ns * u.powf(self.alpha)
    }

    /// Latency at zero load.
    pub fn idle_ns(&self) -> f64 {
        self.base_ns
    }

    /// Latency at exactly full utilization.
    pub fn saturated_ns(&self) -> f64 {
        self.base_ns + self.span_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_and_saturated_endpoints() {
        let c = LatencyCurve::new(90.0, 38.0, 4.0);
        assert_eq!(c.idle_ns(), 90.0);
        assert!((c.saturated_ns() - 128.0).abs() < 1e-9);
        assert_eq!(c.latency_ns(0.0), 90.0);
    }

    #[test]
    fn monotone_in_utilization() {
        let c = LatencyCurve::new(185.0, 190.0, 4.0);
        let mut prev = 0.0;
        for i in 0..=50 {
            let u = i as f64 / 40.0; // goes past saturation
            let l = c.latency_ns(u);
            assert!(l >= prev, "latency must be nondecreasing");
            prev = l;
        }
    }

    #[test]
    fn clamps_beyond_saturation() {
        let c = LatencyCurve::new(100.0, 100.0, 2.0);
        assert_eq!(c.latency_ns(10.0), c.latency_ns(1.25));
        assert_eq!(c.latency_ns(-3.0), c.latency_ns(0.0));
    }

    #[test]
    fn convexity_keeps_low_load_flat() {
        // At 1/3 utilization a quartic curve should have added well under
        // 10% of its span — the "not noticeable at low bandwidth" property
        // of Fig. 2.
        let c = LatencyCurve::new(90.0, 38.0, 4.0);
        let added = c.latency_ns(0.33) - c.idle_ns();
        assert!(added < 0.1 * 38.0, "added={added}");
    }

    #[test]
    #[should_panic]
    fn rejects_concave_alpha() {
        LatencyCurve::new(90.0, 38.0, 0.5);
    }
}
