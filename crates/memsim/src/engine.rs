//! The phase-based execution engine.
//!
//! Executes an [`AppModel`] on a [`MachineConfig`] under a placement policy
//! and returns a [`RunResult`]. The engine is an analytic performance
//! model, not a cycle simulator: each phase's duration is solved by a small
//! fixed point between bandwidth demand (which depends on the duration) and
//! loaded latency (which depends on the bandwidth).
//!
//! Per phase:
//!
//! 1. apply migrations requested by reactive policies (tiering baseline);
//! 2. perform allocations, consulting the policy (App Direct) or forcing
//!    the backing tier (Memory Mode), with fallback on full tiers;
//! 3. convert each access stream into per-tier read/write cache-line
//!    volumes — directly in App Direct, or through the DRAM-cache model in
//!    Memory Mode;
//! 4. solve `duration = max(compute, memory)` where the memory time is the
//!    larger of the latency-bound term (Σ misses × loaded-latency / MLP)
//!    and the bandwidth-bound term (volume / peak);
//! 5. attribute instructions/cycles/latencies to functions and accesses to
//!    objects, then free what the phase frees.

use crate::cache::{self, StreamDemand};
use crate::counters::{FunctionStats, ObjectRecord, PhaseStats, RunResult};
use crate::heap::TierHeap;
use crate::machine::MachineConfig;
use crate::model::{AppModel, PhaseSpec};
use crate::policy::{AllocContext, Migration, PhaseObservation, PlacementPolicy};
use memtrace::{FuncId, ObjectId, SiteId, TierId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// How the machine serves memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExecMode {
    /// App Direct: software (the policy) places every allocation in an
    /// explicit tier.
    AppDirect,
    /// Memory Mode: everything lives in the backing (largest) tier and the
    /// fastest tier acts as a hardware-managed direct-mapped cache.
    MemoryMode,
}

impl ExecMode {
    fn label(self) -> &'static str {
        match self {
            ExecMode::AppDirect => "app-direct",
            ExecMode::MemoryMode => "memory-mode",
        }
    }
}

struct LiveObject {
    record: usize,
    site: SiteId,
    size: u64,
    address: u64,
    tier: TierId,
}

/// Numerical guts of one phase's timing solve.
struct PhaseSolution {
    duration: f64,
    compute_time: f64,
    tier_read_bw: Vec<f64>,
    tier_write_bw: Vec<f64>,
    /// Final loaded read latency per tier, ns.
    tier_read_lat: Vec<f64>,
}

const FIXED_POINT_ITERS: usize = 12;
/// Stores retire through write buffers, so their effective parallelism is
/// higher than demand loads'.
const STORE_MLP_BONUS: f64 = 4.0;

/// Process-wide count of [`run`] executions, for measuring how much work the
/// memoizing runner ([`crate::runner`]) actually avoids.
static RUN_INVOCATIONS: AtomicU64 = AtomicU64::new(0);

/// Number of times [`run`] has executed in this process (cache hits in
/// [`crate::runner::RunCache`] do not count — they never reach the engine).
pub fn run_invocations() -> u64 {
    RUN_INVOCATIONS.load(Ordering::Relaxed)
}

/// Runs an application model to completion.
pub fn run(
    app: &AppModel,
    machine: &MachineConfig,
    mode: ExecMode,
    policy: &mut dyn PlacementPolicy,
) -> RunResult {
    RUN_INVOCATIONS.fetch_add(1, Ordering::Relaxed);
    let _span = ecohmem_obs::span("memsim.run");
    ecohmem_obs::incr("memsim.engine.runs");
    app.validate().expect("invalid application model");
    machine.validate().expect("invalid machine configuration");

    let n_tiers = machine.tiers.len();
    let cache_tier = machine.tiers_by_performance()[0];
    let backing_tier = machine.largest_tier();

    let mut heaps: Vec<TierHeap> =
        machine.tiers.iter().map(|t| TierHeap::new(t.id, t.capacity)).collect();
    // Policy-resident data (debug info, kernel metadata) pins DRAM.
    let resident = policy.resident_dram_bytes();
    if resident > 0 {
        heaps[cache_tier.0 as usize].reserve(resident);
    }

    let mut live: HashMap<ObjectId, LiveObject> = HashMap::new();
    let mut live_by_site: HashMap<SiteId, Vec<ObjectId>> = HashMap::new();
    let mut records: Vec<ObjectRecord> = Vec::new();
    let mut functions: HashMap<FuncId, FunctionStats> = HashMap::new();
    let mut phases_out: Vec<PhaseStats> = Vec::new();

    let mut t = 0.0_f64;
    let mut next_object = 1u64;
    let mut fallback_allocs = 0u64;
    let mut oom_events = 0u64;
    let mut alloc_overhead = 0.0_f64;
    let mut total_instructions = 0.0_f64;
    let mut total_compute = 0.0_f64;
    let mut pending_migrations: Vec<Migration> = Vec::new();
    let mut total_migrations = 0u64;
    let mut migration_time = 0.0_f64;

    for (pi, phase) in app.phases.iter().enumerate() {
        // Chaos-testing probe: a no-op unless a kill point was armed, in
        // which case the run panics here at a deterministic phase offset.
        crate::runner::kill_point_tick();
        let pi32 = pi as u32;

        // 1. Migrations requested by a reactive policy at the last phase
        // boundary.
        let mut migrated_bytes = 0u64;
        for m in pending_migrations.drain(..) {
            let Some(obj) = live.get_mut(&m.object) else { continue };
            if obj.tier == m.to {
                continue;
            }
            let Some(new_addr) = heaps[m.to.0 as usize].alloc(obj.size) else {
                continue; // destination full: migration skipped
            };
            heaps[obj.tier.0 as usize].free(obj.address, obj.size);
            let src = machine.tier(obj.tier);
            let dst = machine.tier(m.to);
            migrated_bytes += obj.size;
            total_migrations += 1;
            // Cost model: bytes moved at the slower of the two controllers,
            // plus the policy's fixed per-migration (syscall/remap) latency.
            let cost = obj.size as f64 / src.peak_read_bw.min(dst.peak_write_bw)
                + policy.migration_overhead_seconds();
            t += cost;
            migration_time += cost;
            obj.tier = m.to;
            obj.address = new_addr;
            records[obj.record].tier = m.to;
            records[obj.record].address = new_addr;
        }

        // 2. Allocations.
        for op in &phase.allocs {
            let stack = app.stack_of(op.site).expect("validated model has stacks for all sites");
            for _ in 0..op.count {
                let object = ObjectId(next_object);
                next_object += 1;
                let preferred = match mode {
                    ExecMode::MemoryMode => backing_tier,
                    ExecMode::AppDirect => {
                        alloc_overhead += policy.overhead_seconds_per_alloc();
                        policy.place(&AllocContext {
                            site: op.site,
                            stack,
                            size: op.size,
                            phase: pi32,
                            time: t,
                        })
                    }
                };
                // Fallback chain: preferred, policy fallback, then any tier.
                let mut chain = vec![preferred];
                if !chain.contains(&policy.fallback()) && mode == ExecMode::AppDirect {
                    chain.push(policy.fallback());
                }
                for i in 0..n_tiers {
                    let tid = TierId(i as u8);
                    if !chain.contains(&tid) {
                        chain.push(tid);
                    }
                }
                let mut placed = None;
                for (ci, &tid) in chain.iter().enumerate() {
                    if let Some(addr) = heaps[tid.0 as usize].alloc(op.size) {
                        if ci > 0 {
                            fallback_allocs += 1;
                        }
                        placed = Some((tid, addr));
                        break;
                    }
                }
                let (tier, address) = placed.unwrap_or_else(|| {
                    oom_events += 1;
                    let tid = backing_tier;
                    (tid, heaps[tid.0 as usize].force_alloc(op.size))
                });
                let record = records.len();
                records.push(ObjectRecord {
                    object,
                    site: op.site,
                    size: op.size,
                    address,
                    tier,
                    alloc_time: t,
                    free_time: f64::NAN,
                    alloc_phase: pi32,
                    loads: 0.0,
                    stores: 0.0,
                    load_misses: 0.0,
                    store_misses: 0.0,
                    phase_activity: Vec::new(),
                });
                live.insert(
                    object,
                    LiveObject { record, site: op.site, size: op.size, address, tier },
                );
                live_by_site.entry(op.site).or_default().push(object);
            }
        }

        // 3 + 4. Traffic assembly and the timing fixed point.
        let solution = solve_phase(app, machine, mode, phase, &live, &live_by_site);

        // 5a. Per-object attribution (totals + per-phase activity).
        let mut phase_delta: HashMap<ObjectId, (f64, f64, f64)> = HashMap::new();
        for spec in &phase.accesses {
            let Some(objs) = live_by_site.get(&spec.site) else { continue };
            if objs.is_empty() {
                continue;
            }
            let n = objs.len() as f64;
            for oid in objs {
                let lo = &live[oid];
                let r = &mut records[lo.record];
                r.loads += spec.loads / n;
                r.stores += spec.stores / n;
                r.load_misses += spec.load_misses() / n;
                r.store_misses += spec.store_misses() / n;
                let d = phase_delta.entry(*oid).or_insert((0.0, 0.0, 0.0));
                d.0 += spec.load_misses() / n;
                d.1 += spec.store_misses() / n;
                d.2 += spec.stores / n;
            }
        }
        let mut touched: Vec<ObjectId> = phase_delta.keys().copied().collect();
        touched.sort();
        for oid in touched {
            let (lm, sm, st) = phase_delta[&oid];
            let rec = live[&oid].record;
            records[rec].phase_activity.push((pi32, lm, sm, st));
        }

        // 5b. Per-function attribution: each stream gets its instructions'
        // compute time plus its share of the phase's memory time; cycles
        // scale the aggregate slot rate.
        let phase_instr: f64 = phase.compute_instructions
            + phase.accesses.iter().map(|a| a.total_instructions()).sum::<f64>();
        total_instructions += phase_instr;
        let total_misses: f64 =
            phase.accesses.iter().map(|a| a.load_misses() + a.store_misses()).sum();
        let mem_time = (solution.duration - solution.compute_time).max(0.0);
        // Memory time is attributed by each stream's *latency-weighted*
        // miss volume, so functions whose data sits in the slow tier absorb
        // proportionally more stall cycles (the Table VII effect).
        let mut stream_lat: Vec<(usize, f64)> = Vec::new();
        let mut total_weight = 0.0;
        for (si, spec) in phase.accesses.iter().enumerate() {
            if live_by_site.get(&spec.site).is_none_or(|v| v.is_empty()) {
                continue;
            }
            let lat = stream_read_latency(
                machine,
                mode,
                spec.site,
                &live,
                &live_by_site,
                &solution,
                cache_tier,
                backing_tier,
                phase,
            );
            let weight = (spec.load_misses() + spec.store_misses()) * lat.max(1.0);
            stream_lat.push((si, lat));
            total_weight += weight;
        }
        let _ = total_misses;
        for &(si, lat) in &stream_lat {
            let spec = &phase.accesses[si];
            let weight = (spec.load_misses() + spec.store_misses()) * lat.max(1.0);
            let mem_share = if total_weight > 0.0 { weight / total_weight } else { 0.0 };
            let f = functions.entry(spec.function).or_default();
            f.instructions += spec.total_instructions();
            let stream_time = spec.total_instructions() / machine.peak_ips() + mem_time * mem_share;
            f.cycles += stream_time * machine.cycles_per_second();
            f.load_misses += spec.load_misses();
            f.latency_ns_weighted += spec.load_misses() * lat;
        }

        total_compute += solution.compute_time;
        phases_out.push(PhaseStats {
            index: pi32,
            label: phase.label.clone(),
            start: t,
            duration: solution.duration,
            compute_time: solution.compute_time,
            tier_read_bw: solution.tier_read_bw.clone(),
            tier_write_bw: solution.tier_write_bw.clone(),
            dram_cache_hit_ratio: match mode {
                ExecMode::MemoryMode => Some(phase_hit_ratio(machine, phase, &live, &live_by_site)),
                ExecMode::AppDirect => None,
            },
            migrated_bytes,
        });
        t += solution.duration;

        // 6. Reactive policy observation.
        if mode == ExecMode::AppDirect {
            let obs = PhaseObservation {
                phase: pi32,
                objects: phase_object_heat(phase, &live, &live_by_site),
            };
            pending_migrations = policy.observe_phase(&obs);
        }

        // 7. Frees (oldest first).
        for f in &phase.frees {
            let objs = live_by_site.entry(f.site).or_default();
            for _ in 0..f.count {
                if objs.is_empty() {
                    break;
                }
                let oid = objs.remove(0);
                let lo = live.remove(&oid).expect("live map in sync");
                heaps[lo.tier.0 as usize].free(lo.address, lo.size);
                records[lo.record].free_time = t;
            }
        }
    }

    // Objects alive at exit live until the end of the run.
    let end = t + alloc_overhead;
    for lo in live.values() {
        records[lo.record].free_time = end;
    }

    let mut functions: Vec<(FuncId, FunctionStats)> = functions.into_iter().collect();
    functions.sort_by_key(|(f, _)| *f);

    // Derived from the per-phase stats so the two can never disagree.
    let total_migrated_bytes: u64 = phases_out.iter().map(|p| p.migrated_bytes).sum();

    ecohmem_obs::count("memsim.engine.migrations", total_migrations);
    ecohmem_obs::count("memsim.engine.migrated_bytes", total_migrated_bytes);
    ecohmem_obs::count("memsim.engine.oom_events", oom_events);
    ecohmem_obs::count("memsim.engine.fallback_allocs", fallback_allocs);
    for h in &heaps {
        ecohmem_obs::gauge_raise(&format!("memsim.{}.peak_bytes", h.tier()), h.peak() as f64);
    }

    RunResult {
        app: app.name.clone(),
        machine: machine.name.clone(),
        mode: mode.label().to_string(),
        policy: policy.name().to_string(),
        total_time: end,
        compute_time: total_compute,
        instructions: total_instructions,
        alloc_overhead,
        cycles: end * machine.cycles_per_second(),
        phases: phases_out,
        functions,
        objects: records,
        tier_peak_bytes: heaps.iter().map(|h| h.peak()).collect(),
        fallback_allocs,
        oom_events,
        migrations: total_migrations,
        migrated_bytes: total_migrated_bytes,
        migration_time,
    }
}

/// Per-tier read/write line volumes for a phase under the given placement.
fn phase_tier_volumes(
    machine: &MachineConfig,
    mode: ExecMode,
    phase: &PhaseSpec,
    live: &HashMap<ObjectId, LiveObject>,
    live_by_site: &HashMap<SiteId, Vec<ObjectId>>,
) -> (Vec<f64>, Vec<f64>) {
    let n = machine.tiers.len();
    let cl = machine.cacheline as f64;
    let mut read = vec![0.0; n];
    let mut write = vec![0.0; n];
    match mode {
        ExecMode::AppDirect => {
            for spec in &phase.accesses {
                let Some(objs) = live_by_site.get(&spec.site) else { continue };
                if objs.is_empty() {
                    continue;
                }
                let per = 1.0 / objs.len() as f64;
                for oid in objs {
                    let tier = live[oid].tier.0 as usize;
                    let amp = machine.tiers[tier].amplification(spec.pattern);
                    read[tier] += spec.load_misses() * per * cl * amp;
                    write[tier] += spec.store_misses() * per * cl * amp;
                }
            }
        }
        ExecMode::MemoryMode => {
            let cache_tier = machine.tiers_by_performance()[0].0 as usize;
            let backing = machine.largest_tier().0 as usize;
            let demands = memory_mode_demands(phase, live, live_by_site);
            let splits = cache::split_streams(
                &machine.cache_cfg,
                machine.tier(TierId(cache_tier as u8)).capacity,
                machine.cacheline,
                &demands,
            );
            let specs = nonempty_specs(phase, live_by_site);
            for (spec, s) in specs.iter().zip(&splits) {
                let amp_back = machine.tiers[backing].amplification(spec.pattern);
                let amp_cache = machine.tiers[cache_tier].amplification(spec.pattern);
                read[cache_tier] += s.dram_hits * cl * amp_cache;
                read[backing] += s.pmem_misses * cl * amp_back;
                write[backing] += s.writeback_bytes * amp_back;
                write[cache_tier] += s.dram_store_bytes * amp_cache;
                // A DRAM-cache miss also *fills* the cache (write to DRAM),
                // and a dirty eviction first reads the victim line from
                // DRAM — inclusive write-back cache bookkeeping.
                write[cache_tier] += s.pmem_misses * cl;
                read[cache_tier] += s.writeback_bytes;
            }
        }
    }
    (read, write)
}

/// Access specs whose sites have live objects, in phase order — the subset
/// the cache model and the split consumers must agree on.
fn nonempty_specs<'a>(
    phase: &'a PhaseSpec,
    live_by_site: &HashMap<SiteId, Vec<ObjectId>>,
) -> Vec<&'a crate::model::AccessSpec> {
    phase
        .accesses
        .iter()
        .filter(|s| live_by_site.get(&s.site).is_some_and(|v| !v.is_empty()))
        .collect()
}

/// Builds the DRAM-cache model inputs for a Memory Mode phase.
fn memory_mode_demands(
    phase: &PhaseSpec,
    live: &HashMap<ObjectId, LiveObject>,
    live_by_site: &HashMap<SiteId, Vec<ObjectId>>,
) -> Vec<StreamDemand> {
    phase
        .accesses
        .iter()
        .filter_map(|spec| {
            let objs = live_by_site.get(&spec.site)?;
            if objs.is_empty() {
                return None;
            }
            let footprint: f64 = objs.iter().map(|o| live[o].size as f64).sum();
            let touches = spec.load_misses() + spec.store_misses();
            // Touches per unique line this phase: single-sweep streams get
            // reuse ≈ 1 (→ no DRAM-cache hits), iteratively re-read data
            // gets reuse > 1.
            let reuse = if spec.reuse_hint > 0.0 {
                spec.reuse_hint
            } else {
                (touches * 64.0 / footprint.max(64.0)).max(1.0)
            };
            Some(StreamDemand {
                load_misses: spec.load_misses(),
                store_misses: spec.store_misses(),
                footprint,
                pattern: spec.pattern,
                reuse,
            })
        })
        .collect()
}

/// Miss-weighted DRAM-cache hit ratio of a Memory Mode phase.
fn phase_hit_ratio(
    machine: &MachineConfig,
    phase: &PhaseSpec,
    live: &HashMap<ObjectId, LiveObject>,
    live_by_site: &HashMap<SiteId, Vec<ObjectId>>,
) -> f64 {
    let cache_tier = machine.tiers_by_performance()[0];
    let demands = memory_mode_demands(phase, live, live_by_site);
    let splits = cache::split_streams(
        &machine.cache_cfg,
        machine.tier(cache_tier).capacity,
        machine.cacheline,
        &demands,
    );
    cache::aggregate_hit_ratio(&demands, &splits)
}

/// Solves the phase duration fixed point.
fn solve_phase(
    app: &AppModel,
    machine: &MachineConfig,
    mode: ExecMode,
    phase: &PhaseSpec,
    live: &HashMap<ObjectId, LiveObject>,
    live_by_site: &HashMap<SiteId, Vec<ObjectId>>,
) -> PhaseSolution {
    let _ = app;
    let n = machine.tiers.len();
    let (read_bytes, write_bytes) = phase_tier_volumes(machine, mode, phase, live, live_by_site);

    let phase_instr: f64 = phase.compute_instructions
        + phase.accesses.iter().map(|a| a.total_instructions()).sum::<f64>();
    let compute_time = phase_instr / machine.peak_ips();

    // Per-(stream, tier) miss counts with their MLP factors, for the
    // latency-bound term.
    struct LatTerm {
        tier: usize,
        misses: f64,
        mlp: f64,
        write: bool,
    }
    let mut terms: Vec<LatTerm> = Vec::new();
    match mode {
        ExecMode::AppDirect => {
            for spec in &phase.accesses {
                let Some(objs) = live_by_site.get(&spec.site) else { continue };
                if objs.is_empty() {
                    continue;
                }
                let per = 1.0 / objs.len() as f64;
                let mlp = machine.mlp_per_core * spec.pattern.mlp_factor();
                for oid in objs {
                    let tier = live[oid].tier.0 as usize;
                    terms.push(LatTerm {
                        tier,
                        misses: spec.load_misses() * per,
                        mlp,
                        write: false,
                    });
                    terms.push(LatTerm {
                        tier,
                        misses: spec.store_misses() * per,
                        mlp: mlp * STORE_MLP_BONUS,
                        write: true,
                    });
                }
            }
        }
        ExecMode::MemoryMode => {
            let cache_tier = machine.tiers_by_performance()[0].0 as usize;
            let backing = machine.largest_tier().0 as usize;
            let demands = memory_mode_demands(phase, live, live_by_site);
            let splits = cache::split_streams(
                &machine.cache_cfg,
                machine.tier(TierId(cache_tier as u8)).capacity,
                machine.cacheline,
                &demands,
            );
            let specs: Vec<_> = phase
                .accesses
                .iter()
                .filter(|s| live_by_site.get(&s.site).is_some_and(|v| !v.is_empty()))
                .collect();
            for (spec, split) in specs.iter().zip(&splits) {
                let mlp = machine.mlp_per_core * spec.pattern.mlp_factor();
                terms.push(LatTerm {
                    tier: cache_tier,
                    misses: split.dram_hits,
                    mlp,
                    write: false,
                });
                terms.push(LatTerm { tier: backing, misses: split.pmem_misses, mlp, write: false });
                terms.push(LatTerm {
                    tier: backing,
                    misses: split.writeback_bytes / machine.cacheline as f64,
                    mlp: mlp * STORE_MLP_BONUS,
                    write: true,
                });
            }
        }
    }

    // The bandwidth floor does not depend on the duration. A tier whose
    // demand cannot be served (zero peak bandwidth — rejected by
    // `MachineConfig::validate`, but reachable through hand-built configs)
    // yields an infinite floor; pin the solve to the compute time instead of
    // letting NaN/inf leak into the fixed point and poison the run totals.
    let bw_time = (0..n)
        .map(|i| machine.tiers[i].transfer_time(read_bytes[i], write_bytes[i]))
        .fold(0.0, f64::max);
    let bw_time = if bw_time.is_finite() { bw_time } else { 0.0 };

    let cores = machine.cores as f64;
    let mut duration = compute_time.max(bw_time).max(1e-12);
    if !duration.is_finite() {
        duration = 1e-12;
    }
    let mut read_lat = vec![0.0; n];
    for _ in 0..FIXED_POINT_ITERS {
        let mut write_lat = vec![0.0; n];
        for i in 0..n {
            let br = read_bytes[i] / duration;
            let bwr = write_bytes[i] / duration;
            read_lat[i] = machine.tiers[i].read_latency_ns(br, bwr);
            write_lat[i] = machine.tiers[i].write_latency_ns(br, bwr);
        }
        let lat_time: f64 = terms
            .iter()
            .map(|term| {
                let lat = if term.write { write_lat[term.tier] } else { read_lat[term.tier] };
                term.misses * lat * 1e-9 / (cores * term.mlp)
            })
            .sum();
        let mem_time = lat_time.max(bw_time);
        let next = compute_time.max(mem_time).max(1e-12);
        // A non-finite iterate (degenerate latency curve, zero-duration
        // phase dividing out) must not contaminate the relaxation.
        if next.is_finite() {
            duration = 0.5 * duration + 0.5 * next;
        }
    }

    let tier_read_bw: Vec<f64> = (0..n).map(|i| read_bytes[i] / duration).collect();
    let tier_write_bw: Vec<f64> = (0..n).map(|i| write_bytes[i] / duration).collect();
    PhaseSolution { duration, compute_time, tier_read_bw, tier_write_bw, tier_read_lat: read_lat }
}

/// Average loaded read latency seen by one stream's misses, for Table VII
/// function attribution.
#[allow(clippy::too_many_arguments)]
fn stream_read_latency(
    machine: &MachineConfig,
    mode: ExecMode,
    site: SiteId,
    live: &HashMap<ObjectId, LiveObject>,
    live_by_site: &HashMap<SiteId, Vec<ObjectId>>,
    solution: &PhaseSolution,
    cache_tier: TierId,
    backing_tier: TierId,
    phase: &PhaseSpec,
) -> f64 {
    let Some(objs) = live_by_site.get(&site) else { return 0.0 };
    if objs.is_empty() {
        return 0.0;
    }
    match mode {
        ExecMode::AppDirect => {
            let per = 1.0 / objs.len() as f64;
            objs.iter().map(|o| solution.tier_read_lat[live[o].tier.0 as usize] * per).sum()
        }
        ExecMode::MemoryMode => {
            // Weighted by the stream's cache split.
            let demands = memory_mode_demands(phase, live, live_by_site);
            let splits = cache::split_streams(
                &machine.cache_cfg,
                machine.tier(cache_tier).capacity,
                machine.cacheline,
                &demands,
            );
            // Find this stream's split by position among non-empty specs.
            let mut idx = 0;
            for spec in &phase.accesses {
                if live_by_site.get(&spec.site).is_none_or(|v| v.is_empty()) {
                    continue;
                }
                if spec.site == site {
                    let s = &splits[idx];
                    let total = s.dram_hits + s.pmem_misses;
                    if total <= 0.0 {
                        return solution.tier_read_lat[cache_tier.0 as usize];
                    }
                    return (s.dram_hits * solution.tier_read_lat[cache_tier.0 as usize]
                        + s.pmem_misses * solution.tier_read_lat[backing_tier.0 as usize])
                        / total;
                }
                idx += 1;
            }
            0.0
        }
    }
}

/// Per-object heat for reactive policies.
fn phase_object_heat(
    phase: &PhaseSpec,
    live: &HashMap<ObjectId, LiveObject>,
    live_by_site: &HashMap<SiteId, Vec<ObjectId>>,
) -> Vec<(ObjectId, SiteId, u64, TierId, f64)> {
    let mut heat: HashMap<ObjectId, f64> = HashMap::new();
    for spec in &phase.accesses {
        let Some(objs) = live_by_site.get(&spec.site) else { continue };
        if objs.is_empty() {
            continue;
        }
        let per = (spec.load_misses() + spec.store_misses()) / objs.len() as f64;
        for oid in objs {
            *heat.entry(*oid).or_insert(0.0) += per;
        }
    }
    let mut out: Vec<_> = live
        .iter()
        .map(|(oid, lo)| (*oid, lo.site, lo.size, lo.tier, heat.get(oid).copied().unwrap_or(0.0)))
        .collect();
    out.sort_by_key(|(oid, ..)| *oid);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{AccessPattern, AccessSpec, AllocOp, FreeOp};
    use crate::policy::FixedTier;
    use memtrace::{BinaryMapBuilder, CallStack, Frame, ModuleId};

    /// A single-site model with heavy streaming traffic.
    fn streaming_model(loads: f64) -> AppModel {
        let mut b = BinaryMapBuilder::new();
        b.add_module("a.out", 4096, 1024, vec!["main.c".into()]);
        AppModel {
            name: "stream".into(),
            ranks: 1,
            threads_per_rank: 1,
            input_desc: String::new(),
            sites: vec![(SiteId(0), CallStack::new(vec![Frame::new(ModuleId(0), 0x40)]))],
            binmap: b.build(),
            function_names: vec!["kernel".into()],
            phases: vec![PhaseSpec {
                label: Some("main".into()),
                compute_instructions: 1e9,
                allocs: vec![AllocOp { site: SiteId(0), size: 1 << 30, count: 1 }],
                frees: vec![FreeOp { site: SiteId(0), count: 1 }],
                accesses: vec![AccessSpec {
                    site: SiteId(0),
                    function: FuncId(0),
                    loads,
                    stores: loads * 0.1,
                    llc_miss_rate: 0.5,
                    store_l1d_miss_rate: 0.5,
                    pattern: AccessPattern::Sequential,
                    instructions: 0.0,
                    reuse_hint: 0.0,
                }],
            }],
        }
    }

    #[test]
    fn dram_beats_pmem_for_heavy_traffic() {
        let app = streaming_model(2e10);
        let m = MachineConfig::optane_pmem6();
        let dram = run(&app, &m, ExecMode::AppDirect, &mut FixedTier::new(TierId::DRAM));
        let pmem = run(&app, &m, ExecMode::AppDirect, &mut FixedTier::new(TierId::PMEM));
        assert!(
            pmem.total_time > dram.total_time * 1.2,
            "pmem {} vs dram {}",
            pmem.total_time,
            dram.total_time
        );
    }

    #[test]
    fn determinism() {
        let app = streaming_model(1e9);
        let m = MachineConfig::optane_pmem6();
        let a = run(&app, &m, ExecMode::AppDirect, &mut FixedTier::new(TierId::DRAM));
        let b = run(&app, &m, ExecMode::AppDirect, &mut FixedTier::new(TierId::DRAM));
        assert_eq!(a, b);
    }

    #[test]
    fn memory_mode_between_pure_dram_and_pure_pmem() {
        // Working set (1 GiB) fits in the 16 GiB DRAM cache, so memory mode
        // should be close to DRAM and far from PMem.
        let app = streaming_model(2e10);
        let m = MachineConfig::optane_pmem6();
        let dram = run(&app, &m, ExecMode::AppDirect, &mut FixedTier::new(TierId::DRAM));
        let pmem = run(&app, &m, ExecMode::AppDirect, &mut FixedTier::new(TierId::PMEM));
        let mm = run(&app, &m, ExecMode::MemoryMode, &mut FixedTier::new(TierId::PMEM));
        assert!(mm.total_time <= pmem.total_time * 1.01);
        // Splitting traffic over both controllers can make the cached run
        // slightly faster than all-DRAM, so only require the right ballpark.
        assert!(mm.total_time >= dram.total_time * 0.85);
        let hit = mm.dram_cache_hit_ratio();
        assert!(hit > 0.85, "small working set should mostly hit, hit={hit}");
    }

    #[test]
    fn zero_compute_zero_access_phase_stays_finite() {
        // Regression (satellite 1): an empty phase — no compute, no allocs,
        // no accesses — must not produce NaN/inf durations that poison the
        // run totals through the fixed-point solve.
        let mut app = streaming_model(1e9);
        app.phases.insert(0, PhaseSpec::default());
        app.phases.push(PhaseSpec::default());
        let m = MachineConfig::optane_pmem6();
        for mode in [ExecMode::AppDirect, ExecMode::MemoryMode] {
            let r = run(&app, &m, mode, &mut FixedTier::new(TierId::DRAM));
            assert!(r.total_time.is_finite() && r.total_time > 0.0, "total={}", r.total_time);
            for p in &r.phases {
                assert!(
                    p.duration.is_finite() && p.duration >= 0.0,
                    "phase {} duration {}",
                    p.index,
                    p.duration
                );
                for bw in p.tier_read_bw.iter().chain(&p.tier_write_bw) {
                    assert!(bw.is_finite(), "phase {} bandwidth {bw}", p.index);
                }
            }
        }
    }

    #[test]
    fn run_invocation_counter_advances() {
        let app = streaming_model(1e8);
        let m = MachineConfig::optane_pmem6();
        let before = run_invocations();
        run(&app, &m, ExecMode::AppDirect, &mut FixedTier::new(TierId::DRAM));
        assert!(run_invocations() > before);
    }

    #[test]
    fn object_records_capture_lifetime_and_traffic() {
        let app = streaming_model(1e9);
        let m = MachineConfig::optane_pmem6();
        let r = run(&app, &m, ExecMode::AppDirect, &mut FixedTier::new(TierId::DRAM));
        assert_eq!(r.objects.len(), 1);
        let o = &r.objects[0];
        assert_eq!(o.tier, TierId::DRAM);
        assert!(o.lifetime() > 0.0);
        assert!((o.load_misses - 5e8).abs() < 1.0);
        assert!(!o.free_time.is_nan());
    }

    #[test]
    fn fallback_when_preferred_tier_full() {
        // 2 GiB object into a 16 GiB DRAM, then 15 more: later ones spill.
        let mut app = streaming_model(1e8);
        app.phases[0].allocs[0].count = 17;
        app.phases[0].allocs[0].size = 1 << 30;
        app.phases[0].frees[0].count = 17;
        let m = MachineConfig::optane_pmem6();
        let r = run(
            &app,
            &m,
            ExecMode::AppDirect,
            &mut FixedTier::with_fallback(TierId::DRAM, TierId::PMEM),
        );
        assert!(r.fallback_allocs > 0);
        assert_eq!(r.oom_events, 0);
        let in_pmem = r.objects_in_tier(TierId::PMEM).len();
        assert!(in_pmem >= 1, "spilled objects live in pmem");
    }

    #[test]
    fn function_stats_present() {
        let app = streaming_model(1e9);
        let m = MachineConfig::optane_pmem6();
        let r = run(&app, &m, ExecMode::AppDirect, &mut FixedTier::new(TierId::DRAM));
        let f = r.function(FuncId(0)).unwrap();
        assert!(f.instructions > 0.0);
        assert!(f.ipc() > 0.0);
        assert!(f.avg_load_latency_ns() >= 90.0);
    }

    #[test]
    fn bandwidth_series_reported() {
        let app = streaming_model(2e10);
        let m = MachineConfig::optane_pmem6();
        let r = run(&app, &m, ExecMode::AppDirect, &mut FixedTier::new(TierId::PMEM));
        let peak = r.tier_peak_bw(TierId::PMEM);
        assert!(peak > 1e9, "heavy streaming should show bandwidth, peak={peak}");
        assert!(peak <= 32e9, "cannot exceed device peak by much, peak={peak}");
    }

    #[test]
    fn more_traffic_takes_longer() {
        let m = MachineConfig::optane_pmem6();
        let small =
            run(&streaming_model(1e9), &m, ExecMode::AppDirect, &mut FixedTier::new(TierId::PMEM));
        let large =
            run(&streaming_model(4e9), &m, ExecMode::AppDirect, &mut FixedTier::new(TierId::PMEM));
        assert!(large.total_time > small.total_time);
    }

    #[test]
    fn memory_bound_fraction_reflects_traffic() {
        let m = MachineConfig::optane_pmem6();
        let heavy =
            run(&streaming_model(5e10), &m, ExecMode::AppDirect, &mut FixedTier::new(TierId::PMEM));
        assert!(heavy.memory_bound_fraction() > 0.5);
    }
}
