//! Seeded arrival churn for fleet tenants.
//!
//! Arrival times are drawn from a splitmix64 stream keyed by `(seed, node,
//! canonical tenant index)`. The canonical index is the tenant's position
//! in the node's name-sorted resident list, *not* its insertion position,
//! so shuffling the input `Vec<TenantSpec>` cannot change anyone's arrival
//! time — the invariance the order-invariance proptests pin down. The same
//! seed therefore always produces the same churn schedule and the same
//! simulation tables, byte for byte.

use crate::stablehash::{Hasher, StableHash};

/// Churn configuration: when tenants show up.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnConfig {
    /// Seed for the arrival stream. Same seed ⇒ same schedule.
    pub seed: u64,
    /// Arrivals are spread uniformly over `[0, arrival_spread_s)` seconds.
    /// `0.0` makes every tenant arrive at t = 0 (no churn).
    pub arrival_spread_s: f64,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig { seed: 0xEC0, arrival_spread_s: 0.0 }
    }
}

impl StableHash for ChurnConfig {
    fn hash_into(&self, h: &mut Hasher) {
        let ChurnConfig { seed, arrival_spread_s } = self;
        h.tag_struct();
        seed.hash_into(h);
        arrival_spread_s.hash_into(h);
    }
}

/// splitmix64: full-avalanche mixer over a 64-bit counter.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Uniform `[0, 1)` draw keyed by `(seed, node, canonical index)`.
fn unit(seed: u64, node: u32, canonical_idx: u64) -> f64 {
    let mixed =
        splitmix64(seed ^ splitmix64(node as u64 ^ 0xA5A5).wrapping_add(canonical_idx << 1));
    // 53 high bits → an exact double in [0, 1).
    (mixed >> 11) as f64 / (1u64 << 53) as f64
}

impl ChurnConfig {
    /// Arrival time (seconds) of a node's `canonical_idx`-th tenant.
    pub fn arrival(&self, node: u32, canonical_idx: u64) -> f64 {
        if self.arrival_spread_s <= 0.0 {
            return 0.0;
        }
        unit(self.seed, node, canonical_idx) * self.arrival_spread_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        let c = ChurnConfig { seed: 7, arrival_spread_s: 10.0 };
        for node in 0..4 {
            for i in 0..8 {
                assert_eq!(c.arrival(node, i), c.arrival(node, i));
            }
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let a = ChurnConfig { seed: 1, arrival_spread_s: 10.0 };
        let b = ChurnConfig { seed: 2, arrival_spread_s: 10.0 };
        let diverged = (0..16).any(|i| a.arrival(0, i) != b.arrival(0, i));
        assert!(diverged);
    }

    #[test]
    fn zero_spread_means_no_churn() {
        let c = ChurnConfig { seed: 9, arrival_spread_s: 0.0 };
        assert_eq!(c.arrival(3, 5), 0.0);
    }

    #[test]
    fn arrivals_stay_in_range() {
        let c = ChurnConfig { seed: 42, arrival_spread_s: 30.0 };
        for node in 0..8 {
            for i in 0..32 {
                let t = c.arrival(node, i);
                assert!((0.0..30.0).contains(&t), "arrival {t} out of range");
            }
        }
    }
}
