//! Fleet-scale simulation: M nodes × K co-resident tenants contending for
//! one node's DRAM/PMem capacity and bandwidth.
//!
//! Each node runs an epoch-based event loop. Epoch boundaries are tenant
//! arrivals (seeded churn, [`churn::ChurnConfig`]) and tenant completions;
//! at every boundary a [`scheduler::SchedulerPolicy`] re-trades the fast
//! tier's capacity across the residents in integer quanta. A tenant's
//! progress inside an epoch comes from a standalone engine run on its
//! *slice machine* — the node with the fast tier shrunk to the tenant's
//! grant and all bandwidths/cores scaled by its share — so every
//! (app, grant, share) cell is one deterministic, cacheable engine run.
//! Grant shrinks charge a bounded *migration storm* (PR 3's cost model:
//! bytes / min(src read bw, dst write bw) + fixed overhead) as stall time
//! before the tenant makes progress again.
//!
//! Two exact-identity properties anchor correctness, pinned by
//! `tests/fleet.rs`:
//!
//! * **1×1 differential**: a sole resident takes the whole node — its
//!   slice is `machine.clone()` and its policy is constructed exactly as
//!   [`crate::runner::RunCache::run_fixed`] would, so the fleet-cell
//!   `RunResult` is byte-identical to the standalone run.
//! * **Jobs/order invariance**: nodes are independent and `parallel_map`
//!   restores submission order; tenants are canonicalized by name and
//!   churn is keyed by canonical index, so `--jobs` and insertion order
//!   are unobservable in the output.
//!
//! Cache isolation: every fleet engine run is keyed with a
//! [`FleetCellKey`] (`RunKey::with_fleet`), so warmed single-node cache
//! entries never satisfy a fleet lookup and differing colocation mixes
//! never alias — even when the slice machine happens to coincide.

pub mod churn;
pub mod scheduler;

pub use churn::ChurnConfig;
pub use scheduler::{Demand, SchedulerPolicy};

use crate::counters::RunResult;
use crate::engine::ExecMode;
use crate::machine::MachineConfig;
use crate::model::AppModel;
use crate::policy::{FixedTier, PlacementPolicy};
use crate::runner::{parallel_map, FleetCellKey, RunCache, RunKey};
use crate::stablehash::{stable_hash, Hasher, StableHash};
use ecohmem_obs::Json;
use memtrace::TierId;
use std::sync::Arc;

/// One workload instance placed on a fleet node.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Unique tenant name (fleet-wide); also the canonical sort key.
    pub name: String,
    /// The workload model the tenant runs.
    pub app: AppModel,
    /// Node the tenant is placed on (`0..FleetConfig::nodes`).
    pub node: u32,
    /// Scheduling priority (higher wins; weight = priority + 1).
    pub priority: u8,
    /// Work to complete, in units of one full standalone run of `app`.
    pub work: f64,
}

impl TenantSpec {
    /// A tenant running one full pass of `app` on `node`.
    pub fn new(name: impl Into<String>, app: AppModel, node: u32) -> Self {
        TenantSpec { name: name.into(), app, node, priority: 0, work: 1.0 }
    }
}

impl StableHash for TenantSpec {
    fn hash_into(&self, h: &mut Hasher) {
        let TenantSpec { name, app, node, priority, work } = self;
        h.tag_struct();
        name.hash_into(h);
        app.hash_into(h);
        node.hash_into(h);
        priority.hash_into(h);
        work.hash_into(h);
    }
}

/// Fleet-wide configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetConfig {
    /// Per-node machine (every node is identical hardware).
    pub machine: MachineConfig,
    /// Number of nodes.
    pub nodes: u32,
    /// How fast-tier capacity is traded across co-residents.
    pub scheduler: SchedulerPolicy,
    /// Seeded arrival churn.
    pub churn: ChurnConfig,
    /// Grant granularity in bytes.
    pub quantum_bytes: u64,
    /// Per-storm demotion cap in bytes — storms are *bounded*: a shrink
    /// never moves more than this at one epoch boundary.
    pub storm_bytes_cap: u64,
    /// Fixed per-storm overhead in seconds (the `move_pages`-style remap
    /// cost on top of the bytes/bandwidth transfer term).
    pub migration_overhead_s: f64,
}

impl FleetConfig {
    /// Defaults: 256 MiB quanta, 2 GiB storm cap, 1 ms storm overhead.
    pub fn new(machine: MachineConfig, nodes: u32, scheduler: SchedulerPolicy) -> Self {
        FleetConfig {
            machine,
            nodes,
            scheduler,
            churn: ChurnConfig::default(),
            quantum_bytes: 256 << 20,
            storm_bytes_cap: 2 << 30,
            migration_overhead_s: 1e-3,
        }
    }

    /// Sanity checks; [`simulate_with`] calls this for you.
    pub fn validate(&self) -> Result<(), String> {
        self.machine.validate()?;
        if self.nodes == 0 {
            return Err("fleet has no nodes".into());
        }
        if self.quantum_bytes == 0 {
            return Err("quantum_bytes must be positive".into());
        }
        let fast = self.machine.tiers_by_performance()[0];
        if self.quantum_bytes > self.machine.tier(fast).capacity {
            return Err("quantum_bytes exceeds the fast tier".into());
        }
        if !(self.migration_overhead_s >= 0.0 && self.migration_overhead_s.is_finite()) {
            return Err("migration_overhead_s must be finite and non-negative".into());
        }
        Ok(())
    }
}

impl StableHash for FleetConfig {
    fn hash_into(&self, h: &mut Hasher) {
        // Exhaustive destructuring: adding a fleet config field fails to
        // compile here until it joins the hash — and through it, every
        // fleet RunKey (the cache-isolation regression test's contract).
        let FleetConfig {
            machine,
            nodes,
            scheduler,
            churn,
            quantum_bytes,
            storm_bytes_cap,
            migration_overhead_s,
        } = self;
        h.tag_struct();
        machine.hash_into(h);
        nodes.hash_into(h);
        scheduler.hash_into(h);
        churn.hash_into(h);
        quantum_bytes.hash_into(h);
        storm_bytes_cap.hash_into(h);
        migration_overhead_s.hash_into(h);
    }
}

/// One scheduling interval of one tenant: its grant, its bandwidth share,
/// and the (cached) engine run that models its execution rate.
#[derive(Debug, Clone)]
pub struct Segment {
    /// Epoch start time, seconds.
    pub start: f64,
    /// Epoch duration, seconds.
    pub duration: f64,
    /// Fast-tier grant, bytes.
    pub grant: u64,
    /// Bandwidth/core share of the node (grant / Σ grants).
    pub share: f64,
    /// The slice-machine engine run backing this segment.
    pub run: Arc<RunResult>,
}

/// Full lifetime of one tenant in the simulation.
#[derive(Debug, Clone)]
pub struct TenantOutcome {
    /// Tenant name.
    pub name: String,
    /// Workload (app) name.
    pub workload: String,
    /// Node the tenant ran on.
    pub node: u32,
    /// Scheduling priority.
    pub priority: u8,
    /// Arrival time, seconds.
    pub arrival: f64,
    /// Completion time, seconds.
    pub completion: f64,
    /// Migration storms charged to this tenant.
    pub storms: u64,
    /// Total stall seconds spent in storms.
    pub storm_seconds: f64,
    /// Scheduling segments, in time order.
    pub segments: Vec<Segment>,
}

/// Per-epoch node statistics.
#[derive(Debug, Clone)]
pub struct EpochStats {
    /// Epoch start time, seconds.
    pub start: f64,
    /// Epoch duration, seconds.
    pub duration: f64,
    /// Resident tenant names, canonical order.
    pub residents: Vec<String>,
    /// Fast-tier grants in bytes, aligned with `residents`.
    pub grants: Vec<u64>,
    /// Capacity pressure: Σ resident high-water marks / fast capacity.
    pub pressure: f64,
    /// Migration storms triggered at this epoch's start.
    pub storms: u64,
    /// Bytes demoted by those storms.
    pub storm_bytes: u64,
}

/// One node's simulation output.
#[derive(Debug, Clone)]
pub struct NodeResult {
    /// Node id.
    pub node: u32,
    /// Epochs in time order.
    pub epochs: Vec<EpochStats>,
    /// Tenant outcomes in canonical (name) order.
    pub tenants: Vec<TenantOutcome>,
}

/// The whole fleet's simulation output.
#[derive(Debug, Clone)]
pub struct FleetResult {
    /// Scheduler policy name.
    pub scheduler: String,
    /// Per-node results, node order.
    pub nodes: Vec<NodeResult>,
}

impl FleetResult {
    /// Latest tenant completion time, seconds (0 for an empty fleet).
    pub fn makespan(&self) -> f64 {
        self.nodes.iter().flat_map(|n| n.tenants.iter()).map(|t| t.completion).fold(0.0, f64::max)
    }

    /// Total scheduling epochs across nodes.
    pub fn total_epochs(&self) -> u64 {
        self.nodes.iter().map(|n| n.epochs.len() as u64).sum()
    }

    /// Total per-tenant grant decisions (Σ residents over epochs).
    pub fn scheduler_decisions(&self) -> u64 {
        self.nodes.iter().flat_map(|n| n.epochs.iter()).map(|e| e.residents.len() as u64).sum()
    }

    /// Total migration storms.
    pub fn total_storms(&self) -> u64 {
        self.nodes.iter().flat_map(|n| n.epochs.iter()).map(|e| e.storms).sum()
    }

    /// Total bytes demoted by storms.
    pub fn total_storm_bytes(&self) -> u64 {
        self.nodes.iter().flat_map(|n| n.epochs.iter()).map(|e| e.storm_bytes).sum()
    }

    /// Number of tenants that ran to completion.
    pub fn completed_tenants(&self) -> u64 {
        self.nodes.iter().map(|n| n.tenants.len() as u64).sum()
    }

    /// Peak capacity pressure across all node-epochs.
    pub fn peak_pressure(&self) -> f64 {
        self.nodes.iter().flat_map(|n| n.epochs.iter()).map(|e| e.pressure).fold(0.0, f64::max)
    }

    /// Deterministic JSON rendering of the full result (the golden
    /// snapshot and the invariance proptests compare this string).
    /// Engine `RunResult`s are summarized by their slice run time, not
    /// dumped wholesale.
    pub fn to_json(&self) -> Json {
        let nodes = self
            .nodes
            .iter()
            .map(|n| {
                let epochs = n
                    .epochs
                    .iter()
                    .map(|e| {
                        Json::obj(vec![
                            ("start", Json::f64(e.start)),
                            ("duration", Json::f64(e.duration)),
                            (
                                "residents",
                                Json::Arr(
                                    e.residents.iter().map(|r| Json::str(r.clone())).collect(),
                                ),
                            ),
                            ("grants", Json::Arr(e.grants.iter().map(|g| Json::U64(*g)).collect())),
                            ("pressure", Json::f64(e.pressure)),
                            ("storms", Json::U64(e.storms)),
                            ("storm_bytes", Json::U64(e.storm_bytes)),
                        ])
                    })
                    .collect();
                let tenants = n
                    .tenants
                    .iter()
                    .map(|t| {
                        let segments = t
                            .segments
                            .iter()
                            .map(|s| {
                                Json::obj(vec![
                                    ("start", Json::f64(s.start)),
                                    ("duration", Json::f64(s.duration)),
                                    ("grant", Json::U64(s.grant)),
                                    ("share", Json::f64(s.share)),
                                    ("slice_run_time", Json::f64(s.run.total_time)),
                                ])
                            })
                            .collect();
                        Json::obj(vec![
                            ("name", Json::str(t.name.clone())),
                            ("workload", Json::str(t.workload.clone())),
                            ("node", Json::U64(t.node as u64)),
                            ("priority", Json::U64(t.priority as u64)),
                            ("arrival", Json::f64(t.arrival)),
                            ("completion", Json::f64(t.completion)),
                            ("storms", Json::U64(t.storms)),
                            ("storm_seconds", Json::f64(t.storm_seconds)),
                            ("segments", Json::Arr(segments)),
                        ])
                    })
                    .collect();
                Json::obj(vec![
                    ("node", Json::U64(n.node as u64)),
                    ("epochs", Json::Arr(epochs)),
                    ("tenants", Json::Arr(tenants)),
                ])
            })
            .collect();
        Json::obj(vec![
            ("schema", Json::str("ecohmem.fleet/1")),
            ("scheduler", Json::str(self.scheduler.clone())),
            ("makespan", Json::f64(self.makespan())),
            ("epochs", Json::U64(self.total_epochs())),
            ("scheduler_decisions", Json::U64(self.scheduler_decisions())),
            ("migration_storms", Json::U64(self.total_storms())),
            ("storm_bytes", Json::U64(self.total_storm_bytes())),
            ("peak_pressure", Json::f64(self.peak_pressure())),
            ("completed", Json::U64(self.completed_tenants())),
            ("nodes", Json::Arr(nodes)),
        ])
    }
}

/// The tenant's slice of the node: fast tier shrunk to its grant, every
/// tier's bandwidth and the core count scaled by its share. A sole
/// resident (`share == 1`, full-capacity grant) gets `machine.clone()`
/// verbatim — the bit-identity the 1×1 differential test relies on.
fn slice_machine(m: &MachineConfig, fast: TierId, grant: u64, share: f64) -> MachineConfig {
    let mut s = m.clone();
    if share >= 1.0 && grant == m.tier(fast).capacity {
        return s;
    }
    s.tiers[fast.0 as usize].capacity = grant;
    for t in &mut s.tiers {
        t.peak_read_bw *= share;
        t.peak_write_bw *= share;
    }
    s.cores = ((s.cores as f64 * share).round() as u32).max(1);
    s
}

/// Mirrors [`RunCache::run_fixed`]'s tag/policy construction so a fleet
/// cell's `RunResult.policy` matches the standalone run byte for byte.
fn fixed_tag(fast: TierId, backing: TierId) -> String {
    if backing != fast {
        format!("fixed:{fast}>{backing}")
    } else {
        format!("fixed:{fast}")
    }
}

fn fixed_policy(fast: TierId, backing: TierId) -> Box<dyn PlacementPolicy> {
    if backing != fast {
        Box::new(FixedTier::with_fallback(fast, backing))
    } else {
        Box::new(FixedTier::new(fast))
    }
}

/// Per-tenant bookkeeping inside one node's event loop.
struct TenantState<'a> {
    spec: &'a TenantSpec,
    app_hash: u64,
    hwm: u64,
    density: f64,
    arrival: f64,
    remaining: f64,
    storm_debt: f64,
    prev_grant: Option<u64>,
    used_fast: u64,
    done: bool,
    completion: f64,
    storms: u64,
    storm_seconds: f64,
    segments: Vec<Segment>,
}

/// Completion tolerance on the remaining-work fraction: epoch boundaries
/// are computed from the same f64 expression that advances progress, so
/// residual error is rounding noise many orders below this.
const WORK_EPS: f64 = 1e-9;

/// Static miss density per byte — the paper-greedy ranking signal:
/// total LLC load misses + L1D store misses over the model, per byte of
/// high-water mark.
fn miss_density(app: &AppModel, hwm: u64) -> f64 {
    let misses: f64 = app
        .phases
        .iter()
        .flat_map(|p| p.accesses.iter())
        .map(|a| a.load_misses() + a.store_misses())
        .sum();
    misses / hwm.max(1) as f64
}

fn simulate_node(
    cache: &RunCache,
    cfg: &FleetConfig,
    cfg_hash: u64,
    node: u32,
    tenants: &[&TenantSpec],
) -> NodeResult {
    let _span = ecohmem_obs::span("fleet.node");
    let fast = cfg.machine.tiers_by_performance()[0];
    let backing = cfg.machine.largest_tier();
    let cap = cfg.machine.tier(fast).capacity;
    let quantum = cfg.quantum_bytes;
    let total_quanta = cap / quantum;
    let tag = fixed_tag(fast, backing);

    // Canonical order: by name. Churn keys off this index, so insertion
    // order of the input tenant list is unobservable.
    let mut order: Vec<usize> = (0..tenants.len()).collect();
    order.sort_by(|a, b| tenants[*a].name.cmp(&tenants[*b].name));
    let mut states: Vec<TenantState<'_>> = order
        .iter()
        .enumerate()
        .map(|(canonical_idx, &i)| {
            let spec = tenants[i];
            let hwm = spec.app.high_water_mark().max(1);
            TenantState {
                spec,
                app_hash: stable_hash(&spec.app),
                hwm,
                density: miss_density(&spec.app, hwm),
                arrival: cfg.churn.arrival(node, canonical_idx as u64),
                remaining: spec.work,
                storm_debt: 0.0,
                prev_grant: None,
                used_fast: 0,
                done: false,
                completion: 0.0,
                storms: 0,
                storm_seconds: 0.0,
                segments: Vec::new(),
            }
        })
        .collect();

    let mut now = 0.0f64;
    let mut epochs = Vec::new();
    loop {
        let resident: Vec<usize> =
            (0..states.len()).filter(|&i| !states[i].done && states[i].arrival <= now).collect();
        let next_arrival = states
            .iter()
            .filter(|t| !t.done && t.arrival > now)
            .map(|t| t.arrival)
            .fold(f64::INFINITY, f64::min);
        if resident.is_empty() {
            if next_arrival.is_finite() {
                now = next_arrival;
                continue;
            }
            break;
        }

        // Grants: a sole resident takes the whole node byte-for-byte;
        // contended nodes go through the scheduler in integer quanta.
        let grants_bytes: Vec<u64> = if resident.len() == 1 {
            vec![cap]
        } else {
            let demands: Vec<Demand> = resident
                .iter()
                .map(|&i| Demand {
                    quanta: states[i].hwm.div_ceil(quantum).max(1),
                    weight: states[i].spec.priority as u64 + 1,
                    density: states[i].density,
                })
                .collect();
            scheduler::grants(cfg.scheduler, &demands, total_quanta)
                .into_iter()
                .map(|q| q * quantum)
                .collect()
        };
        let total_grant: u64 = grants_bytes.iter().sum();
        let shares: Vec<f64> =
            grants_bytes.iter().map(|&g| g as f64 / total_grant as f64).collect();

        // Colocation identity of this epoch's cell, canonical order.
        let mix: Vec<(u64, u64, u64)> = resident
            .iter()
            .zip(grants_bytes.iter().zip(shares.iter()))
            .map(|(&i, (&g, &s))| (states[i].app_hash, g, s.to_bits()))
            .collect();
        let cell = FleetCellKey { colocation: stable_hash(&mix), scheduler: cfg_hash };

        // Slices, then storms (storm cost uses the *new* slice bandwidth:
        // the demotion happens under the shrunken share).
        let slices: Vec<MachineConfig> = resident
            .iter()
            .zip(grants_bytes.iter().zip(shares.iter()))
            .map(|(_, (&g, &s))| slice_machine(&cfg.machine, fast, g, s))
            .collect();
        let mut epoch_storms = 0u64;
        let mut epoch_storm_bytes = 0u64;
        if backing != fast {
            for (k, &i) in resident.iter().enumerate() {
                let st = &mut states[i];
                let grant = grants_bytes[k];
                if let Some(prev) = st.prev_grant {
                    if grant < prev && st.used_fast > grant {
                        let bytes = (st.used_fast - grant).min(cfg.storm_bytes_cap);
                        let bw = slices[k]
                            .tier(fast)
                            .peak_read_bw
                            .min(slices[k].tier(backing).peak_write_bw);
                        let t = bytes as f64 / bw + cfg.migration_overhead_s;
                        st.storm_debt += t;
                        st.storm_seconds += t;
                        st.storms += 1;
                        epoch_storms += 1;
                        epoch_storm_bytes += bytes;
                    }
                }
            }
        }

        // One cached engine run per resident cell.
        let runs: Vec<Arc<RunResult>> = resident
            .iter()
            .zip(slices.iter())
            .map(|(&i, slice)| {
                let key = RunKey::new(&states[i].spec.app, slice, ExecMode::AppDirect, tag.clone())
                    .with_fleet(cell);
                cache.run_with(key, &states[i].spec.app, slice, ExecMode::AppDirect, || {
                    fixed_policy(fast, backing)
                })
            })
            .collect();

        // Epoch end: the next arrival or the earliest resident finish.
        let mut t_next = next_arrival;
        for (k, &i) in resident.iter().enumerate() {
            let st = &states[i];
            let fin = now + st.storm_debt + st.remaining * runs[k].total_time.max(0.0);
            t_next = t_next.min(fin);
        }
        let dt = (t_next - now).max(0.0);

        // Advance: pay storm debt first, then make progress.
        let pressure = resident.iter().map(|&i| states[i].hwm as f64).sum::<f64>() / cap as f64;
        for (k, &i) in resident.iter().enumerate() {
            let st = &mut states[i];
            let pay = st.storm_debt.min(dt);
            st.storm_debt -= pay;
            let t_run = runs[k].total_time;
            if t_run > 0.0 {
                st.remaining -= (dt - pay) / t_run;
            } else {
                st.remaining = 0.0;
            }
            st.used_fast = runs[k]
                .tier_peak_bytes
                .get(fast.0 as usize)
                .copied()
                .unwrap_or(0)
                .min(grants_bytes[k]);
            st.prev_grant = Some(grants_bytes[k]);
            st.segments.push(Segment {
                start: now,
                duration: dt,
                grant: grants_bytes[k],
                share: shares[k],
                run: runs[k].clone(),
            });
            if st.remaining <= WORK_EPS && st.storm_debt <= WORK_EPS {
                st.done = true;
                st.completion = t_next;
            }
        }

        epochs.push(EpochStats {
            start: now,
            duration: dt,
            residents: resident.iter().map(|&i| states[i].spec.name.clone()).collect(),
            grants: grants_bytes,
            pressure,
            storms: epoch_storms,
            storm_bytes: epoch_storm_bytes,
        });
        now = t_next;
    }

    NodeResult {
        node,
        epochs,
        tenants: states
            .into_iter()
            .map(|st| TenantOutcome {
                name: st.spec.name.clone(),
                workload: st.spec.app.name.clone(),
                node,
                priority: st.spec.priority,
                arrival: st.arrival,
                completion: st.completion,
                storms: st.storms,
                storm_seconds: st.storm_seconds,
                segments: st.segments,
            })
            .collect(),
    }
}

/// Simulates the fleet on an explicit cache — tests use private caches to
/// control hit/miss accounting; everything else goes through [`simulate`].
pub fn simulate_with(
    cache: &RunCache,
    cfg: &FleetConfig,
    tenants: &[TenantSpec],
    jobs: usize,
) -> Result<FleetResult, String> {
    let _span = ecohmem_obs::span("fleet.simulate");
    cfg.validate()?;
    let fast = cfg.machine.tiers_by_performance()[0];
    let total_quanta = cfg.machine.tier(fast).capacity / cfg.quantum_bytes;
    let mut seen = std::collections::HashSet::new();
    let mut per_node = vec![0u64; cfg.nodes as usize];
    for t in tenants {
        if !seen.insert(t.name.as_str()) {
            return Err(format!("duplicate tenant name {:?}", t.name));
        }
        if t.node >= cfg.nodes {
            return Err(format!("tenant {:?} on node {} of {}", t.name, t.node, cfg.nodes));
        }
        if !(t.work > 0.0 && t.work.is_finite()) {
            return Err(format!("tenant {:?} has invalid work {}", t.name, t.work));
        }
        t.app.validate().map_err(|e| format!("tenant {:?}: {e}", t.name))?;
        per_node[t.node as usize] += 1;
    }
    if let Some(n) = per_node.iter().position(|&k| k > total_quanta.max(1)) {
        return Err(format!(
            "node {n} hosts {} tenants but the fast tier only holds {} quanta",
            per_node[n],
            total_quanta.max(1)
        ));
    }

    let cfg_hash = stable_hash(cfg);
    let node_ids: Vec<u32> = (0..cfg.nodes).collect();
    let nodes = parallel_map(node_ids, jobs, |node| {
        let mine: Vec<&TenantSpec> = tenants.iter().filter(|t| t.node == node).collect();
        simulate_node(cache, cfg, cfg_hash, node, &mine)
    });
    let result = FleetResult { scheduler: cfg.scheduler.name().to_string(), nodes };

    // Counters in a single post-pass: parallel workers never touch the
    // global registry, so per-test obs snapshots stay race-free.
    ecohmem_obs::count("fleet.scheduler.epochs", result.total_epochs());
    ecohmem_obs::count("fleet.scheduler.decisions", result.scheduler_decisions());
    ecohmem_obs::count("fleet.migration_storms", result.total_storms());
    ecohmem_obs::count("fleet.storm_bytes", result.total_storm_bytes());
    ecohmem_obs::count("fleet.tenants.completed", result.completed_tenants());
    ecohmem_obs::gauge_raise("fleet.node.pressure", result.peak_pressure());
    Ok(result)
}

/// Simulates the fleet on the process-global [`crate::runner::global_cache`].
pub fn simulate(
    cfg: &FleetConfig,
    tenants: &[TenantSpec],
    jobs: usize,
) -> Result<FleetResult, String> {
    simulate_with(crate::runner::global_cache(), cfg, tenants, jobs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{AccessPattern, AccessSpec, AllocOp, FreeOp, PhaseSpec};
    use memtrace::binmap::BinaryMapBuilder;
    use memtrace::{CallStack, Frame, FuncId, ModuleId, SiteId};

    fn tiny_app(name: &str, bytes: u64, loads: f64) -> AppModel {
        let mut b = BinaryMapBuilder::new();
        b.add_module("a.out", 4096, 1024, vec!["main.c".into()]);
        AppModel {
            name: name.into(),
            ranks: 1,
            threads_per_rank: 1,
            input_desc: String::new(),
            sites: vec![(SiteId(0), CallStack::new(vec![Frame::new(ModuleId(0), 0x40)]))],
            binmap: b.build(),
            function_names: vec!["kernel".into()],
            phases: vec![PhaseSpec {
                label: Some("main".into()),
                compute_instructions: 1e9,
                allocs: vec![AllocOp { site: SiteId(0), size: bytes, count: 1 }],
                frees: vec![FreeOp { site: SiteId(0), count: 1 }],
                accesses: vec![AccessSpec {
                    site: SiteId(0),
                    function: FuncId(0),
                    loads,
                    stores: loads * 0.1,
                    llc_miss_rate: 0.5,
                    store_l1d_miss_rate: 0.5,
                    pattern: AccessPattern::Sequential,
                    instructions: 0.0,
                    reuse_hint: 0.0,
                }],
            }],
        }
    }

    fn base_cfg(scheduler: SchedulerPolicy, nodes: u32) -> FleetConfig {
        FleetConfig::new(MachineConfig::optane_pmem6(), nodes, scheduler)
    }

    #[test]
    fn sole_resident_slice_is_the_whole_machine() {
        let m = MachineConfig::optane_pmem6();
        let fast = m.tiers_by_performance()[0];
        let s = slice_machine(&m, fast, m.tier(fast).capacity, 1.0);
        assert_eq!(s, m);
        assert_eq!(stable_hash(&s), stable_hash(&m));
    }

    #[test]
    fn sliced_machine_scales_capacity_bandwidth_and_cores() {
        let m = MachineConfig::optane_pmem6();
        let fast = m.tiers_by_performance()[0];
        let s = slice_machine(&m, fast, 4 << 30, 0.5);
        assert_eq!(s.tiers[fast.0 as usize].capacity, 4 << 30);
        assert!((s.tiers[0].peak_read_bw - m.tiers[0].peak_read_bw * 0.5).abs() < 1.0);
        assert_eq!(s.cores, 12);
        s.validate().unwrap();
    }

    #[test]
    fn single_tenant_completes_in_one_standalone_run() {
        let cfg = base_cfg(SchedulerPolicy::Priority, 1);
        let app = tiny_app("solo", 1 << 30, 1e10);
        let cache = RunCache::new();
        let r = simulate_with(&cache, &cfg, &[TenantSpec::new("solo", app.clone(), 0)], 1).unwrap();
        assert_eq!(r.completed_tenants(), 1);
        let t = &r.nodes[0].tenants[0];
        assert_eq!(t.segments.len(), 1);
        assert!((t.completion - t.segments[0].run.total_time).abs() < 1e-9);
        assert_eq!(r.total_storms(), 0);
    }

    #[test]
    fn contended_node_splits_capacity_and_slows_everyone() {
        let mut cfg = base_cfg(SchedulerPolicy::ProportionalShare, 1);
        cfg.quantum_bytes = 1 << 30;
        let a = tiny_app("a", 6 << 30, 2e10);
        let b = tiny_app("b", 6 << 30, 2e10);
        let cache = RunCache::new();
        let solo = simulate_with(&cache, &cfg, &[TenantSpec::new("a1", a.clone(), 0)], 1).unwrap();
        let duo = simulate_with(
            &cache,
            &cfg,
            &[TenantSpec::new("a1", a.clone(), 0), TenantSpec::new("b1", b.clone(), 0)],
            1,
        )
        .unwrap();
        assert_eq!(duo.completed_tenants(), 2);
        assert!(duo.makespan() > solo.makespan());
        let e = &duo.nodes[0].epochs[0];
        assert_eq!(e.grants.iter().sum::<u64>() <= cfg.machine.tier(TierId::DRAM).capacity, true);
        assert_eq!(e.residents, vec!["a1".to_string(), "b1".to_string()]);
    }

    #[test]
    fn churn_spreads_arrivals_and_departures_create_epochs() {
        let mut cfg = base_cfg(SchedulerPolicy::Priority, 1);
        cfg.churn = ChurnConfig { seed: 3, arrival_spread_s: 5.0 };
        cfg.quantum_bytes = 1 << 30;
        let tenants: Vec<TenantSpec> = (0..3)
            .map(|i| TenantSpec::new(format!("t{i}"), tiny_app("w", 4 << 30, 1e10), 0))
            .collect();
        let cache = RunCache::new();
        let r = simulate_with(&cache, &cfg, &tenants, 1).unwrap();
        assert_eq!(r.completed_tenants(), 3);
        assert!(r.total_epochs() >= 3, "arrivals + departures must bound epochs");
        // Completion order respects that everyone finishes after arriving.
        for t in &r.nodes[0].tenants {
            assert!(t.completion > t.arrival);
        }
    }

    #[test]
    fn shrinking_grants_trigger_bounded_storms() {
        let mut cfg = base_cfg(SchedulerPolicy::Priority, 1);
        cfg.quantum_bytes = 1 << 30;
        cfg.churn = ChurnConfig { seed: 1, arrival_spread_s: 2.0 };
        cfg.storm_bytes_cap = 1 << 30;
        // Low-priority early tenant wants lots of DRAM; a high-priority
        // arrival forces its grant down → storm.
        let mut hog = TenantSpec::new("a-hog", tiny_app("hog", 14 << 30, 4e10), 0);
        hog.priority = 0;
        let mut vip = TenantSpec::new("b-vip", tiny_app("vip", 14 << 30, 4e10), 0);
        vip.priority = 9;
        let cache = RunCache::new();
        let r = simulate_with(&cache, &cfg, &[hog, vip], 1).unwrap();
        assert!(r.total_storms() >= 1, "grant shrink must charge a storm");
        assert!(r.total_storm_bytes() <= cfg.storm_bytes_cap * r.total_storms());
        assert!(r.peak_pressure() > 1.0, "two 14 GiB tenants on 16 GiB DRAM");
    }

    #[test]
    fn validation_rejects_bad_fleets() {
        let cfg = base_cfg(SchedulerPolicy::Priority, 1);
        let app = tiny_app("x", 1 << 20, 1e8);
        let cache = RunCache::new();
        let dup = vec![TenantSpec::new("t", app.clone(), 0), TenantSpec::new("t", app.clone(), 0)];
        assert!(simulate_with(&cache, &cfg, &dup, 1).is_err());
        let off = vec![TenantSpec::new("t", app.clone(), 5)];
        assert!(simulate_with(&cache, &cfg, &off, 1).is_err());
        let mut lazy = TenantSpec::new("t", app.clone(), 0);
        lazy.work = 0.0;
        assert!(simulate_with(&cache, &cfg, &[lazy], 1).is_err());
        let mut bad = base_cfg(SchedulerPolicy::Priority, 0);
        bad.nodes = 0;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn fleet_config_hash_covers_every_field() {
        let a = base_cfg(SchedulerPolicy::Priority, 4);
        let mut b = a.clone();
        assert_eq!(stable_hash(&a), stable_hash(&b));
        b.quantum_bytes += 1;
        assert_ne!(stable_hash(&a), stable_hash(&b));
        let mut c = a.clone();
        c.scheduler = SchedulerPolicy::PaperGreedy;
        assert_ne!(stable_hash(&a), stable_hash(&c));
        let mut d = a.clone();
        d.churn.seed += 1;
        assert_ne!(stable_hash(&a), stable_hash(&d));
    }

    #[test]
    fn result_json_is_deterministic() {
        let mut cfg = base_cfg(SchedulerPolicy::PaperGreedy, 2);
        cfg.quantum_bytes = 1 << 30;
        cfg.churn = ChurnConfig { seed: 11, arrival_spread_s: 3.0 };
        let tenants: Vec<TenantSpec> = (0..4)
            .map(|i| TenantSpec::new(format!("t{i}"), tiny_app("w", 3 << 30, 5e9), i % 2))
            .collect();
        let r1 = simulate_with(&RunCache::new(), &cfg, &tenants, 1).unwrap();
        let r2 = simulate_with(&RunCache::new(), &cfg, &tenants, 2).unwrap();
        assert_eq!(
            r1.to_json().to_string_pretty(),
            r2.to_json().to_string_pretty(),
            "jobs must be unobservable"
        );
    }
}
