//! Fleet schedulers: who gets fast-tier bytes when everyone wants them.
//!
//! All three policies work in integer *quanta* (`quantum_bytes`-sized
//! units) so grant arithmetic is exact and deterministic — no f64
//! apportioning that could round differently across platforms. Every
//! resident is guaranteed one quantum (a zero-capacity fast tier would not
//! validate as a machine), demands are capped at the tenant's high-water
//! mark, and leftovers stay unassigned — headroom for future arrivals.

use crate::stablehash::{Hasher, StableHash};

/// How the fleet scheduler trades fast-tier capacity across co-resident
/// tenants on a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedulerPolicy {
    /// Strict priority: highest priority first takes its full demand.
    Priority,
    /// Weighted proportional share (weight = priority + 1), integer
    /// largest-remainder apportioning with demand caps.
    ProportionalShare,
    /// The paper's greedy spirit at fleet scope: rank tenants by static
    /// miss density per byte (total LLC/L1D misses ÷ high-water mark) and
    /// satisfy the densest first — DRAM goes where it saves the most
    /// stalls per byte, mirroring the object-level knapsack.
    PaperGreedy,
}

impl SchedulerPolicy {
    /// Stable lowercase name used in tags, tables and CLI flags.
    pub fn name(&self) -> &'static str {
        match self {
            SchedulerPolicy::Priority => "priority",
            SchedulerPolicy::ProportionalShare => "proportional-share",
            SchedulerPolicy::PaperGreedy => "paper-greedy",
        }
    }

    /// Parses a CLI spelling of a policy name.
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "priority" => Some(SchedulerPolicy::Priority),
            "proportional-share" | "proportional" | "share" => {
                Some(SchedulerPolicy::ProportionalShare)
            }
            "paper-greedy" | "greedy" | "paper" => Some(SchedulerPolicy::PaperGreedy),
            _ => None,
        }
    }

    /// All policies, in a fixed report order.
    pub fn all() -> [SchedulerPolicy; 3] {
        [
            SchedulerPolicy::Priority,
            SchedulerPolicy::ProportionalShare,
            SchedulerPolicy::PaperGreedy,
        ]
    }
}

impl StableHash for SchedulerPolicy {
    fn hash_into(&self, h: &mut Hasher) {
        h.tag_variant(match self {
            SchedulerPolicy::Priority => 0,
            SchedulerPolicy::ProportionalShare => 1,
            SchedulerPolicy::PaperGreedy => 2,
        });
    }
}

/// One resident tenant's demand, in canonical (name-sorted) node order.
#[derive(Debug, Clone, Copy)]
pub struct Demand {
    /// Fast-tier quanta the tenant can use (⌈high-water mark / quantum⌉,
    /// at least 1).
    pub quanta: u64,
    /// Scheduling weight: `priority + 1` so priority 0 still gets share.
    pub weight: u64,
    /// Static miss density per byte, for [`SchedulerPolicy::PaperGreedy`].
    pub density: f64,
}

/// Computes per-resident grants in quanta. `demands` is in canonical node
/// order; the result is index-aligned with it. Requires
/// `total_quanta >= demands.len()` (validated by the fleet config) so the
/// one-quantum floor is always satisfiable.
pub fn grants(policy: SchedulerPolicy, demands: &[Demand], total_quanta: u64) -> Vec<u64> {
    let n = demands.len() as u64;
    assert!(total_quanta >= n, "fast tier too small: {total_quanta} quanta for {n} residents");
    if demands.is_empty() {
        return Vec::new();
    }
    // Everyone starts at the one-quantum floor; policies hand out the rest.
    let mut out = vec![1u64; demands.len()];
    let spare = total_quanta - n;
    match policy {
        SchedulerPolicy::Priority => fill_in_order(demands, &mut out, spare, |a, b| {
            demands[b].weight.cmp(&demands[a].weight).then(a.cmp(&b))
        }),
        SchedulerPolicy::PaperGreedy => fill_in_order(demands, &mut out, spare, |a, b| {
            demands[b].density.total_cmp(&demands[a].density).then(a.cmp(&b))
        }),
        SchedulerPolicy::ProportionalShare => proportional(demands, &mut out, spare),
    }
    out
}

/// Greedy fill: sort residents by `cmp`, satisfy each one's remaining
/// demand fully before moving on.
fn fill_in_order(
    demands: &[Demand],
    out: &mut [u64],
    mut spare: u64,
    cmp: impl Fn(usize, usize) -> std::cmp::Ordering,
) {
    let mut order: Vec<usize> = (0..demands.len()).collect();
    order.sort_by(|a, b| cmp(*a, *b));
    for i in order {
        let want = demands[i].quanta.saturating_sub(out[i]);
        let take = want.min(spare);
        out[i] += take;
        spare -= take;
        if spare == 0 {
            break;
        }
    }
}

/// Weighted largest-remainder apportioning with demand caps. Capped
/// residents release their excess, which is re-apportioned among the
/// still-uncapped — at most `n` rounds, all in integer arithmetic.
fn proportional(demands: &[Demand], out: &mut [u64], mut spare: u64) {
    let mut open: Vec<usize> = (0..demands.len()).filter(|&i| demands[i].quanta > out[i]).collect();
    while spare > 0 && !open.is_empty() {
        let total_w: u64 = open.iter().map(|&i| demands[i].weight.max(1)).sum();
        // floor share + largest remainder, ties to the lower index.
        let mut floors: Vec<(usize, u64, u64)> = open
            .iter()
            .map(|&i| {
                let w = demands[i].weight.max(1);
                let exact = spare as u128 * w as u128;
                ((exact / total_w as u128) as u64, (exact % total_w as u128) as u64, i)
            })
            .map(|(f, r, i)| (i, f, r))
            .collect();
        let mut leftover = spare - floors.iter().map(|&(_, f, _)| f).sum::<u64>();
        floors.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(&b.0)));
        for entry in floors.iter_mut() {
            if leftover == 0 {
                break;
            }
            entry.1 += 1;
            leftover -= 1;
        }
        spare = 0;
        for (i, add, _) in floors {
            let want = demands[i].quanta - out[i];
            let take = add.min(want);
            out[i] += take;
            spare += add - take; // capped excess goes back in the pool
        }
        open.retain(|&i| demands[i].quanta > out[i]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(quanta: u64, weight: u64, density: f64) -> Demand {
        Demand { quanta, weight, density }
    }

    #[test]
    fn everyone_gets_the_floor() {
        for p in SchedulerPolicy::all() {
            let g = grants(p, &[d(10, 1, 1.0), d(10, 9, 9.0), d(10, 5, 5.0)], 3);
            assert_eq!(g, vec![1, 1, 1], "{p:?}");
        }
    }

    #[test]
    fn priority_fills_highest_weight_first() {
        let g = grants(SchedulerPolicy::Priority, &[d(10, 1, 0.0), d(10, 3, 0.0)], 12);
        assert_eq!(g, vec![2, 10]);
    }

    #[test]
    fn greedy_fills_densest_first() {
        let g = grants(SchedulerPolicy::PaperGreedy, &[d(10, 3, 0.5), d(10, 1, 2.0)], 12);
        assert_eq!(g, vec![2, 10]);
    }

    #[test]
    fn proportional_respects_weights_and_caps() {
        // weights 1:3 over 8 spare → 2:6, within caps.
        let g = grants(SchedulerPolicy::ProportionalShare, &[d(10, 1, 0.0), d(10, 3, 0.0)], 10);
        assert_eq!(g, vec![3, 7]);
        // Cap releases excess to the open resident.
        let g = grants(SchedulerPolicy::ProportionalShare, &[d(2, 2, 0.0), d(20, 0, 0.0)], 12);
        assert_eq!(g, vec![2, 10]);
    }

    #[test]
    fn grants_never_exceed_total_or_demand() {
        for p in SchedulerPolicy::all() {
            let demands = [d(3, 1, 0.1), d(7, 4, 0.9), d(2, 2, 0.4), d(9, 0, 0.2)];
            for total in 4..30 {
                let g = grants(p, &demands, total);
                assert!(g.iter().sum::<u64>() <= total, "{p:?} total={total}");
                for (gi, di) in g.iter().zip(demands.iter()) {
                    assert!(*gi >= 1 && *gi <= di.quanta.max(1), "{p:?} total={total}");
                }
            }
        }
    }

    #[test]
    fn ties_break_by_index() {
        let g = grants(SchedulerPolicy::Priority, &[d(10, 5, 0.0), d(10, 5, 0.0)], 11);
        assert_eq!(g, vec![10, 1], "equal priority: earlier canonical index first");
    }

    #[test]
    fn parse_round_trips_names() {
        for p in SchedulerPolicy::all() {
            assert_eq!(SchedulerPolicy::parse(p.name()), Some(p));
        }
        assert_eq!(SchedulerPolicy::parse("nope"), None);
    }
}
