//! Per-tier heap managers.
//!
//! FlexMalloc sits on top of one heap manager per memory subsystem (memkind
//! for PMem, POSIX malloc for DRAM on the paper's machine). The simulator
//! equivalent carves each tier a disjoint virtual address range and serves
//! allocations from a bump pointer with an exact-size free list — HPC codes
//! allocate the same sizes repeatedly, so exact-size reuse keeps the model
//! simple without leaking capacity across iterations.

use memtrace::TierId;
use std::collections::BTreeMap;

/// A heap manager bound to one memory tier.
#[derive(Debug, Clone)]
pub struct TierHeap {
    tier: TierId,
    base: u64,
    capacity: u64,
    cursor: u64,
    used: u64,
    peak: u64,
    /// Exact-size free lists: size → addresses available for reuse.
    free: BTreeMap<u64, Vec<u64>>,
    failed_allocs: u64,
}

impl TierHeap {
    /// Each tier owns a disjoint 16 TiB-aligned slice of the address space,
    /// so an address uniquely identifies its tier (as NUMA-mapped physical
    /// ranges do on the real machine). Trace consumers rely on this layout
    /// to bound address-interval searches; the analyzer-side mirror is
    /// `memtrace::columns::SAME_TIER_SPAN` (pinned by a test below).
    pub const TIER_STRIDE: u64 = 1 << 44;
    const ALIGN: u64 = 64;

    /// Creates the heap for a tier with the given usable capacity.
    pub fn new(tier: TierId, capacity: u64) -> Self {
        TierHeap {
            tier,
            base: (tier.0 as u64 + 1) * Self::TIER_STRIDE,
            capacity,
            cursor: 0,
            used: 0,
            peak: 0,
            free: BTreeMap::new(),
            failed_allocs: 0,
        }
    }

    /// The tier this heap serves.
    pub fn tier(&self) -> TierId {
        self.tier
    }

    /// Which tier an address belongs to, by the address-carving convention.
    pub fn tier_of_address(address: u64) -> Option<TierId> {
        let idx = address / Self::TIER_STRIDE;
        if idx == 0 || idx > u8::MAX as u64 {
            None
        } else {
            Some(TierId((idx - 1) as u8))
        }
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Peak bytes ever allocated.
    pub fn peak(&self) -> u64 {
        self.peak
    }

    /// Usable capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Remaining bytes.
    pub fn available(&self) -> u64 {
        self.capacity - self.used
    }

    /// Number of allocations rejected for lack of space.
    pub fn failed_allocs(&self) -> u64 {
        self.failed_allocs
    }

    /// Shrinks the usable capacity (e.g. debug-info footprint in HR mode,
    /// or kernel page-metadata in the tiering baseline). Saturates at the
    /// currently-used size.
    pub fn reserve(&mut self, bytes: u64) {
        self.capacity = self.capacity.saturating_sub(bytes).max(self.used);
    }

    /// Allocates `size` bytes; returns the address, or `None` when the tier
    /// is out of space (the caller falls back to another tier, as
    /// FlexMalloc does).
    pub fn alloc(&mut self, size: u64) -> Option<u64> {
        assert!(size > 0, "zero-size allocation");
        let size = size.div_ceil(Self::ALIGN) * Self::ALIGN;
        if self.used + size > self.capacity {
            self.failed_allocs += 1;
            return None;
        }
        let addr = if let Some(list) = self.free.get_mut(&size) {
            let a = list.pop().expect("free lists are never left empty");
            if list.is_empty() {
                self.free.remove(&size);
            }
            a
        } else {
            let a = self.base + self.cursor;
            self.cursor += size;
            a
        };
        self.used += size;
        self.peak = self.peak.max(self.used);
        Some(addr)
    }

    /// Allocates ignoring the capacity limit. Used only as a last resort by
    /// the engine when *every* tier is full (the paper's configurations
    /// never hit this; the engine counts such events as `oom_events`).
    pub fn force_alloc(&mut self, size: u64) -> u64 {
        assert!(size > 0, "zero-size allocation");
        let size = size.div_ceil(Self::ALIGN) * Self::ALIGN;
        let addr = self.base + self.cursor;
        self.cursor += size;
        self.used += size;
        self.peak = self.peak.max(self.used);
        addr
    }

    /// Frees a block previously returned by [`Self::alloc`] with the same
    /// size.
    pub fn free(&mut self, address: u64, size: u64) {
        assert!(size > 0);
        let size = size.div_ceil(Self::ALIGN) * Self::ALIGN;
        debug_assert!(
            address >= self.base && address < self.base + self.cursor,
            "freeing an address this heap never produced"
        );
        self.used -= size;
        self.free.entry(size).or_default().push(address);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_stride_matches_the_trace_side_constant() {
        // The analyzer bounds its same-tier interval scan with a mirror of
        // this layout constant; the two must never drift apart.
        assert_eq!(TierHeap::TIER_STRIDE, memtrace::columns::SAME_TIER_SPAN);
    }

    #[test]
    fn alloc_free_reuse() {
        let mut h = TierHeap::new(TierId::DRAM, 1 << 20);
        let a = h.alloc(1000).unwrap();
        assert_eq!(h.used(), 1024); // aligned
        h.free(a, 1000);
        assert_eq!(h.used(), 0);
        let b = h.alloc(1000).unwrap();
        assert_eq!(a, b, "exact-size free list reuses the block");
    }

    #[test]
    fn capacity_enforced_and_fallback_signalled() {
        let mut h = TierHeap::new(TierId::DRAM, 4096);
        assert!(h.alloc(4096).is_some());
        assert!(h.alloc(1).is_none());
        assert_eq!(h.failed_allocs(), 1);
    }

    #[test]
    fn addresses_identify_tier() {
        let mut d = TierHeap::new(TierId::DRAM, 1 << 20);
        let mut p = TierHeap::new(TierId::PMEM, 1 << 20);
        let a = d.alloc(64).unwrap();
        let b = p.alloc(64).unwrap();
        assert_eq!(TierHeap::tier_of_address(a), Some(TierId::DRAM));
        assert_eq!(TierHeap::tier_of_address(b), Some(TierId::PMEM));
        assert_eq!(TierHeap::tier_of_address(0x10), None);
    }

    #[test]
    fn distinct_live_blocks_never_overlap() {
        let mut h = TierHeap::new(TierId::PMEM, 1 << 20);
        let mut blocks = Vec::new();
        for i in 1..50u64 {
            let size = i * 96 % 2048 + 1;
            if let Some(a) = h.alloc(size) {
                blocks.push((a, size.div_ceil(64) * 64));
            }
        }
        for (i, &(a1, s1)) in blocks.iter().enumerate() {
            for &(a2, s2) in &blocks[i + 1..] {
                assert!(a1 + s1 <= a2 || a2 + s2 <= a1, "blocks overlap");
            }
        }
    }

    #[test]
    fn peak_tracks_high_water() {
        let mut h = TierHeap::new(TierId::DRAM, 1 << 20);
        let a = h.alloc(4096).unwrap();
        h.alloc(4096).unwrap();
        h.free(a, 4096);
        h.alloc(64).unwrap();
        assert_eq!(h.peak(), 8192);
    }

    #[test]
    fn reserve_shrinks_capacity_but_not_below_used() {
        let mut h = TierHeap::new(TierId::DRAM, 8192);
        h.alloc(4096).unwrap();
        h.reserve(1 << 30);
        assert_eq!(h.capacity(), 4096);
        assert!(h.alloc(64).is_none());
    }

    #[test]
    #[should_panic(expected = "zero-size")]
    fn zero_alloc_panics() {
        TierHeap::new(TierId::DRAM, 1 << 20).alloc(0);
    }
}
