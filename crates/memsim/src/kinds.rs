//! A memkind-like heap-manager facade.
//!
//! On the paper's machine FlexMalloc forwards each allocation to "a number
//! of heap managers (each targeting a specific memory subsystem)": memkind
//! (`MEMKIND_DAX_KMEM`) for PMem, POSIX malloc for DRAM (§IV-C). This
//! module provides that interface shape over the simulator's
//! [`TierHeap`]s: named *kinds* bound to tiers, `malloc`/`free` entry
//! points, per-kind statistics, and the memkind quirk the paper calls out —
//! allocation-time NUMA binding (the whole object's tier is fixed at
//! `malloc`, unlike first-touch DRAM pages).

use crate::heap::TierHeap;
use memtrace::TierId;
use std::collections::HashMap;

/// A named allocator kind bound to one memory tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kind {
    /// POSIX malloc on the default (DRAM) NUMA node.
    Default,
    /// `MEMKIND_DAX_KMEM`: PMem exposed as a kernel NUMA node.
    DaxKmem,
    /// `MEMKIND_HBW`: high-bandwidth memory (for HBM machines).
    Hbw,
}

impl Kind {
    /// Display name matching memkind's constants.
    pub fn name(self) -> &'static str {
        match self {
            Kind::Default => "MEMKIND_DEFAULT",
            Kind::DaxKmem => "MEMKIND_DAX_KMEM",
            Kind::Hbw => "MEMKIND_HBW",
        }
    }
}

/// The set of kinds available in a process, each bound to a tier heap.
#[derive(Debug)]
pub struct KindRegistry {
    kinds: Vec<(Kind, TierHeap)>,
    /// Live blocks: address → (kind index, aligned size). `free` must work
    /// from the pointer alone, as `memkind_free(NULL, ptr)` does.
    live: HashMap<u64, (usize, u64)>,
}

impl KindRegistry {
    /// Builds a registry binding kinds to tiers with the given capacities.
    pub fn new(bindings: Vec<(Kind, TierId, u64)>) -> Self {
        let kinds = bindings
            .into_iter()
            .map(|(k, tier, capacity)| (k, TierHeap::new(tier, capacity)))
            .collect();
        KindRegistry { kinds, live: HashMap::new() }
    }

    /// The standard two-kind setup of the paper's machine.
    pub fn paper_default(dram_capacity: u64, pmem_capacity: u64) -> Self {
        Self::new(vec![
            (Kind::Default, TierId::DRAM, dram_capacity),
            (Kind::DaxKmem, TierId::PMEM, pmem_capacity),
        ])
    }

    /// `memkind_malloc(kind, size)`: allocates from the kind's tier.
    /// Returns `None` when the kind is unknown or its tier is full.
    pub fn malloc(&mut self, kind: Kind, size: u64) -> Option<u64> {
        let idx = self.kinds.iter().position(|(k, _)| *k == kind)?;
        let addr = self.kinds[idx].1.alloc(size)?;
        let aligned = size.div_ceil(64) * 64;
        self.live.insert(addr, (idx, aligned));
        Some(addr)
    }

    /// `memkind_free(NULL, ptr)`: frees by pointer alone — the registry
    /// recovers the owning kind, as memkind does from the page mapping.
    pub fn free(&mut self, address: u64) -> bool {
        match self.live.remove(&address) {
            Some((idx, size)) => {
                self.kinds[idx].1.free(address, size);
                true
            }
            None => false,
        }
    }

    /// The kind owning an address, if live.
    pub fn kind_of(&self, address: u64) -> Option<Kind> {
        self.live.get(&address).map(|&(idx, _)| self.kinds[idx].0)
    }

    /// The tier a kind is bound to.
    pub fn tier_of(&self, kind: Kind) -> Option<TierId> {
        self.kinds.iter().find(|(k, _)| *k == kind).map(|(_, h)| h.tier())
    }

    /// Used bytes per kind.
    pub fn stats(&self) -> Vec<(Kind, u64, u64)> {
        self.kinds.iter().map(|(k, h)| (*k, h.used(), h.capacity())).collect()
    }

    /// Number of live blocks.
    pub fn live_blocks(&self) -> usize {
        self.live.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> KindRegistry {
        KindRegistry::paper_default(16 << 30, 64 << 30)
    }

    #[test]
    fn malloc_routes_by_kind() {
        let mut r = registry();
        let d = r.malloc(Kind::Default, 4096).unwrap();
        let p = r.malloc(Kind::DaxKmem, 4096).unwrap();
        assert_eq!(TierHeap::tier_of_address(d), Some(TierId::DRAM));
        assert_eq!(TierHeap::tier_of_address(p), Some(TierId::PMEM));
        assert_eq!(r.kind_of(d), Some(Kind::Default));
        assert_eq!(r.kind_of(p), Some(Kind::DaxKmem));
    }

    #[test]
    fn free_recovers_the_kind_from_the_pointer() {
        let mut r = registry();
        let p = r.malloc(Kind::DaxKmem, 1 << 20).unwrap();
        assert_eq!(r.live_blocks(), 1);
        assert!(r.free(p));
        assert_eq!(r.live_blocks(), 0);
        assert_eq!(r.stats()[1].1, 0, "pmem kind back to zero");
        assert!(!r.free(p), "double free reports failure");
    }

    #[test]
    fn unknown_kind_and_exhaustion_fail_cleanly() {
        let mut r = KindRegistry::new(vec![(Kind::Default, TierId::DRAM, 4096)]);
        assert!(r.malloc(Kind::Hbw, 64).is_none(), "unbound kind");
        assert!(r.malloc(Kind::Default, 4096).is_some());
        assert!(r.malloc(Kind::Default, 64).is_none(), "kind exhausted");
    }

    #[test]
    fn kind_names_match_memkind() {
        assert_eq!(Kind::DaxKmem.name(), "MEMKIND_DAX_KMEM");
        assert_eq!(Kind::Default.name(), "MEMKIND_DEFAULT");
        assert_eq!(Kind::Hbw.name(), "MEMKIND_HBW");
    }

    #[test]
    fn stats_track_usage_per_kind() {
        let mut r = registry();
        r.malloc(Kind::Default, 1000).unwrap();
        r.malloc(Kind::DaxKmem, 5000).unwrap();
        let stats = r.stats();
        assert_eq!(stats[0].1, 1024, "1000 B aligned up to 16 lines");
        assert_eq!(stats[1].1, 5056, "5000 B aligned up to 79 lines");
    }
}
