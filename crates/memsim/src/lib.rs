//! # memsim — hybrid-memory machine performance model
//!
//! The paper evaluates on a dual-socket Cascade Lake node with DDR4 DRAM and
//! Intel Optane PMem DIMMs. We have no such hardware, so this crate models
//! the *performance economics* the placement algorithms react to:
//!
//! * per-tier capacity and peak read/write bandwidth;
//! * loaded-latency curves (latency grows with bandwidth utilization — the
//!   effect of Fig. 2 that motivates contribution VII);
//! * the Memory Mode DRAM cache (direct-mapped, write-back, managed by the
//!   memory controller) used as the paper's baseline;
//! * per-tier heap managers (memkind / POSIX malloc stand-ins) with
//!   capacity accounting and fallback;
//! * a phase-based execution engine that turns an application model plus a
//!   placement policy into wall-clock time, per-tier bandwidth time series,
//!   per-function IPC/latency, and per-object access records.
//!
//! Applications are *models* ([`model::AppModel`]): sequences of phases that
//! allocate/free objects and describe, per allocation site, the loads,
//! stores, LLC-miss density and access pattern of that phase. The engine is
//! deterministic: the same model, machine, and policy always produce the
//! same result bit-for-bit.

pub mod cache;
pub mod counters;
pub mod curve;
pub mod engine;
pub mod fleet;
pub mod heap;
pub mod kinds;
pub mod machine;
pub mod mlc;
pub mod model;
pub mod policy;
pub mod runner;
pub mod stablehash;
pub mod tier;

pub use cache::{CacheModelCfg, CacheSplit};
pub use counters::{FunctionStats, ObjectRecord, PhaseStats, RunResult};
pub use curve::LatencyCurve;
pub use engine::{run, run_invocations, ExecMode};
pub use fleet::{
    ChurnConfig, FleetConfig, FleetResult, NodeResult, SchedulerPolicy, TenantOutcome, TenantSpec,
};
pub use heap::TierHeap;
pub use kinds::{Kind, KindRegistry};
pub use machine::MachineConfig;
pub use mlc::{mlc_sweep, MlcPoint, TrafficMix};
pub use model::{AccessPattern, AccessSpec, AllocOp, AppModel, FreeOp, PhaseSpec};
pub use policy::{
    AllocContext, FixedTier, Migration, PhaseObservation, PlacementPolicy, SiteMapPolicy,
};
pub use runner::{
    arm_kill_point, disarm_kill_point, global_cache, jobs_from_env, kill_point_tick, parallel_map,
    stable_hash, FleetCellKey, RunCache, RunKey, KILL_POINT_PAYLOAD,
};
pub use tier::{TierKind, TierSpec};
