//! Machine configurations, including presets mirroring the paper's testbed.
//!
//! The paper's machine: 2× Xeon Platinum 8260L (24 cores, 2.3 GHz nominal),
//! 4×8 GB DDR4 and 12×512 GB Optane PMem 100 DIMMs at 2666 MT/s; all
//! experiments are pinned to a single NUMA node, leaving 16 GB DRAM and 6
//! PMem DIMMs (the *PMem-6* configuration). *PMem-2* physically removes
//! DIMMs, leaving one third of the PMem capacity and bandwidth.
//!
//! Curve calibration reproduces Fig. 2's endpoints: DRAM read 90 → 117 ns
//! and PMem read 185 → 239 ns as bandwidth grows from 8 to 22 GB/s, with
//! PMem write bandwidth an order of magnitude below DRAM's (the product
//! brief's ~90% write-bandwidth reduction).

use crate::cache::CacheModelCfg;
use crate::curve::LatencyCurve;
use crate::tier::{TierKind, TierSpec};
use memtrace::TierId;
use serde::{Deserialize, Serialize};

/// A complete machine description consumed by the engine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Configuration name (e.g. `optane-pmem6`).
    pub name: String,
    /// Memory tiers; `tiers[i].id` must be `TierId(i)`. Order is
    /// descending performance by convention of the built-in presets, but
    /// consumers must use explicit ids, not positions.
    pub tiers: Vec<TierSpec>,
    /// Cores available to the job (one NUMA node here).
    pub cores: u32,
    /// Nominal core frequency in GHz.
    pub freq_ghz: f64,
    /// Peak retire IPC per core for compute-only code.
    pub base_ipc: f64,
    /// Cache line size in bytes (traffic granularity of LLC misses).
    pub cacheline: u64,
    /// Aggregate memory-level parallelism for demand load misses per core
    /// (how many outstanding LLC load misses a core sustains on
    /// latency-bound code); scaled by access-pattern factors in the model.
    pub mlp_per_core: f64,
    /// DRAM-cache behaviour parameters for Memory Mode.
    pub cache_cfg: CacheModelCfg,
}

impl MachineConfig {
    /// The paper's main configuration: one NUMA node of the testbed with
    /// 16 GB DRAM + 6×512 GB Optane PMem DIMMs.
    pub fn optane_pmem6() -> Self {
        MachineConfig {
            name: "optane-pmem6".into(),
            tiers: vec![Self::ddr4_dram(), Self::optane_tier(6)],
            cores: 24,
            freq_ghz: 2.3,
            base_ipc: 2.0,
            cacheline: 64,
            mlp_per_core: 8.0,
            cache_cfg: CacheModelCfg::default(),
        }
    }

    /// The reduced configuration: 2 PMem DIMMs → one third of the PMem
    /// capacity *and* bandwidth (§VIII: "reduced PMem capacity and
    /// bandwidth of 1/3 (by physically removing DIMMs)").
    pub fn optane_pmem2() -> Self {
        MachineConfig {
            name: "optane-pmem2".into(),
            tiers: vec![Self::ddr4_dram(), Self::optane_tier(2)],
            ..Self::optane_pmem6()
        }
    }

    /// A forward-looking HBM + DDR configuration (the conclusion's claim
    /// that the methodology transfers to HBM/CXL systems): 16 GB of HBM as
    /// the fast tier, 256 GB of DDR as the capacity tier.
    pub fn hbm_ddr() -> Self {
        let hbm = TierSpec {
            id: TierId(0),
            name: "hbm".into(),
            kind: TierKind::Hbm,
            capacity: 16 << 30,
            peak_read_bw: 400e9,
            peak_write_bw: 380e9,
            read_curve: LatencyCurve::new(120.0, 60.0, 4.0),
            write_curve: LatencyCurve::new(125.0, 60.0, 4.0),
            amp_strided: 1.0,
            amp_random: 1.0,
        };
        let ddr = TierSpec {
            id: TierId(1),
            name: "ddr".into(),
            kind: TierKind::Dram,
            capacity: 256 << 30,
            peak_read_bw: 50e9,
            peak_write_bw: 45e9,
            read_curve: LatencyCurve::new(95.0, 40.0, 4.0),
            write_curve: LatencyCurve::new(100.0, 45.0, 4.0),
            amp_strided: 1.0,
            amp_random: 1.0,
        };
        MachineConfig {
            name: "hbm-ddr".into(),
            tiers: vec![hbm, ddr],
            cores: 48,
            freq_ghz: 2.0,
            base_ipc: 2.0,
            cacheline: 64,
            mlp_per_core: 8.0,
            cache_cfg: CacheModelCfg::default(),
        }
    }

    /// A three-tier configuration: a small HBM pool, DDR4, and Optane —
    /// the fully general case the Advisor's multi-knapsack handles
    /// (§IV-B's "systems with different heterogeneous memory
    /// configurations").
    pub fn hbm_dram_pmem() -> Self {
        let hbm = TierSpec {
            id: TierId(0),
            name: "hbm".into(),
            kind: TierKind::Hbm,
            capacity: 8 << 30,
            peak_read_bw: 400e9,
            peak_write_bw: 380e9,
            read_curve: LatencyCurve::new(120.0, 60.0, 4.0),
            write_curve: LatencyCurve::new(125.0, 60.0, 4.0),
            amp_strided: 1.0,
            amp_random: 1.0,
        };
        let mut dram = Self::ddr4_dram();
        dram.id = TierId(1);
        dram.capacity = 64 << 30;
        let mut pmem = Self::optane_tier(6);
        pmem.id = TierId(2);
        MachineConfig {
            name: "hbm-dram-pmem".into(),
            tiers: vec![hbm, dram, pmem],
            cores: 48,
            freq_ghz: 2.3,
            base_ipc: 2.0,
            cacheline: 64,
            mlp_per_core: 8.0,
            cache_cfg: CacheModelCfg::default(),
        }
    }

    fn ddr4_dram() -> TierSpec {
        TierSpec {
            id: TierId::DRAM,
            name: "dram".into(),
            kind: TierKind::Dram,
            capacity: 16 << 30,
            peak_read_bw: 42e9,
            peak_write_bw: 32e9,
            // 90 ns idle → ~117 ns at 22 GB/s (Fig. 2), rising smoothly
            // toward saturation as measured loaded-latency curves do.
            read_curve: LatencyCurve::new(90.0, 136.0, 2.5),
            write_curve: LatencyCurve::new(95.0, 150.0, 2.5),
            amp_strided: 1.0,
            amp_random: 1.0,
        }
    }

    fn optane_tier(dimms: u64) -> TierSpec {
        let scale = dimms as f64 / 6.0;
        TierSpec {
            id: TierId::PMEM,
            name: "pmem".into(),
            kind: TierKind::Pmem,
            capacity: dimms * (512 << 30),
            // ~75% lower read and ~90% lower write bandwidth than DRAM
            // (Intel product brief numbers cited in §II), scaled by DIMM
            // population.
            peak_read_bw: 24e9 * scale,
            peak_write_bw: 6e9 * scale,
            // 185 ns idle → ~239 ns at 22 GB/s on 6 DIMMs (Fig. 2); writes
            // are several times slower and saturate early.
            read_curve: LatencyCurve::new(185.0, 67.0, 2.5),
            write_curve: LatencyCurve::new(310.0, 900.0, 3.0),
            // Optane's 256 B XPLine: strided/random 64 B demands waste
            // media bandwidth.
            amp_strided: 1.6,
            amp_random: 2.5,
        }
    }

    /// Looks up a tier by id.
    pub fn tier(&self, id: TierId) -> &TierSpec {
        &self.tiers[id.0 as usize]
    }

    /// Tier ids in descending performance order (idle read latency
    /// ascending) — the knapsack order of the Advisor's base algorithm.
    pub fn tiers_by_performance(&self) -> Vec<TierId> {
        let mut ids: Vec<TierId> = self.tiers.iter().map(|t| t.id).collect();
        ids.sort_by(|a, b| {
            self.tier(*a)
                .read_curve
                .idle_ns()
                .partial_cmp(&self.tier(*b).read_curve.idle_ns())
                .unwrap()
        });
        ids
    }

    /// The largest-capacity tier (the natural fallback; PMEM here).
    pub fn largest_tier(&self) -> TierId {
        self.tiers
            .iter()
            .max_by_key(|t| t.capacity)
            .map(|t| t.id)
            .expect("machine must have at least one tier")
    }

    /// Aggregate peak instruction throughput, instructions/second.
    pub fn peak_ips(&self) -> f64 {
        self.cores as f64 * self.freq_ghz * 1e9 * self.base_ipc
    }

    /// Aggregate cycle-slots per second (used for VTune-like slot metrics).
    pub fn cycles_per_second(&self) -> f64 {
        self.cores as f64 * self.freq_ghz * 1e9
    }

    /// Sanity checks on tier ids and parameters; call after hand-building a
    /// custom configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.tiers.is_empty() {
            return Err("machine has no tiers".into());
        }
        for (i, t) in self.tiers.iter().enumerate() {
            if t.id.0 as usize != i {
                return Err(format!("tier at index {i} has id {}", t.id));
            }
            if t.capacity == 0 {
                return Err(format!("tier {} has zero capacity", t.name));
            }
            let bw_ok = |bw: f64| bw > 0.0 && bw.is_finite();
            if !bw_ok(t.peak_read_bw) || !bw_ok(t.peak_write_bw) {
                return Err(format!("tier {} has nonpositive or non-finite bandwidth", t.name));
            }
        }
        let param_ok = |v: f64| v > 0.0 && v.is_finite();
        if self.cores == 0 || !param_ok(self.freq_ghz) || !param_ok(self.base_ipc) {
            return Err("invalid core parameters".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        MachineConfig::optane_pmem6().validate().unwrap();
        MachineConfig::optane_pmem2().validate().unwrap();
        MachineConfig::hbm_ddr().validate().unwrap();
        MachineConfig::hbm_dram_pmem().validate().unwrap();
    }

    #[test]
    fn three_tier_performance_order() {
        let m = MachineConfig::hbm_dram_pmem();
        assert_eq!(
            m.tiers_by_performance(),
            vec![TierId(1), TierId(0), TierId(2)],
            "idle latency: DRAM < HBM < PMem (HBM trades latency for bandwidth)"
        );
        assert_eq!(m.largest_tier(), TierId(2));
    }

    #[test]
    fn pmem2_is_one_third_of_pmem6() {
        let m6 = MachineConfig::optane_pmem6();
        let m2 = MachineConfig::optane_pmem2();
        let p6 = m6.tier(TierId::PMEM);
        let p2 = m2.tier(TierId::PMEM);
        assert_eq!(p2.capacity * 3, p6.capacity);
        assert!((p2.peak_read_bw * 3.0 - p6.peak_read_bw).abs() < 1.0);
        assert!((p2.peak_write_bw * 3.0 - p6.peak_write_bw).abs() < 1.0);
    }

    #[test]
    fn fig2_calibration_endpoints() {
        let m = MachineConfig::optane_pmem6();
        let dram = m.tier(TierId::DRAM);
        let pmem = m.tier(TierId::PMEM);
        // Low-bandwidth latencies (≈ idle).
        assert!((dram.read_latency_ns(1e9, 0.0) - 90.0).abs() < 2.0);
        assert!((pmem.read_latency_ns(1e9, 0.0) - 185.0).abs() < 2.0);
        // At 22 GB/s read-only traffic.
        let d = dram.read_latency_ns(22e9, 0.0);
        let p = pmem.read_latency_ns(22e9, 0.0);
        assert!((d - 117.0).abs() < 4.0, "dram@22GB/s = {d}");
        assert!((p - 239.0).abs() < 6.0, "pmem@22GB/s = {p}");
        // The paper's 2.3× loaded-latency gap argument (§VII), within 15%.
        assert!((p / d - 2.3).abs() < 0.35, "ratio = {}", p / d);
    }

    #[test]
    fn performance_order_puts_dram_first() {
        let m = MachineConfig::optane_pmem6();
        assert_eq!(m.tiers_by_performance(), vec![TierId::DRAM, TierId::PMEM]);
        assert_eq!(m.largest_tier(), TierId::PMEM);
    }

    #[test]
    fn validate_catches_bad_ids() {
        let mut m = MachineConfig::optane_pmem6();
        m.tiers[1].id = TierId(5);
        assert!(m.validate().is_err());
    }

    #[test]
    fn validate_catches_zero_capacity() {
        let mut m = MachineConfig::optane_pmem6();
        m.tiers[0].capacity = 0;
        assert!(m.validate().is_err());
    }

    #[test]
    fn validate_catches_non_finite_parameters() {
        // Regression (satellite 1): `NaN <= 0.0` is false, so NaN bandwidth
        // used to sail through validation and poison the phase solve.
        let mut m = MachineConfig::optane_pmem6();
        m.tiers[1].peak_write_bw = f64::NAN;
        assert!(m.validate().is_err(), "NaN bandwidth must not validate");

        let mut m = MachineConfig::optane_pmem6();
        m.tiers[0].peak_read_bw = f64::INFINITY;
        assert!(m.validate().is_err(), "infinite bandwidth must not validate");

        let mut m = MachineConfig::optane_pmem6();
        m.freq_ghz = f64::NAN;
        assert!(m.validate().is_err(), "NaN frequency must not validate");
    }

    #[test]
    fn peak_ips_matches_parameters() {
        let m = MachineConfig::optane_pmem6();
        assert!((m.peak_ips() - 24.0 * 2.3e9 * 2.0).abs() < 1.0);
    }
}
