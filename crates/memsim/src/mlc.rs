//! MLC-like loaded-latency sweeps — the generator behind Fig. 2.
//!
//! Intel's Memory Latency Checker injects a configurable read or
//! read:write traffic mix and measures latency as the injected bandwidth
//! grows. The paper uses MLC to show the widening DRAM/PMem latency gap
//! that motivates bandwidth-aware placement. This module reproduces the
//! sweep analytically on the machine model's tier curves.

use crate::machine::MachineConfig;
use memtrace::TierId;
use serde::{Deserialize, Serialize};

/// Traffic mix of the sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TrafficMix {
    /// Read-only traffic (MLC `-R`).
    ReadOnly,
    /// One read per write (MLC `-W5`-style 1R1W mix).
    OneReadOneWrite,
}

/// One sweep sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MlcPoint {
    /// Total injected bandwidth, bytes/second.
    pub bandwidth: f64,
    /// Observed (modelled) read latency, nanoseconds.
    pub latency_ns: f64,
}

/// Sweeps a tier's read latency over `[from_bw, to_bw]` (bytes/second) in
/// `steps` uniform steps under the given traffic mix.
pub fn mlc_sweep(
    machine: &MachineConfig,
    tier: TierId,
    mix: TrafficMix,
    from_bw: f64,
    to_bw: f64,
    steps: usize,
) -> Vec<MlcPoint> {
    assert!(steps >= 2, "a sweep needs at least two points");
    assert!(to_bw > from_bw && from_bw >= 0.0);
    let spec = machine.tier(tier);
    (0..steps)
        .map(|i| {
            let bw = from_bw + (to_bw - from_bw) * i as f64 / (steps - 1) as f64;
            let (read_bw, write_bw) = match mix {
                TrafficMix::ReadOnly => (bw, 0.0),
                TrafficMix::OneReadOneWrite => (bw / 2.0, bw / 2.0),
            };
            MlcPoint { bandwidth: bw, latency_ns: spec.read_latency_ns(read_bw, write_bw) }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_monotone() {
        let m = MachineConfig::optane_pmem6();
        for tier in [TierId::DRAM, TierId::PMEM] {
            for mix in [TrafficMix::ReadOnly, TrafficMix::OneReadOneWrite] {
                let pts = mlc_sweep(&m, tier, mix, 8e9, 22e9, 15);
                assert_eq!(pts.len(), 15);
                for w in pts.windows(2) {
                    assert!(w[1].latency_ns >= w[0].latency_ns);
                }
            }
        }
    }

    #[test]
    fn fig2_gap_widens_with_bandwidth() {
        let m = MachineConfig::optane_pmem6();
        let dram = mlc_sweep(&m, TierId::DRAM, TrafficMix::ReadOnly, 8e9, 22e9, 8);
        let pmem = mlc_sweep(&m, TierId::PMEM, TrafficMix::ReadOnly, 8e9, 22e9, 8);
        let gap_low = pmem[0].latency_ns - dram[0].latency_ns;
        let gap_high = pmem[7].latency_ns - dram[7].latency_ns;
        assert!(gap_high > gap_low, "gap must widen: {gap_low} → {gap_high}");
        // And the ratio at 22 GB/s is ≈ 2x or more (paper quotes 2.3×).
        assert!(pmem[7].latency_ns / dram[7].latency_ns > 1.9);
    }

    #[test]
    fn mixed_traffic_is_slower_than_read_only() {
        let m = MachineConfig::optane_pmem6();
        let r = mlc_sweep(&m, TierId::PMEM, TrafficMix::ReadOnly, 8e9, 22e9, 5);
        let rw = mlc_sweep(&m, TierId::PMEM, TrafficMix::OneReadOneWrite, 8e9, 22e9, 5);
        // PMem writes saturate early, so the 1R1W mix loads the device more
        // at the same total bandwidth.
        assert!(rw[4].latency_ns > r[4].latency_ns);
    }

    #[test]
    #[should_panic]
    fn rejects_degenerate_range() {
        let m = MachineConfig::optane_pmem6();
        mlc_sweep(&m, TierId::DRAM, TrafficMix::ReadOnly, 10e9, 5e9, 5);
    }
}
