//! Application models: the phase-structured workload description the engine
//! executes.
//!
//! ecoHMEM treats applications as black boxes observed through their
//! allocation calls and hardware-sampled memory accesses. An [`AppModel`]
//! is therefore exactly that observable surface: allocation sites (with
//! call stacks into a synthetic binary map) and, per phase, which sites are
//! allocated/freed and how each site's live objects are accessed (loads,
//! stores, LLC-miss density, pattern). The workloads crate builds one model
//! per paper application, calibrated to Tables V/VI and Figs. 3–5.

use memtrace::{BinaryMap, CallStack, FuncId, SiteId};
use serde::{Deserialize, Serialize};

/// Spatial/temporal access pattern of a stream. Determines the effective
/// memory-level parallelism (prefetchers hide sequential-miss latency; pointer
/// chasing exposes it) and how badly a direct-mapped DRAM cache conflicts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessPattern {
    /// Unit-stride streaming (prefetch-friendly, bandwidth-bound).
    Sequential,
    /// Fixed non-unit stride (partially prefetchable).
    Strided,
    /// Irregular/indirect (latency-bound, conflict-prone).
    Random,
}

impl AccessPattern {
    /// Multiplier on the machine's per-core MLP for this pattern.
    pub fn mlp_factor(self) -> f64 {
        match self {
            AccessPattern::Sequential => 3.0,
            AccessPattern::Strided => 1.5,
            AccessPattern::Random => 0.5,
        }
    }

    /// Conflict-miss survival factor in a direct-mapped DRAM cache: the
    /// fraction of capacity-hits that are *not* lost to conflicts.
    pub fn cache_conflict_factor(self) -> f64 {
        match self {
            AccessPattern::Sequential => 0.95,
            AccessPattern::Strided => 0.85,
            AccessPattern::Random => 0.62,
        }
    }
}

/// How one allocation site's live objects are accessed during one phase.
/// Counts are aggregate across all ranks/threads of the job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccessSpec {
    /// The accessed site; applies to all its live objects, split evenly.
    pub site: SiteId,
    /// Function performing the accesses (Table VII attribution).
    pub function: FuncId,
    /// Loads issued this phase.
    pub loads: f64,
    /// Stores issued this phase.
    pub stores: f64,
    /// Fraction of loads that miss the LLC (placement-independent: the LLC
    /// is on-chip SRAM, so profiling in any mode sees the same misses).
    pub llc_miss_rate: f64,
    /// Fraction of stores that miss the L1D — the §V store-cost proxy; the
    /// same fraction eventually produces write-back traffic to memory.
    pub store_l1d_miss_rate: f64,
    /// Access pattern of the stream.
    pub pattern: AccessPattern,
    /// Non-memory instructions retired by this stream's function this
    /// phase (for per-function IPC).
    pub instructions: f64,
    /// Override for the DRAM-cache reuse estimate (touches per line).
    /// `0.0` (the default) lets the engine derive reuse from the phase's
    /// own traffic; a positive value models *cross-phase* reuse the
    /// per-phase view cannot see (e.g. a neighbor list rebuilt every five
    /// steps but read every step).
    #[serde(default)]
    pub reuse_hint: f64,
}

impl AccessSpec {
    /// LLC load misses this spec generates.
    pub fn load_misses(&self) -> f64 {
        self.loads * self.llc_miss_rate
    }

    /// L1D store misses (→ write-back traffic) this spec generates.
    pub fn store_misses(&self) -> f64 {
        self.stores * self.store_l1d_miss_rate
    }

    /// Total instructions retired by the stream (loads + stores + other).
    pub fn total_instructions(&self) -> f64 {
        self.loads + self.stores + self.instructions
    }
}

/// An allocation operation: allocate `count` objects of `size` bytes at
/// `site` at the start of a phase.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AllocOp {
    /// Allocation site.
    pub site: SiteId,
    /// Size per object, bytes.
    pub size: u64,
    /// Number of objects to allocate.
    pub count: u32,
}

/// A free operation: free the `count` oldest live objects of `site` at the
/// end of a phase.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FreeOp {
    /// Allocation site whose objects are freed.
    pub site: SiteId,
    /// How many of its oldest live objects to free.
    pub count: u32,
}

/// One application phase (an iteration, a solver stage, a communication
/// step...). Allocations happen at phase start, frees at phase end.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct PhaseSpec {
    /// Optional label (e.g. the recurring LULESH phase of Fig. 3).
    pub label: Option<String>,
    /// Compute instructions not attributed to any access stream.
    pub compute_instructions: f64,
    /// Allocations performed at phase start.
    pub allocs: Vec<AllocOp>,
    /// Frees performed at phase end.
    pub frees: Vec<FreeOp>,
    /// Access streams active during the phase.
    pub accesses: Vec<AccessSpec>,
}

/// A complete application model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppModel {
    /// Application name (matches the paper's Table V rows).
    pub name: String,
    /// MPI ranks the model aggregates.
    pub ranks: u32,
    /// OpenMP threads per rank.
    pub threads_per_rank: u32,
    /// Input description (Table V).
    pub input_desc: String,
    /// Allocation sites with their call stacks.
    pub sites: Vec<(SiteId, CallStack)>,
    /// The synthetic program image the call stacks point into.
    pub binmap: BinaryMap,
    /// Function names for reporting, indexed by `FuncId`.
    pub function_names: Vec<String>,
    /// Phases, executed in order.
    pub phases: Vec<PhaseSpec>,
}

impl AppModel {
    /// Call stack of a site.
    pub fn stack_of(&self, site: SiteId) -> Option<&CallStack> {
        self.sites.iter().find(|(s, _)| *s == site).map(|(_, st)| st)
    }

    /// Function name for reporting.
    pub fn function_name(&self, f: FuncId) -> &str {
        self.function_names.get(f.0 as usize).map(String::as_str).unwrap_or("unknown")
    }

    /// Total number of allocations performed over the whole run.
    pub fn total_allocations(&self) -> u64 {
        self.phases.iter().flat_map(|p| p.allocs.iter()).map(|a| a.count as u64).sum()
    }

    /// Memory high-water mark in bytes: the maximum total live heap over
    /// the run (Table V's "Memory High-Water Mark" aggregated over ranks).
    pub fn high_water_mark(&self) -> u64 {
        let mut live: std::collections::HashMap<SiteId, Vec<u64>> = Default::default();
        let mut cur: u64 = 0;
        let mut peak: u64 = 0;
        for phase in &self.phases {
            for a in &phase.allocs {
                for _ in 0..a.count {
                    live.entry(a.site).or_default().push(a.size);
                    cur += a.size;
                }
            }
            peak = peak.max(cur);
            for f in &phase.frees {
                let v = live.entry(f.site).or_default();
                for _ in 0..f.count {
                    if let Some(sz) = v.first().copied() {
                        v.remove(0);
                        cur -= sz;
                    }
                }
            }
        }
        peak
    }

    /// Structural validation: sites used by phases exist, rates are in
    /// `[0,1]`, counts are sane, frees never exceed live objects.
    pub fn validate(&self) -> Result<(), String> {
        use std::collections::HashMap;
        let known: std::collections::HashSet<SiteId> = self.sites.iter().map(|(s, _)| *s).collect();
        let mut live: HashMap<SiteId, i64> = HashMap::new();
        for (pi, phase) in self.phases.iter().enumerate() {
            for a in &phase.allocs {
                if !known.contains(&a.site) {
                    return Err(format!("phase {pi} allocates unknown {}", a.site));
                }
                if a.size == 0 || a.count == 0 {
                    return Err(format!("phase {pi} has empty alloc at {}", a.site));
                }
                *live.entry(a.site).or_insert(0) += a.count as i64;
            }
            for acc in &phase.accesses {
                if !known.contains(&acc.site) {
                    return Err(format!("phase {pi} accesses unknown {}", acc.site));
                }
                if !(0.0..=1.0).contains(&acc.llc_miss_rate)
                    || !(0.0..=1.0).contains(&acc.store_l1d_miss_rate)
                {
                    return Err(format!("phase {pi} has out-of-range miss rate"));
                }
                if acc.loads < 0.0 || acc.stores < 0.0 || acc.instructions < 0.0 {
                    return Err(format!("phase {pi} has negative access counts"));
                }
            }
            for f in &phase.frees {
                let n = live.entry(f.site).or_insert(0);
                *n -= f.count as i64;
                if *n < 0 {
                    return Err(format!("phase {pi} frees more objects of {} than live", f.site));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memtrace::{BinaryMapBuilder, Frame, ModuleId};

    fn toy_model() -> AppModel {
        let mut b = BinaryMapBuilder::new();
        b.add_module("a.out", 4096, 1024, vec!["main.c".into()]);
        AppModel {
            name: "toy".into(),
            ranks: 1,
            threads_per_rank: 1,
            input_desc: "n=1".into(),
            sites: vec![
                (SiteId(0), CallStack::new(vec![Frame::new(ModuleId(0), 0x40)])),
                (SiteId(1), CallStack::new(vec![Frame::new(ModuleId(0), 0x80)])),
            ],
            binmap: b.build(),
            function_names: vec!["kernel".into()],
            phases: vec![
                PhaseSpec {
                    label: None,
                    compute_instructions: 1e6,
                    allocs: vec![
                        AllocOp { site: SiteId(0), size: 1 << 20, count: 1 },
                        AllocOp { site: SiteId(1), size: 1 << 10, count: 4 },
                    ],
                    frees: vec![FreeOp { site: SiteId(1), count: 2 }],
                    accesses: vec![AccessSpec {
                        site: SiteId(0),
                        function: FuncId(0),
                        loads: 1e6,
                        stores: 1e5,
                        llc_miss_rate: 0.1,
                        store_l1d_miss_rate: 0.2,
                        pattern: AccessPattern::Sequential,
                        instructions: 5e5,
                        reuse_hint: 0.0,
                    }],
                },
                PhaseSpec {
                    label: None,
                    compute_instructions: 1e6,
                    allocs: vec![],
                    frees: vec![
                        FreeOp { site: SiteId(0), count: 1 },
                        FreeOp { site: SiteId(1), count: 2 },
                    ],
                    accesses: vec![],
                },
            ],
        }
    }

    #[test]
    fn validates_and_counts() {
        let m = toy_model();
        m.validate().unwrap();
        assert_eq!(m.total_allocations(), 5);
    }

    #[test]
    fn hwm_tracks_peak_live_bytes() {
        let m = toy_model();
        assert_eq!(m.high_water_mark(), (1 << 20) + 4 * (1 << 10));
    }

    #[test]
    fn rejects_unknown_site_access() {
        let mut m = toy_model();
        m.phases[0].accesses[0].site = SiteId(9);
        assert!(m.validate().is_err());
    }

    #[test]
    fn rejects_over_free() {
        let mut m = toy_model();
        m.phases[1].frees.push(FreeOp { site: SiteId(0), count: 1 });
        assert!(m.validate().is_err());
    }

    #[test]
    fn rejects_bad_miss_rate() {
        let mut m = toy_model();
        m.phases[0].accesses[0].llc_miss_rate = 1.5;
        assert!(m.validate().is_err());
    }

    #[test]
    fn access_spec_derived_counts() {
        let a = &toy_model().phases[0].accesses[0];
        assert!((a.load_misses() - 1e5).abs() < 1e-6);
        assert!((a.store_misses() - 2e4).abs() < 1e-6);
        assert!((a.total_instructions() - 1.6e6).abs() < 1e-6);
    }

    #[test]
    fn pattern_factors_are_ordered() {
        assert!(AccessPattern::Sequential.mlp_factor() > AccessPattern::Random.mlp_factor());
        assert!(
            AccessPattern::Sequential.cache_conflict_factor()
                > AccessPattern::Random.cache_conflict_factor()
        );
    }
}
