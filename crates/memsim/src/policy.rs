//! Placement policies: who decides which tier serves an allocation.
//!
//! The engine consults a [`PlacementPolicy`] on every allocation (in
//! App Direct mode). FlexMalloc's report-driven interposer, the ProfDP
//! ranking, and the kernel-tiering baseline all implement this trait; so do
//! the trivial policies below used for profiling runs and tests.

use memtrace::{CallStack, ObjectId, SiteId, TierId};

/// Everything a policy may inspect when placing one allocation — the same
/// information FlexMalloc has when it intercepts a `malloc`.
#[derive(Debug, Clone)]
pub struct AllocContext<'a> {
    /// Allocation site.
    pub site: SiteId,
    /// The site's call stack (canonical form).
    pub stack: &'a CallStack,
    /// Requested bytes.
    pub size: u64,
    /// Phase ordinal in which the allocation happens.
    pub phase: u32,
    /// Simulated time of the allocation, seconds.
    pub time: f64,
}

/// Requested migrations at a phase boundary: move `object` to `tier`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Migration {
    /// Object to move.
    pub object: ObjectId,
    /// Destination tier.
    pub to: TierId,
}

/// Per-phase observation handed to reactive policies (the kernel-tiering
/// baseline) after each phase: how hot each live object was.
#[derive(Debug, Clone)]
pub struct PhaseObservation {
    /// Phase ordinal that just finished.
    pub phase: u32,
    /// `(object, site, size, tier, llc_misses_this_phase)` per live object.
    pub objects: Vec<(ObjectId, SiteId, u64, TierId, f64)>,
}

/// A placement policy.
pub trait PlacementPolicy {
    /// Human-readable policy name for reports.
    fn name(&self) -> &str;

    /// Chooses the preferred tier for an allocation. The engine falls back
    /// to [`Self::fallback`] (then to any tier with space) when the
    /// preferred tier is full.
    fn place(&mut self, ctx: &AllocContext<'_>) -> TierId;

    /// Tier for out-of-space spills and (for report-driven policies)
    /// unlisted call stacks.
    fn fallback(&self) -> TierId;

    /// Fixed time cost the policy adds to every intercepted allocation
    /// (call-stack capture + matching). Zero for hardware/trivial policies.
    fn overhead_seconds_per_alloc(&self) -> f64 {
        0.0
    }

    /// DRAM bytes the policy itself pins resident (per job): debug
    /// information in human-readable matching mode, kernel page metadata
    /// for the tiering baseline. The engine deducts this from the DRAM
    /// heap capacity.
    fn resident_dram_bytes(&self) -> u64 {
        0
    }

    /// Called after every phase with per-object heat; reactive policies
    /// return migrations to apply before the next phase. Proactive
    /// policies ignore this.
    fn observe_phase(&mut self, _obs: &PhaseObservation) -> Vec<Migration> {
        Vec::new()
    }

    /// Fixed time cost per applied migration, on top of the bytes-moved /
    /// tier-bandwidth transfer term: the syscall + page-table work of a
    /// `move_pages`-style remap. Zero for policies that never migrate.
    fn migration_overhead_seconds(&self) -> f64 {
        0.0
    }
}

/// Places everything in one tier. `FixedTier::new(TierId::DRAM)` models an
/// unconstrained-DRAM profiling run; `FixedTier::new(TierId::PMEM)` models
/// uncached App Direct PMem.
#[derive(Debug, Clone)]
pub struct FixedTier {
    tier: TierId,
    fallback: TierId,
    name: String,
}

impl FixedTier {
    /// Policy that places (and falls back) on `tier`.
    pub fn new(tier: TierId) -> Self {
        FixedTier { tier, fallback: tier, name: format!("fixed-{tier}") }
    }

    /// Policy preferring `tier` but spilling to `fallback`.
    pub fn with_fallback(tier: TierId, fallback: TierId) -> Self {
        FixedTier { tier, fallback, name: format!("fixed-{tier}-fb-{fallback}") }
    }
}

impl PlacementPolicy for FixedTier {
    fn name(&self) -> &str {
        &self.name
    }

    fn place(&mut self, _ctx: &AllocContext<'_>) -> TierId {
        self.tier
    }

    fn fallback(&self) -> TierId {
        self.fallback
    }
}

/// Places allocations by an explicit site → tier map, with a fallback for
/// unmapped sites. Used for oracle placements in tests and by baselines
/// that reason per site rather than per call stack.
#[derive(Debug, Clone)]
pub struct SiteMapPolicy {
    map: std::collections::HashMap<SiteId, TierId>,
    fallback: TierId,
    name: String,
}

impl SiteMapPolicy {
    /// Builds the policy from `(site, tier)` pairs.
    pub fn new(pairs: impl IntoIterator<Item = (SiteId, TierId)>, fallback: TierId) -> Self {
        SiteMapPolicy { map: pairs.into_iter().collect(), fallback, name: "site-map".into() }
    }

    /// Renames the policy for reporting.
    pub fn named(mut self, name: &str) -> Self {
        self.name = name.into();
        self
    }

    /// Tier assigned to a site, if any.
    pub fn tier_for(&self, site: SiteId) -> Option<TierId> {
        self.map.get(&site).copied()
    }
}

impl PlacementPolicy for SiteMapPolicy {
    fn name(&self) -> &str {
        &self.name
    }

    fn place(&mut self, ctx: &AllocContext<'_>) -> TierId {
        self.map.get(&ctx.site).copied().unwrap_or(self.fallback)
    }

    fn fallback(&self) -> TierId {
        self.fallback
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memtrace::{CallStack, Frame, ModuleId};

    #[test]
    fn fixed_tier_places_everything_in_one_tier() {
        let stack = CallStack::new(vec![Frame::new(ModuleId(0), 0)]);
        let ctx = AllocContext { site: SiteId(0), stack: &stack, size: 64, phase: 0, time: 0.0 };
        let mut p = FixedTier::new(TierId::PMEM);
        assert_eq!(p.place(&ctx), TierId::PMEM);
        assert_eq!(p.fallback(), TierId::PMEM);
        assert_eq!(p.overhead_seconds_per_alloc(), 0.0);
        assert_eq!(p.resident_dram_bytes(), 0);
    }

    #[test]
    fn with_fallback_differs() {
        let p = FixedTier::with_fallback(TierId::DRAM, TierId::PMEM);
        assert_eq!(p.fallback(), TierId::PMEM);
        assert!(p.name().contains("fixed-tier0"));
    }

    #[test]
    fn site_map_policy_routes_and_falls_back() {
        let stack = CallStack::new(vec![Frame::new(ModuleId(0), 0)]);
        let mut p = SiteMapPolicy::new([(SiteId(1), TierId::DRAM)], TierId::PMEM).named("oracle");
        let ctx1 = AllocContext { site: SiteId(1), stack: &stack, size: 64, phase: 0, time: 0.0 };
        let ctx2 = AllocContext { site: SiteId(2), stack: &stack, size: 64, phase: 0, time: 0.0 };
        assert_eq!(p.place(&ctx1), TierId::DRAM);
        assert_eq!(p.place(&ctx2), TierId::PMEM);
        assert_eq!(p.tier_for(SiteId(1)), Some(TierId::DRAM));
        assert_eq!(p.tier_for(SiteId(9)), None);
        assert_eq!(p.name(), "oracle");
    }
}
