//! Parallel memoized experiment runner core.
//!
//! Reproducing the paper's tables means running the same deterministic
//! simulations over and over: every bench binary re-simulates the
//! Memory-Mode baseline and the unconstrained-DRAM profiling run for each
//! sweep cell, even though the engine is a pure function of its inputs. This
//! module provides the two pieces that remove that redundancy without any
//! new dependencies (the registry is offline):
//!
//! * a content-addressed [`RunCache`]: results are keyed by a stable hash of
//!   `(AppModel, MachineConfig, ExecMode, policy tag)` ([`RunKey`]), so a
//!   run shared across tables is simulated exactly once per process;
//! * a work-stealing [`parallel_map`] built on `std::thread::scope`, used by
//!   `ecohmem-core::experiments` and the bench runner to spread independent
//!   sweep cells over `--jobs N` / `ECOHMEM_JOBS` worker threads.
//!
//! Determinism guarantees: the engine is a pure deterministic function, so a
//! cached result is bit-identical to a fresh `engine::run` with the same
//! inputs, and [`parallel_map`] returns results in submission order no
//! matter how jobs interleave across workers. Output produced from runner
//! results is therefore byte-identical to the serial path.
//!
//! Only deterministic, stateless-config policies should be cached (the
//! `FixedTier` family via [`RunCache::run_fixed`]): the policy tag is the
//! caller's promise that the tag fully determines the policy's behaviour.
//! Stateful or report-driven policies (FlexMalloc deploy runs, reactive
//! tiering) must keep calling [`crate::engine::run`] directly.

use crate::counters::RunResult;
use crate::engine::{self, ExecMode};
use crate::machine::MachineConfig;
use crate::model::AppModel;
use crate::policy::{FixedTier, PlacementPolicy};
use memtrace::TierId;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

// The cache shares AppModel/MachineConfig references across worker threads;
// keep that guaranteed at compile time.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<AppModel>();
    assert_send_sync::<MachineConfig>();
    assert_send_sync::<ExecMode>();
    assert_send_sync::<RunResult>();
    assert_send_sync::<RunCache>();
};

pub use crate::stablehash::stable_hash;

/// Structural identity of the fleet cell a run was simulated inside.
///
/// A fleet cell is one tenant's slice of one node under one scheduler: the
/// same app on the same *sliced* machine can legitimately produce different
/// results standalone vs inside a colocation (the slice machine differs),
/// but the cache must also never alias two fleet cells whose colocation
/// context differs even when the slice happens to coincide. Both hashes are
/// `stable_hash` values over structural fleet state (see
/// `fleet::cell_key`), so new fleet-config fields flow into the key via
/// `StableHash`'s exhaustive-destructure impls — forgetting one is a
/// compile error there, not a silent cache alias here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FleetCellKey {
    /// `stable_hash` of the canonical colocation mix the tenant runs in
    /// (resident apps, grants and shares, in canonical resident order).
    pub colocation: u64,
    /// `stable_hash` of the fleet scheduler configuration.
    pub scheduler: u64,
}

/// Content-addressed identity of one engine run.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RunKey {
    /// `stable_hash` of the application model.
    pub app: u64,
    /// `stable_hash` of the machine configuration.
    pub machine: u64,
    /// Execution mode.
    pub mode: ExecMode,
    /// Caller-chosen tag that fully determines the policy's behaviour
    /// (e.g. `fixed:dram`, `fixed:dram>pmem`).
    pub policy: String,
    /// Fleet cell context, `None` for standalone single-machine runs.
    /// Keeps warmed single-node cache entries from ever satisfying a
    /// fleet lookup (and vice versa), and separates colocation mixes.
    pub fleet: Option<FleetCellKey>,
}

impl RunKey {
    /// Derives the key for a standalone `(app, machine, mode, policy)`
    /// combination.
    pub fn new(
        app: &AppModel,
        machine: &MachineConfig,
        mode: ExecMode,
        policy_tag: impl Into<String>,
    ) -> Self {
        let _span = ecohmem_obs::span("memsim.cache.key");
        RunKey {
            app: stable_hash(app),
            machine: stable_hash(machine),
            mode,
            policy: policy_tag.into(),
            fleet: None,
        }
    }

    /// Rekeys this run as belonging to a fleet cell.
    pub fn with_fleet(mut self, cell: FleetCellKey) -> Self {
        self.fleet = Some(cell);
        self
    }
}

type Slot = Arc<OnceLock<Arc<RunResult>>>;

/// In-process memoization table for deterministic engine runs.
///
/// Concurrent requests for the same key are collapsed: the first thread to
/// claim the slot simulates, everyone else blocks on the `OnceLock` and
/// shares the resulting `Arc`. Hit/miss counters feed the bench runner's
/// exit stats and the acceptance test that the memoized path performs
/// strictly fewer `engine::run` invocations than the serial seed path.
#[derive(Default)]
pub struct RunCache {
    slots: Mutex<HashMap<RunKey, Slot>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl RunCache {
    /// An empty cache.
    pub fn new() -> Self {
        RunCache::default()
    }

    /// Returns the cached result for `key`, simulating it on first request.
    ///
    /// `make_policy` must construct a policy whose behaviour is fully
    /// determined by `key.policy` — that is the caching contract.
    pub fn run_with(
        &self,
        key: RunKey,
        app: &AppModel,
        machine: &MachineConfig,
        mode: ExecMode,
        make_policy: impl FnOnce() -> Box<dyn PlacementPolicy>,
    ) -> Arc<RunResult> {
        let slot = { self.slots.lock().unwrap().entry(key).or_default().clone() };
        let mut ran = false;
        let result = slot
            .get_or_init(|| {
                ran = true;
                let mut policy = make_policy();
                Arc::new(engine::run(app, machine, mode, policy.as_mut()))
            })
            .clone();
        if ran {
            self.misses.fetch_add(1, Ordering::Relaxed);
            ecohmem_obs::incr("memsim.cache.misses");
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
            ecohmem_obs::incr("memsim.cache.hits");
        }
        result
    }

    /// Cached run under a [`FixedTier`] policy — covers the profiling runs
    /// and the Memory-Mode / App-Direct fixed-placement baselines shared
    /// across tables.
    pub fn run_fixed(
        &self,
        app: &AppModel,
        machine: &MachineConfig,
        mode: ExecMode,
        tier: TierId,
        fallback: Option<TierId>,
    ) -> Arc<RunResult> {
        let tag = match fallback {
            Some(f) if f != tier => format!("fixed:{tier}>{f}"),
            _ => format!("fixed:{tier}"),
        };
        let key = RunKey::new(app, machine, mode, tag);
        self.run_with(key, app, machine, mode, || match fallback {
            Some(f) if f != tier => Box::new(FixedTier::with_fallback(tier, f)),
            _ => Box::new(FixedTier::new(tier)),
        })
    }

    /// Number of requests served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of requests that had to simulate.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of distinct runs stored.
    pub fn len(&self) -> usize {
        self.slots.lock().unwrap().len()
    }

    /// True when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The process-global run cache shared by all bench binaries, pipelines and
/// baselines in this process.
pub fn global_cache() -> &'static RunCache {
    static CACHE: OnceLock<RunCache> = OnceLock::new();
    CACHE.get_or_init(RunCache::new)
}

/// Panic payload used by the kill-point hook; chaos harnesses match on it
/// to tell an injected crash from a real engine bug.
pub const KILL_POINT_PAYLOAD: &str = "memsim.kill_point";

/// Disarmed sentinel for the kill-point counter.
const KILL_DISARMED: i64 = -1;

static KILL_POINT: std::sync::atomic::AtomicI64 = std::sync::atomic::AtomicI64::new(KILL_DISARMED);

/// Arms the process-wide kill point: the `n`-th subsequent
/// [`kill_point_tick`] (0-based) panics with [`KILL_POINT_PAYLOAD`]. The
/// engine calls the tick once per simulated phase, so `n` selects a
/// deterministic crash offset inside a run. Chaos-testing only; the hook
/// costs one relaxed atomic load per phase when disarmed.
pub fn arm_kill_point(n: u64) {
    KILL_POINT.store(n.min(i64::MAX as u64) as i64, Ordering::SeqCst);
}

/// Disarms the kill point (idempotent). Call from chaos harnesses after a
/// caught injected crash so later runs proceed normally.
pub fn disarm_kill_point() {
    KILL_POINT.store(KILL_DISARMED, Ordering::SeqCst);
}

/// The kill-point probe. A no-op unless armed; when the armed countdown
/// reaches zero it disarms itself and panics with [`KILL_POINT_PAYLOAD`].
pub fn kill_point_tick() {
    let mut cur = KILL_POINT.load(Ordering::Relaxed);
    loop {
        if cur < 0 {
            return; // disarmed
        }
        let next = if cur == 0 { KILL_DISARMED } else { cur - 1 };
        match KILL_POINT.compare_exchange_weak(cur, next, Ordering::SeqCst, Ordering::SeqCst) {
            Ok(_) => {
                if cur == 0 {
                    std::panic::panic_any(KILL_POINT_PAYLOAD);
                }
                return;
            }
            Err(seen) => cur = seen,
        }
    }
}

/// Worker count from the `ECOHMEM_JOBS` environment variable, defaulting to
/// the machine's available parallelism.
pub fn jobs_from_env() -> usize {
    match std::env::var("ECOHMEM_JOBS").ok().and_then(|v| v.parse::<usize>().ok()) {
        Some(n) if n >= 1 => n,
        _ => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
    }
}

/// Applies `f` to every item on `jobs` worker threads and returns the
/// results in submission order.
///
/// Items are dealt round-robin into per-worker deques; a worker drains its
/// own deque from the front and steals from the back of its neighbours'
/// when empty. No work is ever enqueued after the workers start, so an
/// all-empty scan means done. Results land at the item's original index,
/// making the output independent of scheduling.
pub fn parallel_map<T, R, F>(items: Vec<T>, jobs: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    // `jobs` is an upper bound: oversubscribing the machine only adds
    // scheduling and lock contention, never throughput, and results are
    // order-restored so the worker count is unobservable in the output.
    let cores = std::thread::available_parallelism().map(|c| c.get()).unwrap_or(1);
    let workers = jobs.max(1).min(n).min(cores);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }

    let queues: Vec<Mutex<VecDeque<(usize, T)>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    for (i, item) in items.into_iter().enumerate() {
        queues[i % workers].lock().unwrap().push_back((i, item));
    }
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();

    {
        let queues = &queues;
        let results = &results;
        let f = &f;
        std::thread::scope(|scope| {
            for w in 0..workers {
                scope.spawn(move || loop {
                    let job = queues[w].lock().unwrap().pop_front().or_else(|| {
                        (1..workers)
                            .find_map(|d| queues[(w + d) % workers].lock().unwrap().pop_back())
                    });
                    let Some((i, item)) = job else { break };
                    *results[i].lock().unwrap() = Some(f(item));
                });
            }
        });
    }

    results
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("worker completed every job"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        for jobs in [1, 2, 3, 8] {
            let out = parallel_map((0..100).collect(), jobs, |i: i32| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>(), "jobs={jobs}");
        }
    }

    #[test]
    fn parallel_map_handles_edge_sizes() {
        assert_eq!(parallel_map(Vec::<i32>::new(), 4, |i| i), Vec::<i32>::new());
        assert_eq!(parallel_map(vec![7], 4, |i| i + 1), vec![8]);
        // More workers than items must not deadlock or drop work.
        assert_eq!(parallel_map(vec![1, 2], 16, |i| i), vec![1, 2]);
    }

    #[test]
    fn stable_hash_distinguishes_and_repeats() {
        let a = MachineConfig::optane_pmem6();
        let b = MachineConfig::optane_pmem2();
        assert_eq!(stable_hash(&a), stable_hash(&a));
        assert_ne!(stable_hash(&a), stable_hash(&b));
    }

    #[test]
    fn run_keys_separate_modes_and_policies() {
        let m = MachineConfig::optane_pmem6();
        let mk = |mode, tag: &str| RunKey {
            app: 1,
            machine: stable_hash(&m),
            mode,
            policy: tag.into(),
            fleet: None,
        };
        assert_ne!(mk(ExecMode::AppDirect, "fixed:dram"), mk(ExecMode::MemoryMode, "fixed:dram"));
        assert_ne!(
            mk(ExecMode::AppDirect, "fixed:dram"),
            mk(ExecMode::AppDirect, "fixed:dram>pmem")
        );
        assert_eq!(mk(ExecMode::AppDirect, "fixed:dram"), mk(ExecMode::AppDirect, "fixed:dram"));
        // Fleet cells never alias the standalone key, nor each other.
        let base = mk(ExecMode::AppDirect, "fixed:dram");
        let cell = |c, s| FleetCellKey { colocation: c, scheduler: s };
        assert_ne!(base.clone().with_fleet(cell(1, 2)), base);
        assert_ne!(base.clone().with_fleet(cell(1, 2)), base.clone().with_fleet(cell(3, 2)));
        assert_ne!(base.clone().with_fleet(cell(1, 2)), base.clone().with_fleet(cell(1, 4)));
    }

    #[test]
    fn kill_point_fires_once_at_the_armed_offset() {
        // Serialized with a lock in spirit: this test owns the global
        // counter; nothing else in this crate arms it.
        disarm_kill_point();
        kill_point_tick(); // disarmed: no-op
        arm_kill_point(2);
        kill_point_tick();
        kill_point_tick();
        let hit = std::panic::catch_unwind(kill_point_tick).expect_err("third tick crashes");
        assert_eq!(hit.downcast_ref::<&str>(), Some(&KILL_POINT_PAYLOAD));
        kill_point_tick(); // auto-disarmed after firing
    }
}
