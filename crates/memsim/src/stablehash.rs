//! Structural content hashing for engine-cache keys.
//!
//! [`stable_hash`] drives [`crate::runner::RunKey`]: the cache must re-run
//! the engine whenever *any* model field changes, so the hash has to cover
//! the full `AppModel`/`MachineConfig` content. The original
//! implementation canonicalized through the `Debug` rendering, which is
//! correct but costs milliseconds per lookup on the large models —
//! shortest-round-trip float formatting over a multi-megabyte string, paid
//! on cache *hits* too. [`StableHash`] walks the same structure directly:
//! every primitive feeds the hash state as machine words (floats as raw
//! bits, strings as bytes), nothing is ever formatted, and a full
//! `AppModel` hashes in tens of microseconds.
//!
//! Field coverage is enforced mechanically: every struct impl begins with
//! an exhaustive destructuring pattern, so adding a field to a hashed
//! model type fails compilation here until the new field joins the hash.
//! (The two exceptions, [`CallStack`] and [`BinaryMap`], keep their fields
//! private behind total accessors — `frames()` and `modules()` return the
//! entire state by construction.)

use crate::cache::CacheModelCfg;
use crate::curve::LatencyCurve;
use crate::machine::MachineConfig;
use crate::model::{AccessPattern, AccessSpec, AllocOp, AppModel, FreeOp, PhaseSpec};
use crate::tier::{TierKind, TierSpec};
use memtrace::binmap::{BinaryMap, LineEntry, ModuleInfo};
use memtrace::{CallStack, Frame, FuncId, ModuleId, SiteId, TierId};

/// Stable content hash of a value, used to derive cache keys.
///
/// Deterministic within a process and across runs — everything an
/// in-process cache needs. Collisions only cost a wrong table cell, and
/// 64 bits over dozens of keys makes that vanishingly unlikely.
pub fn stable_hash<T: StableHash + ?Sized>(value: &T) -> u64 {
    let mut h = Hasher::default();
    value.hash_into(&mut h);
    h.finish()
}

/// Feeds a value's full content into a [`Hasher`]. Implementations must
/// cover every field — see the module docs for how that is enforced.
pub trait StableHash {
    fn hash_into(&self, h: &mut Hasher);
}

/// Domain tags keep differently-typed values with equal bit patterns from
/// colliding (e.g. the empty string vs the empty sequence).
const TAG_UINT: u64 = 1;
const TAG_FLOAT: u64 = 2;
const TAG_STR: u64 = 3;
const TAG_NONE: u64 = 4;
const TAG_SOME: u64 = 5;
const TAG_VARIANT: u64 = 6;
const TAG_SEQ: u64 = 7;
const TAG_STRUCT: u64 = 8;

/// Multiply-mix word hasher: eight bytes per multiply instead of the
/// byte-serial FNV it replaces, with a splitmix64 finalizer.
#[derive(Default)]
pub struct Hasher {
    state: u64,
}

impl Hasher {
    #[inline]
    fn word(&mut self, w: u64) {
        self.state = (self.state ^ w).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        self.state ^= self.state >> 29;
    }

    /// Feeds the struct shape tag. External `StableHash` impls (e.g. the
    /// fleet configuration types) call this before hashing their fields so
    /// they mix exactly like the in-module `hash_fields!` expansions.
    pub fn tag_struct(&mut self) {
        self.word(TAG_STRUCT);
    }

    /// Feeds an enum variant tag with its ordinal.
    pub fn tag_variant(&mut self, ordinal: u64) {
        self.word(TAG_VARIANT);
        self.word(ordinal);
    }

    fn bytes(&mut self, b: &[u8]) {
        self.word(b.len() as u64);
        let mut chunks = b.chunks_exact(8);
        for c in &mut chunks {
            self.word(u64::from_le_bytes(c.try_into().expect("exact chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rem.len()].copy_from_slice(rem);
            self.word(u64::from_le_bytes(tail));
        }
    }

    fn finish(self) -> u64 {
        // splitmix64 finalizer: avalanche the mixed state so low-entropy
        // inputs still spread over all 64 output bits.
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

macro_rules! hash_as_uint {
    ($($t:ty),*) => {$(
        impl StableHash for $t {
            fn hash_into(&self, h: &mut Hasher) {
                h.word(TAG_UINT);
                h.word(*self as u64);
            }
        }
    )*};
}

hash_as_uint!(u8, u16, u32, u64, usize, bool);

impl StableHash for f64 {
    fn hash_into(&self, h: &mut Hasher) {
        h.word(TAG_FLOAT);
        h.word(self.to_bits());
    }
}

impl StableHash for str {
    fn hash_into(&self, h: &mut Hasher) {
        h.word(TAG_STR);
        h.bytes(self.as_bytes());
    }
}

impl StableHash for String {
    fn hash_into(&self, h: &mut Hasher) {
        self.as_str().hash_into(h);
    }
}

impl<T: StableHash> StableHash for [T] {
    fn hash_into(&self, h: &mut Hasher) {
        h.word(TAG_SEQ);
        h.word(self.len() as u64);
        for item in self {
            item.hash_into(h);
        }
    }
}

impl<T: StableHash> StableHash for Vec<T> {
    fn hash_into(&self, h: &mut Hasher) {
        self.as_slice().hash_into(h);
    }
}

impl<T: StableHash> StableHash for Option<T> {
    fn hash_into(&self, h: &mut Hasher) {
        match self {
            None => h.word(TAG_NONE),
            Some(v) => {
                h.word(TAG_SOME);
                v.hash_into(h);
            }
        }
    }
}

impl<A: StableHash, B: StableHash> StableHash for (A, B) {
    fn hash_into(&self, h: &mut Hasher) {
        h.word(TAG_SEQ);
        h.word(2);
        self.0.hash_into(h);
        self.1.hash_into(h);
    }
}

impl<A: StableHash, B: StableHash, C: StableHash> StableHash for (A, B, C) {
    fn hash_into(&self, h: &mut Hasher) {
        h.word(TAG_SEQ);
        h.word(3);
        self.0.hash_into(h);
        self.1.hash_into(h);
        self.2.hash_into(h);
    }
}

macro_rules! hash_id_newtype {
    ($($t:ty),*) => {$(
        impl StableHash for $t {
            fn hash_into(&self, h: &mut Hasher) {
                self.0.hash_into(h);
            }
        }
    )*};
}

hash_id_newtype!(SiteId, FuncId, ModuleId, TierId);

/// Hashes a struct: a shape tag, then every field in declaration order.
/// The field list comes from an exhaustive destructuring at the call site,
/// which is what makes forgetting a field a compile error.
macro_rules! hash_fields {
    ($h:ident, $($f:ident),+) => {{
        $h.word(TAG_STRUCT);
        $($f.hash_into($h);)+
    }};
}

impl StableHash for AppModel {
    fn hash_into(&self, h: &mut Hasher) {
        let AppModel {
            name,
            ranks,
            threads_per_rank,
            input_desc,
            sites,
            binmap,
            function_names,
            phases,
        } = self;
        hash_fields!(
            h,
            name,
            ranks,
            threads_per_rank,
            input_desc,
            sites,
            binmap,
            function_names,
            phases
        );
    }
}

impl StableHash for PhaseSpec {
    fn hash_into(&self, h: &mut Hasher) {
        let PhaseSpec { label, compute_instructions, allocs, frees, accesses } = self;
        hash_fields!(h, label, compute_instructions, allocs, frees, accesses);
    }
}

impl StableHash for AllocOp {
    fn hash_into(&self, h: &mut Hasher) {
        let AllocOp { site, size, count } = self;
        hash_fields!(h, site, size, count);
    }
}

impl StableHash for FreeOp {
    fn hash_into(&self, h: &mut Hasher) {
        let FreeOp { site, count } = self;
        hash_fields!(h, site, count);
    }
}

impl StableHash for AccessSpec {
    fn hash_into(&self, h: &mut Hasher) {
        let AccessSpec {
            site,
            function,
            loads,
            stores,
            llc_miss_rate,
            store_l1d_miss_rate,
            pattern,
            instructions,
            reuse_hint,
        } = self;
        hash_fields!(
            h,
            site,
            function,
            loads,
            stores,
            llc_miss_rate,
            store_l1d_miss_rate,
            pattern,
            instructions,
            reuse_hint
        );
    }
}

impl StableHash for AccessPattern {
    fn hash_into(&self, h: &mut Hasher) {
        h.word(TAG_VARIANT);
        h.word(match self {
            AccessPattern::Sequential => 0,
            AccessPattern::Strided => 1,
            AccessPattern::Random => 2,
        });
    }
}

impl StableHash for MachineConfig {
    fn hash_into(&self, h: &mut Hasher) {
        let MachineConfig {
            name,
            tiers,
            cores,
            freq_ghz,
            base_ipc,
            cacheline,
            mlp_per_core,
            cache_cfg,
        } = self;
        hash_fields!(h, name, tiers, cores, freq_ghz, base_ipc, cacheline, mlp_per_core, cache_cfg);
    }
}

impl StableHash for TierSpec {
    fn hash_into(&self, h: &mut Hasher) {
        let TierSpec {
            id,
            name,
            kind,
            capacity,
            peak_read_bw,
            peak_write_bw,
            read_curve,
            write_curve,
            amp_strided,
            amp_random,
        } = self;
        hash_fields!(
            h,
            id,
            name,
            kind,
            capacity,
            peak_read_bw,
            peak_write_bw,
            read_curve,
            write_curve,
            amp_strided,
            amp_random
        );
    }
}

impl StableHash for TierKind {
    fn hash_into(&self, h: &mut Hasher) {
        h.word(TAG_VARIANT);
        h.word(match self {
            TierKind::Dram => 0,
            TierKind::Pmem => 1,
            TierKind::Hbm => 2,
            TierKind::Cxl => 3,
        });
    }
}

impl StableHash for LatencyCurve {
    fn hash_into(&self, h: &mut Hasher) {
        let LatencyCurve { base_ns, span_ns, alpha } = self;
        hash_fields!(h, base_ns, span_ns, alpha);
    }
}

impl StableHash for CacheModelCfg {
    fn hash_into(&self, h: &mut Hasher) {
        let CacheModelCfg { effective_fraction } = self;
        hash_fields!(h, effective_fraction);
    }
}

impl StableHash for Frame {
    fn hash_into(&self, h: &mut Hasher) {
        let Frame { module, offset } = self;
        hash_fields!(h, module, offset);
    }
}

impl StableHash for CallStack {
    fn hash_into(&self, h: &mut Hasher) {
        // `frames()` is the stack's entire state.
        self.frames().hash_into(h);
    }
}

impl StableHash for BinaryMap {
    fn hash_into(&self, h: &mut Hasher) {
        // `modules()` is the map's entire state.
        self.modules().hash_into(h);
    }
}

impl StableHash for ModuleInfo {
    fn hash_into(&self, h: &mut Hasher) {
        let ModuleInfo { id, name, text_size, debug_info_size, files, line_table } = self;
        hash_fields!(h, id, name, text_size, debug_info_size, files, line_table);
    }
}

impl StableHash for LineEntry {
    fn hash_into(&self, h: &mut Hasher) {
        let LineEntry { start, end, file, line } = self;
        hash_fields!(h, start, end, file, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinguishes_values_and_repeats() {
        assert_eq!(stable_hash(&42u64), stable_hash(&42u64));
        assert_ne!(stable_hash(&42u64), stable_hash(&43u64));
        assert_ne!(stable_hash(&1.0f64), stable_hash(&1u64));
        assert_ne!(stable_hash(&Some(0u64)), stable_hash(&0u64));
        assert_ne!(stable_hash(""), stable_hash(&Vec::<u64>::new()));
    }

    #[test]
    fn float_bit_patterns_matter() {
        assert_ne!(stable_hash(&0.0f64), stable_hash(&-0.0f64));
        assert_ne!(stable_hash(&1.0f64), stable_hash(&1.0000000000000002f64));
    }

    #[test]
    fn sequences_hash_by_content_and_shape() {
        assert_eq!(stable_hash(&vec![1u64, 2]), stable_hash(&vec![1u64, 2]));
        assert_ne!(stable_hash(&vec![1u64, 2]), stable_hash(&vec![2u64, 1]));
        assert_ne!(stable_hash(&vec![vec![1u64], vec![]]), stable_hash(&vec![vec![], vec![1u64]]));
    }

    #[test]
    fn model_edits_change_the_hash() {
        let a = MachineConfig::optane_pmem6();
        let mut b = a.clone();
        assert_eq!(stable_hash(&a), stable_hash(&b));
        b.tiers[1].peak_read_bw += 1.0;
        assert_ne!(stable_hash(&a), stable_hash(&b));
    }
}
