//! Memory tier (subsystem) specifications.

use crate::curve::LatencyCurve;
use crate::model::AccessPattern;
use memtrace::TierId;
use serde::{Deserialize, Serialize};

/// The technology behind a tier. Only used for labeling and defaults; all
/// algorithmic behaviour flows from the numeric parameters, which is what
/// lets the same framework target KNL MCDRAM, Optane, HBM, or CXL pools.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TierKind {
    /// Conventional DDR DRAM.
    Dram,
    /// Byte-addressable persistent memory (Optane PMem).
    Pmem,
    /// On-package high-bandwidth memory.
    Hbm,
    /// CXL-attached memory pool.
    Cxl,
}

/// One memory subsystem: capacity plus its bandwidth/latency behaviour.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TierSpec {
    /// Tier identifier; must equal the tier's index in the machine config.
    pub id: TierId,
    /// Human name used in reports ("dram", "pmem", ...).
    pub name: String,
    /// Technology label.
    pub kind: TierKind,
    /// Usable capacity in bytes.
    pub capacity: u64,
    /// Peak sustained read bandwidth, bytes/second.
    pub peak_read_bw: f64,
    /// Peak sustained write bandwidth, bytes/second. For Optane this is
    /// several times lower than read — the reason §V adds store weighting.
    pub peak_write_bw: f64,
    /// Loaded-latency curve for reads.
    pub read_curve: LatencyCurve,
    /// Loaded-latency curve for writes.
    pub write_curve: LatencyCurve,
    /// Media traffic amplification for strided access. DRAM ≈ 1; Optane
    /// reads whole 256-byte XPLines, so non-unit strides waste media
    /// bandwidth — the paper's "large access block sizes" penalty.
    pub amp_strided: f64,
    /// Media traffic amplification for random access (up to 4× on Optane:
    /// one 64 B line per 256 B XPLine).
    pub amp_random: f64,
}

impl TierSpec {
    /// Media-bandwidth amplification factor for an access pattern.
    pub fn amplification(&self, pattern: AccessPattern) -> f64 {
        match pattern {
            AccessPattern::Sequential => 1.0,
            AccessPattern::Strided => self.amp_strided,
            AccessPattern::Random => self.amp_random,
        }
    }

    /// Combined utilization of the tier given read and write demand in
    /// bytes/second. Reads and writes share device resources, so
    /// utilizations add. Zero demand contributes zero utilization even on a
    /// degenerate tier with zero peak bandwidth (0/0 must not yield NaN).
    pub fn utilization(&self, read_bw: f64, write_bw: f64) -> f64 {
        safe_ratio(read_bw, self.peak_read_bw) + safe_ratio(write_bw, self.peak_write_bw)
    }

    /// Read latency at the given traffic level.
    pub fn read_latency_ns(&self, read_bw: f64, write_bw: f64) -> f64 {
        self.read_curve.latency_ns(self.utilization(read_bw, write_bw))
    }

    /// Write latency at the given traffic level.
    pub fn write_latency_ns(&self, read_bw: f64, write_bw: f64) -> f64 {
        self.write_curve.latency_ns(self.utilization(read_bw, write_bw))
    }

    /// Minimum time (seconds) the tier needs to move the given volumes —
    /// the bandwidth bound on a phase. Zero volume costs zero time even on a
    /// tier with zero peak bandwidth; positive volume on such a tier is
    /// unservable and reported as infinite (never NaN), which the phase
    /// solve clamps.
    pub fn transfer_time(&self, read_bytes: f64, write_bytes: f64) -> f64 {
        safe_ratio(read_bytes, self.peak_read_bw) + safe_ratio(write_bytes, self.peak_write_bw)
    }
}

/// `demand / peak` made total: a zero (or otherwise degenerate) peak with no
/// demand is free, and with demand is unservable (+inf) rather than NaN.
fn safe_ratio(demand: f64, peak: f64) -> f64 {
    if demand <= 0.0 {
        0.0
    } else if peak > 0.0 {
        demand / peak
    } else {
        f64::INFINITY
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dram() -> TierSpec {
        TierSpec {
            id: TierId::DRAM,
            name: "dram".into(),
            kind: TierKind::Dram,
            capacity: 16 << 30,
            peak_read_bw: 24e9,
            peak_write_bw: 20e9,
            read_curve: LatencyCurve::new(90.0, 38.0, 4.0),
            write_curve: LatencyCurve::new(95.0, 45.0, 4.0),
            amp_strided: 1.0,
            amp_random: 1.0,
        }
    }

    #[test]
    fn amplification_by_pattern() {
        let mut t = dram();
        t.amp_strided = 1.6;
        t.amp_random = 4.0;
        assert_eq!(t.amplification(AccessPattern::Sequential), 1.0);
        assert_eq!(t.amplification(AccessPattern::Strided), 1.6);
        assert_eq!(t.amplification(AccessPattern::Random), 4.0);
    }

    #[test]
    fn utilization_adds_reads_and_writes() {
        let t = dram();
        let u = t.utilization(12e9, 10e9);
        assert!((u - (0.5 + 0.5)).abs() < 1e-12);
    }

    #[test]
    fn loaded_latency_exceeds_idle() {
        let t = dram();
        assert!(t.read_latency_ns(20e9, 0.0) > t.read_latency_ns(1e9, 0.0));
        assert!(t.write_latency_ns(0.0, 18e9) > t.write_latency_ns(0.0, 1e9));
    }

    #[test]
    fn zero_demand_on_zero_bandwidth_tier_is_free() {
        // Regression (satellite 1): 0/0 used to evaluate to NaN and poison
        // the phase fixed point through `transfer_time`/`utilization`.
        let mut t = dram();
        t.peak_read_bw = 0.0;
        t.peak_write_bw = 0.0;
        assert_eq!(t.utilization(0.0, 0.0), 0.0);
        assert_eq!(t.transfer_time(0.0, 0.0), 0.0);
        // Positive demand on a dead tier is unservable, not undefined.
        assert_eq!(t.transfer_time(1e9, 0.0), f64::INFINITY);
        assert_eq!(t.utilization(0.0, 1e9), f64::INFINITY);
    }

    #[test]
    fn transfer_time_is_linear_in_volume() {
        let t = dram();
        let one = t.transfer_time(24e9, 0.0);
        assert!((one - 1.0).abs() < 1e-9);
        assert!((t.transfer_time(48e9, 0.0) - 2.0).abs() < 1e-9);
    }
}
