//! Integration tests for reactive migrations through the engine: the
//! policy-driven object movement the kernel-tiering baseline relies on.

use memsim::policy::{AllocContext, Migration, PhaseObservation, PlacementPolicy};
use memsim::{
    run, AccessPattern, AccessSpec, AllocOp, AppModel, ExecMode, FreeOp, MachineConfig, PhaseSpec,
};
use memtrace::{BinaryMapBuilder, CallStack, Frame, FuncId, ModuleId, ObjectId, SiteId, TierId};

/// Promotes every observed object to DRAM after the first phase.
struct PromoteAll {
    fired: bool,
}

impl PlacementPolicy for PromoteAll {
    fn name(&self) -> &str {
        "promote-all"
    }
    fn place(&mut self, _: &AllocContext<'_>) -> TierId {
        TierId::PMEM
    }
    fn fallback(&self) -> TierId {
        TierId::PMEM
    }
    fn observe_phase(&mut self, obs: &PhaseObservation) -> Vec<Migration> {
        if self.fired {
            return Vec::new();
        }
        self.fired = true;
        obs.objects.iter().map(|&(object, ..)| Migration { object, to: TierId::DRAM }).collect()
    }
}

fn hot_model(phases: usize) -> AppModel {
    let mut b = BinaryMapBuilder::new();
    b.add_module("m.x", 64 * 1024, 1 << 20, vec!["m.c".into()]);
    let site = SiteId(0);
    let mut ps = vec![PhaseSpec {
        label: None,
        compute_instructions: 1e8,
        allocs: vec![AllocOp { site, size: 1 << 30, count: 2 }],
        frees: vec![],
        accesses: vec![],
    }];
    for _ in 0..phases {
        ps.push(PhaseSpec {
            label: None,
            compute_instructions: 1e8,
            allocs: vec![],
            frees: vec![],
            accesses: vec![AccessSpec {
                site,
                function: FuncId(0),
                loads: 2e9,
                stores: 2e8,
                llc_miss_rate: 0.4,
                store_l1d_miss_rate: 0.3,
                pattern: AccessPattern::Random,
                instructions: 1e8,
                reuse_hint: 0.0,
            }],
        });
    }
    ps.push(PhaseSpec {
        label: None,
        compute_instructions: 1e6,
        allocs: vec![],
        frees: vec![FreeOp { site, count: 2 }],
        accesses: vec![],
    });
    AppModel {
        name: "mig".into(),
        ranks: 1,
        threads_per_rank: 1,
        input_desc: String::new(),
        sites: vec![(site, CallStack::new(vec![Frame::new(ModuleId(0), 0x40)]))],
        binmap: b.build(),
        function_names: vec!["f".into()],
        phases: ps,
    }
}

#[test]
fn migration_moves_objects_and_speeds_up_subsequent_phases() {
    let machine = MachineConfig::optane_pmem6();
    let app = hot_model(6);
    let static_run =
        run(&app, &machine, ExecMode::AppDirect, &mut memsim::FixedTier::new(TierId::PMEM));
    let migrated_run = run(&app, &machine, ExecMode::AppDirect, &mut PromoteAll { fired: false });
    // Objects end up recorded in DRAM after promotion.
    assert!(migrated_run.objects.iter().all(|o| o.tier == TierId::DRAM));
    let moved: u64 = migrated_run.phases.iter().map(|p| p.migrated_bytes).sum();
    assert_eq!(moved, 2 << 30, "both objects migrated once");
    // The migrated run wins despite the migration cost (5 hot phases on
    // DRAM beat 6 on PMem).
    assert!(
        migrated_run.total_time < static_run.total_time,
        "migrated {:.2}s vs static {:.2}s",
        migrated_run.total_time,
        static_run.total_time
    );
}

#[test]
fn migration_to_a_full_tier_is_skipped_not_fatal() {
    /// Requests migration of a specific object into DRAM every phase.
    struct PromoteOne(ObjectId);
    impl PlacementPolicy for PromoteOne {
        fn name(&self) -> &str {
            "promote-one"
        }
        fn place(&mut self, _: &AllocContext<'_>) -> TierId {
            TierId::PMEM
        }
        fn fallback(&self) -> TierId {
            TierId::PMEM
        }
        fn observe_phase(&mut self, _: &PhaseObservation) -> Vec<Migration> {
            vec![Migration { object: self.0, to: TierId::DRAM }]
        }
    }
    let machine = MachineConfig::optane_pmem6();
    // One 20 GiB object: bigger than all of DRAM.
    let mut app = hot_model(2);
    app.phases[0].allocs[0] = AllocOp { site: SiteId(0), size: 20 << 30, count: 1 };
    app.phases.last_mut().unwrap().frees[0].count = 1;
    let r = run(&app, &machine, ExecMode::AppDirect, &mut PromoteOne(ObjectId(1)));
    assert_eq!(r.objects[0].tier, TierId::PMEM, "stayed where it fit");
    assert_eq!(r.phases.iter().map(|p| p.migrated_bytes).sum::<u64>(), 0);
}

#[test]
fn migration_of_dead_objects_is_ignored() {
    struct PromoteGhost;
    impl PlacementPolicy for PromoteGhost {
        fn name(&self) -> &str {
            "ghost"
        }
        fn place(&mut self, _: &AllocContext<'_>) -> TierId {
            TierId::PMEM
        }
        fn fallback(&self) -> TierId {
            TierId::PMEM
        }
        fn observe_phase(&mut self, _: &PhaseObservation) -> Vec<Migration> {
            vec![Migration { object: ObjectId(999), to: TierId::DRAM }]
        }
    }
    let machine = MachineConfig::optane_pmem6();
    let app = hot_model(2);
    let r = run(&app, &machine, ExecMode::AppDirect, &mut PromoteGhost);
    assert!(r.total_time > 0.0);
    assert_eq!(r.phases.iter().map(|p| p.migrated_bytes).sum::<u64>(), 0);
}
