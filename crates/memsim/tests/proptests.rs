//! Property tests over the engine: physical sanity for arbitrary small
//! application models.

use memsim::{
    run, AccessPattern, AccessSpec, AllocOp, AppModel, ExecMode, FixedTier, FreeOp, MachineConfig,
    PhaseSpec,
};
use memtrace::{BinaryMapBuilder, CallStack, Frame, FuncId, ModuleId, SiteId, TierId};
use proptest::prelude::*;

/// A small random-but-valid application model.
fn arb_model() -> impl Strategy<Value = AppModel> {
    let phase = (
        1e6f64..1e11, // compute instructions
        proptest::collection::vec((0u64..24, 1e5f64..5e9, 0.01f64..0.9, 0u8..3), 0..5),
    );
    proptest::collection::vec(phase, 1..8).prop_map(|phases| {
        let mut b = BinaryMapBuilder::new();
        b.add_module("p.x", 64 * 1024, 1 << 20, vec!["p.c".into()]);
        let n_sites = 24u32;
        let sites: Vec<(SiteId, CallStack)> = (0..n_sites)
            .map(|i| {
                (SiteId(i), CallStack::new(vec![Frame::new(ModuleId(0), 64 * u64::from(i) + 64)]))
            })
            .collect();
        let mut out_phases = Vec::new();
        // Allocate every site up front so accesses always have live objects.
        out_phases.push(PhaseSpec {
            label: None,
            compute_instructions: 1e8,
            allocs: (0..n_sites)
                .map(|i| AllocOp { site: SiteId(i), size: 1 << (18 + i % 10), count: 1 + i % 3 })
                .collect(),
            frees: vec![],
            accesses: vec![],
        });
        for (compute, accesses) in phases {
            out_phases.push(PhaseSpec {
                label: None,
                compute_instructions: compute,
                allocs: vec![],
                frees: vec![],
                accesses: accesses
                    .into_iter()
                    .map(|(site, loads, miss, pat)| AccessSpec {
                        site: SiteId((site % u64::from(n_sites)) as u32),
                        function: FuncId(0),
                        loads,
                        stores: loads * 0.2,
                        llc_miss_rate: miss,
                        store_l1d_miss_rate: miss * 0.5,
                        pattern: match pat {
                            0 => AccessPattern::Sequential,
                            1 => AccessPattern::Strided,
                            _ => AccessPattern::Random,
                        },
                        instructions: loads * 0.5,
                        reuse_hint: 0.0,
                    })
                    .collect(),
            });
        }
        out_phases.push(PhaseSpec {
            label: None,
            compute_instructions: 1e6,
            allocs: vec![],
            frees: (0..n_sites).map(|i| FreeOp { site: SiteId(i), count: 1 + i % 3 }).collect(),
            accesses: vec![],
        });
        AppModel {
            name: "prop".into(),
            ranks: 1,
            threads_per_rank: 1,
            input_desc: String::new(),
            sites,
            binmap: b.build(),
            function_names: vec!["f".into()],
            phases: out_phases,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The engine is deterministic and produces physically sane results:
    /// positive finite times, compute ≤ total, per-tier bandwidth below the
    /// device peaks (with the saturation clamp's slack), conserved objects.
    #[test]
    fn engine_results_are_sane(app in arb_model()) {
        let machine = MachineConfig::optane_pmem6();
        let a = run(&app, &machine, ExecMode::AppDirect, &mut FixedTier::new(TierId::PMEM));
        let b = run(&app, &machine, ExecMode::AppDirect, &mut FixedTier::new(TierId::PMEM));
        prop_assert_eq!(&a, &b, "deterministic");

        prop_assert!(a.total_time.is_finite() && a.total_time > 0.0);
        prop_assert!(a.compute_time <= a.total_time * (1.0 + 1e-9));
        prop_assert_eq!(a.objects.len() as u64, app.total_allocations());
        for p in &a.phases {
            for (i, tier) in machine.tiers.iter().enumerate() {
                prop_assert!(
                    p.tier_read_bw[i] <= tier.peak_read_bw * 1.05,
                    "read bw within peak"
                );
                prop_assert!(
                    p.tier_write_bw[i] <= tier.peak_write_bw * 1.05,
                    "write bw within peak"
                );
            }
        }
        for o in &a.objects {
            prop_assert!(o.free_time >= o.alloc_time);
        }
    }

    /// Memory mode never loses to the same model run entirely from PMem
    /// with the cache disabled... is NOT a theorem (fill traffic costs), but
    /// it must stay within a bounded factor — and placing everything in
    /// DRAM must never be slower than everything in PMem.
    #[test]
    fn placement_ordering_holds(app in arb_model()) {
        let machine = MachineConfig::optane_pmem6();
        let pmem = run(&app, &machine, ExecMode::AppDirect, &mut FixedTier::new(TierId::PMEM));
        let dram = run(
            &app,
            &machine,
            ExecMode::AppDirect,
            &mut FixedTier::with_fallback(TierId::DRAM, TierId::PMEM),
        );
        prop_assert!(
            dram.total_time <= pmem.total_time * 1.01,
            "DRAM-first {:.3}s must not lose to all-PMem {:.3}s",
            dram.total_time,
            pmem.total_time
        );
        let mm = run(&app, &machine, ExecMode::MemoryMode, &mut FixedTier::new(TierId::PMEM));
        prop_assert!(
            mm.total_time <= pmem.total_time * 1.6,
            "the cache can cost fill traffic but not multiples: mm {:.3}s vs pmem {:.3}s",
            mm.total_time,
            pmem.total_time
        );
    }

    /// Scaling every access stream up never makes the run faster.
    #[test]
    fn more_traffic_is_never_faster(app in arb_model(), factor in 1.1f64..4.0) {
        let machine = MachineConfig::optane_pmem6();
        let mut heavier = app.clone();
        for p in &mut heavier.phases {
            for a in &mut p.accesses {
                a.loads *= factor;
                a.stores *= factor;
            }
        }
        let base = run(&app, &machine, ExecMode::AppDirect, &mut FixedTier::new(TierId::PMEM));
        let heavy = run(&heavier, &machine, ExecMode::AppDirect, &mut FixedTier::new(TierId::PMEM));
        prop_assert!(heavy.total_time >= base.total_time * 0.999);
    }
}
