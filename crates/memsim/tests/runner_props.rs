//! Property tests for the memoized runner (satellite of the runner PR):
//! the cache must be invisible — bit-identical to calling the engine
//! directly — and its hit/miss behaviour must not depend on how jobs are
//! ordered or interleaved across worker threads.

use memsim::{
    run, AccessPattern, AccessSpec, AllocOp, AppModel, ExecMode, FixedTier, FreeOp, MachineConfig,
    PhaseSpec, RunCache,
};
use memtrace::{BinaryMapBuilder, CallStack, Frame, FuncId, ModuleId, SiteId, TierId};
use proptest::prelude::*;
use std::sync::Arc;

/// A small deterministic application model, parameterized enough that
/// different `variant` values produce different cache keys.
fn model(variant: u32, phases: u32) -> AppModel {
    let mut b = BinaryMapBuilder::new();
    b.add_module("p.x", 64 * 1024, 1 << 20, vec!["p.c".into()]);
    let n_sites = 4u32;
    let sites: Vec<(SiteId, CallStack)> = (0..n_sites)
        .map(|i| (SiteId(i), CallStack::new(vec![Frame::new(ModuleId(0), 64 * u64::from(i) + 64)])))
        .collect();
    let mut out_phases = vec![PhaseSpec {
        label: None,
        compute_instructions: 1e8,
        allocs: (0..n_sites)
            .map(|i| AllocOp { site: SiteId(i), size: 1 << (20 + i % 4), count: 1 })
            .collect(),
        frees: vec![],
        accesses: vec![],
    }];
    for p in 0..phases {
        out_phases.push(PhaseSpec {
            label: None,
            compute_instructions: 1e9 * f64::from(1 + variant % 5),
            allocs: vec![],
            frees: vec![],
            accesses: (0..n_sites)
                .map(|i| AccessSpec {
                    site: SiteId(i),
                    function: FuncId(0),
                    loads: 1e8 * f64::from(1 + (variant + i + p) % 7),
                    stores: 2e7,
                    llc_miss_rate: 0.05 + 0.1 * f64::from((variant + i) % 5),
                    store_l1d_miss_rate: 0.1,
                    pattern: AccessPattern::Sequential,
                    instructions: 5e7,
                    reuse_hint: 0.0,
                })
                .collect(),
        });
    }
    out_phases.push(PhaseSpec {
        label: None,
        compute_instructions: 1e6,
        allocs: vec![],
        frees: (0..n_sites).map(|i| FreeOp { site: SiteId(i), count: 1 }).collect(),
        accesses: vec![],
    });
    AppModel {
        name: format!("prop-{variant}"),
        ranks: 1,
        threads_per_rank: 1,
        input_desc: String::new(),
        sites,
        binmap: b.build(),
        function_names: vec!["f".into()],
        phases: out_phases,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A memoized fetch is bit-identical to a direct `engine::run` with the
    /// same inputs, the second fetch shares the same allocation, and the
    /// hit/miss counters account for both fetches.
    #[test]
    fn memoized_run_is_bit_identical_to_direct(
        variant in 0u32..64,
        phases in 1u32..5,
        memory_mode in 0u8..2,
    ) {
        let app = model(variant, phases);
        let mach = MachineConfig::optane_pmem6();
        let mode = if memory_mode == 1 { ExecMode::MemoryMode } else { ExecMode::AppDirect };

        let direct = run(&app, &mach, mode, &mut FixedTier::new(TierId::PMEM));
        let cache = RunCache::new();
        let first = cache.run_fixed(&app, &mach, mode, TierId::PMEM, None);
        let second = cache.run_fixed(&app, &mach, mode, TierId::PMEM, None);

        prop_assert_eq!(&*first, &direct, "cached result must be bit-identical");
        prop_assert!(Arc::ptr_eq(&first, &second), "second fetch shares the stored Arc");
        prop_assert_eq!(cache.misses(), 1);
        prop_assert_eq!(cache.hits(), 1);
        prop_assert_eq!(cache.len(), 1);
    }

    /// Hits/misses and results never depend on job ordering: any shuffle of
    /// a duplicated request list, at any job count, produces exactly one
    /// miss per distinct key and the same results as the serial reference.
    #[test]
    fn cache_hits_are_independent_of_job_ordering(
        shuffle_seed in 0u64..10_000,
        jobs in 1usize..5,
    ) {
        // 3 distinct request kinds, each duplicated 3 times, in an
        // arbitrary order (seeded Fisher–Yates keeps the case replayable).
        let mut order: Vec<u32> = (0..9).map(|i| i % 3).collect();
        let mut state = shuffle_seed.wrapping_mul(2).wrapping_add(1);
        for i in (1..order.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            order.swap(i, (state >> 33) as usize % (i + 1));
        }

        let mach = MachineConfig::optane_pmem6();
        let apps: Vec<AppModel> = (0..3).map(|v| model(v, 2)).collect();
        let reference: Vec<_> = apps
            .iter()
            .map(|a| run(a, &mach, ExecMode::AppDirect, &mut FixedTier::new(TierId::PMEM)))
            .collect();

        let cache = RunCache::new();
        let requests: Vec<&AppModel> = order.iter().map(|&i| &apps[i as usize]).collect();
        let results = memsim::parallel_map(requests, jobs, |app| {
            cache.run_fixed(app, &mach, ExecMode::AppDirect, TierId::PMEM, None)
        });

        prop_assert_eq!(cache.misses(), 3, "one simulation per distinct key");
        prop_assert_eq!(cache.hits(), 6, "every duplicate is a hit");
        for (got, &kind) in results.iter().zip(order.iter()) {
            prop_assert_eq!(&**got, &reference[kind as usize]);
        }
    }
}
