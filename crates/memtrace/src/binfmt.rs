//! Compact binary trace encoding.
//!
//! Real Extrae traces are binary — a JSON trace of a 100 Hz × minutes run
//! is an order of magnitude larger than it needs to be. This module
//! provides a compact, versioned binary encoding of [`TraceFile`]:
//! a magic/version header, the metadata and site/binary tables encoded via
//! JSON (they are tiny), and the event stream as a tagged, varint-packed
//! record sequence with delta-coded timestamps.
//!
//! Timestamps are stored as `u64` microseconds, delta-coded against the
//! previous event — a lossy (µs-granular) but faithful representation of
//! what a real tracer records. [`read_trace`] rejects wrong magics, wrong
//! versions, and truncated streams.

use crate::error::TraceError;
use crate::events::TraceEvent;
use crate::ids::{FuncId, ObjectId, SiteId};
use crate::trace::TraceFile;
use std::io::{Read, Write};

const MAGIC: &[u8; 8] = b"ECOHMEM\0";
const VERSION: u32 = 1;

/// Writes a varint (LEB128). Public so downstream binary formats (the
/// online engine's journal and checkpoints) share one integer encoding.
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads a varint.
pub fn get_varint(data: &[u8], pos: &mut usize) -> Result<u64, TraceError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let byte =
            *data.get(*pos).ok_or_else(|| TraceError::Malformed("truncated varint".into()))?;
        *pos += 1;
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift >= 64 {
            return Err(TraceError::Malformed("oversized varint".into()));
        }
    }
}

fn micros(t: f64) -> u64 {
    (t.max(0.0) * 1e6).round() as u64
}

fn seconds(us: u64) -> f64 {
    us as f64 / 1e6
}

const TAG_ALLOC: u8 = 1;
const TAG_FREE: u8 = 2;
const TAG_LOAD: u8 = 3;
const TAG_STORE_HIT: u8 = 4;
const TAG_STORE_MISS: u8 = 5;
const TAG_PHASE: u8 = 6;

/// Serializes a trace to the binary format.
pub fn write_trace<W: Write>(trace: &TraceFile, mut w: W) -> Result<(), TraceError> {
    let mut out = Vec::with_capacity(trace.events.len() * 8 + 4096);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());

    // Header: everything but the events, as length-prefixed JSON (small).
    let header = TraceFile { events: Vec::new(), ..trace.clone() };
    let header_json = header.to_json()?;
    put_varint(&mut out, header_json.len() as u64);
    out.extend_from_slice(header_json.as_bytes());

    // Events: tagged records with delta-coded µs timestamps.
    put_varint(&mut out, trace.events.len() as u64);
    let mut last_us = 0u64;
    for e in &trace.events {
        let t_us = micros(e.time());
        let delta = t_us.saturating_sub(last_us);
        last_us = t_us;
        match e {
            TraceEvent::Alloc { object, site, size, address, .. } => {
                out.push(TAG_ALLOC);
                put_varint(&mut out, delta);
                put_varint(&mut out, object.0);
                put_varint(&mut out, u64::from(site.0));
                put_varint(&mut out, *size);
                put_varint(&mut out, *address);
            }
            TraceEvent::Free { object, .. } => {
                out.push(TAG_FREE);
                put_varint(&mut out, delta);
                put_varint(&mut out, object.0);
            }
            TraceEvent::LoadMissSample { address, latency_cycles, function, .. } => {
                out.push(TAG_LOAD);
                put_varint(&mut out, delta);
                put_varint(&mut out, *address);
                put_varint(&mut out, latency_cycles.round() as u64);
                put_varint(&mut out, u64::from(function.0));
            }
            TraceEvent::StoreSample { address, l1d_miss, function, .. } => {
                out.push(if *l1d_miss { TAG_STORE_MISS } else { TAG_STORE_HIT });
                put_varint(&mut out, delta);
                put_varint(&mut out, *address);
                put_varint(&mut out, u64::from(function.0));
            }
            TraceEvent::PhaseMarker { phase, .. } => {
                out.push(TAG_PHASE);
                put_varint(&mut out, delta);
                put_varint(&mut out, u64::from(*phase));
            }
        }
    }
    w.write_all(&out)?;
    Ok(())
}

/// Deserializes a trace from the binary format.
pub fn read_trace<R: Read>(mut r: R) -> Result<TraceFile, TraceError> {
    let mut data = Vec::new();
    r.read_to_end(&mut data)?;
    if data.len() < 12 || &data[..8] != MAGIC {
        return Err(TraceError::Malformed("bad magic".into()));
    }
    let version = u32::from_le_bytes(data[8..12].try_into().expect("length checked"));
    if version != VERSION {
        return Err(TraceError::Malformed(format!("unsupported version {version}")));
    }
    let mut pos = 12usize;
    let header_len = get_varint(&data, &mut pos)? as usize;
    let header_end = pos
        .checked_add(header_len)
        .filter(|&e| e <= data.len())
        .ok_or_else(|| TraceError::Malformed("truncated header".into()))?;
    let header_text = std::str::from_utf8(&data[pos..header_end])
        .map_err(|_| TraceError::Malformed("header is not utf-8".into()))?;
    let mut trace = TraceFile::from_json(header_text)?;
    pos = header_end;

    let n_events = get_varint(&data, &mut pos)? as usize;
    let mut events = Vec::with_capacity(n_events);
    let mut last_us = 0u64;
    for _ in 0..n_events {
        let tag =
            *data.get(pos).ok_or_else(|| TraceError::Malformed("truncated event stream".into()))?;
        pos += 1;
        let delta = get_varint(&data, &mut pos)?;
        last_us += delta;
        let time = seconds(last_us);
        let event = match tag {
            TAG_ALLOC => TraceEvent::Alloc {
                time,
                object: ObjectId(get_varint(&data, &mut pos)?),
                site: SiteId(get_varint(&data, &mut pos)? as u32),
                size: get_varint(&data, &mut pos)?,
                address: get_varint(&data, &mut pos)?,
            },
            TAG_FREE => TraceEvent::Free { time, object: ObjectId(get_varint(&data, &mut pos)?) },
            TAG_LOAD => TraceEvent::LoadMissSample {
                time,
                address: get_varint(&data, &mut pos)?,
                latency_cycles: get_varint(&data, &mut pos)? as f64,
                function: FuncId(get_varint(&data, &mut pos)? as u16),
            },
            TAG_STORE_HIT | TAG_STORE_MISS => TraceEvent::StoreSample {
                time,
                address: get_varint(&data, &mut pos)?,
                l1d_miss: tag == TAG_STORE_MISS,
                function: FuncId(get_varint(&data, &mut pos)? as u16),
            },
            TAG_PHASE => {
                TraceEvent::PhaseMarker { time, phase: get_varint(&data, &mut pos)? as u32 }
            }
            other => return Err(TraceError::Malformed(format!("unknown event tag {other}"))),
        };
        events.push(event);
    }
    trace.events = events;
    Ok(trace)
}

/// CRC-32 (IEEE 802.3, poly 0xEDB88320), the checksum guarding journal
/// records and checkpoint payloads against torn writes and bit rot.
pub fn crc32(data: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    };
    let mut crc = !0u32;
    for &b in data {
        crc = TABLE[((crc ^ u32::from(b)) & 0xff) as usize] ^ (crc >> 8);
    }
    !crc
}

// ---------------------------------------------------------------------------
// Exact-time event frames.
//
// The trace format above delta-codes timestamps at µs granularity — right
// for archival traces, wrong for a write-ahead journal whose replay must be
// *bit-identical* to the run it recovers. Frames encode every `f64` as its
// raw IEEE-754 bits, so `read_frame(write_frame(events)) == events` exactly.

/// Appends an exact, self-delimiting encoding of `events` to `out`.
pub fn write_frame(events: &[TraceEvent], out: &mut Vec<u8>) {
    put_varint(out, events.len() as u64);
    for e in events {
        match e {
            TraceEvent::Alloc { time, object, site, size, address } => {
                out.push(TAG_ALLOC);
                put_varint(out, time.to_bits());
                put_varint(out, object.0);
                put_varint(out, u64::from(site.0));
                put_varint(out, *size);
                put_varint(out, *address);
            }
            TraceEvent::Free { time, object } => {
                out.push(TAG_FREE);
                put_varint(out, time.to_bits());
                put_varint(out, object.0);
            }
            TraceEvent::LoadMissSample { time, address, latency_cycles, function } => {
                out.push(TAG_LOAD);
                put_varint(out, time.to_bits());
                put_varint(out, *address);
                put_varint(out, latency_cycles.to_bits());
                put_varint(out, u64::from(function.0));
            }
            TraceEvent::StoreSample { time, address, l1d_miss, function } => {
                out.push(if *l1d_miss { TAG_STORE_MISS } else { TAG_STORE_HIT });
                put_varint(out, time.to_bits());
                put_varint(out, *address);
                put_varint(out, u64::from(function.0));
            }
            TraceEvent::PhaseMarker { time, phase } => {
                out.push(TAG_PHASE);
                put_varint(out, time.to_bits());
                put_varint(out, u64::from(*phase));
            }
        }
    }
}

/// Decodes one frame written by [`write_frame`], advancing `pos` past it.
pub fn read_frame(data: &[u8], pos: &mut usize) -> Result<Vec<TraceEvent>, TraceError> {
    let n = get_varint(data, pos)? as usize;
    if n > data.len().saturating_sub(*pos) {
        // Each event costs ≥ 2 bytes; an absurd count means corruption.
        return Err(TraceError::Malformed(format!("frame claims {n} events in a short buffer")));
    }
    let mut events = Vec::with_capacity(n);
    for _ in 0..n {
        let tag = *data.get(*pos).ok_or_else(|| TraceError::Malformed("truncated frame".into()))?;
        *pos += 1;
        let time = f64::from_bits(get_varint(data, pos)?);
        let event = match tag {
            TAG_ALLOC => TraceEvent::Alloc {
                time,
                object: ObjectId(get_varint(data, pos)?),
                site: SiteId(get_varint(data, pos)? as u32),
                size: get_varint(data, pos)?,
                address: get_varint(data, pos)?,
            },
            TAG_FREE => TraceEvent::Free { time, object: ObjectId(get_varint(data, pos)?) },
            TAG_LOAD => TraceEvent::LoadMissSample {
                time,
                address: get_varint(data, pos)?,
                latency_cycles: f64::from_bits(get_varint(data, pos)?),
                function: FuncId(get_varint(data, pos)? as u16),
            },
            TAG_STORE_HIT | TAG_STORE_MISS => TraceEvent::StoreSample {
                time,
                address: get_varint(data, pos)?,
                l1d_miss: tag == TAG_STORE_MISS,
                function: FuncId(get_varint(data, pos)? as u16),
            },
            TAG_PHASE => TraceEvent::PhaseMarker { time, phase: get_varint(data, pos)? as u32 },
            other => return Err(TraceError::Malformed(format!("unknown frame tag {other}"))),
        };
        events.push(event);
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binmap::BinaryMap;
    use crate::callstack::{CallStack, Frame};
    use crate::ids::ModuleId;

    fn sample_trace() -> TraceFile {
        TraceFile {
            app_name: "bin".into(),
            seed: 9,
            ranks: 2,
            sampling_hz: 100.0,
            load_sample_period: 10.0,
            store_sample_period: 20.0,
            duration: 3.0,
            stacks: vec![(SiteId(0), CallStack::new(vec![Frame::new(ModuleId(0), 0x40)]))],
            binmap: BinaryMap::default(),
            events: vec![
                TraceEvent::PhaseMarker { time: 0.0, phase: 0 },
                TraceEvent::Alloc {
                    time: 0.25,
                    object: ObjectId(1),
                    site: SiteId(0),
                    size: 1 << 20,
                    address: 1 << 44,
                },
                TraceEvent::LoadMissSample {
                    time: 0.5,
                    address: (1 << 44) + 128,
                    latency_cycles: 412.0,
                    function: FuncId(3),
                },
                TraceEvent::StoreSample {
                    time: 1.0,
                    address: (1 << 44) + 256,
                    l1d_miss: true,
                    function: FuncId(3),
                },
                TraceEvent::StoreSample {
                    time: 1.5,
                    address: (1 << 44) + 320,
                    l1d_miss: false,
                    function: FuncId(3),
                },
                TraceEvent::Free { time: 2.5, object: ObjectId(1) },
            ],
        }
    }

    #[test]
    fn round_trips_with_microsecond_fidelity() {
        let t = sample_trace();
        let mut buf = Vec::new();
        write_trace(&t, &mut buf).unwrap();
        let back = read_trace(&buf[..]).unwrap();
        assert_eq!(back.app_name, t.app_name);
        assert_eq!(back.events.len(), t.events.len());
        for (a, b) in t.events.iter().zip(&back.events) {
            assert!((a.time() - b.time()).abs() < 1e-6, "µs fidelity");
        }
        back.validate().unwrap();
        // Event payloads survive exactly.
        match (&t.events[1], &back.events[1]) {
            (
                TraceEvent::Alloc { object: a, size: sa, address: aa, .. },
                TraceEvent::Alloc { object: b, size: sb, address: ab, .. },
            ) => {
                assert_eq!(a, b);
                assert_eq!(sa, sb);
                assert_eq!(aa, ab);
            }
            _ => panic!("event kind changed"),
        }
    }

    #[test]
    fn binary_is_much_smaller_than_json() {
        // Build a trace with many samples and compare encodings.
        let mut t = sample_trace();
        for i in 0..20_000u64 {
            t.events.push(TraceEvent::LoadMissSample {
                time: 2.5 + i as f64 * 1e-5,
                address: (1 << 44) + i * 64,
                latency_cycles: 300.0,
                function: FuncId(1),
            });
        }
        t.duration = 3.5;
        let json = t.to_json().unwrap();
        let mut bin = Vec::new();
        write_trace(&t, &mut bin).unwrap();
        let ratio = json.len() as f64 / bin.len() as f64;
        assert!(ratio > 5.0, "binary must be much denser: {ratio:.1}x");
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        let t = sample_trace();
        let mut buf = Vec::new();
        write_trace(&t, &mut buf).unwrap();
        let mut bad = buf.clone();
        bad[0] ^= 0xff;
        assert!(read_trace(&bad[..]).is_err());
        let mut bad = buf.clone();
        bad[8] = 99;
        assert!(read_trace(&bad[..]).is_err());
    }

    #[test]
    fn rejects_truncation_anywhere() {
        let t = sample_trace();
        let mut buf = Vec::new();
        write_trace(&t, &mut buf).unwrap();
        for cut in [10, 13, buf.len() / 2, buf.len() - 1] {
            assert!(read_trace(&buf[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn crc32_matches_the_reference_vector() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frames_round_trip_bit_exactly() {
        // Adversarial times: values µs quantization would destroy.
        let events = vec![
            TraceEvent::PhaseMarker { time: 0.1 + 0.2, phase: 7 },
            TraceEvent::Alloc {
                time: 1.0 / 3.0,
                object: ObjectId(u64::MAX),
                site: SiteId(u32::MAX),
                size: u64::MAX,
                address: 1 << 44,
            },
            TraceEvent::LoadMissSample {
                time: f64::MIN_POSITIVE,
                address: 42,
                latency_cycles: 412.000_000_001,
                function: FuncId(u16::MAX),
            },
            TraceEvent::StoreSample {
                time: 2.5e-7,
                address: 64,
                l1d_miss: true,
                function: FuncId(0),
            },
            TraceEvent::Free { time: 1e9 + 1e-9, object: ObjectId(3) },
        ];
        let mut buf = Vec::new();
        write_frame(&events, &mut buf);
        write_frame(&[], &mut buf);
        let mut pos = 0;
        assert_eq!(read_frame(&buf, &mut pos).unwrap(), events);
        assert_eq!(read_frame(&buf, &mut pos).unwrap(), Vec::new());
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn frames_reject_truncation_and_junk() {
        let events = sample_trace().events;
        let mut buf = Vec::new();
        write_frame(&events, &mut buf);
        for cut in [0, 1, buf.len() / 2, buf.len() - 1] {
            let mut pos = 0;
            assert!(read_frame(&buf[..cut], &mut pos).is_err(), "cut at {cut}");
        }
        let mut junk = buf.clone();
        junk[1] = 99; // first tag byte (after the count varint)
        let mut pos = 0;
        assert!(read_frame(&junk, &mut pos).is_err());
    }

    #[test]
    fn varints_round_trip_extremes() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_varint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }
}
