//! Compact binary trace encoding.
//!
//! Real Extrae traces are binary — a JSON trace of a 100 Hz × minutes run
//! is an order of magnitude larger than it needs to be. This module
//! provides a compact, versioned binary encoding of [`TraceFile`]:
//! a magic/version header, the metadata and site/binary tables encoded via
//! JSON (they are tiny), and the event stream as a tagged, varint-packed
//! record sequence with delta-coded timestamps.
//!
//! Timestamps are stored as `u64` microseconds, delta-coded against the
//! previous event — a lossy (µs-granular) but faithful representation of
//! what a real tracer records. Delta coding requires time-sorted input:
//! [`write_trace`] rejects out-of-order events (a silent `saturating_sub`
//! would decode them *reordered*), and [`write_trace_lenient`] sorts a
//! copy first. [`read_trace`] rejects wrong magics, wrong versions, and
//! truncated streams.
//!
//! Two on-disk versions share the magic and header encoding:
//!
//! * **v1** — one flat event stream, decoded in full by [`read_trace`].
//! * **v2** — the event stream is split into fixed-size buckets with a
//!   `(count, byte length, base timestamp)` index section up front; delta
//!   coding restarts at each bucket's base. [`TraceBuf`] keeps the file
//!   bytes as one owned buffer (the moral equivalent of an `mmap`) and
//!   decodes buckets lazily into [`EventBatch`]es — analyze/ingest can
//!   consume a recorded trace without an upfront parse-and-alloc pass,
//!   and buckets decode independently (in parallel upstream).

use crate::columns::EventBatch;
use crate::ctrace::ColumnarTrace;
use crate::error::TraceError;
use crate::events::TraceEvent;
use crate::ids::{FuncId, ObjectId, SiteId};
use crate::trace::TraceFile;
use std::io::{Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"ECOHMEM\0";
const VERSION_V1: u32 = 1;
const VERSION_V2: u32 = 2;

/// Events per v2 bucket. Small enough that one bucket decodes in-cache,
/// large enough that the index section stays negligible.
pub const V2_BUCKET_EVENTS: usize = 8192;

/// Hard ceiling on the event count any single [`read_frame`] frame may
/// declare. Frames travel over sockets (the serve daemon's wire protocol,
/// the durability journal), where a poisoned length prefix must be
/// rejected *before* `Vec::with_capacity` — the relative
/// bytes-remaining check alone scales with whatever buffer the attacker
/// managed to send.
pub const MAX_FRAME_EVENTS: usize = 1 << 22;

/// Hard ceiling on the declared byte length of the JSON header section.
pub const MAX_HEADER_BYTES: usize = 1 << 26;

/// Hard ceiling on the total event count a trace file may declare.
pub const MAX_DECLARED_EVENTS: usize = 1 << 30;

/// Writes a varint (LEB128). Public so downstream binary formats (the
/// online engine's journal and checkpoints) share one integer encoding.
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads a varint.
pub fn get_varint(data: &[u8], pos: &mut usize) -> Result<u64, TraceError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let byte =
            *data.get(*pos).ok_or_else(|| TraceError::Malformed("truncated varint".into()))?;
        *pos += 1;
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift >= 64 {
            return Err(TraceError::Malformed("oversized varint".into()));
        }
    }
}

fn micros(t: f64) -> u64 {
    (t.max(0.0) * 1e6).round() as u64
}

fn seconds(us: u64) -> f64 {
    us as f64 / 1e6
}

const TAG_ALLOC: u8 = 1;
const TAG_FREE: u8 = 2;
const TAG_LOAD: u8 = 3;
const TAG_STORE_HIT: u8 = 4;
const TAG_STORE_MISS: u8 = 5;
const TAG_PHASE: u8 = 6;

/// Encodes one event as a tagged record with a pre-computed time delta.
fn encode_record(out: &mut Vec<u8>, e: &TraceEvent, delta: u64) {
    match e {
        TraceEvent::Alloc { object, site, size, address, .. } => {
            out.push(TAG_ALLOC);
            put_varint(out, delta);
            put_varint(out, object.0);
            put_varint(out, u64::from(site.0));
            put_varint(out, *size);
            put_varint(out, *address);
        }
        TraceEvent::Free { object, .. } => {
            out.push(TAG_FREE);
            put_varint(out, delta);
            put_varint(out, object.0);
        }
        TraceEvent::LoadMissSample { address, latency_cycles, function, .. } => {
            out.push(TAG_LOAD);
            put_varint(out, delta);
            put_varint(out, *address);
            put_varint(out, latency_cycles.round() as u64);
            put_varint(out, u64::from(function.0));
        }
        TraceEvent::StoreSample { address, l1d_miss, function, .. } => {
            out.push(if *l1d_miss { TAG_STORE_MISS } else { TAG_STORE_HIT });
            put_varint(out, delta);
            put_varint(out, *address);
            put_varint(out, u64::from(function.0));
        }
        TraceEvent::PhaseMarker { phase, .. } => {
            out.push(TAG_PHASE);
            put_varint(out, delta);
            put_varint(out, u64::from(*phase));
        }
    }
}

/// Decodes one tagged record, advancing `pos` and the running timestamp.
fn decode_record(
    data: &[u8],
    pos: &mut usize,
    last_us: &mut u64,
) -> Result<TraceEvent, TraceError> {
    let tag =
        *data.get(*pos).ok_or_else(|| TraceError::Malformed("truncated event stream".into()))?;
    *pos += 1;
    let delta = get_varint(data, pos)?;
    *last_us += delta;
    let time = seconds(*last_us);
    Ok(match tag {
        TAG_ALLOC => TraceEvent::Alloc {
            time,
            object: ObjectId(get_varint(data, pos)?),
            site: SiteId(get_varint(data, pos)? as u32),
            size: get_varint(data, pos)?,
            address: get_varint(data, pos)?,
        },
        TAG_FREE => TraceEvent::Free { time, object: ObjectId(get_varint(data, pos)?) },
        TAG_LOAD => TraceEvent::LoadMissSample {
            time,
            address: get_varint(data, pos)?,
            latency_cycles: get_varint(data, pos)? as f64,
            function: FuncId(get_varint(data, pos)? as u16),
        },
        TAG_STORE_HIT | TAG_STORE_MISS => TraceEvent::StoreSample {
            time,
            address: get_varint(data, pos)?,
            l1d_miss: tag == TAG_STORE_MISS,
            function: FuncId(get_varint(data, pos)? as u16),
        },
        TAG_PHASE => TraceEvent::PhaseMarker { time, phase: get_varint(data, pos)? as u32 },
        other => return Err(TraceError::Malformed(format!("unknown event tag {other}"))),
    })
}

/// The out-of-order rejection both writers share: delta coding against the
/// previous µs timestamp cannot represent a step backwards, and
/// `saturating_sub` would silently collapse it to delta 0 — the round trip
/// would *reorder* events instead of failing.
fn order_error(i: usize, t: f64) -> TraceError {
    TraceError::Malformed(format!(
        "event {i} at t={t} precedes the previous event: delta coding requires time-sorted \
         input (sort first, or use write_trace_lenient)"
    ))
}

/// Serializes a trace to the v1 binary format. Fails on out-of-order
/// events — see [`write_trace_lenient`] for the sanitizing variant.
pub fn write_trace<W: Write>(trace: &TraceFile, mut w: W) -> Result<(), TraceError> {
    let mut out = Vec::with_capacity(trace.events.len() * 8 + 4096);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION_V1.to_le_bytes());

    // Header: everything but the events, as length-prefixed JSON (small).
    let header = TraceFile { events: Vec::new(), ..trace.clone() };
    let header_json = header.to_json()?;
    put_varint(&mut out, header_json.len() as u64);
    out.extend_from_slice(header_json.as_bytes());

    // Events: tagged records with delta-coded µs timestamps.
    put_varint(&mut out, trace.events.len() as u64);
    let mut last_us = 0u64;
    for (i, e) in trace.events.iter().enumerate() {
        let t_us = micros(e.time());
        if t_us < last_us {
            return Err(order_error(i, e.time()));
        }
        let delta = t_us - last_us;
        last_us = t_us;
        encode_record(&mut out, e, delta);
    }
    w.write_all(&out)?;
    Ok(())
}

/// [`write_trace`] for damaged input: drops non-finite timestamps and
/// stable-sorts a copy by time (ties keep emission order, like
/// `TraceFile::sanitize`) before encoding, so the write cannot fail on
/// ordering and the round trip is order-faithful for what survives.
pub fn write_trace_lenient<W: Write>(trace: &TraceFile, w: W) -> Result<(), TraceError> {
    let mut sorted = trace.clone();
    sorted.events.retain(|e| e.time().is_finite());
    sorted.events.sort_by(|a, b| a.time().total_cmp(&b.time()));
    write_trace(&sorted, w)
}

/// Serializes a trace to the v2 (bucketed) binary format. Same strict
/// ordering contract as [`write_trace`].
pub fn write_trace_v2<W: Write>(trace: &TraceFile, w: W) -> Result<(), TraceError> {
    let header = TraceFile { events: Vec::new(), ..trace.clone() };
    write_v2(&header.to_json()?, trace.events.len(), trace.events.iter().cloned(), w)
}

/// Serializes a columnar trace to the v2 binary format without
/// materializing the event vector.
pub fn write_columnar_v2<W: Write>(trace: &ColumnarTrace, w: W) -> Result<(), TraceError> {
    write_v2(&trace.header_file().to_json()?, trace.events.len(), trace.events.iter_events(), w)
}

fn write_v2<W: Write>(
    header_json: &str,
    n_events: usize,
    events: impl Iterator<Item = TraceEvent>,
    mut w: W,
) -> Result<(), TraceError> {
    // Bucket payloads, encoded first so the index can carry byte lengths.
    // Delta coding restarts at each bucket's base timestamp, which is what
    // lets a reader decode any bucket without touching the ones before it.
    let mut payload = Vec::with_capacity(n_events * 8);
    let mut metas: Vec<(u64, u64, u64)> = Vec::with_capacity(n_events / V2_BUCKET_EVENTS + 1);
    let mut bucket_start = 0usize;
    let mut in_bucket = 0usize;
    let mut base_us = 0u64;
    let mut last_us = 0u64;
    let mut prev_us = 0u64;
    for (i, e) in events.enumerate() {
        let t_us = micros(e.time());
        if t_us < prev_us {
            return Err(order_error(i, e.time()));
        }
        prev_us = t_us;
        if in_bucket == 0 {
            base_us = t_us;
            last_us = t_us;
            bucket_start = payload.len();
        }
        let delta = t_us - last_us;
        last_us = t_us;
        encode_record(&mut payload, &e, delta);
        in_bucket += 1;
        if in_bucket == V2_BUCKET_EVENTS {
            metas.push((in_bucket as u64, (payload.len() - bucket_start) as u64, base_us));
            in_bucket = 0;
        }
    }
    if in_bucket > 0 {
        metas.push((in_bucket as u64, (payload.len() - bucket_start) as u64, base_us));
    }

    let mut out = Vec::with_capacity(header_json.len() + metas.len() * 12 + 64);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION_V2.to_le_bytes());
    put_varint(&mut out, header_json.len() as u64);
    out.extend_from_slice(header_json.as_bytes());
    put_varint(&mut out, n_events as u64);
    put_varint(&mut out, metas.len() as u64);
    for &(count, len, base) in &metas {
        put_varint(&mut out, count);
        put_varint(&mut out, len);
        put_varint(&mut out, base);
    }
    w.write_all(&out)?;
    w.write_all(&payload)?;
    Ok(())
}

fn sniff_version(data: &[u8]) -> Result<u32, TraceError> {
    if data.len() < 12 || &data[..8] != MAGIC {
        return Err(TraceError::Malformed("bad magic".into()));
    }
    Ok(u32::from_le_bytes(data[8..12].try_into().expect("length checked")))
}

/// Deserializes a trace from the binary format, either version: v1 decodes
/// the flat stream directly, v2 goes through [`TraceBuf`].
pub fn read_trace<R: Read>(mut r: R) -> Result<TraceFile, TraceError> {
    let mut data = Vec::new();
    r.read_to_end(&mut data)?;
    match sniff_version(&data)? {
        VERSION_V1 => read_trace_v1(&data),
        VERSION_V2 => TraceBuf::from_bytes(data)?.to_trace_file(),
        v => Err(TraceError::Malformed(format!("unsupported version {v}"))),
    }
}

fn read_trace_v1(data: &[u8]) -> Result<TraceFile, TraceError> {
    let mut pos = 12usize;
    let header_len = get_varint(data, &mut pos)? as usize;
    if header_len > MAX_HEADER_BYTES {
        return Err(TraceError::Malformed(format!(
            "header declares {header_len} bytes, cap is {MAX_HEADER_BYTES}"
        )));
    }
    let header_end = pos
        .checked_add(header_len)
        .filter(|&e| e <= data.len())
        .ok_or_else(|| TraceError::Malformed("truncated header".into()))?;
    let header_text = std::str::from_utf8(&data[pos..header_end])
        .map_err(|_| TraceError::Malformed("header is not utf-8".into()))?;
    let mut trace = TraceFile::from_json(header_text)?;
    pos = header_end;

    let n_events = get_varint(data, &mut pos)? as usize;
    if n_events > MAX_DECLARED_EVENTS {
        return Err(TraceError::Malformed(format!(
            "trace declares {n_events} events, cap is {MAX_DECLARED_EVENTS}"
        )));
    }
    // Each event costs ≥ 2 bytes (tag + delta varint); an absurd count
    // means corruption, not a huge trace.
    if n_events > data.len().saturating_sub(pos) / 2 {
        return Err(TraceError::Malformed(format!(
            "trace claims {n_events} events in a short buffer"
        )));
    }
    let mut events = Vec::with_capacity(n_events);
    let mut last_us = 0u64;
    for _ in 0..n_events {
        events.push(decode_record(data, &mut pos, &mut last_us)?);
    }
    trace.events = events;
    Ok(trace)
}

/// One bucket of a [`TraceBuf`]: where its payload lives and the timestamp
/// its delta coding restarts from.
#[derive(Debug, Clone, Copy)]
struct BucketMeta {
    count: usize,
    base_us: u64,
    off: usize,
    len: usize,
}

/// A v2 binary trace held as one owned byte buffer with the header and
/// bucket index parsed eagerly and the event stream decoded *lazily*, one
/// time-bucket at a time.
///
/// This is the zero-copy read path: [`TraceBuf::open`] reads the file
/// once (the owned-buffer equivalent of an `mmap`), and no event is
/// decoded or allocated until a consumer asks for its bucket. Buckets are
/// mutually independent — delta coding restarts at each bucket's base
/// timestamp — so callers can decode them in any order or in parallel
/// (`&TraceBuf` is `Sync`). Construction validates the section layout:
/// bucket byte ranges must tile the payload exactly and per-bucket event
/// counts must respect the 2-bytes-per-event floor, so a corrupt index
/// fails loudly at open time, not mid-decode.
#[derive(Debug, Clone)]
pub struct TraceBuf {
    data: Vec<u8>,
    header: TraceFile,
    n_events: usize,
    buckets: Vec<BucketMeta>,
}

impl TraceBuf {
    /// Reads a v2 trace file into memory and parses its header and index.
    pub fn open(path: impl AsRef<Path>) -> Result<TraceBuf, TraceError> {
        TraceBuf::from_bytes(std::fs::read(path)?)
    }

    /// Wraps an in-memory v2 encoding. Rejects v1 files with a pointer to
    /// the eager reader — the flat v1 stream has no index to seek by.
    pub fn from_bytes(data: Vec<u8>) -> Result<TraceBuf, TraceError> {
        match sniff_version(&data)? {
            VERSION_V2 => {}
            VERSION_V1 => {
                return Err(TraceError::Malformed(
                    "version 1 trace: the flat pre-v2 layout cannot be streamed per bucket; \
                     read it with read_trace (or re-encode with write_trace_v2)"
                        .into(),
                ))
            }
            v => return Err(TraceError::Malformed(format!("unsupported version {v}"))),
        }
        let mut pos = 12usize;
        let header_len = get_varint(&data, &mut pos)? as usize;
        if header_len > MAX_HEADER_BYTES {
            return Err(TraceError::Malformed(format!(
                "header declares {header_len} bytes, cap is {MAX_HEADER_BYTES}"
            )));
        }
        let header_end = pos
            .checked_add(header_len)
            .filter(|&e| e <= data.len())
            .ok_or_else(|| TraceError::Malformed("truncated header".into()))?;
        let header_text = std::str::from_utf8(&data[pos..header_end])
            .map_err(|_| TraceError::Malformed("header is not utf-8".into()))?;
        let header = TraceFile::from_json(header_text)?;
        pos = header_end;

        let n_events = get_varint(&data, &mut pos)? as usize;
        if n_events > MAX_DECLARED_EVENTS {
            return Err(TraceError::Malformed(format!(
                "trace declares {n_events} events, cap is {MAX_DECLARED_EVENTS}"
            )));
        }
        let n_buckets = get_varint(&data, &mut pos)? as usize;
        // Each index entry costs ≥ 3 bytes.
        if n_buckets > data.len().saturating_sub(pos) / 3 {
            return Err(TraceError::Malformed(format!(
                "index claims {n_buckets} buckets in a short buffer"
            )));
        }
        let mut metas = Vec::with_capacity(n_buckets);
        for _ in 0..n_buckets {
            let count = get_varint(&data, &mut pos)?;
            let len = get_varint(&data, &mut pos)?;
            let base_us = get_varint(&data, &mut pos)?;
            // Each event costs ≥ 2 bytes (tag + delta varint).
            if count > len / 2 {
                return Err(TraceError::Malformed(format!(
                    "bucket claims {count} events in {len} bytes"
                )));
            }
            metas.push((count, len, base_us));
        }
        let mut buckets = Vec::with_capacity(n_buckets);
        let mut off = pos as u64;
        let mut total = 0u64;
        for &(count, len, base_us) in &metas {
            let end = off
                .checked_add(len)
                .filter(|&e| e <= data.len() as u64)
                .ok_or_else(|| TraceError::Malformed("bucket section out of bounds".into()))?;
            buckets.push(BucketMeta {
                count: count as usize,
                base_us,
                off: off as usize,
                len: len as usize,
            });
            total += count;
            off = end;
        }
        if off != data.len() as u64 {
            return Err(TraceError::Malformed(format!(
                "bucket sections end at byte {off}, file has {}",
                data.len()
            )));
        }
        if total != n_events as u64 {
            return Err(TraceError::Malformed(format!(
                "index counts {total} events, header claims {n_events}"
            )));
        }
        Ok(TraceBuf { data, header, n_events, buckets })
    }

    /// The trace header, as an events-free [`TraceFile`].
    pub fn header(&self) -> &TraceFile {
        &self.header
    }

    /// Total events across all buckets.
    pub fn event_count(&self) -> usize {
        self.n_events
    }

    /// Number of lazily-decodable buckets.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Decodes bucket `i` into a columnar batch. Bounds-checked against
    /// the index; a payload that decodes short or long is rejected.
    pub fn bucket(&self, i: usize) -> Result<EventBatch, TraceError> {
        let m = self.buckets[i];
        let data = &self.data[m.off..m.off + m.len];
        let mut pos = 0usize;
        let mut last_us = m.base_us;
        let mut batch = EventBatch { ops: Vec::with_capacity(m.count), ..EventBatch::default() };
        for _ in 0..m.count {
            let e = decode_record(data, &mut pos, &mut last_us)?;
            batch.push(&e);
        }
        if pos != data.len() {
            return Err(TraceError::Malformed(format!(
                "bucket {i} decoded {pos} of {} payload bytes",
                data.len()
            )));
        }
        Ok(batch)
    }

    /// Decodes every bucket, in order, into one columnar trace.
    pub fn to_columnar(&self) -> Result<ColumnarTrace, TraceError> {
        let mut events =
            EventBatch { ops: Vec::with_capacity(self.n_events), ..Default::default() };
        for i in 0..self.buckets.len() {
            events.append(&self.bucket(i)?);
        }
        let h = &self.header;
        Ok(ColumnarTrace {
            app_name: h.app_name.clone(),
            seed: h.seed,
            ranks: h.ranks,
            sampling_hz: h.sampling_hz,
            load_sample_period: h.load_sample_period,
            store_sample_period: h.store_sample_period,
            duration: h.duration,
            stacks: h.stacks.clone(),
            binmap: h.binmap.clone(),
            events,
        })
    }

    /// Decodes the whole file into the classic AoS trace.
    pub fn to_trace_file(&self) -> Result<TraceFile, TraceError> {
        let mut events = Vec::with_capacity(self.n_events);
        for m in &self.buckets {
            let data = &self.data[m.off..m.off + m.len];
            let mut pos = 0usize;
            let mut last_us = m.base_us;
            for _ in 0..m.count {
                events.push(decode_record(data, &mut pos, &mut last_us)?);
            }
        }
        Ok(TraceFile { events, ..self.header.clone() })
    }
}

/// CRC-32 (IEEE 802.3, poly 0xEDB88320), the checksum guarding journal
/// records and checkpoint payloads against torn writes and bit rot.
///
/// Slice-by-8: `TABLES[k][b]` is the CRC of byte `b` followed by `k`
/// zero bytes, so eight bytes fold in one step with eight independent
/// table lookups instead of a serial per-byte dependency chain. Same
/// polynomial, bit-identical output to the classic byte-at-a-time loop
/// (which still handles the tail).
pub fn crc32(data: &[u8]) -> u32 {
    const TABLES: [[u32; 256]; 8] = {
        let mut tables = [[0u32; 256]; 8];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
                k += 1;
            }
            tables[0][i] = c;
            i += 1;
        }
        let mut t = 1;
        while t < 8 {
            let mut i = 0;
            while i < 256 {
                let prev = tables[t - 1][i];
                tables[t][i] = (prev >> 8) ^ tables[0][(prev & 0xff) as usize];
                i += 1;
            }
            t += 1;
        }
        tables
    };
    let mut crc = !0u32;
    let mut chunks = data.chunks_exact(8);
    for c in &mut chunks {
        let lo = crc ^ u32::from_le_bytes([c[0], c[1], c[2], c[3]]);
        let hi = u32::from_le_bytes([c[4], c[5], c[6], c[7]]);
        crc = TABLES[7][(lo & 0xff) as usize]
            ^ TABLES[6][((lo >> 8) & 0xff) as usize]
            ^ TABLES[5][((lo >> 16) & 0xff) as usize]
            ^ TABLES[4][(lo >> 24) as usize]
            ^ TABLES[3][(hi & 0xff) as usize]
            ^ TABLES[2][((hi >> 8) & 0xff) as usize]
            ^ TABLES[1][((hi >> 16) & 0xff) as usize]
            ^ TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = TABLES[0][((crc ^ u32::from(b)) & 0xff) as usize] ^ (crc >> 8);
    }
    !crc
}

// ---------------------------------------------------------------------------
// Exact-time event frames.
//
// The trace format above delta-codes timestamps at µs granularity — right
// for archival traces, wrong for a write-ahead journal whose replay must be
// *bit-identical* to the run it recovers. Frames encode every `f64` as its
// raw IEEE-754 bits, so `read_frame(write_frame(events)) == events` exactly.

/// Appends an exact, self-delimiting encoding of `events` to `out`.
pub fn write_frame(events: &[TraceEvent], out: &mut Vec<u8>) {
    put_varint(out, events.len() as u64);
    for e in events {
        match e {
            TraceEvent::Alloc { time, object, site, size, address } => {
                out.push(TAG_ALLOC);
                put_varint(out, time.to_bits());
                put_varint(out, object.0);
                put_varint(out, u64::from(site.0));
                put_varint(out, *size);
                put_varint(out, *address);
            }
            TraceEvent::Free { time, object } => {
                out.push(TAG_FREE);
                put_varint(out, time.to_bits());
                put_varint(out, object.0);
            }
            TraceEvent::LoadMissSample { time, address, latency_cycles, function } => {
                out.push(TAG_LOAD);
                put_varint(out, time.to_bits());
                put_varint(out, *address);
                put_varint(out, latency_cycles.to_bits());
                put_varint(out, u64::from(function.0));
            }
            TraceEvent::StoreSample { time, address, l1d_miss, function } => {
                out.push(if *l1d_miss { TAG_STORE_MISS } else { TAG_STORE_HIT });
                put_varint(out, time.to_bits());
                put_varint(out, *address);
                put_varint(out, u64::from(function.0));
            }
            TraceEvent::PhaseMarker { time, phase } => {
                out.push(TAG_PHASE);
                put_varint(out, time.to_bits());
                put_varint(out, u64::from(*phase));
            }
        }
    }
}

/// Decodes one frame written by [`write_frame`], advancing `pos` past it.
pub fn read_frame(data: &[u8], pos: &mut usize) -> Result<Vec<TraceEvent>, TraceError> {
    let n = get_varint(data, pos)? as usize;
    // Checked before the relative guard (and before any allocation): the
    // relative guard scales with however many bytes a peer managed to
    // send, so on its own a hostile socket could still drive a large
    // `Vec::with_capacity` by padding the frame.
    if n > MAX_FRAME_EVENTS {
        return Err(TraceError::Malformed(format!(
            "frame declares {n} events, cap is {MAX_FRAME_EVENTS}"
        )));
    }
    // Each event costs ≥ 2 bytes (tag + varint time), so a count above
    // half the remaining bytes means corruption — checking against the
    // full remainder would let a hostile count just under the buffer
    // length drive an oversized `Vec::with_capacity`.
    if n > data.len().saturating_sub(*pos) / 2 {
        return Err(TraceError::Malformed(format!("frame claims {n} events in a short buffer")));
    }
    let mut events = Vec::with_capacity(n);
    for _ in 0..n {
        let tag = *data.get(*pos).ok_or_else(|| TraceError::Malformed("truncated frame".into()))?;
        *pos += 1;
        let time = f64::from_bits(get_varint(data, pos)?);
        let event = match tag {
            TAG_ALLOC => TraceEvent::Alloc {
                time,
                object: ObjectId(get_varint(data, pos)?),
                site: SiteId(get_varint(data, pos)? as u32),
                size: get_varint(data, pos)?,
                address: get_varint(data, pos)?,
            },
            TAG_FREE => TraceEvent::Free { time, object: ObjectId(get_varint(data, pos)?) },
            TAG_LOAD => TraceEvent::LoadMissSample {
                time,
                address: get_varint(data, pos)?,
                latency_cycles: f64::from_bits(get_varint(data, pos)?),
                function: FuncId(get_varint(data, pos)? as u16),
            },
            TAG_STORE_HIT | TAG_STORE_MISS => TraceEvent::StoreSample {
                time,
                address: get_varint(data, pos)?,
                l1d_miss: tag == TAG_STORE_MISS,
                function: FuncId(get_varint(data, pos)? as u16),
            },
            TAG_PHASE => TraceEvent::PhaseMarker { time, phase: get_varint(data, pos)? as u32 },
            other => return Err(TraceError::Malformed(format!("unknown frame tag {other}"))),
        };
        events.push(event);
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binmap::BinaryMap;
    use crate::callstack::{CallStack, Frame};
    use crate::ids::ModuleId;

    fn sample_trace() -> TraceFile {
        TraceFile {
            app_name: "bin".into(),
            seed: 9,
            ranks: 2,
            sampling_hz: 100.0,
            load_sample_period: 10.0,
            store_sample_period: 20.0,
            duration: 3.0,
            stacks: vec![(SiteId(0), CallStack::new(vec![Frame::new(ModuleId(0), 0x40)]))],
            binmap: BinaryMap::default(),
            events: vec![
                TraceEvent::PhaseMarker { time: 0.0, phase: 0 },
                TraceEvent::Alloc {
                    time: 0.25,
                    object: ObjectId(1),
                    site: SiteId(0),
                    size: 1 << 20,
                    address: 1 << 44,
                },
                TraceEvent::LoadMissSample {
                    time: 0.5,
                    address: (1 << 44) + 128,
                    latency_cycles: 412.0,
                    function: FuncId(3),
                },
                TraceEvent::StoreSample {
                    time: 1.0,
                    address: (1 << 44) + 256,
                    l1d_miss: true,
                    function: FuncId(3),
                },
                TraceEvent::StoreSample {
                    time: 1.5,
                    address: (1 << 44) + 320,
                    l1d_miss: false,
                    function: FuncId(3),
                },
                TraceEvent::Free { time: 2.5, object: ObjectId(1) },
            ],
        }
    }

    #[test]
    fn round_trips_with_microsecond_fidelity() {
        let t = sample_trace();
        let mut buf = Vec::new();
        write_trace(&t, &mut buf).unwrap();
        let back = read_trace(&buf[..]).unwrap();
        assert_eq!(back.app_name, t.app_name);
        assert_eq!(back.events.len(), t.events.len());
        for (a, b) in t.events.iter().zip(&back.events) {
            assert!((a.time() - b.time()).abs() < 1e-6, "µs fidelity");
        }
        back.validate().unwrap();
        // Event payloads survive exactly.
        match (&t.events[1], &back.events[1]) {
            (
                TraceEvent::Alloc { object: a, size: sa, address: aa, .. },
                TraceEvent::Alloc { object: b, size: sb, address: ab, .. },
            ) => {
                assert_eq!(a, b);
                assert_eq!(sa, sb);
                assert_eq!(aa, ab);
            }
            _ => panic!("event kind changed"),
        }
    }

    #[test]
    fn binary_is_much_smaller_than_json() {
        // Build a trace with many samples and compare encodings.
        let mut t = sample_trace();
        for i in 0..20_000u64 {
            t.events.push(TraceEvent::LoadMissSample {
                time: 2.5 + i as f64 * 1e-5,
                address: (1 << 44) + i * 64,
                latency_cycles: 300.0,
                function: FuncId(1),
            });
        }
        t.duration = 3.5;
        let json = t.to_json().unwrap();
        let mut bin = Vec::new();
        write_trace(&t, &mut bin).unwrap();
        let ratio = json.len() as f64 / bin.len() as f64;
        assert!(ratio > 5.0, "binary must be much denser: {ratio:.1}x");
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        let t = sample_trace();
        let mut buf = Vec::new();
        write_trace(&t, &mut buf).unwrap();
        let mut bad = buf.clone();
        bad[0] ^= 0xff;
        assert!(read_trace(&bad[..]).is_err());
        let mut bad = buf.clone();
        bad[8] = 99;
        assert!(read_trace(&bad[..]).is_err());
    }

    #[test]
    fn rejects_truncation_anywhere() {
        let t = sample_trace();
        let mut buf = Vec::new();
        write_trace(&t, &mut buf).unwrap();
        for cut in [10, 13, buf.len() / 2, buf.len() - 1] {
            assert!(read_trace(&buf[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn crc32_matches_the_reference_vector() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frames_round_trip_bit_exactly() {
        // Adversarial times: values µs quantization would destroy.
        let events = vec![
            TraceEvent::PhaseMarker { time: 0.1 + 0.2, phase: 7 },
            TraceEvent::Alloc {
                time: 1.0 / 3.0,
                object: ObjectId(u64::MAX),
                site: SiteId(u32::MAX),
                size: u64::MAX,
                address: 1 << 44,
            },
            TraceEvent::LoadMissSample {
                time: f64::MIN_POSITIVE,
                address: 42,
                latency_cycles: 412.000_000_001,
                function: FuncId(u16::MAX),
            },
            TraceEvent::StoreSample {
                time: 2.5e-7,
                address: 64,
                l1d_miss: true,
                function: FuncId(0),
            },
            TraceEvent::Free { time: 1e9 + 1e-9, object: ObjectId(3) },
        ];
        let mut buf = Vec::new();
        write_frame(&events, &mut buf);
        write_frame(&[], &mut buf);
        let mut pos = 0;
        assert_eq!(read_frame(&buf, &mut pos).unwrap(), events);
        assert_eq!(read_frame(&buf, &mut pos).unwrap(), Vec::new());
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn frames_reject_truncation_and_junk() {
        let events = sample_trace().events;
        let mut buf = Vec::new();
        write_frame(&events, &mut buf);
        for cut in [0, 1, buf.len() / 2, buf.len() - 1] {
            let mut pos = 0;
            assert!(read_frame(&buf[..cut], &mut pos).is_err(), "cut at {cut}");
        }
        let mut junk = buf.clone();
        junk[1] = 99; // first tag byte (after the count varint)
        let mut pos = 0;
        assert!(read_frame(&junk, &mut pos).is_err());
    }

    #[test]
    fn varints_round_trip_extremes() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_varint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn strict_write_rejects_unsorted_input() {
        let mut t = sample_trace();
        t.events.swap(2, 4); // store@1.5 now precedes load@0.5
        let err = write_trace(&t, &mut Vec::new()).unwrap_err().to_string();
        assert!(err.contains("time-sorted"), "unexpected error: {err}");
        let err = write_trace_v2(&t, &mut Vec::new()).unwrap_err().to_string();
        assert!(err.contains("time-sorted"), "unexpected error: {err}");
    }

    #[test]
    fn lenient_write_sorts_and_drops_non_finite() {
        let mut t = sample_trace();
        t.events.swap(2, 4);
        t.events.push(TraceEvent::PhaseMarker { time: f64::NAN, phase: 1 });
        let mut buf = Vec::new();
        write_trace_lenient(&t, &mut buf).unwrap();
        let back = read_trace(&buf[..]).unwrap();
        assert_eq!(back.events.len(), sample_trace().events.len());
        let times: Vec<f64> = back.events.iter().map(|e| e.time()).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]), "not sorted: {times:?}");
    }

    #[test]
    fn frames_reject_a_hostile_count_just_under_the_buffer_length() {
        let events = sample_trace().events;
        let mut buf = Vec::new();
        write_frame(&events, &mut buf);
        // Overwrite the count varint with one claiming nearly as many
        // events as there are bytes — the 2-bytes-per-event floor must
        // reject it before any allocation happens.
        let hostile = buf.len() as u64 - 2;
        let mut corrupt = Vec::new();
        put_varint(&mut corrupt, hostile);
        corrupt.extend_from_slice(&buf[1..]); // original count was 1 byte (6 events)
        let mut pos = 0;
        let err = read_frame(&corrupt, &mut pos).unwrap_err().to_string();
        assert!(err.contains("short buffer"), "unexpected error: {err}");
    }

    #[test]
    fn frames_reject_a_poisoned_count_before_allocating() {
        // A length prefix straight off a socket: the declared count is
        // absurd regardless of how many payload bytes follow, so the
        // absolute cap must fire first — no allocation, no dependence on
        // the buffer the peer chose to send.
        let mut poisoned = Vec::new();
        put_varint(&mut poisoned, 1u64 << 40);
        let mut pos = 0;
        let err = read_frame(&poisoned, &mut pos).unwrap_err().to_string();
        assert!(err.contains("cap is"), "unexpected error: {err}");

        // Exactly at the cap the absolute guard stays quiet and the
        // relative bytes-remaining guard takes over.
        let mut at_cap = Vec::new();
        put_varint(&mut at_cap, MAX_FRAME_EVENTS as u64);
        let mut pos = 0;
        let err = read_frame(&at_cap, &mut pos).unwrap_err().to_string();
        assert!(err.contains("short buffer"), "unexpected error: {err}");
    }

    #[test]
    fn poisoned_header_lengths_are_rejected_in_both_versions() {
        let t = sample_trace();
        let writers: [fn(&TraceFile, &mut Vec<u8>) -> Result<(), TraceError>; 2] =
            [|t, out| write_trace(t, out), |t, out| write_trace_v2(t, out)];
        for write in writers {
            let mut buf = Vec::new();
            write(&t, &mut buf).unwrap();
            // Rewrite the header-length varint to a multi-GB claim; the
            // reader must reject it on the declared value alone.
            let mut corrupt = buf[..12].to_vec();
            put_varint(&mut corrupt, (MAX_HEADER_BYTES as u64) + 1);
            let mut pos = 12;
            let orig_len = get_varint(&buf, &mut pos).unwrap();
            corrupt.extend_from_slice(&buf[12 + varint_len(orig_len)..]);
            let err = read_trace(&corrupt[..]).unwrap_err().to_string();
            assert!(err.contains("cap is"), "unexpected error: {err}");
        }
    }

    fn varint_len(v: u64) -> usize {
        let mut buf = Vec::new();
        put_varint(&mut buf, v);
        buf.len()
    }

    fn big_trace(n: usize) -> TraceFile {
        let mut t = sample_trace();
        for i in 0..n as u64 {
            t.events.push(TraceEvent::LoadMissSample {
                time: 2.5 + i as f64 * 1e-5,
                address: (1 << 44) + i * 64,
                latency_cycles: 250.0 + (i % 7) as f64,
                function: FuncId((i % 5) as u16),
            });
        }
        t.duration = 2.5 + n as f64 * 1e-5 + 1.0;
        t
    }

    #[test]
    fn v2_round_trips_and_matches_v1() {
        let t = big_trace(20_000); // > 2 buckets
        let mut v1 = Vec::new();
        write_trace(&t, &mut v1).unwrap();
        let mut v2 = Vec::new();
        write_trace_v2(&t, &mut v2).unwrap();
        assert_eq!(read_trace(&v2[..]).unwrap(), read_trace(&v1[..]).unwrap());
    }

    #[test]
    fn columnar_v2_writes_the_same_bytes() {
        let t = big_trace(9_000);
        let mut from_aos = Vec::new();
        write_trace_v2(&t, &mut from_aos).unwrap();
        let mut from_cols = Vec::new();
        write_columnar_v2(&crate::ColumnarTrace::from_trace_file(&t), &mut from_cols).unwrap();
        assert_eq!(from_aos, from_cols);
    }

    #[test]
    fn trace_buf_decodes_buckets_lazily_and_consistently() {
        let t = big_trace(20_000);
        let mut v2 = Vec::new();
        write_trace_v2(&t, &mut v2).unwrap();
        let buf = TraceBuf::from_bytes(v2).unwrap();
        assert_eq!(buf.event_count(), t.events.len());
        assert!(buf.bucket_count() >= 2, "want multiple buckets");
        assert_eq!(buf.header().app_name, t.app_name);
        assert!(buf.header().events.is_empty());

        // Per-bucket decode, concatenated, equals the full decode — and
        // buckets decode independently, in any order.
        let mut concat = EventBatch::default();
        for i in (0..buf.bucket_count()).rev() {
            buf.bucket(i).unwrap();
        }
        for i in 0..buf.bucket_count() {
            concat.append(&buf.bucket(i).unwrap());
        }
        let full = buf.to_trace_file().unwrap();
        assert_eq!(concat.to_events(), full.events);
        assert_eq!(buf.to_columnar().unwrap().into_trace_file(), full);
    }

    #[test]
    fn trace_buf_rejects_v1_files_with_a_clear_error() {
        let mut v1 = Vec::new();
        write_trace(&sample_trace(), &mut v1).unwrap();
        let err = TraceBuf::from_bytes(v1).unwrap_err().to_string();
        assert!(err.contains("version 1"), "unexpected error: {err}");
        assert!(err.contains("read_trace"), "should point at the eager reader: {err}");
    }

    #[test]
    fn v2_rejects_truncation_anywhere() {
        let t = big_trace(10_000);
        let mut v2 = Vec::new();
        write_trace_v2(&t, &mut v2).unwrap();
        for cut in [10, 13, 40, v2.len() / 2, v2.len() - 1] {
            assert!(TraceBuf::from_bytes(v2[..cut].to_vec()).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn v2_rejects_corrupt_section_index() {
        let t = big_trace(10_000);
        let mut v2 = Vec::new();
        write_trace_v2(&t, &mut v2).unwrap();
        let ok = TraceBuf::from_bytes(v2.clone()).unwrap();
        assert!(ok.bucket_count() >= 2);

        // Locate the start of the index: magic+version, header, two varints.
        let mut pos = 12usize;
        let hlen = get_varint(&v2, &mut pos).unwrap() as usize;
        pos += hlen;
        let _n_events = get_varint(&v2, &mut pos).unwrap();
        let _n_buckets = get_varint(&v2, &mut pos).unwrap();
        let index_at = pos;

        // Hostile per-bucket event count: more events than half the bucket
        // bytes can hold.
        let mut bad = v2.clone();
        let mut w = Vec::new();
        put_varint(&mut w, u64::MAX >> 2);
        bad.splice(index_at..index_at + 1, w); // count varint was 2 bytes (8192)
        let err = TraceBuf::from_bytes(bad).unwrap_err().to_string();
        assert!(err.contains("events in"), "unexpected error: {err}");

        // Hostile byte length: sections no longer tile the payload.
        let mut pos2 = index_at;
        let _count = get_varint(&v2, &mut pos2).unwrap();
        let len_at = pos2;
        let len_end = {
            let mut p = pos2;
            get_varint(&v2, &mut p).unwrap();
            p
        };
        let mut bad = v2.clone();
        let mut w = Vec::new();
        put_varint(&mut w, u64::MAX >> 1);
        bad.splice(len_at..len_end, w);
        assert!(TraceBuf::from_bytes(bad).is_err(), "oversized section accepted");

        // Shrunken length: sections end before the file does.
        let mut bad = v2.clone();
        let mut w = Vec::new();
        put_varint(&mut w, 0);
        bad.splice(len_at..len_end, w);
        assert!(TraceBuf::from_bytes(bad).is_err(), "short section accepted");
    }

    #[test]
    fn v2_handles_the_empty_trace() {
        let mut t = sample_trace();
        t.events.clear();
        let mut v2 = Vec::new();
        write_trace_v2(&t, &mut v2).unwrap();
        let buf = TraceBuf::from_bytes(v2).unwrap();
        assert_eq!(buf.event_count(), 0);
        assert_eq!(buf.bucket_count(), 0);
        assert!(buf.to_trace_file().unwrap().events.is_empty());
    }
}
