//! Simulated process image: binary objects, debug line tables, and ASLR.
//!
//! A real execution loads the main executable plus a set of shared
//! libraries, each at a base address that changes between runs because of
//! Address Space Layout Randomization (ASLR). Extrae therefore cannot store
//! raw return addresses in the trace; it stores something ASLR-stable —
//! either `file:line` pairs obtained from debug info (HR format) or
//! `(module, offset)` pairs (BOM format, contribution VI).
//!
//! [`BinaryMap`] is the run-independent description of the program image
//! (module names, sizes, synthetic DWARF line tables). [`LoadMap`] is one
//! run's randomized layout, mapping modules to absolute base addresses. The
//! pair lets us exercise the exact translation paths FlexMalloc performs at
//! initialization and on every intercepted allocation.

use crate::callstack::{CallStack, CodeLocation, Frame, HumanStack};
use crate::error::TraceError;
use crate::ids::ModuleId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One entry of a module's synthetic debug line table: a half-open offset
/// range `[start, end)` mapped to a source location.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LineEntry {
    /// Start offset of the range (inclusive).
    pub start: u64,
    /// End offset of the range (exclusive).
    pub end: u64,
    /// Index into the module's file table.
    pub file: u32,
    /// Source line number.
    pub line: u32,
}

/// A binary object (executable or shared library) in the simulated process
/// image, with enough synthetic metadata to model both call-stack formats.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModuleInfo {
    /// Module id; equals the module's index within its [`BinaryMap`].
    pub id: ModuleId,
    /// File name, e.g. `a.out` or `libmesh.so`.
    pub name: String,
    /// Size of the mapped text segment in bytes. Drives address-to-line
    /// lookup cost in the HR cost model (larger binaries parse slower).
    pub text_size: u64,
    /// Size of the debug information in bytes. In HR mode this is loaded
    /// into DRAM *per MPI rank*, which is the footprint effect of §VIII-D.
    pub debug_info_size: u64,
    /// Source file names referenced by the line table.
    pub files: Vec<String>,
    /// Sorted, non-overlapping offset ranges mapping code to `file:line`.
    pub line_table: Vec<LineEntry>,
}

impl ModuleInfo {
    /// Looks up the source location for a code offset, as a debugger (or
    /// binutils' `addr2line`) would. Returns `None` for offsets outside any
    /// line-table range (e.g. compiler-generated padding).
    pub fn lookup_line(&self, offset: u64) -> Option<CodeLocation> {
        let idx = self.line_table.partition_point(|e| e.end <= offset);
        let entry = self.line_table.get(idx)?;
        if offset < entry.start || offset >= entry.end {
            return None;
        }
        let file = self.files.get(entry.file as usize)?;
        Some(CodeLocation::new(file.clone(), entry.line))
    }

    /// True if `offset` falls inside the module's text segment.
    pub fn contains_offset(&self, offset: u64) -> bool {
        offset < self.text_size
    }
}

/// The run-independent program image: the fixed set of binary objects an
/// application maps, indexed by [`ModuleId`].
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct BinaryMap {
    modules: Vec<ModuleInfo>,
}

impl BinaryMap {
    /// Rebuilds a map from deserialized modules (crate-internal: the JSON
    /// codec needs it; everyone else goes through [`BinaryMapBuilder`]).
    pub(crate) fn from_modules(modules: Vec<ModuleInfo>) -> Self {
        BinaryMap { modules }
    }

    /// All modules, in id order.
    pub fn modules(&self) -> &[ModuleInfo] {
        &self.modules
    }

    /// Looks up one module.
    pub fn module(&self, id: ModuleId) -> Option<&ModuleInfo> {
        self.modules.get(id.0 as usize)
    }

    /// Module name helper (falls back to `mod<N>` for unknown ids, which can
    /// only happen with corrupted input).
    pub fn module_name(&self, id: ModuleId) -> String {
        self.module(id).map(|m| m.name.clone()).unwrap_or_else(|| id.to_string())
    }

    /// Number of modules.
    pub fn len(&self) -> usize {
        self.modules.len()
    }

    /// True when the image has no modules.
    pub fn is_empty(&self) -> bool {
        self.modules.is_empty()
    }

    /// Total debug-information bytes across all modules. This is the per-rank
    /// DRAM footprint FlexMalloc pays in human-readable mode (§VIII-D).
    pub fn total_debug_info_bytes(&self) -> u64 {
        self.modules.iter().map(|m| m.debug_info_size).sum()
    }

    /// Translates a canonical call stack to its human-readable form using
    /// the modules' line tables. Fails if any frame points outside a known
    /// module or outside its line table — exactly the situations in which
    /// the paper's HR workflow needed manual fixing.
    pub fn translate(&self, stack: &CallStack) -> Result<HumanStack, TraceError> {
        let mut locations = Vec::with_capacity(stack.depth());
        for frame in stack.frames() {
            let module =
                self.module(frame.module).ok_or(TraceError::UnknownModule(frame.module))?;
            let loc = module
                .lookup_line(frame.offset)
                .ok_or(TraceError::UnmappedOffset { module: frame.module, offset: frame.offset })?;
            locations.push(loc);
        }
        Ok(HumanStack::new(locations))
    }
}

/// Builder for synthetic binary maps used by the workload models.
///
/// Each added module gets a regular line table: code is split into
/// `text_size / bytes_per_line` ranges attributed round-robin to the
/// module's source files with increasing line numbers. The regularity is
/// irrelevant to the algorithms (they only need *a* consistent mapping) but
/// keeps generation deterministic and cheap.
#[derive(Debug, Default)]
pub struct BinaryMapBuilder {
    modules: Vec<ModuleInfo>,
}

impl BinaryMapBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a module and returns its id. `files` is the list of source file
    /// names to attribute code to; it must be non-empty.
    pub fn add_module(
        &mut self,
        name: impl Into<String>,
        text_size: u64,
        debug_info_size: u64,
        files: Vec<String>,
    ) -> ModuleId {
        assert!(!files.is_empty(), "a module needs at least one source file");
        let id = ModuleId(self.modules.len() as u16);
        let bytes_per_line = 64u64;
        let ranges = (text_size / bytes_per_line).max(1);
        let mut line_table = Vec::with_capacity(ranges as usize);
        for r in 0..ranges {
            let start = r * bytes_per_line;
            let end = ((r + 1) * bytes_per_line).min(text_size.max(bytes_per_line));
            line_table.push(LineEntry {
                start,
                end,
                file: (r % files.len() as u64) as u32,
                line: (r / files.len() as u64 + 1) as u32,
            });
        }
        self.modules.push(ModuleInfo {
            id,
            name: name.into(),
            text_size: text_size.max(bytes_per_line),
            debug_info_size,
            files,
            line_table,
        });
        id
    }

    /// Finishes the builder.
    pub fn build(self) -> BinaryMap {
        BinaryMap { modules: self.modules }
    }
}

/// One run's ASLR outcome: the absolute base address where each module of a
/// [`BinaryMap`] is loaded. Bases are page-aligned, non-overlapping, and
/// differ from run to run (seed to seed), so raw absolute addresses are
/// *not* comparable across runs — the reason both Table I formats exist.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoadMap {
    /// `bases[i]` is the load base of module `i`; sorted ascending.
    bases: Vec<u64>,
    /// `sizes[i]` mirrors the module text sizes, for reverse lookup.
    sizes: Vec<u64>,
}

impl LoadMap {
    const PAGE: u64 = 4096;
    /// Code is mapped in the canonical x86-64 user-space range.
    const ASLR_LOW: u64 = 0x5555_0000_0000;
    const ASLR_SPREAD: u64 = 0x0100_0000_0000;

    /// Randomizes a load layout for `map` from an ASLR seed. Layouts from
    /// different seeds differ (with overwhelming probability), layouts from
    /// the same seed are identical.
    pub fn randomize(map: &BinaryMap, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xA51A_51A5_1A51_A51A);
        let mut cursor =
            Self::ASLR_LOW + (rng.gen_range(0..Self::ASLR_SPREAD / Self::PAGE)) * Self::PAGE;
        let mut bases = Vec::with_capacity(map.len());
        let mut sizes = Vec::with_capacity(map.len());
        for module in map.modules() {
            bases.push(cursor);
            sizes.push(module.text_size);
            // Leave a random gap between mappings, as the kernel does.
            let gap = (rng.gen_range(1..=4096u64)) * Self::PAGE;
            let span = module.text_size.div_ceil(Self::PAGE) * Self::PAGE;
            cursor += span + gap;
        }
        LoadMap { bases, sizes }
    }

    /// Base address of a module.
    pub fn base(&self, module: ModuleId) -> Option<u64> {
        self.bases.get(module.0 as usize).copied()
    }

    /// Absolute address of a canonical frame under this layout.
    pub fn absolute(&self, frame: Frame) -> Option<u64> {
        Some(self.base(frame.module)? + frame.offset)
    }

    /// Absolute addresses of a whole stack, innermost first. `None` if any
    /// frame refers to an unknown module.
    pub fn absolutize(&self, stack: &CallStack) -> Option<Vec<u64>> {
        stack.frames().iter().map(|&f| self.absolute(f)).collect()
    }

    /// Reverse lookup: which module and offset does an absolute address fall
    /// into? This is what Extrae/FlexMalloc do when they capture a raw
    /// return address and need its BOM form.
    pub fn resolve(&self, address: u64) -> Option<Frame> {
        // Bases are sorted ascending by construction.
        let idx = self.bases.partition_point(|&b| b <= address);
        if idx == 0 {
            return None;
        }
        let m = idx - 1;
        let offset = address - self.bases[m];
        if offset < self.sizes[m] {
            Some(Frame::new(ModuleId(m as u16), offset))
        } else {
            None
        }
    }

    /// Converts a whole absolute stack back to canonical frames.
    pub fn canonicalize(&self, addresses: &[u64]) -> Option<CallStack> {
        let frames: Option<Vec<Frame>> = addresses.iter().map(|&a| self.resolve(a)).collect();
        frames.map(CallStack::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_map() -> BinaryMap {
        let mut b = BinaryMapBuilder::new();
        b.add_module("a.out", 64 * 1024, 512 * 1024, vec!["main.cpp".into(), "solver.cpp".into()]);
        b.add_module("libmesh.so", 256 * 1024, 2 * 1024 * 1024, vec!["mesh.cpp".into()]);
        b.build()
    }

    #[test]
    fn builder_assigns_sequential_ids() {
        let map = sample_map();
        assert_eq!(map.len(), 2);
        assert_eq!(map.modules()[0].id, ModuleId(0));
        assert_eq!(map.modules()[1].id, ModuleId(1));
        assert_eq!(map.module_name(ModuleId(1)), "libmesh.so");
    }

    #[test]
    fn line_lookup_is_stable_and_in_range() {
        let map = sample_map();
        let m = map.module(ModuleId(0)).unwrap();
        let a = m.lookup_line(0).unwrap();
        let b = m.lookup_line(63).unwrap();
        assert_eq!(a, b, "same 64-byte range, same line");
        let c = m.lookup_line(64).unwrap();
        assert_ne!(a, c);
        assert!(m.lookup_line(m.text_size + 100).is_none());
    }

    #[test]
    fn translate_round_trips_known_frames() {
        let map = sample_map();
        let stack =
            CallStack::new(vec![Frame::new(ModuleId(1), 0x100), Frame::new(ModuleId(0), 0x40)]);
        let human = map.translate(&stack).unwrap();
        assert_eq!(human.depth(), 2);
        assert_eq!(human.locations()[0].file, "mesh.cpp");
    }

    #[test]
    fn translate_rejects_unknown_module() {
        let map = sample_map();
        let stack = CallStack::new(vec![Frame::new(ModuleId(9), 0)]);
        assert!(matches!(map.translate(&stack), Err(TraceError::UnknownModule(_))));
    }

    #[test]
    fn aslr_layouts_differ_across_seeds_but_not_within() {
        let map = sample_map();
        let a = LoadMap::randomize(&map, 1);
        let b = LoadMap::randomize(&map, 1);
        let c = LoadMap::randomize(&map, 2);
        assert_eq!(a, b);
        assert_ne!(a.base(ModuleId(0)), c.base(ModuleId(0)));
    }

    #[test]
    fn resolve_inverts_absolute() {
        let map = sample_map();
        let lm = LoadMap::randomize(&map, 7);
        let frame = Frame::new(ModuleId(1), 0x2e43);
        let abs = lm.absolute(frame).unwrap();
        assert_eq!(lm.resolve(abs), Some(frame));
    }

    #[test]
    fn resolve_rejects_addresses_outside_any_module() {
        let map = sample_map();
        let lm = LoadMap::randomize(&map, 7);
        assert_eq!(lm.resolve(0x10), None);
        // Just past the end of the last module's text.
        let last_base = lm.base(ModuleId(1)).unwrap();
        let m = map.module(ModuleId(1)).unwrap();
        assert_eq!(lm.resolve(last_base + m.text_size), None);
    }

    #[test]
    fn canonicalize_round_trips_stacks() {
        let map = sample_map();
        let lm = LoadMap::randomize(&map, 99);
        let stack =
            CallStack::new(vec![Frame::new(ModuleId(0), 0x11d0), Frame::new(ModuleId(1), 0x2e43)]);
        let abs = lm.absolutize(&stack).unwrap();
        let back = lm.canonicalize(&abs).unwrap();
        assert_eq!(stack, back);
    }

    #[test]
    fn debug_info_totals() {
        let map = sample_map();
        assert_eq!(map.total_debug_info_bytes(), 512 * 1024 + 2 * 1024 * 1024);
    }
}
