//! Call stacks and the two on-disk formats of Table I.
//!
//! The paper supports two encodings of an allocation call stack:
//!
//! * **Human-readable (HR)** — each frame is translated, with the help of
//!   debug information, into a `file:line` pair. This was the only format
//!   supported before the paper's contribution VI, and it requires (a)
//!   loading debug info into memory and (b) translating and string-comparing
//!   every frame on every intercepted allocation.
//! * **Binary Object Matching (BOM)** — each frame is the pair
//!   `(binary object, offset from the object's load base)`. Matching reduces
//!   to integer comparisons and is ASLR-stable by construction.
//!
//! [`CallStack`] is the canonical in-memory form (always BOM-shaped: module
//! + offset); [`HumanStack`] is the translated HR form.

use crate::ids::ModuleId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One call-stack frame in canonical (BOM) form: which binary object the
/// return address falls into, and its offset from that object's load base.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Frame {
    /// The binary object (executable or shared library) containing the frame.
    pub module: ModuleId,
    /// Offset of the return address from the module's load base.
    pub offset: u64,
}

impl Frame {
    /// Convenience constructor.
    pub fn new(module: ModuleId, offset: u64) -> Self {
        Frame { module, offset }
    }
}

/// A call stack leading to a heap allocation. Frames are ordered from the
/// innermost (the direct caller of `malloc`) to the outermost (`main`),
/// matching Extrae's convention.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct CallStack {
    frames: Vec<Frame>,
}

impl CallStack {
    /// Builds a call stack from innermost-first frames.
    pub fn new(frames: Vec<Frame>) -> Self {
        CallStack { frames }
    }

    /// The frames, innermost first.
    pub fn frames(&self) -> &[Frame] {
        &self.frames
    }

    /// Number of frames (call-stack depth).
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    /// True for the degenerate empty stack (never produced by the profiler,
    /// but reachable through corrupted input; FlexMalloc treats it as
    /// unmatched).
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Renders the stack in the BOM text format of Table I, e.g.
    /// `libfoo.so!0x2e43 > a.out!0x11d0`, given a resolver from module id to
    /// module name.
    pub fn render_bom(&self, module_name: impl Fn(ModuleId) -> String) -> String {
        self.frames
            .iter()
            .map(|f| format!("{}!{:#x}", module_name(f.module), f.offset))
            .collect::<Vec<_>>()
            .join(" > ")
    }
}

impl fmt::Display for CallStack {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let rendered = self
            .frames
            .iter()
            .map(|fr| format!("{}!{:#x}", fr.module, fr.offset))
            .collect::<Vec<_>>()
            .join(" > ");
        f.write_str(&rendered)
    }
}

/// A source code location (`file:line`), the unit of the human-readable
/// call-stack format.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CodeLocation {
    /// Source file path as recorded in the (simulated) debug information.
    pub file: String,
    /// 1-based source line.
    pub line: u32,
}

impl CodeLocation {
    /// Convenience constructor.
    pub fn new(file: impl Into<String>, line: u32) -> Self {
        CodeLocation { file: file.into(), line }
    }
}

impl fmt::Display for CodeLocation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.file, self.line)
    }
}

/// A call stack translated to human-readable form (innermost first).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct HumanStack {
    locations: Vec<CodeLocation>,
}

impl HumanStack {
    /// Builds a human-readable stack from innermost-first locations.
    pub fn new(locations: Vec<CodeLocation>) -> Self {
        HumanStack { locations }
    }

    /// The locations, innermost first.
    pub fn locations(&self) -> &[CodeLocation] {
        &self.locations
    }

    /// Call-stack depth.
    pub fn depth(&self) -> usize {
        self.locations.len()
    }

    /// Renders the HR text format of Table I, e.g.
    /// `solver.cpp:120 > driver.cpp:88 > main.cpp:12`.
    pub fn render(&self) -> String {
        self.locations.iter().map(|l| l.to_string()).collect::<Vec<_>>().join(" > ")
    }
}

impl fmt::Display for HumanStack {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Which of the two Table I call-stack encodings an artifact (trace file or
/// placement report) uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StackFormat {
    /// Binary Object Matching: `(module, offset)` pairs (contribution VI).
    Bom,
    /// Human-readable `file:line` pairs (the pre-existing format).
    HumanReadable,
}

impl fmt::Display for StackFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StackFormat::Bom => f.write_str("bom"),
            StackFormat::HumanReadable => f.write_str("human-readable"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stack() -> CallStack {
        CallStack::new(vec![Frame::new(ModuleId(1), 0x2e43), Frame::new(ModuleId(0), 0x11d0)])
    }

    #[test]
    fn depth_and_frames() {
        let s = stack();
        assert_eq!(s.depth(), 2);
        assert_eq!(s.frames()[0].module, ModuleId(1));
        assert!(!s.is_empty());
        assert!(CallStack::default().is_empty());
    }

    #[test]
    fn bom_rendering_matches_table1_shape() {
        let s = stack();
        let text =
            s.render_bom(|m| if m == ModuleId(0) { "a.out".into() } else { "libfoo.so".into() });
        assert_eq!(text, "libfoo.so!0x2e43 > a.out!0x11d0");
    }

    #[test]
    fn human_rendering_matches_table1_shape() {
        let h = HumanStack::new(vec![
            CodeLocation::new("solver.cpp", 120),
            CodeLocation::new("main.cpp", 12),
        ]);
        assert_eq!(h.render(), "solver.cpp:120 > main.cpp:12");
        assert_eq!(h.depth(), 2);
    }

    #[test]
    fn equality_is_structural() {
        assert_eq!(stack(), stack());
        let other = CallStack::new(vec![Frame::new(ModuleId(1), 0x2e44)]);
        assert_ne!(stack(), other);
    }

    #[test]
    fn json_round_trip() {
        let s = stack();
        let j = crate::jsonio::stack_to_json(&s).to_string_compact();
        let parsed = ecohmem_obs::json::Json::parse(&j).unwrap();
        let back = crate::jsonio::stack_from_json(&parsed).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn format_display() {
        assert_eq!(StackFormat::Bom.to_string(), "bom");
        assert_eq!(StackFormat::HumanReadable.to_string(), "human-readable");
    }
}
