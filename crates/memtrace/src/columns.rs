//! Columnar (structure-of-arrays) views of a trace — the analyzer's hot
//! path representation.
//!
//! A [`crate::TraceFile`] stores its events as one `Vec<TraceEvent>`: a
//! 48-byte enum per event, with every consumer pattern-matching its way
//! past the four kinds it does not care about. That layout is faithful to
//! the on-disk format but hostile to the per-sample work the analyzer
//! does half a million times per trace. This module provides the
//! transposed view:
//!
//! * [`TraceColumns`] — one flat column per field per event kind
//!   (timestamps, addresses, store-miss flags, …), built in a single
//!   sequential scan. Because a valid trace is time-ordered, every time
//!   column comes out pre-sorted.
//! * dense interning — [`crate::ObjectId`]s (sparse `u64`s) and
//!   [`crate::SiteId`]s are mapped to dense `u32` indices, so per-object
//!   and per-site statistics live in flat arrays instead of hash maps.
//! * [`ObjectIndex`] — the address-interval index with the liveness
//!   window *inlined* into each entry: one binary search plus a short
//!   backward scan attributes a sample with zero hash lookups.
//! * [`EventBatch`] — the streaming counterpart: a columnar batch of
//!   events that preserves arrival order, so the online ingestor can
//!   accept events in bulk without touching the enum per field.
//!
//! Consumers shard the columns into fixed-size chunks and scan them in
//! parallel (see `profiler::analyzer`); everything here is plain data
//! with no interior mutability, so `&TraceColumns` is freely `Sync`.

use crate::callstack::CallStack;
use crate::events::TraceEvent;
use crate::ids::{FuncId, ObjectId, SiteId};
use crate::trace::TraceFile;
use std::collections::HashMap;

/// Two heap blocks can only alias the same sample address when they sit in
/// the same simulated tier: the engine carves the address space into
/// strides of `1 << 44` bytes (16 TiB) per tier, so interval candidates
/// further than this below a sample address can never contain it. The
/// analyzer uses this to bound its backward scan.
///
/// Must equal `memsim::TierHeap::TIER_STRIDE`; a unit test in `memsim`
/// pins the two together (memtrace sits below memsim in the crate DAG, so
/// the constant cannot be imported here).
pub const SAME_TIER_SPAN: u64 = 1 << 44;

/// Dense per-object columns: index `d` holds the `d`-th distinct
/// [`ObjectId`] in allocation order. Re-allocating an id after a free
/// *replaces* its record (last instance wins) — the same semantics as the
/// batch analyzer's object table.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ObjectTable {
    /// Dense index → original object id.
    pub ids: Vec<ObjectId>,
    /// Dense index → dense site index (see [`TraceColumns::site_ids`]).
    pub sites: Vec<u32>,
    /// Allocation size in bytes.
    pub sizes: Vec<u64>,
    /// Block start address.
    pub addresses: Vec<u64>,
    /// Allocation timestamp, seconds.
    pub alloc_times: Vec<f64>,
    /// Free timestamp; the trace duration for objects never freed.
    pub free_times: Vec<f64>,
}

impl ObjectTable {
    /// Number of distinct objects.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when the trace allocated nothing.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }
}

/// The SoA view of one trace: per-kind columns plus interning tables.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceColumns {
    /// Trace duration, seconds.
    pub duration: f64,
    /// Dense site index → site id, in `stacks` order (first occurrence
    /// wins for duplicate table entries, unknown sites referenced by
    /// allocations are appended after the table).
    pub site_ids: Vec<SiteId>,
    /// Dense site index → position in `TraceFile::stacks`, or
    /// `usize::MAX` for sites that appear in events but not in the table.
    pub site_stacks: Vec<usize>,
    /// Interned object records.
    pub objects: ObjectTable,
    /// Dense site index → dense object indices, sorted by [`ObjectId`]
    /// (the order every per-site aggregation folds in).
    pub site_objects: Vec<Vec<u32>>,
    /// Load-miss sample timestamps (ascending for a valid trace).
    pub load_times: Vec<f64>,
    /// Load-miss sample data addresses.
    pub load_addresses: Vec<u64>,
    /// Store sample timestamps (ascending for a valid trace).
    pub store_times: Vec<f64>,
    /// Store sample data addresses.
    pub store_addresses: Vec<u64>,
    /// Store sample L1D-miss flags.
    pub store_l1d_miss: Vec<bool>,
    /// Phase-marker timestamps in arrival order.
    pub phase_times: Vec<f64>,
}

impl TraceColumns {
    /// Transposes a trace into columns in one sequential scan.
    ///
    /// Event order matters only for the alloc/free replay (an id re-used
    /// after free must end up with its *last* instance, like the batch
    /// analyzer's object table); sample columns simply preserve trace
    /// order, which is time-sorted for any trace `validate` accepts.
    pub fn build(trace: &TraceFile) -> TraceColumns {
        let mut cols = TraceColumns { duration: trace.duration, ..TraceColumns::default() };

        // Intern the site table first so dense site order is stacks order.
        let mut site_dense: HashMap<SiteId, u32> = HashMap::with_capacity(trace.stacks.len());
        for (i, (site, _)) in trace.stacks.iter().enumerate() {
            site_dense.entry(*site).or_insert_with(|| {
                cols.site_ids.push(*site);
                cols.site_stacks.push(i);
                (cols.site_ids.len() - 1) as u32
            });
        }

        let n_samples_hint = trace.events.len();
        cols.load_times.reserve(n_samples_hint / 2);
        cols.load_addresses.reserve(n_samples_hint / 2);

        let mut obj_dense: HashMap<ObjectId, u32> = HashMap::new();
        for e in &trace.events {
            match e {
                TraceEvent::Alloc { time, object, site, size, address } => {
                    let ds = *site_dense.entry(*site).or_insert_with(|| {
                        cols.site_ids.push(*site);
                        cols.site_stacks.push(usize::MAX);
                        (cols.site_ids.len() - 1) as u32
                    });
                    let o = &mut cols.objects;
                    match obj_dense.get(object) {
                        // Realloc after free: the new instance replaces the
                        // old record wholesale.
                        Some(&d) => {
                            let d = d as usize;
                            o.sites[d] = ds;
                            o.sizes[d] = *size;
                            o.addresses[d] = *address;
                            o.alloc_times[d] = *time;
                            o.free_times[d] = trace.duration;
                        }
                        None => {
                            obj_dense.insert(*object, o.ids.len() as u32);
                            o.ids.push(*object);
                            o.sites.push(ds);
                            o.sizes.push(*size);
                            o.addresses.push(*address);
                            o.alloc_times.push(*time);
                            o.free_times.push(trace.duration);
                        }
                    }
                }
                TraceEvent::Free { time, object } => {
                    if let Some(&d) = obj_dense.get(object) {
                        cols.objects.free_times[d as usize] = *time;
                    }
                }
                TraceEvent::LoadMissSample { time, address, .. } => {
                    cols.load_times.push(*time);
                    cols.load_addresses.push(*address);
                }
                TraceEvent::StoreSample { time, address, l1d_miss, .. } => {
                    cols.store_times.push(*time);
                    cols.store_addresses.push(*address);
                    cols.store_l1d_miss.push(*l1d_miss);
                }
                TraceEvent::PhaseMarker { time, .. } => {
                    cols.phase_times.push(*time);
                }
            }
        }

        cols.site_objects = vec![Vec::new(); cols.site_ids.len()];
        for (d, &ds) in cols.objects.sites.iter().enumerate() {
            cols.site_objects[ds as usize].push(d as u32);
        }
        let ids = &cols.objects.ids;
        for objs in &mut cols.site_objects {
            objs.sort_unstable_by_key(|&d| ids[d as usize]);
        }
        cols
    }

    /// [`Self::build`] for a trace that is already columnar: the sample
    /// columns are wholesale copies of the batch columns (batch rows are in
    /// arrival order, exactly like a trace's event order), so only the
    /// alloc/free replay and site interning walk the op stream. A
    /// differential test pins this against `build` on the materialized
    /// events.
    pub fn from_batch(
        duration: f64,
        stacks: &[(SiteId, CallStack)],
        batch: &EventBatch,
    ) -> TraceColumns {
        let mut cols = TraceColumns { duration, ..TraceColumns::default() };

        let mut site_dense: HashMap<SiteId, u32> = HashMap::with_capacity(stacks.len());
        for (i, (site, _)) in stacks.iter().enumerate() {
            site_dense.entry(*site).or_insert_with(|| {
                cols.site_ids.push(*site);
                cols.site_stacks.push(i);
                (cols.site_ids.len() - 1) as u32
            });
        }

        let mut obj_dense: HashMap<ObjectId, u32> = HashMap::new();
        for op in &batch.ops {
            match *op {
                BatchOp::Alloc(r) => {
                    let r = r as usize;
                    let site = batch.alloc_sites[r];
                    let ds = *site_dense.entry(site).or_insert_with(|| {
                        cols.site_ids.push(site);
                        cols.site_stacks.push(usize::MAX);
                        (cols.site_ids.len() - 1) as u32
                    });
                    let object = batch.alloc_objects[r];
                    let o = &mut cols.objects;
                    match obj_dense.get(&object) {
                        Some(&d) => {
                            let d = d as usize;
                            o.sites[d] = ds;
                            o.sizes[d] = batch.alloc_sizes[r];
                            o.addresses[d] = batch.alloc_addresses[r];
                            o.alloc_times[d] = batch.alloc_times[r];
                            o.free_times[d] = duration;
                        }
                        None => {
                            obj_dense.insert(object, o.ids.len() as u32);
                            o.ids.push(object);
                            o.sites.push(ds);
                            o.sizes.push(batch.alloc_sizes[r]);
                            o.addresses.push(batch.alloc_addresses[r]);
                            o.alloc_times.push(batch.alloc_times[r]);
                            o.free_times.push(duration);
                        }
                    }
                }
                BatchOp::Free(r) => {
                    if let Some(&d) = obj_dense.get(&batch.free_objects[r as usize]) {
                        cols.objects.free_times[d as usize] = batch.free_times[r as usize];
                    }
                }
                _ => {}
            }
        }

        cols.load_times = batch.load_times.clone();
        cols.load_addresses = batch.load_addresses.clone();
        cols.store_times = batch.store_times.clone();
        cols.store_addresses = batch.store_addresses.clone();
        cols.store_l1d_miss = batch.store_l1d_miss.clone();
        cols.phase_times = batch.phase_times.clone();

        cols.site_objects = vec![Vec::new(); cols.site_ids.len()];
        for (d, &ds) in cols.objects.sites.iter().enumerate() {
            cols.site_objects[ds as usize].push(d as u32);
        }
        let ids = &cols.objects.ids;
        for objs in &mut cols.site_objects {
            objs.sort_unstable_by_key(|&d| ids[d as usize]);
        }
        cols
    }
}

/// One interval of the address index: a heap block with its liveness
/// window inlined, so a candidate is accepted or rejected from this entry
/// alone — no lookups into any side table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IndexEntry {
    /// Block start address.
    pub start: u64,
    /// Block end address (exclusive).
    pub end: u64,
    /// Allocation time; samples earlier than this do not match.
    pub alloc_time: f64,
    /// Free time (inclusive bound, like the batch analyzer).
    pub free_time: f64,
    /// Dense object index of the owner.
    pub obj: u32,
}

/// Address-interval index over an [`ObjectTable`], sorted by
/// `(start, end, ObjectId)` — the exact candidate order of the scalar
/// analyzer, so tie-breaks between dead blocks sharing a recycled address
/// resolve identically.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ObjectIndex {
    /// Sorted intervals.
    pub entries: Vec<IndexEntry>,
    /// Smallest interval start; the bucket grid's origin.
    grid_base: u64,
    /// Log2 of the address width of one grid bucket.
    grid_shift: u32,
    /// `grid[h]` = first entry whose start lies in bucket `h` or later;
    /// one trailing sentinel equal to `entries.len()`. Narrows the
    /// per-sample binary search to a handful of entries.
    grid: Vec<u32>,
}

impl ObjectIndex {
    /// Builds the sorted index from an object table.
    pub fn build(objects: &ObjectTable) -> ObjectIndex {
        let mut entries: Vec<IndexEntry> = (0..objects.len())
            .map(|d| IndexEntry {
                start: objects.addresses[d],
                end: objects.addresses[d] + objects.sizes[d],
                alloc_time: objects.alloc_times[d],
                free_time: objects.free_times[d],
                obj: d as u32,
            })
            .collect();
        let ids = &objects.ids;
        entries.sort_unstable_by(|a, b| {
            (a.start, a.end, ids[a.obj as usize]).cmp(&(b.start, b.end, ids[b.obj as usize]))
        });

        // Bucket grid over the start addresses: ~2 entries per bucket,
        // capped so sparse address spaces cannot blow the table up.
        let grid_base = entries.first().map(|e| e.start).unwrap_or(0);
        let span = entries.last().map(|e| e.start - grid_base).unwrap_or(0);
        let buckets = (entries.len() / 2).next_power_of_two().clamp(1, 1 << 20);
        let mut grid_shift = 0u32;
        while grid_shift < 63 && (span >> grid_shift) >= buckets as u64 {
            grid_shift += 1;
        }
        let mut grid = vec![0u32; buckets + 1];
        for e in &entries {
            let h = ((e.start - grid_base) >> grid_shift) as usize;
            grid[h + 1] += 1;
        }
        for h in 0..buckets {
            grid[h + 1] += grid[h];
        }
        ObjectIndex { entries, grid_base, grid_shift, grid }
    }

    /// Index of the first entry with `start > address` — the upper bound
    /// the backward candidate scan starts from. The grid narrows the
    /// binary search to one bucket's worth of entries.
    #[inline]
    fn upper_bound(&self, address: u64) -> usize {
        if self.entries.is_empty() || address < self.grid_base {
            return 0;
        }
        let buckets = self.grid.len() - 1;
        let h = ((address - self.grid_base) >> self.grid_shift) as usize;
        if h >= buckets {
            return self.entries.len();
        }
        let (lo, hi) = (self.grid[h] as usize, self.grid[h + 1] as usize);
        lo + self.entries[lo..hi].partition_point(|e| e.start <= address)
    }

    /// Resolves a sample to the dense object owning `address` at `time`:
    /// binary search for the last interval starting at or below the
    /// address, then a backward scan bounded by [`SAME_TIER_SPAN`],
    /// accepting the first candidate whose range and (inclusive) liveness
    /// window both cover the sample.
    #[inline]
    pub fn lookup(&self, address: u64, time: f64) -> Option<u32> {
        let idx = self.upper_bound(address);
        self.entries[..idx]
            .iter()
            .rev()
            .take_while(|e| e.start + SAME_TIER_SPAN > address)
            .find(|e| address < e.end && time >= e.alloc_time && time <= e.free_time)
            .map(|e| e.obj)
    }
}

/// Operation stream of an [`EventBatch`]: which kind the next event is,
/// and which row of that kind's columns holds its fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchOp {
    /// Allocation at `alloc_*[row]`.
    Alloc(u32),
    /// Free at `free_*[row]`.
    Free(u32),
    /// Load-miss sample at `load_*[row]`.
    Load(u32),
    /// Store sample at `store_*[row]`.
    Store(u32),
    /// Phase marker at `phase_*[row]`.
    Phase(u32),
}

/// A columnar batch of trace events that preserves arrival order.
///
/// This is the unit the online path streams: the producer transposes a
/// chunk of events once with [`EventBatch::from_events`], and the
/// ingestor replays [`EventBatch::ops`] against the per-kind columns —
/// consuming plain scalars instead of matching a 48-byte enum per field.
/// The columns are lossless — [`EventBatch::event_of`] reconstructs every
/// event exactly — so the batch is also the storage format of a
/// [`crate::ColumnarTrace`] and of the v2 binary trace's decoded buckets.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EventBatch {
    /// Arrival-ordered operation stream.
    pub ops: Vec<BatchOp>,
    /// Allocation timestamps.
    pub alloc_times: Vec<f64>,
    /// Allocation object ids.
    pub alloc_objects: Vec<ObjectId>,
    /// Allocation sites.
    pub alloc_sites: Vec<SiteId>,
    /// Allocation sizes.
    pub alloc_sizes: Vec<u64>,
    /// Allocation addresses.
    pub alloc_addresses: Vec<u64>,
    /// Free timestamps.
    pub free_times: Vec<f64>,
    /// Freed object ids.
    pub free_objects: Vec<ObjectId>,
    /// Load-miss sample timestamps.
    pub load_times: Vec<f64>,
    /// Load-miss sample addresses.
    pub load_addresses: Vec<u64>,
    /// Load-miss sample latencies, cycles.
    pub load_latencies: Vec<f64>,
    /// Load-miss sample functions.
    pub load_functions: Vec<FuncId>,
    /// Store sample timestamps.
    pub store_times: Vec<f64>,
    /// Store sample addresses.
    pub store_addresses: Vec<u64>,
    /// Store sample L1D-miss flags.
    pub store_l1d_miss: Vec<bool>,
    /// Store sample functions.
    pub store_functions: Vec<FuncId>,
    /// Phase-marker timestamps.
    pub phase_times: Vec<f64>,
    /// Phase ordinals.
    pub phase_ids: Vec<u32>,
}

impl EventBatch {
    /// Transposes a slice of events into one batch.
    pub fn from_events(events: &[TraceEvent]) -> EventBatch {
        let mut b = EventBatch { ops: Vec::with_capacity(events.len()), ..EventBatch::default() };
        for e in events {
            b.push(e);
        }
        b
    }

    /// Appends one event to the batch.
    pub fn push(&mut self, e: &TraceEvent) {
        match e {
            TraceEvent::Alloc { time, object, site, size, address } => {
                self.push_alloc(*time, *object, *site, *size, *address);
            }
            TraceEvent::Free { time, object } => self.push_free(*time, *object),
            TraceEvent::LoadMissSample { time, address, latency_cycles, function } => {
                self.push_load(*time, *address, *latency_cycles, *function);
            }
            TraceEvent::StoreSample { time, address, l1d_miss, function } => {
                self.push_store(*time, *address, *l1d_miss, *function);
            }
            TraceEvent::PhaseMarker { time, phase } => self.push_phase(*time, *phase),
        }
    }

    /// Appends an allocation without going through the event enum.
    pub fn push_alloc(&mut self, time: f64, object: ObjectId, site: SiteId, size: u64, addr: u64) {
        self.ops.push(BatchOp::Alloc(self.alloc_times.len() as u32));
        self.alloc_times.push(time);
        self.alloc_objects.push(object);
        self.alloc_sites.push(site);
        self.alloc_sizes.push(size);
        self.alloc_addresses.push(addr);
    }

    /// Appends a free without going through the event enum.
    pub fn push_free(&mut self, time: f64, object: ObjectId) {
        self.ops.push(BatchOp::Free(self.free_times.len() as u32));
        self.free_times.push(time);
        self.free_objects.push(object);
    }

    /// Appends a load-miss sample without going through the event enum.
    pub fn push_load(&mut self, time: f64, address: u64, latency_cycles: f64, function: FuncId) {
        self.ops.push(BatchOp::Load(self.load_times.len() as u32));
        self.load_times.push(time);
        self.load_addresses.push(address);
        self.load_latencies.push(latency_cycles);
        self.load_functions.push(function);
    }

    /// Appends a store sample without going through the event enum.
    pub fn push_store(&mut self, time: f64, address: u64, l1d_miss: bool, function: FuncId) {
        self.ops.push(BatchOp::Store(self.store_times.len() as u32));
        self.store_times.push(time);
        self.store_addresses.push(address);
        self.store_l1d_miss.push(l1d_miss);
        self.store_functions.push(function);
    }

    /// Appends a phase marker without going through the event enum.
    pub fn push_phase(&mut self, time: f64, phase: u32) {
        self.ops.push(BatchOp::Phase(self.phase_times.len() as u32));
        self.phase_times.push(time);
        self.phase_ids.push(phase);
    }

    /// Timestamp of one op.
    #[inline]
    pub fn time_of(&self, op: BatchOp) -> f64 {
        match op {
            BatchOp::Alloc(r) => self.alloc_times[r as usize],
            BatchOp::Free(r) => self.free_times[r as usize],
            BatchOp::Load(r) => self.load_times[r as usize],
            BatchOp::Store(r) => self.store_times[r as usize],
            BatchOp::Phase(r) => self.phase_times[r as usize],
        }
    }

    /// Reconstructs one op as a [`TraceEvent`]. The batch columns are
    /// lossless, so `event_of` inverts [`Self::push`] exactly.
    pub fn event_of(&self, op: BatchOp) -> TraceEvent {
        match op {
            BatchOp::Alloc(r) => {
                let r = r as usize;
                TraceEvent::Alloc {
                    time: self.alloc_times[r],
                    object: self.alloc_objects[r],
                    site: self.alloc_sites[r],
                    size: self.alloc_sizes[r],
                    address: self.alloc_addresses[r],
                }
            }
            BatchOp::Free(r) => TraceEvent::Free {
                time: self.free_times[r as usize],
                object: self.free_objects[r as usize],
            },
            BatchOp::Load(r) => {
                let r = r as usize;
                TraceEvent::LoadMissSample {
                    time: self.load_times[r],
                    address: self.load_addresses[r],
                    latency_cycles: self.load_latencies[r],
                    function: self.load_functions[r],
                }
            }
            BatchOp::Store(r) => {
                let r = r as usize;
                TraceEvent::StoreSample {
                    time: self.store_times[r],
                    address: self.store_addresses[r],
                    l1d_miss: self.store_l1d_miss[r],
                    function: self.store_functions[r],
                }
            }
            BatchOp::Phase(r) => TraceEvent::PhaseMarker {
                time: self.phase_times[r as usize],
                phase: self.phase_ids[r as usize],
            },
        }
    }

    /// Materializes the batch back into the AoS event vector, in order.
    pub fn to_events(&self) -> Vec<TraceEvent> {
        self.ops.iter().map(|&op| self.event_of(op)).collect()
    }

    /// Iterates the batch as [`TraceEvent`]s in arrival order without
    /// materializing the vector.
    pub fn iter_events(&self) -> impl ExactSizeIterator<Item = TraceEvent> + '_ {
        self.ops.iter().map(|&op| self.event_of(op))
    }

    /// Appends every event of `other`, re-basing its op rows onto this
    /// batch's columns. Column data moves as bulk extends; only the op
    /// stream is rewritten.
    pub fn append(&mut self, other: &EventBatch) {
        let a0 = self.alloc_times.len() as u32;
        let f0 = self.free_times.len() as u32;
        let l0 = self.load_times.len() as u32;
        let s0 = self.store_times.len() as u32;
        let p0 = self.phase_times.len() as u32;
        self.ops.extend(other.ops.iter().map(|&op| match op {
            BatchOp::Alloc(r) => BatchOp::Alloc(r + a0),
            BatchOp::Free(r) => BatchOp::Free(r + f0),
            BatchOp::Load(r) => BatchOp::Load(r + l0),
            BatchOp::Store(r) => BatchOp::Store(r + s0),
            BatchOp::Phase(r) => BatchOp::Phase(r + p0),
        }));
        self.alloc_times.extend_from_slice(&other.alloc_times);
        self.alloc_objects.extend_from_slice(&other.alloc_objects);
        self.alloc_sites.extend_from_slice(&other.alloc_sites);
        self.alloc_sizes.extend_from_slice(&other.alloc_sizes);
        self.alloc_addresses.extend_from_slice(&other.alloc_addresses);
        self.free_times.extend_from_slice(&other.free_times);
        self.free_objects.extend_from_slice(&other.free_objects);
        self.load_times.extend_from_slice(&other.load_times);
        self.load_addresses.extend_from_slice(&other.load_addresses);
        self.load_latencies.extend_from_slice(&other.load_latencies);
        self.load_functions.extend_from_slice(&other.load_functions);
        self.store_times.extend_from_slice(&other.store_times);
        self.store_addresses.extend_from_slice(&other.store_addresses);
        self.store_l1d_miss.extend_from_slice(&other.store_l1d_miss);
        self.store_functions.extend_from_slice(&other.store_functions);
        self.phase_times.extend_from_slice(&other.phase_times);
        self.phase_ids.extend_from_slice(&other.phase_ids);
    }

    /// Copies the events at `ops[range]` into a fresh batch — the chunking
    /// primitive the streaming producer uses to feed a whole columnar
    /// trace through a bounded channel without materializing events.
    pub fn slice_ops(&self, range: std::ops::Range<usize>) -> EventBatch {
        let mut out = EventBatch { ops: Vec::with_capacity(range.len()), ..EventBatch::default() };
        for &op in &self.ops[range] {
            match op {
                BatchOp::Alloc(r) => {
                    let r = r as usize;
                    out.push_alloc(
                        self.alloc_times[r],
                        self.alloc_objects[r],
                        self.alloc_sites[r],
                        self.alloc_sizes[r],
                        self.alloc_addresses[r],
                    );
                }
                BatchOp::Free(r) => {
                    out.push_free(self.free_times[r as usize], self.free_objects[r as usize]);
                }
                BatchOp::Load(r) => {
                    let r = r as usize;
                    out.push_load(
                        self.load_times[r],
                        self.load_addresses[r],
                        self.load_latencies[r],
                        self.load_functions[r],
                    );
                }
                BatchOp::Store(r) => {
                    let r = r as usize;
                    out.push_store(
                        self.store_times[r],
                        self.store_addresses[r],
                        self.store_l1d_miss[r],
                        self.store_functions[r],
                    );
                }
                BatchOp::Phase(r) => {
                    out.push_phase(self.phase_times[r as usize], self.phase_ids[r as usize]);
                }
            }
        }
        out
    }

    /// Number of events in the batch.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when the batch holds no events.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binmap::BinaryMap;
    use crate::callstack::{CallStack, Frame};
    use crate::ids::{FuncId, ModuleId};

    fn trace_with(events: Vec<TraceEvent>) -> TraceFile {
        TraceFile {
            app_name: "cols".into(),
            seed: 0,
            ranks: 1,
            sampling_hz: 100.0,
            load_sample_period: 1.0,
            store_sample_period: 1.0,
            duration: 10.0,
            stacks: (0..3)
                .map(|i| (SiteId(i), CallStack::new(vec![Frame::new(ModuleId(0), u64::from(i))])))
                .collect(),
            binmap: BinaryMap::default(),
            events,
        }
    }

    fn alloc(t: f64, id: u64, site: u32, size: u64, addr: u64) -> TraceEvent {
        TraceEvent::Alloc { time: t, object: ObjectId(id), site: SiteId(site), size, address: addr }
    }

    #[test]
    fn realloc_after_free_keeps_the_last_instance() {
        let t = trace_with(vec![
            alloc(0.0, 1, 0, 64, 0x1000),
            TraceEvent::Free { time: 1.0, object: ObjectId(1) },
            alloc(2.0, 1, 2, 128, 0x2000),
        ]);
        let cols = TraceColumns::build(&t);
        assert_eq!(cols.objects.len(), 1);
        assert_eq!(cols.objects.sizes[0], 128);
        assert_eq!(cols.objects.addresses[0], 0x2000);
        assert_eq!(cols.objects.alloc_times[0], 2.0);
        assert_eq!(cols.objects.free_times[0], 10.0, "new instance never freed");
        assert_eq!(cols.site_ids[cols.objects.sites[0] as usize], SiteId(2));
        assert!(cols.site_objects[0].is_empty(), "old site lost the instance");
    }

    #[test]
    fn sample_columns_preserve_trace_order() {
        let t = trace_with(vec![
            alloc(0.0, 1, 0, 4096, 0x1000),
            TraceEvent::LoadMissSample {
                time: 0.5,
                address: 0x1040,
                latency_cycles: 300.0,
                function: FuncId(0),
            },
            TraceEvent::StoreSample {
                time: 0.6,
                address: 0x1080,
                l1d_miss: true,
                function: FuncId(0),
            },
            TraceEvent::PhaseMarker { time: 0.7, phase: 3 },
            TraceEvent::LoadMissSample {
                time: 0.8,
                address: 0x10c0,
                latency_cycles: 200.0,
                function: FuncId(0),
            },
        ]);
        let cols = TraceColumns::build(&t);
        assert_eq!(cols.load_times, vec![0.5, 0.8]);
        assert_eq!(cols.load_addresses, vec![0x1040, 0x10c0]);
        assert_eq!(cols.store_times, vec![0.6]);
        assert_eq!(cols.store_l1d_miss, vec![true]);
        assert_eq!(cols.phase_times, vec![0.7]);
    }

    #[test]
    fn index_matches_liveness_and_range() {
        let t = trace_with(vec![
            alloc(0.0, 1, 0, 4096, 0x1000),
            TraceEvent::Free { time: 1.0, object: ObjectId(1) },
            alloc(2.0, 2, 1, 4096, 0x1000), // address recycled
        ]);
        let cols = TraceColumns::build(&t);
        let idx = ObjectIndex::build(&cols.objects);
        // During the first instance's (inclusive) life.
        assert_eq!(idx.lookup(0x1800, 0.5), Some(0));
        assert_eq!(idx.lookup(0x1800, 1.0), Some(0), "free bound is inclusive");
        // Between the two instances: nothing live.
        assert_eq!(idx.lookup(0x1800, 1.5), None);
        // The recycled address resolves to the new owner.
        assert_eq!(idx.lookup(0x1800, 3.0), Some(1));
        // Outside every block.
        assert_eq!(idx.lookup(0x9000, 0.5), None);
    }

    #[test]
    fn index_tie_break_matches_the_scalar_scan() {
        // Two dead blocks with identical (start, end): the backward scan
        // visits the larger ObjectId first (sorted ascending, scanned in
        // reverse), so it wins when both liveness windows cover the time.
        let t = trace_with(vec![
            alloc(0.0, 5, 0, 64, 0x1000),
            TraceEvent::Free { time: 4.0, object: ObjectId(5) },
            alloc(5.0, 9, 0, 64, 0x2000),
        ]);
        let mut cols = TraceColumns::build(&t);
        // Force the aliasing layout the exact-size free list produces.
        cols.objects.addresses[1] = 0x1000;
        cols.objects.sizes[1] = 64;
        cols.objects.free_times[1] = 4.0;
        cols.objects.alloc_times[1] = 0.0;
        let idx = ObjectIndex::build(&cols.objects);
        assert_eq!(idx.lookup(0x1000, 2.0), Some(1), "larger id wins the tie");
    }

    #[test]
    fn event_batch_round_trips_in_order() {
        let events = vec![
            alloc(0.0, 1, 0, 64, 0x1000),
            TraceEvent::PhaseMarker { time: 0.1, phase: 0 },
            TraceEvent::StoreSample {
                time: 0.2,
                address: 0x1000,
                l1d_miss: false,
                function: FuncId(1),
            },
            TraceEvent::Free { time: 0.3, object: ObjectId(1) },
        ];
        let b = EventBatch::from_events(&events);
        assert_eq!(b.len(), 4);
        assert_eq!(
            b.ops,
            vec![BatchOp::Alloc(0), BatchOp::Phase(0), BatchOp::Store(0), BatchOp::Free(0)]
        );
        assert_eq!(b.store_l1d_miss, vec![false]);
        assert_eq!(b.free_objects, vec![ObjectId(1)]);
    }
}
