//! The columnar-backed trace: a [`TraceFile`]'s header with the event
//! stream stored as one [`EventBatch`] instead of `Vec<TraceEvent>`.
//!
//! The profiler emits this directly (its generation sink is columnar end
//! to end), the analyzer consumes it without the AoS round-trip, and the
//! online ingestor streams slices of it over the bounded channel. The
//! classic [`TraceFile`] stays the interchange format — JSON and binary
//! codecs, fault injectors and sanitizers all operate on it — and the two
//! convert losslessly in both directions.

use crate::binmap::BinaryMap;
use crate::callstack::CallStack;
use crate::columns::{BatchOp, EventBatch};
use crate::error::TraceError;
use crate::ids::SiteId;
use crate::trace::TraceFile;
use std::collections::HashSet;

/// A complete profiling trace with columnar event storage. Field-for-field
/// the same header as [`TraceFile`]; only `events` differs.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnarTrace {
    /// Application name, e.g. `lulesh`.
    pub app_name: String,
    /// Seed used for the profiled run.
    pub seed: u64,
    /// Number of MPI ranks the model represents.
    pub ranks: u32,
    /// PEBS sampling rate in Hz that produced the sample events.
    pub sampling_hz: f64,
    /// LLC load misses represented by each load-miss sample.
    pub load_sample_period: f64,
    /// Stores represented by each store sample.
    pub store_sample_period: f64,
    /// Wall-clock duration of the profiled run, seconds.
    pub duration: f64,
    /// Call stack of each allocation site, indexed by `SiteId`.
    pub stacks: Vec<(SiteId, CallStack)>,
    /// The program image (modules + debug metadata).
    pub binmap: BinaryMap,
    /// Events ordered by time (ties broken by emission order).
    pub events: EventBatch,
}

impl ColumnarTrace {
    /// Transposes an AoS trace into columnar storage.
    pub fn from_trace_file(t: &TraceFile) -> ColumnarTrace {
        ColumnarTrace {
            app_name: t.app_name.clone(),
            seed: t.seed,
            ranks: t.ranks,
            sampling_hz: t.sampling_hz,
            load_sample_period: t.load_sample_period,
            store_sample_period: t.store_sample_period,
            duration: t.duration,
            stacks: t.stacks.clone(),
            binmap: t.binmap.clone(),
            events: EventBatch::from_events(&t.events),
        }
    }

    /// Materializes the classic AoS trace, cloning the header.
    pub fn to_trace_file(&self) -> TraceFile {
        self.clone().into_trace_file()
    }

    /// The header alone, as an events-free [`TraceFile`] — the form the
    /// binary and JSON codecs serialize.
    pub fn header_file(&self) -> TraceFile {
        TraceFile {
            app_name: self.app_name.clone(),
            seed: self.seed,
            ranks: self.ranks,
            sampling_hz: self.sampling_hz,
            load_sample_period: self.load_sample_period,
            store_sample_period: self.store_sample_period,
            duration: self.duration,
            stacks: self.stacks.clone(),
            binmap: self.binmap.clone(),
            events: Vec::new(),
        }
    }

    /// Materializes the classic AoS trace, consuming the header in place —
    /// only the event vector is newly built.
    pub fn into_trace_file(self) -> TraceFile {
        TraceFile {
            app_name: self.app_name,
            seed: self.seed,
            ranks: self.ranks,
            sampling_hz: self.sampling_hz,
            load_sample_period: self.load_sample_period,
            store_sample_period: self.store_sample_period,
            duration: self.duration,
            stacks: self.stacks,
            binmap: self.binmap,
            events: self.events.to_events(),
        }
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when the trace holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of sample events.
    pub fn sample_count(&self) -> usize {
        self.events.load_times.len() + self.events.store_times.len()
    }

    /// Number of allocation events.
    pub fn alloc_count(&self) -> usize {
        self.events.alloc_times.len()
    }

    /// Structural validation, rule-for-rule identical to
    /// [`TraceFile::validate`] (same checks, same error messages) but run
    /// over the op stream — no event materialization.
    pub fn validate(&self) -> Result<(), TraceError> {
        let sites: HashSet<SiteId> = self.stacks.iter().map(|(s, _)| *s).collect();
        let b = &self.events;
        let mut live = HashSet::new();
        let mut freed = HashSet::new();
        let mut last_t = f64::NEG_INFINITY;
        for (i, &op) in b.ops.iter().enumerate() {
            let t = b.time_of(op);
            if !t.is_finite() {
                return Err(TraceError::Malformed(format!(
                    "event {i} has non-finite timestamp {t}"
                )));
            }
            if t < last_t {
                return Err(TraceError::Malformed(format!(
                    "event {i} at t={t} precedes previous event at t={last_t}"
                )));
            }
            last_t = t;
            match op {
                BatchOp::Alloc(r) => {
                    let r = r as usize;
                    let object = b.alloc_objects[r];
                    if !sites.contains(&b.alloc_sites[r]) {
                        return Err(TraceError::UnknownSite(b.alloc_sites[r]));
                    }
                    if b.alloc_sizes[r] == 0 {
                        return Err(TraceError::Malformed(format!(
                            "zero-size allocation for {object}"
                        )));
                    }
                    if !live.insert(object) {
                        return Err(TraceError::Malformed(format!(
                            "object {object} allocated twice without free"
                        )));
                    }
                }
                BatchOp::Free(r) => {
                    let object = b.free_objects[r as usize];
                    if !live.remove(&object) {
                        if freed.contains(&object) {
                            return Err(TraceError::Malformed(format!("double free of {object}")));
                        }
                        return Err(TraceError::Malformed(format!(
                            "free of never-allocated {object}"
                        )));
                    }
                    freed.insert(object);
                }
                _ => {}
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callstack::Frame;
    use crate::events::TraceEvent;
    use crate::ids::{FuncId, ModuleId, ObjectId};

    fn sample_trace() -> TraceFile {
        TraceFile {
            app_name: "ct".into(),
            seed: 3,
            ranks: 2,
            sampling_hz: 100.0,
            load_sample_period: 2.0,
            store_sample_period: 3.0,
            duration: 5.0,
            stacks: vec![(SiteId(0), CallStack::new(vec![Frame::new(ModuleId(0), 0x10)]))],
            binmap: BinaryMap::default(),
            events: vec![
                TraceEvent::PhaseMarker { time: 0.0, phase: 0 },
                TraceEvent::Alloc {
                    time: 0.5,
                    object: ObjectId(1),
                    site: SiteId(0),
                    size: 4096,
                    address: 0x1000,
                },
                TraceEvent::LoadMissSample {
                    time: 1.0,
                    address: 0x1100,
                    latency_cycles: 321.5,
                    function: FuncId(2),
                },
                TraceEvent::StoreSample {
                    time: 1.5,
                    address: 0x1200,
                    l1d_miss: true,
                    function: FuncId(2),
                },
                TraceEvent::Free { time: 4.0, object: ObjectId(1) },
            ],
        }
    }

    #[test]
    fn converts_losslessly_both_ways() {
        let t = sample_trace();
        let ct = ColumnarTrace::from_trace_file(&t);
        assert_eq!(ct.len(), t.events.len());
        assert_eq!(ct.sample_count(), t.sample_count());
        assert_eq!(ct.alloc_count(), t.alloc_count());
        assert_eq!(ct.to_trace_file(), t);
        assert_eq!(ct.into_trace_file(), t);
    }

    #[test]
    fn validate_agrees_with_trace_file_validate() {
        let mut t = sample_trace();
        ColumnarTrace::from_trace_file(&t).validate().unwrap();

        // Each corruption must produce the same verdict (and message) as
        // the AoS validator.
        t.events.push(TraceEvent::Free { time: 4.5, object: ObjectId(1) });
        let aos = t.validate().unwrap_err().to_string();
        let col = ColumnarTrace::from_trace_file(&t).validate().unwrap_err().to_string();
        assert_eq!(aos, col);
        t.events.pop();

        t.events.swap(2, 3);
        let aos = t.validate().unwrap_err().to_string();
        let col = ColumnarTrace::from_trace_file(&t).validate().unwrap_err().to_string();
        assert_eq!(aos, col);
        t.events.swap(2, 3);

        t.stacks.clear();
        assert!(matches!(
            ColumnarTrace::from_trace_file(&t).validate(),
            Err(TraceError::UnknownSite(_))
        ));
    }

    #[test]
    fn batch_event_reconstruction_is_exact() {
        let t = sample_trace();
        let b = EventBatch::from_events(&t.events);
        assert_eq!(b.to_events(), t.events);
        assert_eq!(b.iter_events().collect::<Vec<_>>(), t.events);
        // Lossless fields survive (latency + function were dropped by the
        // pre-v2 batch layout).
        assert_eq!(b.load_latencies, vec![321.5]);
        assert_eq!(b.load_functions, vec![FuncId(2)]);
        assert_eq!(b.store_functions, vec![FuncId(2)]);
    }

    #[test]
    fn append_rebases_rows() {
        let t = sample_trace();
        let whole = EventBatch::from_events(&t.events);
        let mut acc = EventBatch::from_events(&t.events[..2]);
        acc.append(&EventBatch::from_events(&t.events[2..]));
        assert_eq!(acc, whole);
    }

    #[test]
    fn slice_ops_round_trips_in_chunks() {
        let t = sample_trace();
        let whole = EventBatch::from_events(&t.events);
        let mut acc = EventBatch::default();
        for lo in (0..whole.len()).step_by(2) {
            let hi = (lo + 2).min(whole.len());
            acc.append(&whole.slice_ops(lo..hi));
        }
        assert_eq!(acc, whole);
    }
}
