//! Error type shared by trace producers and consumers.

use crate::ids::{ModuleId, SiteId};
use std::fmt;

/// Errors raised while building, translating, serializing or validating
/// trace artifacts.
#[derive(Debug)]
pub enum TraceError {
    /// A call-stack frame referenced a module not present in the binary map.
    UnknownModule(ModuleId),
    /// A frame offset fell outside its module's debug line table, so it
    /// cannot be translated to human-readable form.
    UnmappedOffset {
        /// Module the offset was looked up in.
        module: ModuleId,
        /// The unmappable offset.
        offset: u64,
    },
    /// A trace event referenced an allocation site with no recorded stack.
    UnknownSite(SiteId),
    /// The trace file failed structural validation (e.g. free before alloc).
    Malformed(String),
    /// An I/O or (de)serialization failure.
    Io(String),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::UnknownModule(m) => write!(f, "unknown module {m}"),
            TraceError::UnmappedOffset { module, offset } => {
                write!(f, "offset {offset:#x} not mapped in module {module}")
            }
            TraceError::UnknownSite(s) => write!(f, "unknown allocation site {s}"),
            TraceError::Malformed(msg) => write!(f, "malformed trace: {msg}"),
            TraceError::Io(msg) => write!(f, "trace i/o error: {msg}"),
        }
    }
}

impl std::error::Error for TraceError {}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e.to_string())
    }
}

impl From<serde_json::Error> for TraceError {
    fn from(e: serde_json::Error) -> Self {
        TraceError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms_are_informative() {
        let e = TraceError::UnmappedOffset { module: ModuleId(3), offset: 0x40 };
        assert!(e.to_string().contains("0x40"));
        assert!(TraceError::UnknownSite(SiteId(9)).to_string().contains("site9"));
        assert!(TraceError::Malformed("free before alloc".into())
            .to_string()
            .contains("free before alloc"));
    }
}
