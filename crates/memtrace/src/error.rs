//! Error type shared by trace producers and consumers.

use crate::ids::{ModuleId, SiteId};
use std::fmt;

/// Errors raised while building, translating, serializing or validating
/// trace artifacts.
#[derive(Debug)]
pub enum TraceError {
    /// A call-stack frame referenced a module not present in the binary map.
    UnknownModule(ModuleId),
    /// A frame offset fell outside its module's debug line table, so it
    /// cannot be translated to human-readable form.
    UnmappedOffset {
        /// Module the offset was looked up in.
        module: ModuleId,
        /// The unmappable offset.
        offset: u64,
    },
    /// A trace event referenced an allocation site with no recorded stack.
    UnknownSite(SiteId),
    /// The trace file failed structural validation (e.g. free before alloc).
    Malformed(String),
    /// An I/O failure. The [`std::io::ErrorKind`] is preserved so callers
    /// can distinguish a missing file from a permission problem without
    /// string-matching the message.
    Io {
        /// The failure category reported by the operating system.
        kind: std::io::ErrorKind,
        /// The underlying error.
        source: std::io::Error,
    },
    /// A (de)serialization failure: the input was not the expected JSON.
    Parse {
        /// 1-based line of the first offending byte (0 when unknown).
        line: usize,
        /// 1-based column of the first offending byte (0 when unknown).
        column: usize,
        /// The underlying error.
        source: ecohmem_obs::json::JsonError,
    },
}

impl TraceError {
    /// The I/O failure category, when this is an I/O error.
    pub fn io_kind(&self) -> Option<std::io::ErrorKind> {
        match self {
            TraceError::Io { kind, .. } => Some(*kind),
            _ => None,
        }
    }

    /// True when the error is a parse (deserialization) failure — the file
    /// existed and was readable but its contents were not valid JSON.
    pub fn is_parse(&self) -> bool {
        matches!(self, TraceError::Parse { .. })
    }
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::UnknownModule(m) => write!(f, "unknown module {m}"),
            TraceError::UnmappedOffset { module, offset } => {
                write!(f, "offset {offset:#x} not mapped in module {module}")
            }
            TraceError::UnknownSite(s) => write!(f, "unknown allocation site {s}"),
            TraceError::Malformed(msg) => write!(f, "malformed trace: {msg}"),
            TraceError::Io { kind, source } => {
                write!(f, "trace i/o error ({kind:?}): {source}")
            }
            TraceError::Parse { line, column, source } => {
                write!(f, "trace parse error at line {line} column {column}: {source}")
            }
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io { source, .. } => Some(source),
            TraceError::Parse { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io { kind: e.kind(), source: e }
    }
}

impl From<ecohmem_obs::json::JsonError> for TraceError {
    fn from(e: ecohmem_obs::json::JsonError) -> Self {
        TraceError::Parse { line: e.line, column: e.column, source: e }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn display_forms_are_informative() {
        let e = TraceError::UnmappedOffset { module: ModuleId(3), offset: 0x40 };
        assert!(e.to_string().contains("0x40"));
        assert!(TraceError::UnknownSite(SiteId(9)).to_string().contains("site9"));
        assert!(TraceError::Malformed("free before alloc".into())
            .to_string()
            .contains("free before alloc"));
    }

    #[test]
    fn io_errors_preserve_the_kind() {
        let e: TraceError =
            std::io::Error::new(std::io::ErrorKind::NotFound, "no such trace").into();
        assert_eq!(e.io_kind(), Some(std::io::ErrorKind::NotFound));
        assert!(e.to_string().contains("NotFound"), "{e}");
        assert!(e.source().is_some());
    }

    #[test]
    fn parse_errors_carry_position_and_source() {
        let e: TraceError = ecohmem_obs::json::Json::parse("not json").unwrap_err().into();
        assert!(e.is_parse());
        assert!(e.io_kind().is_none());
        assert!(e.to_string().contains("line 1"), "{e}");
        assert!(e.source().is_some());
    }
}
