//! Trace events emitted by the (simulated) Extrae profiler.
//!
//! The real Extrae records allocation routine instrumentation (size, call
//! stack, returned address, timestamps) plus PEBS samples: LLC load misses
//! (`MEM_LOAD_RETIRED.L3_MISS`, which carry a data linear address and access
//! latency) and all-store samples (`MEM_INST_RETIRED.ALL_STORES`, which carry
//! a data linear address and L1D hit/miss but *no latency* — the asymmetry
//! §V and §VIII-B build on).

use crate::ids::{FuncId, ObjectId, SiteId};
use serde::{Deserialize, Serialize};

/// One event in a profiling trace. Times are seconds since process start.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A heap allocation returned successfully.
    Alloc {
        /// Event time (seconds).
        time: f64,
        /// Instance id of the allocation.
        object: ObjectId,
        /// Allocation site (call-stack identity); the stack itself lives in
        /// the trace file's site table.
        site: SiteId,
        /// Requested size in bytes.
        size: u64,
        /// Returned (virtual) address.
        address: u64,
    },
    /// A heap block was freed.
    Free {
        /// Event time (seconds).
        time: f64,
        /// The freed instance.
        object: ObjectId,
    },
    /// A PEBS sample of a load that missed the LLC.
    LoadMissSample {
        /// Event time (seconds).
        time: f64,
        /// Sampled data linear address.
        address: u64,
        /// Measured access latency in core cycles (loads only; PEBS store
        /// records carry no latency).
        latency_cycles: f64,
        /// Function performing the access (for Table VII breakdowns).
        function: FuncId,
    },
    /// A PEBS sample of a retired store.
    StoreSample {
        /// Event time (seconds).
        time: f64,
        /// Sampled data linear address.
        address: u64,
        /// Whether the store missed the L1D (§V uses L1D store misses as the
        /// best available proxy because LLC store-miss PEBS events do not
        /// exist).
        l1d_miss: bool,
        /// Function performing the access.
        function: FuncId,
    },
    /// Start of an application phase (iteration); used to segment bandwidth
    /// time series.
    PhaseMarker {
        /// Event time (seconds).
        time: f64,
        /// Phase ordinal.
        phase: u32,
    },
}

impl TraceEvent {
    /// The event timestamp in seconds.
    pub fn time(&self) -> f64 {
        match self {
            TraceEvent::Alloc { time, .. }
            | TraceEvent::Free { time, .. }
            | TraceEvent::LoadMissSample { time, .. }
            | TraceEvent::StoreSample { time, .. }
            | TraceEvent::PhaseMarker { time, .. } => *time,
        }
    }

    /// Overwrites the event timestamp (used by the fault injectors to model
    /// clock damage; production code never rewrites times).
    pub fn set_time(&mut self, t: f64) {
        match self {
            TraceEvent::Alloc { time, .. }
            | TraceEvent::Free { time, .. }
            | TraceEvent::LoadMissSample { time, .. }
            | TraceEvent::StoreSample { time, .. }
            | TraceEvent::PhaseMarker { time, .. } => *time = t,
        }
    }

    /// True for allocation-routine instrumentation events.
    pub fn is_allocation_event(&self) -> bool {
        matches!(self, TraceEvent::Alloc { .. } | TraceEvent::Free { .. })
    }

    /// True for hardware-sampling events.
    pub fn is_sample(&self) -> bool {
        matches!(self, TraceEvent::LoadMissSample { .. } | TraceEvent::StoreSample { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_time_accessor() {
        let e = TraceEvent::Alloc {
            time: 1.5,
            object: ObjectId(1),
            site: SiteId(0),
            size: 64,
            address: 0x1000,
        };
        assert_eq!(e.time(), 1.5);
        assert!(e.is_allocation_event());
        assert!(!e.is_sample());
    }

    #[test]
    fn sample_classification() {
        let l = TraceEvent::LoadMissSample {
            time: 0.1,
            address: 0x2000,
            latency_cycles: 400.0,
            function: FuncId(2),
        };
        assert!(l.is_sample());
        let s = TraceEvent::StoreSample {
            time: 0.2,
            address: 0x2040,
            l1d_miss: true,
            function: FuncId(2),
        };
        assert!(s.is_sample());
        assert!(!s.is_allocation_event());
    }

    #[test]
    fn json_round_trip() {
        let e = TraceEvent::PhaseMarker { time: 2.0, phase: 3 };
        let j = crate::jsonio::event_to_json(&e).to_string_compact();
        let parsed = ecohmem_obs::json::Json::parse(&j).unwrap();
        let back = crate::jsonio::event_from_json(&parsed).unwrap();
        assert_eq!(e, back);
    }
}
