//! Deterministic fault injection for the profiling→placement toolchain.
//!
//! Each injector reproduces a failure the real toolchain meets in the
//! field: a profiler killed mid-run truncates its trace; a full PEBS ring
//! buffer drops samples; broken clock sources corrupt timestamps;
//! instrumentation races emit frees before their allocs; `dlopen`'d
//! plugins put frames in modules the site table never saw; and a binary
//! rebuilt between profiling and deployment leaves the placement report
//! stale — its offsets shifted or its modules gone.
//!
//! Injectors are seeded and severity-parameterized so robustness
//! experiments (`robustness_curve` in the bench crate) are reproducible:
//! the same `(kind, severity, seed)` always mutates an artifact the same
//! way. Severity 0 never changes anything; the returned warnings are
//! nonempty exactly when the artifact was mutated.

use crate::callstack::{CallStack, Frame};
use crate::events::TraceEvent;
use crate::ids::{ModuleId, ObjectId};
use crate::report::{PlacementReport, ReportStack};
use crate::trace::TraceFile;
use crate::warn::{Warning, WarningKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// Which artifact a fault kind damages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultTarget {
    /// The profiling trace (between profiling and analysis).
    Trace,
    /// The placement report (between advising and deployment).
    Report,
}

/// The catalogue of injectable faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Cut the tail of the event stream (torn write / killed profiler).
    TruncateEvents,
    /// Drop a fraction of PEBS samples (ring-buffer overflow).
    DropSamples,
    /// Re-stamp a fraction of events with bogus times (clock damage);
    /// a small share become NaN.
    CorruptTimestamps,
    /// Prepend frees of objects that are never allocated (instrumentation
    /// races at process start).
    FreeBeforeAlloc,
    /// Point a fraction of site-table stacks at a module absent from the
    /// image (un-tracked `dlopen`).
    UnknownModules,
    /// Shift a fraction of report entries' frame offsets (binary rebuilt
    /// between profiling and deployment — the report silently goes stale).
    StaleOffsets,
    /// Retarget a fraction of report entries at a module absent from the
    /// process image (library removed from the link line).
    DropModules,
}

impl FaultKind {
    /// Every fault kind, trace faults first.
    pub const ALL: [FaultKind; 7] = [
        FaultKind::TruncateEvents,
        FaultKind::DropSamples,
        FaultKind::CorruptTimestamps,
        FaultKind::FreeBeforeAlloc,
        FaultKind::UnknownModules,
        FaultKind::StaleOffsets,
        FaultKind::DropModules,
    ];

    /// The artifact this kind damages.
    pub fn target(self) -> FaultTarget {
        match self {
            FaultKind::StaleOffsets | FaultKind::DropModules => FaultTarget::Report,
            _ => FaultTarget::Trace,
        }
    }

    /// Stable kebab-case name, accepted by [`FaultSpec::parse`].
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::TruncateEvents => "truncate-events",
            FaultKind::DropSamples => "drop-samples",
            FaultKind::CorruptTimestamps => "corrupt-timestamps",
            FaultKind::FreeBeforeAlloc => "free-before-alloc",
            FaultKind::UnknownModules => "unknown-modules",
            FaultKind::StaleOffsets => "stale-offsets",
            FaultKind::DropModules => "drop-modules",
        }
    }

    fn by_name(name: &str) -> Option<FaultKind> {
        FaultKind::ALL.iter().copied().find(|k| k.name() == name)
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Process-level faults: failures of the *running* online engine rather
/// than of an artifact on disk. Artifact faults above mutate bytes; these
/// describe when and how the engine's process dies or misbehaves, and are
/// interpreted by the chaos harness (`chaos_soak` in the bench crate) and
/// the simulator's kill points (`memsim::runner`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcessFaultKind {
    /// Kill the process after N journal records, leaving a torn tail.
    KillAtOffset,
    /// Crash between checkpoint tmp-write and rename, leaving a `.tmp`.
    MidCheckpointCrash,
    /// The consumer thread stops draining; producers hit admission
    /// deadlines and must shed.
    StalledConsumer,
    /// Event timestamps jump backwards or far forwards mid-stream.
    ClockSkew,
}

impl ProcessFaultKind {
    /// Every process fault kind.
    pub const ALL: [ProcessFaultKind; 4] = [
        ProcessFaultKind::KillAtOffset,
        ProcessFaultKind::MidCheckpointCrash,
        ProcessFaultKind::StalledConsumer,
        ProcessFaultKind::ClockSkew,
    ];

    /// Stable kebab-case name, accepted by [`ProcessFaultKind::parse`].
    pub fn name(self) -> &'static str {
        match self {
            ProcessFaultKind::KillAtOffset => "kill-at-offset",
            ProcessFaultKind::MidCheckpointCrash => "mid-checkpoint-crash",
            ProcessFaultKind::StalledConsumer => "stalled-consumer",
            ProcessFaultKind::ClockSkew => "clock-skew",
        }
    }

    /// Looks a kind up by its kebab-case name.
    pub fn parse(name: &str) -> Option<ProcessFaultKind> {
        ProcessFaultKind::ALL.iter().copied().find(|k| k.name() == name.trim())
    }
}

impl fmt::Display for ProcessFaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One fault to inject: what, how hard, and under which random seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// The failure to reproduce.
    pub kind: FaultKind,
    /// Fraction of the artifact affected, clamped to `[0, 1]`.
    pub severity: f64,
    /// Seed for the injector's private RNG.
    pub seed: u64,
}

/// Default injector seed (any fixed value works; this one is greppable).
const DEFAULT_SEED: u64 = 0xFA_017;

impl FaultSpec {
    /// A spec with the default seed.
    pub fn new(kind: FaultKind, severity: f64) -> Self {
        FaultSpec { kind, severity, seed: DEFAULT_SEED }
    }

    /// A spec with an explicit seed.
    pub fn with_seed(kind: FaultKind, severity: f64, seed: u64) -> Self {
        FaultSpec { kind, severity, seed }
    }

    /// Parses `kind:severity`, e.g. `drop-samples:0.5`. The severity is
    /// optional and defaults to 1.
    pub fn parse(s: &str) -> Result<FaultSpec, String> {
        let (name, sev) = match s.split_once(':') {
            Some((n, v)) => (n, v),
            None => (s, "1"),
        };
        let kind = FaultKind::by_name(name.trim()).ok_or_else(|| {
            let known: Vec<&str> = FaultKind::ALL.iter().map(|k| k.name()).collect();
            format!("unknown fault kind `{name}` (known: {})", known.join(", "))
        })?;
        let severity: f64 = sev
            .trim()
            .parse()
            .map_err(|_| format!("bad severity `{sev}` in `{s}` (want a number in [0,1])"))?;
        if !(0.0..=1.0).contains(&severity) {
            return Err(format!("severity {severity} out of range [0,1]"));
        }
        Ok(FaultSpec::new(kind, severity))
    }

    fn rng(&self) -> StdRng {
        // Mix the kind in so a multi-fault sweep under one seed does not
        // correlate its injectors.
        StdRng::seed_from_u64(self.seed ^ ((self.kind as u64) << 56) ^ 0x5eed)
    }

    /// Injects a trace-targeted fault. Severity 0 (or a report-targeted
    /// kind) is a no-op; the warnings are nonempty exactly when the trace
    /// was mutated.
    pub fn apply_to_trace(&self, trace: &mut TraceFile) -> Vec<Warning> {
        if self.kind.target() != FaultTarget::Trace || self.severity <= 0.0 {
            return Vec::new();
        }
        let severity = self.severity.min(1.0);
        let mut rng = self.rng();
        let mutated = match self.kind {
            FaultKind::TruncateEvents => {
                let keep = ((trace.events.len() as f64) * (1.0 - severity)).floor() as usize;
                let dropped = trace.events.len() - keep;
                trace.events.truncate(keep);
                dropped
            }
            FaultKind::DropSamples => {
                let before = trace.events.len();
                trace.events.retain(|e| !e.is_sample() || rng.gen::<f64>() >= severity);
                before - trace.events.len()
            }
            FaultKind::CorruptTimestamps => {
                let span = if trace.duration.is_finite() && trace.duration > 0.0 {
                    trace.duration
                } else {
                    1.0
                };
                let mut hit = 0usize;
                for e in &mut trace.events {
                    if rng.gen::<f64>() < severity {
                        // Mostly re-stamp inside the run (reordering);
                        // occasionally a NaN, as real clock bugs produce.
                        let t =
                            if rng.gen::<f64>() < 0.2 { f64::NAN } else { rng.gen::<f64>() * span };
                        e.set_time(t);
                        hit += 1;
                    }
                }
                hit
            }
            FaultKind::FreeBeforeAlloc => {
                let allocs = trace.alloc_count().max(1);
                let extra = ((allocs as f64) * severity).ceil() as usize;
                let t0 = trace.events.first().map(|e| e.time()).unwrap_or(0.0);
                let fresh = trace
                    .events
                    .iter()
                    .filter_map(|e| match e {
                        TraceEvent::Alloc { object, .. } => Some(object.0),
                        _ => None,
                    })
                    .max()
                    .unwrap_or(0)
                    + 1;
                for i in 0..extra {
                    trace.events.insert(
                        0,
                        TraceEvent::Free { time: t0, object: ObjectId(fresh + i as u64) },
                    );
                }
                extra
            }
            FaultKind::UnknownModules => {
                let ghost = ModuleId(trace.binmap.len().max(1) as u16);
                let mut hit = 0usize;
                for (_, stack) in &mut trace.stacks {
                    if rng.gen::<f64>() < severity {
                        *stack = retarget(stack, ghost);
                        hit += 1;
                    }
                }
                hit
            }
            FaultKind::StaleOffsets | FaultKind::DropModules => unreachable!("report faults"),
        };
        if mutated == 0 {
            return Vec::new();
        }
        vec![Warning::new(
            WarningKind::FaultInjected,
            format!("{}@{severity}: mutated {mutated} trace item(s)", self.kind),
        )]
    }

    /// Injects a report-targeted fault. Severity 0 (or a trace-targeted
    /// kind) is a no-op; the warnings are nonempty exactly when the report
    /// was mutated.
    pub fn apply_to_report(&self, report: &mut PlacementReport) -> Vec<Warning> {
        if self.kind.target() != FaultTarget::Report || self.severity <= 0.0 {
            return Vec::new();
        }
        let severity = self.severity.min(1.0);
        let mut rng = self.rng();
        let mut mutated = 0;
        for entry in &mut report.entries {
            if rng.gen::<f64>() >= severity {
                continue;
            }
            match (&mut entry.stack, self.kind) {
                (ReportStack::Bom(stack), FaultKind::StaleOffsets) => {
                    // A rebuild shifts code by whole line-table ranges: the
                    // frames still resolve inside their modules but no
                    // longer match any runtime stack — the silent case.
                    let shift = 64 * (1 + rng.gen::<u64>() % 64);
                    *stack = CallStack::new(
                        stack
                            .frames()
                            .iter()
                            .map(|f| Frame::new(f.module, f.offset.wrapping_add(shift)))
                            .collect(),
                    );
                    mutated += 1;
                }
                (ReportStack::Bom(stack), FaultKind::DropModules) => {
                    // ModuleId::MAX never appears in a real image; matching
                    // fails at interposer initialization, the loud case.
                    *stack = retarget(stack, ModuleId(u16::MAX));
                    mutated += 1;
                }
                (ReportStack::Human(h), FaultKind::StaleOffsets) => {
                    // HR reports go stale by line drift after a rebuild.
                    let drift = 1 + rng.gen::<u32>() % 100;
                    *h = crate::callstack::HumanStack::new(
                        h.locations()
                            .iter()
                            .map(|loc| {
                                crate::callstack::CodeLocation::new(
                                    loc.file.clone(),
                                    loc.line.saturating_add(drift),
                                )
                            })
                            .collect(),
                    );
                    mutated += 1;
                }
                // HR entries carry no module references to drop.
                (ReportStack::Human(_), _) | (ReportStack::Bom(_), _) => {}
            }
        }
        if mutated == 0 {
            return Vec::new();
        }
        vec![Warning::new(
            WarningKind::FaultInjected,
            format!("{}@{severity}: mutated {mutated} report entries", self.kind),
        )]
    }
}

impl fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.kind, self.severity)
    }
}

/// Rewrites every frame of a stack to point into `module`, preserving
/// offsets so distinct stacks stay distinct.
fn retarget(stack: &CallStack, module: ModuleId) -> CallStack {
    CallStack::new(stack.frames().iter().map(|f| Frame::new(module, f.offset)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binmap::BinaryMapBuilder;
    use crate::callstack::StackFormat;
    use crate::ids::{SiteId, TierId};
    use crate::report::ReportEntry;

    fn toy_trace() -> TraceFile {
        let mut b = BinaryMapBuilder::new();
        b.add_module("a.out", 64 * 1024, 1 << 20, vec!["main.c".into()]);
        TraceFile {
            app_name: "toy".into(),
            seed: 1,
            ranks: 1,
            sampling_hz: 100.0,
            load_sample_period: 1.0,
            store_sample_period: 1.0,
            duration: 4.0,
            stacks: vec![
                (SiteId(0), CallStack::new(vec![Frame::new(ModuleId(0), 0x40)])),
                (SiteId(1), CallStack::new(vec![Frame::new(ModuleId(0), 0x80)])),
            ],
            binmap: b.build(),
            events: vec![
                TraceEvent::Alloc {
                    time: 0.0,
                    object: ObjectId(1),
                    site: SiteId(0),
                    size: 4096,
                    address: 0x10000,
                },
                TraceEvent::LoadMissSample {
                    time: 0.5,
                    address: 0x10040,
                    latency_cycles: 300.0,
                    function: crate::ids::FuncId(0),
                },
                TraceEvent::Alloc {
                    time: 1.0,
                    object: ObjectId(2),
                    site: SiteId(1),
                    size: 4096,
                    address: 0x20000,
                },
                TraceEvent::StoreSample {
                    time: 1.5,
                    address: 0x20040,
                    l1d_miss: true,
                    function: crate::ids::FuncId(0),
                },
                TraceEvent::Free { time: 2.0, object: ObjectId(1) },
                TraceEvent::Free { time: 3.0, object: ObjectId(2) },
            ],
        }
    }

    fn toy_report() -> PlacementReport {
        let mut r = PlacementReport::new(StackFormat::Bom, TierId::PMEM);
        r.push(ReportEntry {
            stack: ReportStack::Bom(CallStack::new(vec![Frame::new(ModuleId(0), 0x40)])),
            tier: TierId::DRAM,
            max_size: 4096,
        });
        r.push(ReportEntry {
            stack: ReportStack::Bom(CallStack::new(vec![Frame::new(ModuleId(0), 0x80)])),
            tier: TierId::DRAM,
            max_size: 4096,
        });
        r
    }

    #[test]
    fn severity_zero_is_a_no_op() {
        for kind in FaultKind::ALL {
            let spec = FaultSpec::new(kind, 0.0);
            let mut t = toy_trace();
            let before = t.clone();
            assert!(spec.apply_to_trace(&mut t).is_empty(), "{kind}");
            assert_eq!(t, before, "{kind}");
            let mut r = toy_report();
            let before = r.clone();
            assert!(spec.apply_to_report(&mut r).is_empty(), "{kind}");
            assert_eq!(r, before, "{kind}");
        }
    }

    #[test]
    fn injection_is_deterministic_per_seed() {
        for kind in FaultKind::ALL {
            let spec = FaultSpec::with_seed(kind, 0.7, 99);
            let (mut a, mut b) = (toy_trace(), toy_trace());
            spec.apply_to_trace(&mut a);
            spec.apply_to_trace(&mut b);
            assert_eq!(a, b, "{kind}");
            let (mut ra, mut rb) = (toy_report(), toy_report());
            spec.apply_to_report(&mut ra);
            spec.apply_to_report(&mut rb);
            assert_eq!(ra, rb, "{kind}");
        }
    }

    #[test]
    fn full_truncation_empties_the_event_stream() {
        let mut t = toy_trace();
        let w = FaultSpec::new(FaultKind::TruncateEvents, 1.0).apply_to_trace(&mut t);
        assert!(t.events.is_empty());
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].kind, WarningKind::FaultInjected);
        t.validate().unwrap(); // truncation alone keeps the trace valid
    }

    #[test]
    fn full_sample_drop_keeps_allocation_events() {
        let mut t = toy_trace();
        FaultSpec::new(FaultKind::DropSamples, 1.0).apply_to_trace(&mut t);
        assert_eq!(t.sample_count(), 0);
        assert_eq!(t.alloc_count(), 2);
        t.validate().unwrap();
    }

    #[test]
    fn free_before_alloc_breaks_strict_validation() {
        let mut t = toy_trace();
        let w = FaultSpec::new(FaultKind::FreeBeforeAlloc, 0.5).apply_to_trace(&mut t);
        assert!(!w.is_empty());
        assert!(t.validate().is_err());
        let sw = t.sanitize();
        t.validate().unwrap();
        assert!(sw.iter().any(|w| w.kind == WarningKind::OrphanFree));
    }

    #[test]
    fn corrupt_timestamps_are_repaired_by_sanitize() {
        let mut t = toy_trace();
        let w = FaultSpec::new(FaultKind::CorruptTimestamps, 1.0).apply_to_trace(&mut t);
        assert!(!w.is_empty());
        t.sanitize();
        t.validate().unwrap();
    }

    #[test]
    fn stale_offsets_keep_entries_resolvable_but_different() {
        let mut r = toy_report();
        let before = r.clone();
        let w = FaultSpec::new(FaultKind::StaleOffsets, 1.0).apply_to_report(&mut r);
        assert!(!w.is_empty());
        assert_ne!(r, before);
        // Still the same modules: stale offsets resolve at init and simply
        // never match at runtime.
        for e in &r.entries {
            if let ReportStack::Bom(s) = &e.stack {
                assert!(s.frames().iter().all(|f| f.module == ModuleId(0)));
            }
        }
    }

    #[test]
    fn drop_modules_targets_an_impossible_module() {
        let mut r = toy_report();
        FaultSpec::new(FaultKind::DropModules, 1.0).apply_to_report(&mut r);
        for e in &r.entries {
            if let ReportStack::Bom(s) = &e.stack {
                assert!(s.frames().iter().all(|f| f.module == ModuleId(u16::MAX)));
            }
        }
    }

    #[test]
    fn process_fault_names_round_trip() {
        for kind in ProcessFaultKind::ALL {
            assert_eq!(ProcessFaultKind::parse(kind.name()), Some(kind));
            assert_eq!(format!("{kind}"), kind.name());
        }
        assert_eq!(ProcessFaultKind::parse("melt-cpu"), None);
    }

    #[test]
    fn parse_round_trips_names() {
        for kind in FaultKind::ALL {
            let spec = FaultSpec::parse(&format!("{}:0.5", kind.name())).unwrap();
            assert_eq!(spec.kind, kind);
            assert_eq!(spec.severity, 0.5);
        }
        assert_eq!(FaultSpec::parse("truncate-events").unwrap().severity, 1.0);
        assert!(FaultSpec::parse("melt-cpu:0.5").is_err());
        assert!(FaultSpec::parse("drop-samples:2.0").is_err());
        assert!(FaultSpec::parse("drop-samples:x").is_err());
    }
}
