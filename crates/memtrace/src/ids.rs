//! Strongly-typed identifiers used across the workspace.
//!
//! Every identifier is a thin newtype over a small integer so that hot maps
//! (site → stats, object → placement) stay cheap, while the type system
//! prevents mixing, say, a [`SiteId`] with an [`ObjectId`].

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies an *allocation site*: a unique call stack that reaches a heap
/// allocation routine. Every dynamic allocation made from the same call
/// stack shares one `SiteId`. This is the granularity at which the paper's
/// Advisor reasons ("memory object" in the paper means allocation site).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SiteId(pub u32);

/// Identifies one dynamic allocation instance (one `malloc` return value).
/// A site with `N` allocations over a run produces `N` distinct `ObjectId`s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ObjectId(pub u64);

/// Identifies a loaded binary object (the main executable or a shared
/// library) within the simulated process image.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ModuleId(pub u16);

/// Identifies a source-level function, used to attribute memory accesses for
/// the per-function breakdowns of Table VII.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FuncId(pub u16);

/// Identifies a memory tier (subsystem). By convention in this workspace,
/// tier 0 is DRAM and tier 1 is PMEM, but nothing in the algorithms depends
/// on that: tier *order* always comes from the machine or advisor
/// configuration (descending performance), which is how the paper supports
/// arbitrary heterogeneous memory configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TierId(pub u8);

impl TierId {
    /// Conventional DRAM tier id used by the built-in machine presets.
    pub const DRAM: TierId = TierId(0);
    /// Conventional PMEM tier id used by the built-in machine presets.
    pub const PMEM: TierId = TierId(1);
}

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "site{}", self.0)
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj{}", self.0)
    }
}

impl fmt::Display for ModuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mod{}", self.0)
    }
}

impl fmt::Display for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fn{}", self.0)
    }
}

impl fmt::Display for TierId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tier{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_constants() {
        assert_eq!(TierId::DRAM, TierId(0));
        assert_eq!(TierId::PMEM, TierId(1));
        assert_ne!(TierId::DRAM, TierId::PMEM);
    }

    #[test]
    fn ids_order_by_value() {
        assert!(SiteId(1) < SiteId(2));
        assert!(ObjectId(10) > ObjectId(9));
    }

    #[test]
    fn display_forms() {
        assert_eq!(SiteId(3).to_string(), "site3");
        assert_eq!(ObjectId(7).to_string(), "obj7");
        assert_eq!(TierId(1).to_string(), "tier1");
        assert_eq!(ModuleId(2).to_string(), "mod2");
        assert_eq!(FuncId(4).to_string(), "fn4");
    }

    #[test]
    fn ids_serialize_as_bare_integers() {
        // Ids are newtypes; the JSON codec writes them as the inner value.
        let j = ecohmem_obs::json::Json::U64(SiteId(42).0 as u64);
        assert_eq!(j.to_string_compact(), "42");
        assert_eq!(j.as_u64(), Some(42));
    }
}
