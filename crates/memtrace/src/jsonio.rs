//! JSON codecs for the persisted trace artifacts.
//!
//! The on-disk schema deliberately mirrors the derive-style layout the
//! crate has always documented (externally tagged enums, field order =
//! declaration order) so existing tooling and the truncation-repair
//! heuristics in [`crate::trace`] keep working: `events` is the last
//! field of a trace, so a torn write loses trailing events, never
//! metadata. The implementation sits on [`ecohmem_obs::json`], the
//! workspace's zero-dependency JSON layer.
//!
//! Structural problems (missing field, wrong type) are reported as
//! [`JsonError`]s with position 0:0 — the document parsed, so there is no
//! single offending byte to point at.

use crate::binmap::{BinaryMap, LineEntry, ModuleInfo};
use crate::callstack::{CallStack, CodeLocation, Frame, HumanStack, StackFormat};
use crate::events::TraceEvent;
use crate::ids::{FuncId, ModuleId, ObjectId, SiteId, TierId};
use crate::report::{PlacementReport, ReportEntry, ReportStack};
use crate::trace::TraceFile;
use ecohmem_obs::json::{Json, JsonError};

fn schema(msg: impl Into<String>) -> JsonError {
    JsonError { line: 0, column: 0, message: msg.into() }
}

fn field<'a>(v: &'a Json, k: &str) -> Result<&'a Json, JsonError> {
    v.get(k).ok_or_else(|| schema(format!("missing field `{k}`")))
}

fn u64_field(v: &Json, k: &str) -> Result<u64, JsonError> {
    field(v, k)?.as_u64().ok_or_else(|| schema(format!("field `{k}` is not an unsigned integer")))
}

/// Floats read `null` back as NaN: the schema writes non-finite values as
/// `null`, and callers (`validate`/`sanitize`) treat NaN as the damage it
/// is rather than having the parser invent a number.
fn f64_field(v: &Json, k: &str) -> Result<f64, JsonError> {
    field(v, k)?.as_f64().ok_or_else(|| schema(format!("field `{k}` is not a number")))
}

fn str_field<'a>(v: &'a Json, k: &str) -> Result<&'a str, JsonError> {
    field(v, k)?.as_str().ok_or_else(|| schema(format!("field `{k}` is not a string")))
}

fn arr_field<'a>(v: &'a Json, k: &str) -> Result<&'a [Json], JsonError> {
    field(v, k)?.as_arr().ok_or_else(|| schema(format!("field `{k}` is not an array")))
}

fn frame_to_json(f: &Frame) -> Json {
    Json::obj(vec![("module", Json::U64(f.module.0 as u64)), ("offset", Json::U64(f.offset))])
}

fn frame_from_json(v: &Json) -> Result<Frame, JsonError> {
    let module = u64_field(v, "module")?;
    let module = u16::try_from(module).map_err(|_| schema("module id out of range"))?;
    Ok(Frame::new(ModuleId(module), u64_field(v, "offset")?))
}

pub(crate) fn stack_to_json(s: &CallStack) -> Json {
    Json::obj(vec![("frames", Json::Arr(s.frames().iter().map(frame_to_json).collect()))])
}

pub(crate) fn stack_from_json(v: &Json) -> Result<CallStack, JsonError> {
    let frames =
        arr_field(v, "frames")?.iter().map(frame_from_json).collect::<Result<Vec<_>, _>>()?;
    Ok(CallStack::new(frames))
}

fn human_to_json(s: &HumanStack) -> Json {
    Json::obj(vec![(
        "locations",
        Json::Arr(
            s.locations()
                .iter()
                .map(|l| {
                    Json::obj(vec![
                        ("file", Json::str(l.file.clone())),
                        ("line", Json::U64(l.line as u64)),
                    ])
                })
                .collect(),
        ),
    )])
}

fn human_from_json(v: &Json) -> Result<HumanStack, JsonError> {
    let locations = arr_field(v, "locations")?
        .iter()
        .map(|l| {
            let line = u64_field(l, "line")?;
            let line = u32::try_from(line).map_err(|_| schema("line number out of range"))?;
            Ok(CodeLocation::new(str_field(l, "file")?, line))
        })
        .collect::<Result<Vec<_>, JsonError>>()?;
    Ok(HumanStack::new(locations))
}

/// Encodes one event in the trace schema's externally-tagged layout.
/// Public (re-exported as [`crate::event_to_json`]) so wire protocols
/// layered on the trace schema — the serve daemon's JSONL mode — emit
/// byte-identical event objects.
pub fn event_to_json(e: &TraceEvent) -> Json {
    let (tag, body) = match e {
        TraceEvent::Alloc { time, object, site, size, address } => (
            "Alloc",
            vec![
                ("time", Json::f64(*time)),
                ("object", Json::U64(object.0)),
                ("site", Json::U64(site.0 as u64)),
                ("size", Json::U64(*size)),
                ("address", Json::U64(*address)),
            ],
        ),
        TraceEvent::Free { time, object } => {
            ("Free", vec![("time", Json::f64(*time)), ("object", Json::U64(object.0))])
        }
        TraceEvent::LoadMissSample { time, address, latency_cycles, function } => (
            "LoadMissSample",
            vec![
                ("time", Json::f64(*time)),
                ("address", Json::U64(*address)),
                ("latency_cycles", Json::f64(*latency_cycles)),
                ("function", Json::U64(function.0 as u64)),
            ],
        ),
        TraceEvent::StoreSample { time, address, l1d_miss, function } => (
            "StoreSample",
            vec![
                ("time", Json::f64(*time)),
                ("address", Json::U64(*address)),
                ("l1d_miss", Json::Bool(*l1d_miss)),
                ("function", Json::U64(function.0 as u64)),
            ],
        ),
        TraceEvent::PhaseMarker { time, phase } => {
            ("PhaseMarker", vec![("time", Json::f64(*time)), ("phase", Json::U64(*phase as u64))])
        }
    };
    Json::obj(vec![(tag, Json::obj(body))])
}

/// Decodes one event written by [`event_to_json`].
pub fn event_from_json(v: &Json) -> Result<TraceEvent, JsonError> {
    let Json::Obj(pairs) = v else {
        return Err(schema("event is not an object"));
    };
    let [(tag, body)] = pairs.as_slice() else {
        return Err(schema("event must have exactly one variant tag"));
    };
    let func = |b: &Json| -> Result<FuncId, JsonError> {
        let f = u64_field(b, "function")?;
        Ok(FuncId(u16::try_from(f).map_err(|_| schema("function id out of range"))?))
    };
    match tag.as_str() {
        "Alloc" => {
            let site = u64_field(body, "site")?;
            let site = u32::try_from(site).map_err(|_| schema("site id out of range"))?;
            Ok(TraceEvent::Alloc {
                time: f64_field(body, "time")?,
                object: ObjectId(u64_field(body, "object")?),
                site: SiteId(site),
                size: u64_field(body, "size")?,
                address: u64_field(body, "address")?,
            })
        }
        "Free" => Ok(TraceEvent::Free {
            time: f64_field(body, "time")?,
            object: ObjectId(u64_field(body, "object")?),
        }),
        "LoadMissSample" => Ok(TraceEvent::LoadMissSample {
            time: f64_field(body, "time")?,
            address: u64_field(body, "address")?,
            latency_cycles: f64_field(body, "latency_cycles")?,
            function: func(body)?,
        }),
        "StoreSample" => Ok(TraceEvent::StoreSample {
            time: f64_field(body, "time")?,
            address: u64_field(body, "address")?,
            l1d_miss: field(body, "l1d_miss")?
                .as_bool()
                .ok_or_else(|| schema("field `l1d_miss` is not a bool"))?,
            function: func(body)?,
        }),
        "PhaseMarker" => {
            let phase = u64_field(body, "phase")?;
            Ok(TraceEvent::PhaseMarker {
                time: f64_field(body, "time")?,
                phase: u32::try_from(phase).map_err(|_| schema("phase out of range"))?,
            })
        }
        other => Err(schema(format!("unknown event variant `{other}`"))),
    }
}

fn binmap_to_json(map: &BinaryMap) -> Json {
    Json::obj(vec![(
        "modules",
        Json::Arr(
            map.modules()
                .iter()
                .map(|m| {
                    Json::obj(vec![
                        ("id", Json::U64(m.id.0 as u64)),
                        ("name", Json::str(m.name.clone())),
                        ("text_size", Json::U64(m.text_size)),
                        ("debug_info_size", Json::U64(m.debug_info_size)),
                        (
                            "files",
                            Json::Arr(m.files.iter().map(|f| Json::str(f.clone())).collect()),
                        ),
                        (
                            "line_table",
                            Json::Arr(
                                m.line_table
                                    .iter()
                                    .map(|e| {
                                        Json::obj(vec![
                                            ("start", Json::U64(e.start)),
                                            ("end", Json::U64(e.end)),
                                            ("file", Json::U64(e.file as u64)),
                                            ("line", Json::U64(e.line as u64)),
                                        ])
                                    })
                                    .collect(),
                            ),
                        ),
                    ])
                })
                .collect(),
        ),
    )])
}

fn binmap_from_json(v: &Json) -> Result<BinaryMap, JsonError> {
    let u32_of =
        |v: u64, what: &str| u32::try_from(v).map_err(|_| schema(format!("{what} out of range")));
    let modules = arr_field(v, "modules")?
        .iter()
        .map(|m| {
            let id = u64_field(m, "id")?;
            let id = u16::try_from(id).map_err(|_| schema("module id out of range"))?;
            let files = arr_field(m, "files")?
                .iter()
                .map(|f| {
                    f.as_str()
                        .map(String::from)
                        .ok_or_else(|| schema("module file name is not a string"))
                })
                .collect::<Result<Vec<_>, _>>()?;
            let line_table = arr_field(m, "line_table")?
                .iter()
                .map(|e| {
                    Ok(LineEntry {
                        start: u64_field(e, "start")?,
                        end: u64_field(e, "end")?,
                        file: u32_of(u64_field(e, "file")?, "file index")?,
                        line: u32_of(u64_field(e, "line")?, "line number")?,
                    })
                })
                .collect::<Result<Vec<_>, JsonError>>()?;
            Ok(ModuleInfo {
                id: ModuleId(id),
                name: str_field(m, "name")?.to_string(),
                text_size: u64_field(m, "text_size")?,
                debug_info_size: u64_field(m, "debug_info_size")?,
                files,
                line_table,
            })
        })
        .collect::<Result<Vec<_>, JsonError>>()?;
    Ok(BinaryMap::from_modules(modules))
}

pub(crate) fn trace_to_json(t: &TraceFile) -> Json {
    Json::obj(vec![
        ("app_name", Json::str(t.app_name.clone())),
        ("seed", Json::U64(t.seed)),
        ("ranks", Json::U64(t.ranks as u64)),
        ("sampling_hz", Json::f64(t.sampling_hz)),
        ("load_sample_period", Json::f64(t.load_sample_period)),
        ("store_sample_period", Json::f64(t.store_sample_period)),
        ("duration", Json::f64(t.duration)),
        (
            "stacks",
            Json::Arr(
                t.stacks
                    .iter()
                    .map(|(site, stack)| {
                        Json::Arr(vec![Json::U64(site.0 as u64), stack_to_json(stack)])
                    })
                    .collect(),
            ),
        ),
        ("binmap", binmap_to_json(&t.binmap)),
        // `events` stays the last field: truncation repair depends on a
        // torn write losing only trailing events.
        ("events", Json::Arr(t.events.iter().map(event_to_json).collect())),
    ])
}

pub(crate) fn trace_from_json(v: &Json) -> Result<TraceFile, JsonError> {
    let ranks = u64_field(v, "ranks")?;
    let stacks = arr_field(v, "stacks")?
        .iter()
        .map(|pair| {
            let items = pair.as_arr().ok_or_else(|| schema("stack table entry not an array"))?;
            let [site, stack] = items else {
                return Err(schema("stack table entry must be a [site, stack] pair"));
            };
            let site = site.as_u64().ok_or_else(|| schema("site id is not an integer"))?;
            let site = u32::try_from(site).map_err(|_| schema("site id out of range"))?;
            Ok((SiteId(site), stack_from_json(stack)?))
        })
        .collect::<Result<Vec<_>, JsonError>>()?;
    // Legacy traces omit the sample-period fields; they default to 1.
    let period = |k: &str| match v.get(k) {
        Some(p) => p.as_f64().ok_or_else(|| schema(format!("field `{k}` is not a number"))),
        None => Ok(1.0),
    };
    Ok(TraceFile {
        app_name: str_field(v, "app_name")?.to_string(),
        seed: u64_field(v, "seed")?,
        ranks: u32::try_from(ranks).map_err(|_| schema("ranks out of range"))?,
        sampling_hz: f64_field(v, "sampling_hz")?,
        load_sample_period: period("load_sample_period")?,
        store_sample_period: period("store_sample_period")?,
        duration: f64_field(v, "duration")?,
        stacks,
        binmap: binmap_from_json(field(v, "binmap")?)?,
        events: arr_field(v, "events")?
            .iter()
            .map(event_from_json)
            .collect::<Result<Vec<_>, _>>()?,
    })
}

fn format_to_json(f: StackFormat) -> Json {
    Json::str(match f {
        StackFormat::Bom => "Bom",
        StackFormat::HumanReadable => "HumanReadable",
    })
}

fn format_from_json(v: &Json) -> Result<StackFormat, JsonError> {
    match v.as_str() {
        Some("Bom") => Ok(StackFormat::Bom),
        Some("HumanReadable") => Ok(StackFormat::HumanReadable),
        _ => Err(schema("unknown stack format")),
    }
}

pub(crate) fn report_to_json(r: &PlacementReport) -> Json {
    Json::obj(vec![
        ("format", format_to_json(r.format)),
        (
            "entries",
            Json::Arr(
                r.entries
                    .iter()
                    .map(|e| {
                        let stack = match &e.stack {
                            ReportStack::Bom(s) => Json::obj(vec![("Bom", stack_to_json(s))]),
                            ReportStack::Human(h) => Json::obj(vec![("Human", human_to_json(h))]),
                        };
                        Json::obj(vec![
                            ("stack", stack),
                            ("tier", Json::U64(e.tier.0 as u64)),
                            ("max_size", Json::U64(e.max_size)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("fallback", Json::U64(r.fallback.0 as u64)),
    ])
}

pub(crate) fn report_from_json(v: &Json) -> Result<PlacementReport, JsonError> {
    let tier = |v: u64| -> Result<TierId, JsonError> {
        Ok(TierId(u8::try_from(v).map_err(|_| schema("tier id out of range"))?))
    };
    let entries = arr_field(v, "entries")?
        .iter()
        .map(|e| {
            let stack = field(e, "stack")?;
            let stack = if let Some(bom) = stack.get("Bom") {
                ReportStack::Bom(stack_from_json(bom)?)
            } else if let Some(h) = stack.get("Human") {
                ReportStack::Human(human_from_json(h)?)
            } else {
                return Err(schema("entry stack is neither Bom nor Human"));
            };
            Ok(ReportEntry {
                stack,
                tier: tier(u64_field(e, "tier")?)?,
                max_size: u64_field(e, "max_size")?,
            })
        })
        .collect::<Result<Vec<_>, JsonError>>()?;
    Ok(PlacementReport {
        format: format_from_json(field(v, "format")?)?,
        entries,
        fallback: tier(u64_field(v, "fallback")?)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_round_trip_through_json() {
        let events = vec![
            TraceEvent::Alloc {
                time: 0.25,
                object: ObjectId(u64::MAX),
                site: SiteId(3),
                size: 1 << 40,
                address: 0xffff_8000_0000_1000,
            },
            TraceEvent::Free { time: 1.0, object: ObjectId(1) },
            TraceEvent::LoadMissSample {
                time: 0.5,
                address: 0x2000,
                latency_cycles: 412.5,
                function: FuncId(7),
            },
            TraceEvent::StoreSample {
                time: 0.75,
                address: 0x2040,
                l1d_miss: true,
                function: FuncId(7),
            },
            TraceEvent::PhaseMarker { time: 2.0, phase: 3 },
        ];
        for e in &events {
            let j = event_to_json(e).to_string_compact();
            let back = event_from_json(&Json::parse(&j).unwrap()).unwrap();
            assert_eq!(*e, back, "{j}");
        }
    }

    #[test]
    fn nan_time_round_trips_as_nan() {
        let e = TraceEvent::PhaseMarker { time: f64::NAN, phase: 0 };
        let j = event_to_json(&e).to_string_compact();
        assert!(j.contains("null"), "{j}");
        match event_from_json(&Json::parse(&j).unwrap()).unwrap() {
            TraceEvent::PhaseMarker { time, .. } => assert!(time.is_nan()),
            other => panic!("wrong event: {other:?}"),
        }
    }

    #[test]
    fn unknown_variant_is_rejected() {
        let v = Json::parse(r#"{"Explode":{"time":0.0}}"#).unwrap();
        assert!(event_from_json(&v).is_err());
    }
}
