//! # memtrace — trace data model for the ecoHMEM reproduction
//!
//! This crate defines the vocabulary shared by every other crate in the
//! workspace: identifiers for allocation sites, objects, modules and memory
//! tiers; call stacks in both supported formats (binary-object-matching and
//! human-readable); the simulated process image (binary map + ASLR load
//! map); the on-disk trace file produced by the profiler; and the placement
//! report exchanged between the HMem Advisor and FlexMalloc.
//!
//! In the paper, these artifacts are produced by Extrae (trace file) and the
//! HMem Advisor (placement report), and consumed by Paramedir and FlexMalloc
//! respectively. Reproducing the *formats* — in particular the two
//! call-stack encodings of Table I — is essential because contribution VI
//! (Binary Object Matching) is precisely about the runtime cost difference
//! between them.

pub mod binfmt;
pub mod binmap;
pub mod callstack;
pub mod columns;
pub mod ctrace;
pub mod error;
pub mod events;
pub mod fault;
pub mod ids;
pub mod jsonio;
pub mod report;
pub mod textfmt;
pub mod trace;
pub mod warn;

pub use binfmt::{
    read_trace, write_columnar_v2, write_trace, write_trace_lenient, write_trace_v2, TraceBuf,
};
pub use binmap::{BinaryMap, BinaryMapBuilder, LoadMap, ModuleInfo};
pub use callstack::{CallStack, CodeLocation, Frame, HumanStack, StackFormat};
pub use columns::{EventBatch, ObjectIndex, TraceColumns, SAME_TIER_SPAN};
pub use ctrace::ColumnarTrace;
pub use error::TraceError;
pub use events::TraceEvent;
pub use fault::{FaultKind, FaultSpec, FaultTarget, ProcessFaultKind};
pub use ids::{FuncId, ModuleId, ObjectId, SiteId, TierId};
pub use jsonio::{event_from_json, event_to_json};
pub use report::{PlacementReport, ReportEntry, ReportStack};
pub use textfmt::parse_report;
pub use trace::TraceFile;
pub use warn::{DegradationPolicy, DroppedWindow, Warning, WarningKind};
