//! The placement report: the artifact the HMem Advisor writes and
//! FlexMalloc reads at process initialization.
//!
//! A report lists allocation call stacks and the memory tier each should be
//! served from, plus a fallback tier for unlisted stacks (and for listed
//! ones whose target tier runs out of space). Stacks appear in one of the
//! two Table I formats; which one is a property of the whole report.

use crate::binmap::BinaryMap;
use crate::callstack::{CallStack, HumanStack, StackFormat};
use crate::error::TraceError;
use crate::ids::TierId;
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};
use std::path::Path;

/// A call stack in whichever encoding the report uses.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReportStack {
    /// Binary-object-matching form: `(module, offset)` frames.
    Bom(CallStack),
    /// Human-readable form: `file:line` frames.
    Human(HumanStack),
}

impl ReportStack {
    /// The encoding this stack uses.
    pub fn format(&self) -> StackFormat {
        match self {
            ReportStack::Bom(_) => StackFormat::Bom,
            ReportStack::Human(_) => StackFormat::HumanReadable,
        }
    }

    /// Call-stack depth.
    pub fn depth(&self) -> usize {
        match self {
            ReportStack::Bom(s) => s.depth(),
            ReportStack::Human(s) => s.depth(),
        }
    }
}

/// One report line: a call stack, the tier to allocate it in, and the
/// largest size observed during profiling (kept for capacity accounting and
/// debugging, mirroring the Advisor's output).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReportEntry {
    /// The allocation call stack.
    pub stack: ReportStack,
    /// Assigned memory tier.
    pub tier: TierId,
    /// Largest allocation observed for this stack during profiling (bytes).
    pub max_size: u64,
}

/// A complete placement report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacementReport {
    /// Stack encoding used by every entry.
    pub format: StackFormat,
    /// Placement entries; at most one per distinct call stack.
    pub entries: Vec<ReportEntry>,
    /// Tier for unlisted stacks and out-of-space spills (usually the
    /// largest tier — PMEM on the paper's machine).
    pub fallback: TierId,
}

impl PlacementReport {
    /// Creates an empty report in the given format.
    pub fn new(format: StackFormat, fallback: TierId) -> Self {
        PlacementReport { format, entries: Vec::new(), fallback }
    }

    /// Adds an entry, asserting its format matches the report's.
    pub fn push(&mut self, entry: ReportEntry) {
        assert_eq!(
            entry.stack.format(),
            self.format,
            "report entry format must match report format"
        );
        self.entries.push(entry);
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are present (everything falls back).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// How many entries target a given tier.
    pub fn count_for_tier(&self, tier: TierId) -> usize {
        self.entries.iter().filter(|e| e.tier == tier).count()
    }

    /// Validation: entries all match the report format and no call stack
    /// appears twice (duplicate stacks would make matching ambiguous).
    pub fn validate(&self) -> Result<(), TraceError> {
        let mut seen = std::collections::HashSet::new();
        for (i, e) in self.entries.iter().enumerate() {
            if e.stack.format() != self.format {
                return Err(TraceError::Malformed(format!(
                    "entry {i} format {:?} differs from report format {:?}",
                    e.stack.format(),
                    self.format
                )));
            }
            if !seen.insert(&e.stack) {
                return Err(TraceError::Malformed(format!("duplicate call stack at entry {i}")));
            }
        }
        Ok(())
    }

    /// Converts a BOM report to human-readable form using debug info, the
    /// reverse of what contribution VI makes unnecessary. Used by the
    /// §VIII-D experiments to produce the HR variant of the same placement.
    pub fn to_human_readable(&self, binmap: &BinaryMap) -> Result<PlacementReport, TraceError> {
        let mut out = PlacementReport::new(StackFormat::HumanReadable, self.fallback);
        for e in &self.entries {
            let stack = match &e.stack {
                ReportStack::Bom(s) => ReportStack::Human(binmap.translate(s)?),
                ReportStack::Human(h) => ReportStack::Human(h.clone()),
            };
            out.entries.push(ReportEntry { stack, tier: e.tier, max_size: e.max_size });
        }
        Ok(out)
    }

    /// Renders the report in the textual shape of Table I, one line per
    /// entry: `<tier-name> # <max_size> # <stack>`.
    pub fn render_text(&self, binmap: &BinaryMap, tier_name: impl Fn(TierId) -> String) -> String {
        let mut lines = Vec::with_capacity(self.entries.len() + 1);
        for e in &self.entries {
            let stack = match &e.stack {
                ReportStack::Bom(s) => s.render_bom(|m| binmap.module_name(m)),
                ReportStack::Human(h) => h.render(),
            };
            lines.push(format!("{} # {} # {}", tier_name(e.tier), e.max_size, stack));
        }
        lines.push(format!("fallback # {}", tier_name(self.fallback)));
        lines.join("\n")
    }

    /// Serializes to JSON.
    pub fn to_json(&self) -> Result<String, TraceError> {
        Ok(crate::jsonio::report_to_json(self).to_string_compact())
    }

    /// Deserializes from JSON.
    pub fn from_json(json: &str) -> Result<Self, TraceError> {
        let value = ecohmem_obs::json::Json::parse(json)?;
        Ok(crate::jsonio::report_from_json(&value)?)
    }

    /// Writes the report as JSON.
    pub fn write_to<W: Write>(&self, mut w: W) -> Result<(), TraceError> {
        w.write_all(self.to_json()?.as_bytes())?;
        Ok(())
    }

    /// Reads a report from JSON.
    pub fn read_from<R: Read>(mut r: R) -> Result<Self, TraceError> {
        let mut buf = String::new();
        r.read_to_string(&mut buf)?;
        Self::from_json(&buf)
    }

    /// Saves the report to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), TraceError> {
        let f = std::fs::File::create(path)?;
        self.write_to(std::io::BufWriter::new(f))
    }

    /// Loads a report from a file.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, TraceError> {
        let f = std::fs::File::open(path)?;
        Self::read_from(std::io::BufReader::new(f))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binmap::BinaryMapBuilder;
    use crate::callstack::Frame;
    use crate::ids::ModuleId;

    fn sample_report() -> (PlacementReport, BinaryMap) {
        let mut b = BinaryMapBuilder::new();
        b.add_module("a.out", 4096, 1024, vec!["main.c".into()]);
        let map = b.build();
        let mut r = PlacementReport::new(StackFormat::Bom, TierId::PMEM);
        r.push(ReportEntry {
            stack: ReportStack::Bom(CallStack::new(vec![Frame::new(ModuleId(0), 0x40)])),
            tier: TierId::DRAM,
            max_size: 4096,
        });
        r.push(ReportEntry {
            stack: ReportStack::Bom(CallStack::new(vec![Frame::new(ModuleId(0), 0x80)])),
            tier: TierId::PMEM,
            max_size: 1 << 20,
        });
        (r, map)
    }

    #[test]
    fn counting() {
        let (r, _) = sample_report();
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
        assert_eq!(r.count_for_tier(TierId::DRAM), 1);
        assert_eq!(r.count_for_tier(TierId::PMEM), 1);
    }

    #[test]
    fn validation_accepts_clean_report() {
        let (r, _) = sample_report();
        r.validate().unwrap();
    }

    #[test]
    fn validation_rejects_duplicate_stack() {
        let (mut r, _) = sample_report();
        let dup = r.entries[0].clone();
        r.entries.push(dup);
        assert!(r.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "format must match")]
    fn push_rejects_mixed_formats() {
        let (mut r, _) = sample_report();
        r.push(ReportEntry {
            stack: ReportStack::Human(HumanStack::default()),
            tier: TierId::DRAM,
            max_size: 1,
        });
    }

    #[test]
    fn hr_conversion_translates_all_entries() {
        let (r, map) = sample_report();
        let hr = r.to_human_readable(&map).unwrap();
        assert_eq!(hr.format, StackFormat::HumanReadable);
        assert_eq!(hr.len(), r.len());
        hr.validate().unwrap();
    }

    #[test]
    fn text_rendering_has_one_line_per_entry_plus_fallback() {
        let (r, map) = sample_report();
        let text =
            r.render_text(&map, |t| if t == TierId::DRAM { "dram".into() } else { "pmem".into() });
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("dram # 4096 # a.out!0x40"));
        assert!(lines[2].contains("fallback # pmem"));
    }

    #[test]
    fn json_round_trip() {
        let (r, _) = sample_report();
        let j = r.to_json().unwrap();
        assert_eq!(PlacementReport::from_json(&j).unwrap(), r);
    }
}
