//! The Table I *text* report format: parser side.
//!
//! FlexMalloc's real input is a plain-text file, one allocation point per
//! line, `<tier> # <size> # <call stack>`, with the stack in either of the
//! two supported encodings:
//!
//! ```text
//! dram # 4096 # libfoo.so!0x2e43 > a.out!0x11d0
//! pmem # 1048576 # solver.cpp:120 > main.cpp:12
//! fallback # pmem
//! ```
//!
//! [`PlacementReport::render_text`](crate::report::PlacementReport::render_text)
//! produces this shape; this module parses it back, so reports can be
//! hand-edited (as the paper's authors did when fixing HPCToolkit's
//! call-stack frames, §VIII) and round-tripped through the toolchain.

use crate::binmap::BinaryMap;
use crate::callstack::{CallStack, CodeLocation, Frame, HumanStack, StackFormat};
use crate::error::TraceError;
use crate::ids::TierId;
use crate::report::{PlacementReport, ReportEntry, ReportStack};

/// Resolves tier names to ids while parsing (the inverse of the renderer's
/// `tier_name` closure). Returns `None` for unknown names.
pub type TierResolver<'a> = dyn Fn(&str) -> Option<TierId> + 'a;

/// Parses one frame in BOM text form: `module!0xOFFSET`.
fn parse_bom_frame(text: &str, binmap: &BinaryMap) -> Result<Frame, TraceError> {
    let (module_name, offset) = text
        .rsplit_once('!')
        .ok_or_else(|| TraceError::Malformed(format!("bad BOM frame `{text}`")))?;
    let module = binmap
        .modules()
        .iter()
        .find(|m| m.name == module_name)
        .map(|m| m.id)
        .ok_or_else(|| TraceError::Malformed(format!("unknown module `{module_name}`")))?;
    let offset = offset
        .strip_prefix("0x")
        .and_then(|h| u64::from_str_radix(h, 16).ok())
        .ok_or_else(|| TraceError::Malformed(format!("bad offset in `{text}`")))?;
    Ok(Frame::new(module, offset))
}

/// Parses one frame in human-readable form: `file:line`.
fn parse_hr_frame(text: &str) -> Result<CodeLocation, TraceError> {
    let (file, line) = text
        .rsplit_once(':')
        .ok_or_else(|| TraceError::Malformed(format!("bad HR frame `{text}`")))?;
    let line: u32 =
        line.parse().map_err(|_| TraceError::Malformed(format!("bad line number in `{text}`")))?;
    Ok(CodeLocation::new(file, line))
}

/// Parses the text report format. The stack encoding is auto-detected per
/// report (the first entry decides; mixed files are rejected, matching the
/// library's one-format-per-report rule).
pub fn parse_report(
    text: &str,
    binmap: &BinaryMap,
    resolve_tier: &TierResolver<'_>,
) -> Result<PlacementReport, TraceError> {
    let mut entries: Vec<ReportEntry> = Vec::new();
    let mut fallback: Option<TierId> = None;
    let mut format: Option<StackFormat> = None;

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.splitn(3, '#').map(str::trim);
        let head = parts.next().unwrap_or_default();

        if head.eq_ignore_ascii_case("fallback") {
            let name = parts.next().ok_or_else(|| {
                TraceError::Malformed(format!("line {}: fallback needs a tier", lineno + 1))
            })?;
            fallback = Some(resolve_tier(name).ok_or_else(|| {
                TraceError::Malformed(format!("line {}: unknown tier `{name}`", lineno + 1))
            })?);
            continue;
        }

        let tier = resolve_tier(head).ok_or_else(|| {
            TraceError::Malformed(format!("line {}: unknown tier `{head}`", lineno + 1))
        })?;
        let size: u64 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| TraceError::Malformed(format!("line {}: bad size", lineno + 1)))?;
        let stack_text = parts
            .next()
            .ok_or_else(|| TraceError::Malformed(format!("line {}: missing stack", lineno + 1)))?;

        // Auto-detect the encoding from the first frame: BOM frames contain
        // `!0x`, HR frames end in `:<digits>`.
        let line_format =
            if stack_text.contains("!0x") { StackFormat::Bom } else { StackFormat::HumanReadable };
        match format {
            None => format = Some(line_format),
            Some(f) if f != line_format => {
                return Err(TraceError::Malformed(format!(
                    "line {}: mixed stack formats in one report",
                    lineno + 1
                )))
            }
            _ => {}
        }

        let stack = match line_format {
            StackFormat::Bom => {
                let frames: Result<Vec<Frame>, _> =
                    stack_text.split('>').map(|f| parse_bom_frame(f.trim(), binmap)).collect();
                ReportStack::Bom(CallStack::new(frames?))
            }
            StackFormat::HumanReadable => {
                let locs: Result<Vec<CodeLocation>, _> =
                    stack_text.split('>').map(|f| parse_hr_frame(f.trim())).collect();
                ReportStack::Human(HumanStack::new(locs?))
            }
        };
        entries.push(ReportEntry { stack, tier, max_size: size });
    }

    let mut report = PlacementReport::new(
        format.unwrap_or(StackFormat::Bom),
        fallback.ok_or_else(|| TraceError::Malformed("report has no fallback line".into()))?,
    );
    for e in entries {
        report.push(e);
    }
    report.validate()?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binmap::BinaryMapBuilder;
    use crate::ids::ModuleId;

    fn image() -> BinaryMap {
        let mut b = BinaryMapBuilder::new();
        b.add_module("a.out", 64 * 1024, 1 << 20, vec!["main.c".into()]);
        b.add_module("libfoo.so", 64 * 1024, 1 << 20, vec!["foo.c".into()]);
        b.build()
    }

    fn resolver(name: &str) -> Option<TierId> {
        match name {
            "dram" => Some(TierId::DRAM),
            "pmem" => Some(TierId::PMEM),
            _ => None,
        }
    }

    #[test]
    fn bom_report_round_trips_through_text() {
        let map = image();
        let mut report = PlacementReport::new(StackFormat::Bom, TierId::PMEM);
        report.push(ReportEntry {
            stack: ReportStack::Bom(CallStack::new(vec![
                Frame::new(ModuleId(1), 0x2e40),
                Frame::new(ModuleId(0), 0x11c0),
            ])),
            tier: TierId::DRAM,
            max_size: 4096,
        });
        report.push(ReportEntry {
            stack: ReportStack::Bom(CallStack::new(vec![Frame::new(ModuleId(0), 0x80)])),
            tier: TierId::PMEM,
            max_size: 1 << 20,
        });
        let text =
            report.render_text(
                &map,
                |t| {
                    if t == TierId::DRAM {
                        "dram".into()
                    } else {
                        "pmem".into()
                    }
                },
            );
        let parsed = parse_report(&text, &map, &resolver).unwrap();
        assert_eq!(parsed, report);
    }

    #[test]
    fn hr_report_round_trips_through_text() {
        let map = image();
        let mut report = PlacementReport::new(StackFormat::Bom, TierId::PMEM);
        report.push(ReportEntry {
            stack: ReportStack::Bom(CallStack::new(vec![Frame::new(ModuleId(0), 0x40)])),
            tier: TierId::DRAM,
            max_size: 128,
        });
        let hr = report.to_human_readable(&map).unwrap();
        let text =
            hr.render_text(&map, |t| if t == TierId::DRAM { "dram".into() } else { "pmem".into() });
        let parsed = parse_report(&text, &map, &resolver).unwrap();
        assert_eq!(parsed, hr);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let map = image();
        let text = "\n# a comment\n  \ndram # 64 # a.out!0x40\nfallback # pmem\n";
        let parsed = parse_report(text, &map, &resolver).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed.fallback, TierId::PMEM);
    }

    #[test]
    fn missing_fallback_is_rejected() {
        let map = image();
        assert!(parse_report("dram # 64 # a.out!0x40\n", &map, &resolver).is_err());
    }

    #[test]
    fn unknown_tier_and_module_are_rejected() {
        let map = image();
        assert!(parse_report("hbm # 64 # a.out!0x40\nfallback # pmem\n", &map, &resolver).is_err());
        assert!(parse_report("dram # 64 # libnope.so!0x40\nfallback # pmem\n", &map, &resolver)
            .is_err());
    }

    #[test]
    fn mixed_formats_are_rejected() {
        let map = image();
        let text = "dram # 64 # a.out!0x40\npmem # 64 # main.c:12\nfallback # pmem\n";
        let err = parse_report(text, &map, &resolver).unwrap_err().to_string();
        assert!(err.contains("mixed"), "{err}");
    }

    #[test]
    fn hand_edited_reports_parse() {
        // The §VIII workflow: a user edits a tier by hand.
        let map = image();
        let text = "pmem # 4096 # libfoo.so!0x2e40 > a.out!0x11c0\nfallback # pmem\n";
        let parsed = parse_report(text, &map, &resolver).unwrap();
        assert_eq!(parsed.entries[0].tier, TierId::PMEM);
    }

    #[test]
    fn garbage_lines_error_with_line_numbers() {
        let map = image();
        let err =
            parse_report("dram # notanumber # a.out!0x40\nfallback # pmem\n", &map, &resolver)
                .unwrap_err()
                .to_string();
        assert!(err.contains("line 1"), "{err}");
    }
}
