//! The trace file: the artifact a profiling run writes and the analyzer
//! (Paramedir in the paper) reads.

use crate::binmap::BinaryMap;
use crate::callstack::CallStack;
use crate::error::TraceError;
use crate::events::TraceEvent;
use crate::ids::SiteId;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::io::{Read, Write};
use std::path::Path;

/// Serde default for the sample-period fields (legacy traces omit them).
fn one() -> f64 {
    1.0
}

/// A complete profiling trace: run metadata, the site table mapping
/// allocation sites to their call stacks, the program image description,
/// and the time-ordered event stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceFile {
    /// Application name, e.g. `lulesh`.
    pub app_name: String,
    /// Seed used for the profiled run (for reproducibility bookkeeping).
    pub seed: u64,
    /// Number of MPI ranks the model represents.
    pub ranks: u32,
    /// PEBS sampling rate in Hz that produced the sample events.
    pub sampling_hz: f64,
    /// LLC load misses represented by each load-miss sample (the effective
    /// PEBS period). Consumers multiply sample counts by this to estimate
    /// absolute miss counts.
    #[serde(default = "one")]
    pub load_sample_period: f64,
    /// Stores represented by each store sample.
    #[serde(default = "one")]
    pub store_sample_period: f64,
    /// Wall-clock duration of the profiled run, seconds.
    pub duration: f64,
    /// Call stack of each allocation site, indexed by `SiteId`.
    pub stacks: Vec<(SiteId, CallStack)>,
    /// The program image (modules + debug metadata).
    pub binmap: BinaryMap,
    /// Events ordered by time (ties broken by emission order).
    pub events: Vec<TraceEvent>,
}

impl TraceFile {
    /// Looks up the call stack recorded for a site.
    pub fn stack_of(&self, site: SiteId) -> Option<&CallStack> {
        self.stacks
            .iter()
            .find(|(s, _)| *s == site)
            .map(|(_, st)| st)
    }

    /// Site table as a map.
    pub fn stack_map(&self) -> HashMap<SiteId, &CallStack> {
        self.stacks.iter().map(|(s, st)| (*s, st)).collect()
    }

    /// Number of sample events in the trace.
    pub fn sample_count(&self) -> usize {
        self.events.iter().filter(|e| e.is_sample()).count()
    }

    /// Number of allocation events in the trace.
    pub fn alloc_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Alloc { .. }))
            .count()
    }

    /// Structural validation: events are time-ordered, every `Alloc`
    /// references a known site, every `Free` follows a matching `Alloc`,
    /// and no object is freed twice. The analyzer calls this before
    /// aggregating so that truncated or corrupted traces are rejected
    /// loudly instead of silently producing a bad placement.
    pub fn validate(&self) -> Result<(), TraceError> {
        let sites: HashSet<SiteId> = self.stacks.iter().map(|(s, _)| *s).collect();
        let mut live = HashSet::new();
        let mut freed = HashSet::new();
        let mut last_t = f64::NEG_INFINITY;
        for (i, e) in self.events.iter().enumerate() {
            let t = e.time();
            if t < last_t {
                return Err(TraceError::Malformed(format!(
                    "event {i} at t={t} precedes previous event at t={last_t}"
                )));
            }
            last_t = t;
            match e {
                TraceEvent::Alloc { object, site, size, .. } => {
                    if !sites.contains(site) {
                        return Err(TraceError::UnknownSite(*site));
                    }
                    if *size == 0 {
                        return Err(TraceError::Malformed(format!(
                            "zero-size allocation for {object}"
                        )));
                    }
                    if !live.insert(*object) {
                        return Err(TraceError::Malformed(format!(
                            "object {object} allocated twice without free"
                        )));
                    }
                }
                TraceEvent::Free { object, .. } => {
                    if !live.remove(object) {
                        if freed.contains(object) {
                            return Err(TraceError::Malformed(format!(
                                "double free of {object}"
                            )));
                        }
                        return Err(TraceError::Malformed(format!(
                            "free of never-allocated {object}"
                        )));
                    }
                    freed.insert(*object);
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Serializes the trace to JSON.
    pub fn to_json(&self) -> Result<String, TraceError> {
        Ok(serde_json::to_string(self)?)
    }

    /// Deserializes a trace from JSON.
    pub fn from_json(json: &str) -> Result<Self, TraceError> {
        Ok(serde_json::from_str(json)?)
    }

    /// Writes the trace to a writer as JSON.
    pub fn write_to<W: Write>(&self, mut w: W) -> Result<(), TraceError> {
        let json = self.to_json()?;
        w.write_all(json.as_bytes())?;
        Ok(())
    }

    /// Reads a trace from a reader.
    pub fn read_from<R: Read>(mut r: R) -> Result<Self, TraceError> {
        let mut buf = String::new();
        r.read_to_string(&mut buf)?;
        Self::from_json(&buf)
    }

    /// Writes the trace to a file path.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), TraceError> {
        let f = std::fs::File::create(path)?;
        self.write_to(std::io::BufWriter::new(f))
    }

    /// Loads a trace from a file path.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, TraceError> {
        let f = std::fs::File::open(path)?;
        Self::read_from(std::io::BufReader::new(f))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callstack::Frame;
    use crate::ids::{ModuleId, ObjectId};

    fn minimal_trace() -> TraceFile {
        TraceFile {
            app_name: "toy".into(),
            seed: 1,
            ranks: 1,
            sampling_hz: 100.0,
            load_sample_period: 1.0,
            store_sample_period: 1.0,
            duration: 2.0,
            stacks: vec![(SiteId(0), CallStack::new(vec![Frame::new(ModuleId(0), 0x10)]))],
            binmap: BinaryMap::default(),
            events: vec![
                TraceEvent::Alloc {
                    time: 0.0,
                    object: ObjectId(1),
                    site: SiteId(0),
                    size: 128,
                    address: 0x1000,
                },
                TraceEvent::Free { time: 1.0, object: ObjectId(1) },
            ],
        }
    }

    #[test]
    fn valid_trace_passes() {
        minimal_trace().validate().unwrap();
    }

    #[test]
    fn counts() {
        let t = minimal_trace();
        assert_eq!(t.alloc_count(), 1);
        assert_eq!(t.sample_count(), 0);
        assert!(t.stack_of(SiteId(0)).is_some());
        assert!(t.stack_of(SiteId(9)).is_none());
    }

    #[test]
    fn rejects_unordered_events() {
        let mut t = minimal_trace();
        t.events.swap(0, 1);
        assert!(t.validate().is_err());
    }

    #[test]
    fn rejects_unknown_site() {
        let mut t = minimal_trace();
        t.stacks.clear();
        assert!(matches!(t.validate(), Err(TraceError::UnknownSite(_))));
    }

    #[test]
    fn rejects_double_free() {
        let mut t = minimal_trace();
        t.events.push(TraceEvent::Free { time: 1.5, object: ObjectId(1) });
        let err = t.validate().unwrap_err().to_string();
        assert!(err.contains("double free"), "{err}");
    }

    #[test]
    fn rejects_free_of_unallocated() {
        let mut t = minimal_trace();
        t.events = vec![TraceEvent::Free { time: 0.5, object: ObjectId(7) }];
        assert!(t.validate().is_err());
    }

    #[test]
    fn rejects_zero_size_alloc() {
        let mut t = minimal_trace();
        t.events = vec![TraceEvent::Alloc {
            time: 0.0,
            object: ObjectId(2),
            site: SiteId(0),
            size: 0,
            address: 0x2000,
        }];
        assert!(t.validate().is_err());
    }

    #[test]
    fn json_round_trip() {
        let t = minimal_trace();
        let j = t.to_json().unwrap();
        let back = TraceFile::from_json(&j).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn truncated_json_is_an_error() {
        let t = minimal_trace();
        let j = t.to_json().unwrap();
        let truncated = &j[..j.len() / 2];
        assert!(TraceFile::from_json(truncated).is_err());
    }
}
