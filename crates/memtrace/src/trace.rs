//! The trace file: the artifact a profiling run writes and the analyzer
//! (Paramedir in the paper) reads.

use crate::binmap::BinaryMap;
use crate::callstack::CallStack;
use crate::error::TraceError;
use crate::events::TraceEvent;
use crate::ids::SiteId;
use crate::warn::{DroppedWindow, Warning, WarningKind};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::io::{Read, Write};
use std::path::Path;

/// A complete profiling trace: run metadata, the site table mapping
/// allocation sites to their call stacks, the program image description,
/// and the time-ordered event stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceFile {
    /// Application name, e.g. `lulesh`.
    pub app_name: String,
    /// Seed used for the profiled run (for reproducibility bookkeeping).
    pub seed: u64,
    /// Number of MPI ranks the model represents.
    pub ranks: u32,
    /// PEBS sampling rate in Hz that produced the sample events.
    pub sampling_hz: f64,
    /// LLC load misses represented by each load-miss sample (the effective
    /// PEBS period). Consumers multiply sample counts by this to estimate
    /// absolute miss counts.
    pub load_sample_period: f64,
    /// Stores represented by each store sample.
    pub store_sample_period: f64,
    /// Wall-clock duration of the profiled run, seconds.
    pub duration: f64,
    /// Call stack of each allocation site, indexed by `SiteId`.
    pub stacks: Vec<(SiteId, CallStack)>,
    /// The program image (modules + debug metadata).
    pub binmap: BinaryMap,
    /// Events ordered by time (ties broken by emission order).
    pub events: Vec<TraceEvent>,
}

impl TraceFile {
    /// Looks up the call stack recorded for a site.
    pub fn stack_of(&self, site: SiteId) -> Option<&CallStack> {
        self.stacks.iter().find(|(s, _)| *s == site).map(|(_, st)| st)
    }

    /// Site table as a map.
    pub fn stack_map(&self) -> HashMap<SiteId, &CallStack> {
        self.stacks.iter().map(|(s, st)| (*s, st)).collect()
    }

    /// Number of sample events in the trace.
    pub fn sample_count(&self) -> usize {
        self.events.iter().filter(|e| e.is_sample()).count()
    }

    /// Number of allocation events in the trace.
    pub fn alloc_count(&self) -> usize {
        self.events.iter().filter(|e| matches!(e, TraceEvent::Alloc { .. })).count()
    }

    /// Structural validation: events are time-ordered, every `Alloc`
    /// references a known site, every `Free` follows a matching `Alloc`,
    /// and no object is freed twice. The analyzer calls this before
    /// aggregating so that truncated or corrupted traces are rejected
    /// loudly instead of silently producing a bad placement.
    pub fn validate(&self) -> Result<(), TraceError> {
        let sites: HashSet<SiteId> = self.stacks.iter().map(|(s, _)| *s).collect();
        let mut live = HashSet::new();
        let mut freed = HashSet::new();
        let mut last_t = f64::NEG_INFINITY;
        for (i, e) in self.events.iter().enumerate() {
            let t = e.time();
            // NaN would sail through the ordering check below (every
            // comparison against it is false), so reject non-finite times
            // explicitly — symmetric with what sanitize() drops.
            if !t.is_finite() {
                return Err(TraceError::Malformed(format!(
                    "event {i} has non-finite timestamp {t}"
                )));
            }
            if t < last_t {
                return Err(TraceError::Malformed(format!(
                    "event {i} at t={t} precedes previous event at t={last_t}"
                )));
            }
            last_t = t;
            match e {
                TraceEvent::Alloc { object, site, size, .. } => {
                    if !sites.contains(site) {
                        return Err(TraceError::UnknownSite(*site));
                    }
                    if *size == 0 {
                        return Err(TraceError::Malformed(format!(
                            "zero-size allocation for {object}"
                        )));
                    }
                    if !live.insert(*object) {
                        return Err(TraceError::Malformed(format!(
                            "object {object} allocated twice without free"
                        )));
                    }
                }
                TraceEvent::Free { object, .. } => {
                    if !live.remove(object) {
                        if freed.contains(object) {
                            return Err(TraceError::Malformed(format!("double free of {object}")));
                        }
                        return Err(TraceError::Malformed(format!(
                            "free of never-allocated {object}"
                        )));
                    }
                    freed.insert(*object);
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Serializes the trace to JSON.
    pub fn to_json(&self) -> Result<String, TraceError> {
        Ok(crate::jsonio::trace_to_json(self).to_string_compact())
    }

    /// Deserializes a trace from JSON.
    pub fn from_json(json: &str) -> Result<Self, TraceError> {
        let value = ecohmem_obs::json::Json::parse(json)?;
        Ok(crate::jsonio::trace_from_json(&value)?)
    }

    /// Writes the trace to a writer as JSON.
    pub fn write_to<W: Write>(&self, mut w: W) -> Result<(), TraceError> {
        let json = self.to_json()?;
        w.write_all(json.as_bytes())?;
        Ok(())
    }

    /// Reads a trace from a reader.
    pub fn read_from<R: Read>(mut r: R) -> Result<Self, TraceError> {
        let mut buf = String::new();
        r.read_to_string(&mut buf)?;
        Self::from_json(&buf)
    }

    /// Writes the trace to a file path.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), TraceError> {
        let f = std::fs::File::create(path)?;
        self.write_to(std::io::BufWriter::new(f))
    }

    /// Loads a trace from a file path.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, TraceError> {
        let f = std::fs::File::open(path)?;
        Self::read_from(std::io::BufReader::new(f))
    }

    /// Repairs the trace in place so that [`Self::validate`] passes:
    /// events strict validation would reject are dropped and broken run
    /// metadata is reset. Returns one warning per class of repair; the list
    /// is empty if and only if the trace was left untouched.
    ///
    /// A profiler killed mid-run (or a fault injector — see
    /// [`crate::fault`]) leaves exactly this kind of damage: out-of-order
    /// or non-finite timestamps, frees of never-allocated objects,
    /// references to missing sites. Dropping the damaged events degrades
    /// the eventual placement, which is the graceful half of the contract;
    /// the loud half is the warning list.
    pub fn sanitize(&mut self) -> Vec<Warning> {
        self.sanitize_verbose().0
    }

    /// Like [`Self::sanitize`], but also reports *which window* of the run
    /// the dropped events covered, so a degraded placement is auditable:
    /// a profile blind to the first 10 s is a different risk than one
    /// missing scattered milliseconds.
    pub fn sanitize_verbose(&mut self) -> (Vec<Warning>, DroppedWindow) {
        let mut warnings = Vec::new();
        let mut dropped = DroppedWindow::default();

        if !self.duration.is_finite() || self.duration < 0.0 {
            warnings.push(Warning::new(
                WarningKind::BadMetadata,
                format!("duration {} reset to 0", self.duration),
            ));
            self.duration = 0.0;
        }
        if !self.sampling_hz.is_finite() || self.sampling_hz <= 0.0 {
            warnings.push(Warning::new(
                WarningKind::BadMetadata,
                format!("sampling_hz {} reset to 1", self.sampling_hz),
            ));
            self.sampling_hz = 1.0;
        }
        if !self.load_sample_period.is_finite() || self.load_sample_period <= 0.0 {
            warnings.push(Warning::new(
                WarningKind::BadMetadata,
                format!("load_sample_period {} reset to 1", self.load_sample_period),
            ));
            self.load_sample_period = 1.0;
        }
        if !self.store_sample_period.is_finite() || self.store_sample_period <= 0.0 {
            warnings.push(Warning::new(
                WarningKind::BadMetadata,
                format!("store_sample_period {} reset to 1", self.store_sample_period),
            ));
            self.store_sample_period = 1.0;
        }

        // Single pass mirroring validate()'s rules; offending events are
        // dropped instead of aborting. Drops are tallied per kind so a
        // badly damaged trace yields a handful of warnings, not thousands.
        let sites: HashSet<SiteId> = self.stacks.iter().map(|(s, _)| *s).collect();
        let mut live = HashSet::new();
        let mut freed = HashSet::new();
        let mut last_t = f64::NEG_INFINITY;
        let mut tallies: Vec<(WarningKind, u64, usize)> = Vec::new();
        let mut note =
            |kind: WarningKind, index: usize| match tallies.iter_mut().find(|(k, _, _)| *k == kind)
            {
                Some((_, n, _)) => *n += 1,
                None => tallies.push((kind, 1, index)),
            };
        let events = std::mem::take(&mut self.events);
        let mut kept = Vec::with_capacity(events.len());
        for (i, e) in events.into_iter().enumerate() {
            let t = e.time();
            if !t.is_finite() {
                note(WarningKind::NonFiniteTime, i);
                dropped.note(t);
                continue;
            }
            if t < last_t {
                note(WarningKind::OutOfOrderEvent, i);
                dropped.note(t);
                continue;
            }
            match &e {
                TraceEvent::Alloc { object, site, size, .. } => {
                    if !sites.contains(site) {
                        note(WarningKind::UnknownSite, i);
                        dropped.note(t);
                        continue;
                    }
                    if *size == 0 {
                        note(WarningKind::ZeroSizeAlloc, i);
                        dropped.note(t);
                        continue;
                    }
                    if live.contains(object) {
                        note(WarningKind::DuplicateAlloc, i);
                        dropped.note(t);
                        continue;
                    }
                    live.insert(*object);
                    freed.remove(object); // realloc after free is legal
                }
                TraceEvent::Free { object, .. } => {
                    if live.remove(object) {
                        freed.insert(*object);
                    } else if freed.contains(object) {
                        note(WarningKind::DoubleFree, i);
                        dropped.note(t);
                        continue;
                    } else {
                        note(WarningKind::OrphanFree, i);
                        dropped.note(t);
                        continue;
                    }
                }
                _ => {}
            }
            last_t = t;
            kept.push(e);
        }
        self.events = kept;
        for (kind, n, first) in tallies {
            ecohmem_obs::count("memtrace.sanitize.dropped_events", n);
            warnings
                .push(Warning::new(kind, format!("dropped {n} event(s), first at index {first}")));
        }
        ecohmem_obs::count("memtrace.sanitize.repairs", warnings.len() as u64);
        (warnings, dropped)
    }

    /// Deserializes a trace from JSON, salvaging a valid prefix when the
    /// input was cut off mid-stream (a torn write). Because `events` is the
    /// last serialized field, a truncated trace keeps its metadata, site
    /// table and image and loses only trailing events. Returns the original
    /// parse error when nothing can be salvaged. The warning list is
    /// nonempty if and only if repair was needed.
    pub fn from_json_lenient(json: &str) -> Result<(Self, Vec<Warning>), TraceError> {
        let original = match Self::from_json(json) {
            Ok(t) => return Ok((t, Vec::new())),
            Err(e) => e,
        };
        let Some(repaired) = repair_truncated_json(json) else {
            return Err(original);
        };
        let truncation_warning = || {
            vec![Warning::new(
                WarningKind::TruncatedInput,
                format!(
                    "input truncated: salvaged a {}-byte valid prefix of {} bytes",
                    repaired.len(),
                    json.len()
                ),
            )]
        };
        match Self::from_json(&repaired) {
            Ok(t) => Ok((t, truncation_warning())),
            Err(_) => {
                // Bracket repair can leave the *last* event structurally
                // closed but missing fields (the cut fell inside it). That
                // single event is part of the torn tail: drop it and retry
                // once. If the schema problem is anywhere else, repair
                // cannot help and the original error stands.
                let Ok(mut value) = ecohmem_obs::json::Json::parse(&repaired) else {
                    return Err(original);
                };
                let popped = match value.get_mut("events") {
                    Some(ecohmem_obs::json::Json::Arr(events)) => events.pop().is_some(),
                    _ => false,
                };
                if !popped {
                    return Err(original);
                }
                match crate::jsonio::trace_from_json(&value) {
                    Ok(t) => Ok((t, truncation_warning())),
                    Err(_) => Err(original),
                }
            }
        }
    }

    /// Loads a trace from a file leniently: tolerates non-UTF-8 bytes,
    /// salvages truncated JSON, and sanitizes the result so it passes
    /// [`Self::validate`]. The warning list describes every repair.
    pub fn load_lenient(path: impl AsRef<Path>) -> Result<(Self, Vec<Warning>), TraceError> {
        let data = std::fs::read(path)?;
        let text = String::from_utf8_lossy(&data);
        let (mut trace, mut warnings) = Self::from_json_lenient(&text)?;
        warnings.extend(trace.sanitize());
        Ok((trace, warnings))
    }
}

/// Repairs JSON cut off mid-stream: scans for the last position at which
/// the innermost open container had just completed a full element, cuts
/// there, and closes every open bracket. Returns `None` when the text is
/// not salvageable this way — including when it is already complete JSON,
/// in which case the caller's parse failure has some other cause that
/// truncation repair cannot fix.
fn repair_truncated_json(s: &str) -> Option<String> {
    #[derive(Clone, Copy)]
    enum Ctx {
        /// An object; `true` while the next string token is a member key.
        Obj(bool),
        Arr,
    }
    let closers = |stack: &[Ctx]| -> String {
        stack
            .iter()
            .rev()
            .map(|c| match c {
                Ctx::Obj(_) => '}',
                Ctx::Arr => ']',
            })
            .collect()
    };

    let b = s.as_bytes();
    let mut stack: Vec<Ctx> = Vec::new();
    let mut best: Option<(usize, String)> = None;
    let mut root_done = false;
    let mut i = 0;
    // Records that a complete value just ended at byte `end` (exclusive).
    macro_rules! value_done {
        ($end:expr) => {
            if stack.is_empty() {
                root_done = true;
            } else {
                best = Some(($end, closers(&stack)));
            }
        };
    }
    while i < b.len() {
        match b[i] {
            b' ' | b'\t' | b'\n' | b'\r' => i += 1,
            b'"' => {
                i += 1;
                let mut closed = false;
                while i < b.len() {
                    match b[i] {
                        b'\\' => i += 2,
                        b'"' => {
                            closed = true;
                            i += 1;
                            break;
                        }
                        _ => i += 1,
                    }
                }
                if !closed {
                    break; // cut mid-string; fall back to the last safe point
                }
                if matches!(stack.last(), Some(Ctx::Obj(true))) {
                    // The string was a member key; a colon and value follow.
                    if let Some(Ctx::Obj(next_is_key)) = stack.last_mut() {
                        *next_is_key = false;
                    }
                } else {
                    value_done!(i);
                }
            }
            b'{' => {
                stack.push(Ctx::Obj(true));
                i += 1;
            }
            b'[' => {
                stack.push(Ctx::Arr);
                i += 1;
            }
            b'}' | b']' => {
                stack.pop()?; // unbalanced close: damage beyond truncation
                i += 1;
                value_done!(i);
            }
            b':' => i += 1,
            b',' => {
                if let Some(Ctx::Obj(next_is_key)) = stack.last_mut() {
                    *next_is_key = true;
                }
                i += 1;
            }
            _ => {
                // Primitive token (number / true / false / null). It only
                // counts as complete if a delimiter follows — a primitive
                // running into end-of-input may itself be cut short.
                while i < b.len()
                    && !matches!(b[i], b',' | b':' | b'}' | b']' | b' ' | b'\t' | b'\n' | b'\r')
                {
                    i += 1;
                }
                if i == b.len() {
                    break;
                }
                value_done!(i);
            }
        }
    }
    if root_done {
        return None;
    }
    let (end, closers) = best?;
    let mut out = String::with_capacity(end + closers.len());
    out.push_str(&s[..end]);
    out.push_str(&closers);
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callstack::Frame;
    use crate::ids::{ModuleId, ObjectId};

    fn minimal_trace() -> TraceFile {
        TraceFile {
            app_name: "toy".into(),
            seed: 1,
            ranks: 1,
            sampling_hz: 100.0,
            load_sample_period: 1.0,
            store_sample_period: 1.0,
            duration: 2.0,
            stacks: vec![(SiteId(0), CallStack::new(vec![Frame::new(ModuleId(0), 0x10)]))],
            binmap: BinaryMap::default(),
            events: vec![
                TraceEvent::Alloc {
                    time: 0.0,
                    object: ObjectId(1),
                    site: SiteId(0),
                    size: 128,
                    address: 0x1000,
                },
                TraceEvent::Free { time: 1.0, object: ObjectId(1) },
            ],
        }
    }

    #[test]
    fn valid_trace_passes() {
        minimal_trace().validate().unwrap();
    }

    #[test]
    fn counts() {
        let t = minimal_trace();
        assert_eq!(t.alloc_count(), 1);
        assert_eq!(t.sample_count(), 0);
        assert!(t.stack_of(SiteId(0)).is_some());
        assert!(t.stack_of(SiteId(9)).is_none());
    }

    #[test]
    fn rejects_unordered_events() {
        let mut t = minimal_trace();
        t.events.swap(0, 1);
        assert!(t.validate().is_err());
    }

    #[test]
    fn rejects_unknown_site() {
        let mut t = minimal_trace();
        t.stacks.clear();
        assert!(matches!(t.validate(), Err(TraceError::UnknownSite(_))));
    }

    #[test]
    fn rejects_double_free() {
        let mut t = minimal_trace();
        t.events.push(TraceEvent::Free { time: 1.5, object: ObjectId(1) });
        let err = t.validate().unwrap_err().to_string();
        assert!(err.contains("double free"), "{err}");
    }

    #[test]
    fn rejects_free_of_unallocated() {
        let mut t = minimal_trace();
        t.events = vec![TraceEvent::Free { time: 0.5, object: ObjectId(7) }];
        assert!(t.validate().is_err());
    }

    #[test]
    fn rejects_zero_size_alloc() {
        let mut t = minimal_trace();
        t.events = vec![TraceEvent::Alloc {
            time: 0.0,
            object: ObjectId(2),
            site: SiteId(0),
            size: 0,
            address: 0x2000,
        }];
        assert!(t.validate().is_err());
    }

    #[test]
    fn json_round_trip() {
        let t = minimal_trace();
        let j = t.to_json().unwrap();
        let back = TraceFile::from_json(&j).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn truncated_json_is_an_error() {
        let t = minimal_trace();
        let j = t.to_json().unwrap();
        let truncated = &j[..j.len() / 2];
        assert!(TraceFile::from_json(truncated).is_err());
    }

    #[test]
    fn sanitize_is_identity_on_valid_traces() {
        let mut t = minimal_trace();
        let before = t.clone();
        assert!(t.sanitize().is_empty());
        assert_eq!(t, before);
    }

    #[test]
    fn sanitize_drops_exactly_what_validate_rejects() {
        let mut t = minimal_trace();
        t.events.insert(0, TraceEvent::Free { time: 0.0, object: ObjectId(77) });
        t.events.push(TraceEvent::Free { time: 1.5, object: ObjectId(1) });
        t.events.push(TraceEvent::PhaseMarker { time: 0.5, phase: 1 });
        t.events.push(TraceEvent::PhaseMarker { time: f64::NAN, phase: 2 });
        assert!(t.validate().is_err());
        let warnings = t.sanitize();
        t.validate().unwrap();
        assert_eq!(t.events.len(), 2, "only the original alloc/free survive");
        let kinds: Vec<_> = warnings.iter().map(|w| w.kind).collect();
        assert!(kinds.contains(&WarningKind::OrphanFree));
        assert!(kinds.contains(&WarningKind::DoubleFree));
        assert!(kinds.contains(&WarningKind::OutOfOrderEvent));
        assert!(kinds.contains(&WarningKind::NonFiniteTime));
    }

    #[test]
    fn sanitize_allows_realloc_after_free() {
        let mut t = minimal_trace();
        t.events.push(TraceEvent::Alloc {
            time: 1.5,
            object: ObjectId(1),
            site: SiteId(0),
            size: 64,
            address: 0x3000,
        });
        t.validate().unwrap();
        assert!(t.sanitize().is_empty());
        assert_eq!(t.events.len(), 3);
    }

    #[test]
    fn sanitize_repairs_broken_metadata() {
        let mut t = minimal_trace();
        t.duration = f64::NAN;
        t.load_sample_period = -3.0;
        let warnings = t.sanitize();
        assert_eq!(t.duration, 0.0);
        assert_eq!(t.load_sample_period, 1.0);
        assert!(warnings.iter().all(|w| w.kind == WarningKind::BadMetadata));
        assert_eq!(warnings.len(), 2);
    }

    #[test]
    fn lenient_parse_of_intact_json_is_warning_free() {
        let t = minimal_trace();
        let (back, warnings) = TraceFile::from_json_lenient(&t.to_json().unwrap()).unwrap();
        assert_eq!(back, t);
        assert!(warnings.is_empty());
    }

    #[test]
    fn lenient_parse_salvages_a_truncated_tail() {
        let t = minimal_trace();
        let j = t.to_json().unwrap();
        // Cutting the closing brackets leaves the last event intact; both
        // events must survive the repair.
        let (back, warnings) = TraceFile::from_json_lenient(&j[..j.len() - 2]).unwrap();
        assert_eq!(back.events.len(), 2);
        assert_eq!(back.app_name, t.app_name);
        assert_eq!(warnings.len(), 1);
        assert_eq!(warnings[0].kind, WarningKind::TruncatedInput);
    }

    #[test]
    fn lenient_parse_never_panics_at_any_cut_point() {
        let t = minimal_trace();
        let j = t.to_json().unwrap();
        for cut in 0..j.len() {
            if let Ok((mut back, _)) = TraceFile::from_json_lenient(&j[..cut]) {
                back.sanitize();
                back.validate().unwrap();
            }
        }
    }

    #[test]
    fn lenient_parse_rejects_non_json_garbage() {
        assert!(TraceFile::from_json_lenient("not a trace at all").is_err());
        assert!(TraceFile::from_json_lenient("").is_err());
        // Complete JSON of the wrong shape is a schema problem, not
        // truncation; repair must not mask it.
        assert!(TraceFile::from_json_lenient("{\"app_name\": \"x\"}").is_err());
    }

    #[test]
    fn load_lenient_reads_a_torn_file() {
        let t = minimal_trace();
        let j = t.to_json().unwrap();
        let path = std::env::temp_dir().join(format!("ecohmem-torn-{}.json", std::process::id()));
        std::fs::write(&path, &j[..j.len() - 10]).unwrap();
        let (back, warnings) = TraceFile::load_lenient(&path).unwrap();
        std::fs::remove_file(&path).ok();
        back.validate().unwrap();
        assert!(!warnings.is_empty());
        assert_eq!(back.app_name, "toy");
    }
}
