//! Structured warnings for the lenient decode/analyze/match paths.
//!
//! The real toolchain runs unattended inside job scripts: a truncated trace
//! (node crash mid-run), a stale report (binary rebuilt between profiling
//! and deployment) or a half-written artifact should degrade the placement
//! — FlexMalloc already falls back for unlisted stacks — rather than abort
//! the job. Every lenient entry point reports what it salvaged, skipped or
//! repaired as a list of [`Warning`]s so callers can log, count, or refuse.

use serde::{Deserialize, Serialize};
use std::fmt;

/// How a consumer of damaged artifacts reacts — shared by the offline
/// pipeline (`ecohmem-core`) and the streaming ingestor (`ecohmem-online`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum DegradationPolicy {
    /// Fail fast on the first malformed artifact (the default — the
    /// behavior every paper experiment runs under).
    #[default]
    Strict,
    /// Salvage what is recoverable, but still fail when a stage is left
    /// with nothing usable (all events dropped, no report entry resolves).
    Warn,
    /// Never fail: an unusable stage degrades to the empty artifact, which
    /// places every allocation in the fallback tier — a slower run, never
    /// an aborted one.
    BestEffort,
}

/// What kind of damage a lenient path encountered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WarningKind {
    /// The serialized artifact ended mid-stream; a valid prefix was salvaged.
    TruncatedInput,
    /// An event carried a NaN or infinite timestamp.
    NonFiniteTime,
    /// An event's timestamp preceded an earlier event's.
    OutOfOrderEvent,
    /// An allocation referenced a site absent from the site table.
    UnknownSite,
    /// An allocation of zero bytes.
    ZeroSizeAlloc,
    /// An object was allocated twice without an intervening free.
    DuplicateAlloc,
    /// An object was freed twice.
    DoubleFree,
    /// A free of an object that was never allocated.
    OrphanFree,
    /// Run metadata (duration, sample periods, …) was repaired.
    BadMetadata,
    /// A report entry's stack could not be resolved in this process image.
    UnresolvableEntry,
    /// A report listed the same call stack twice; later copies are ignored.
    DuplicateEntry,
    /// Two distinct report entries resolved to the same match key (same
    /// absolute addresses in BOM mode, same rendered location in HR mode);
    /// the higher-value entry wins.
    CollidingEntry,
    /// A report entry's stack format differed from the report's format.
    MixedFormatEntry,
    /// Analysis produced no usable profile; placement falls back entirely.
    EmptyProfile,
    /// The placement report was unusable; every allocation falls back.
    UnusableReport,
    /// A deterministic fault injector mutated this artifact.
    FaultInjected,
    /// Aggregate data loss: sanitization (or a streaming ingestor) dropped
    /// events; the detail carries the total dropped / total seen counts.
    DroppedEvents,
}

impl WarningKind {
    /// Stable kebab-case name, used in logs and CLI output.
    pub fn name(self) -> &'static str {
        match self {
            WarningKind::TruncatedInput => "truncated-input",
            WarningKind::NonFiniteTime => "non-finite-time",
            WarningKind::OutOfOrderEvent => "out-of-order-event",
            WarningKind::UnknownSite => "unknown-site",
            WarningKind::ZeroSizeAlloc => "zero-size-alloc",
            WarningKind::DuplicateAlloc => "duplicate-alloc",
            WarningKind::DoubleFree => "double-free",
            WarningKind::OrphanFree => "orphan-free",
            WarningKind::BadMetadata => "bad-metadata",
            WarningKind::UnresolvableEntry => "unresolvable-entry",
            WarningKind::DuplicateEntry => "duplicate-entry",
            WarningKind::CollidingEntry => "colliding-entry",
            WarningKind::MixedFormatEntry => "mixed-format-entry",
            WarningKind::EmptyProfile => "empty-profile",
            WarningKind::UnusableReport => "unusable-report",
            WarningKind::FaultInjected => "fault-injected",
            WarningKind::DroppedEvents => "dropped-events",
        }
    }
}

impl fmt::Display for WarningKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The span of events a lenient path discarded: how many, and the first /
/// last finite timestamps among them. `DroppedEvents` warnings carry this
/// so a degraded placement can be audited against *when* the profile went
/// blind, not just how much of it did.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct DroppedWindow {
    /// Total events discarded (including ones with non-finite times).
    pub count: u64,
    /// Earliest finite timestamp among the discarded events.
    pub first_time: Option<f64>,
    /// Latest finite timestamp among the discarded events.
    pub last_time: Option<f64>,
}

impl DroppedWindow {
    /// Records one dropped event at time `t` (NaN/inf widen nothing).
    pub fn note(&mut self, t: f64) {
        self.count += 1;
        if t.is_finite() {
            self.first_time = Some(self.first_time.map_or(t, |f: f64| f.min(t)));
            self.last_time = Some(self.last_time.map_or(t, |l: f64| l.max(t)));
        }
    }

    /// Merges another window into this one.
    pub fn merge(&mut self, other: &DroppedWindow) {
        self.count += other.count;
        for t in [other.first_time, other.last_time].into_iter().flatten() {
            self.first_time = Some(self.first_time.map_or(t, |f: f64| f.min(t)));
            self.last_time = Some(self.last_time.map_or(t, |l: f64| l.max(t)));
        }
    }

    /// Warning-detail suffix: `" (window 0.125s..3.000s)"`, or `""` when no
    /// dropped event carried a usable timestamp.
    pub fn describe(&self) -> String {
        match (self.first_time, self.last_time) {
            (Some(first), Some(last)) => format!(" (window {first:.3}s..{last:.3}s)"),
            _ => String::new(),
        }
    }
}

/// One recoverable problem found (and worked around) by a lenient path.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Warning {
    /// The category of damage.
    pub kind: WarningKind,
    /// Human-readable specifics: counts, ids, offsets.
    pub detail: String,
}

impl Warning {
    /// Creates a warning.
    pub fn new(kind: WarningKind, detail: impl Into<String>) -> Self {
        Warning { kind, detail: detail.into() }
    }
}

impl fmt::Display for Warning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind, self.detail)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_kind_prefixed() {
        let w = Warning::new(WarningKind::OrphanFree, "object obj3 at event 7");
        assert_eq!(w.to_string(), "orphan-free: object obj3 at event 7");
    }

    #[test]
    fn names_are_kebab_case() {
        assert_eq!(WarningKind::TruncatedInput.name(), "truncated-input");
        assert_eq!(WarningKind::UnresolvableEntry.to_string(), "unresolvable-entry");
    }

    #[test]
    fn dropped_window_tracks_finite_extremes() {
        let mut w = DroppedWindow::default();
        assert_eq!(w.describe(), "");
        w.note(2.0);
        w.note(f64::NAN);
        w.note(0.5);
        w.note(3.25);
        assert_eq!(w.count, 4);
        assert_eq!(w.first_time, Some(0.5));
        assert_eq!(w.last_time, Some(3.25));
        assert_eq!(w.describe(), " (window 0.500s..3.250s)");

        let mut other = DroppedWindow::default();
        other.note(10.0);
        w.merge(&other);
        assert_eq!(w.count, 5);
        assert_eq!(w.last_time, Some(10.0));
    }
}
