//! Property tests over memtrace's formats: any structurally-valid trace or
//! report must survive every supported encoding.

use memtrace::{
    read_trace, write_trace, BinaryMap, BinaryMapBuilder, CallStack, FaultKind, FaultSpec, Frame,
    FuncId, ModuleId, ObjectId, PlacementReport, ReportEntry, ReportStack, SiteId, StackFormat,
    TierId, TraceEvent, TraceFile,
};
use proptest::prelude::*;

fn image() -> BinaryMap {
    let mut b = BinaryMapBuilder::new();
    b.add_module("a.out", 64 * 1024, 1 << 20, vec!["main.c".into(), "aux.c".into()]);
    b.add_module("libx.so", 128 * 1024, 2 << 20, vec!["x.c".into()]);
    b.build()
}

/// Generates a structurally valid event stream: allocations with unique
/// ids/addresses, frees only of live objects, samples inside live objects,
/// monotone timestamps.
fn arb_events() -> impl Strategy<Value = Vec<TraceEvent>> {
    proptest::collection::vec((0u8..4, 0.0f64..1.0, any::<u16>()), 0..60).prop_map(|ops| {
        let mut t = 0.0;
        let mut next_obj = 1u64;
        let mut live: Vec<(u64, u64, u64)> = Vec::new(); // (obj, addr, size)
        let mut cursor = 1u64 << 44;
        let mut events = Vec::new();
        for (kind, dt, salt) in ops {
            t += dt;
            match kind {
                0 => {
                    let size = 64 * (u64::from(salt) % 512 + 1);
                    let addr = cursor;
                    cursor += size;
                    events.push(TraceEvent::Alloc {
                        time: t,
                        object: ObjectId(next_obj),
                        site: SiteId(u32::from(salt) % 4),
                        size,
                        address: addr,
                    });
                    live.push((next_obj, addr, size));
                    next_obj += 1;
                }
                1 => {
                    if !live.is_empty() {
                        let (obj, _, _) = live.remove(usize::from(salt) % live.len());
                        events.push(TraceEvent::Free { time: t, object: ObjectId(obj) });
                    }
                }
                2 => {
                    if let Some(&(_, addr, size)) = live.first() {
                        events.push(TraceEvent::LoadMissSample {
                            time: t,
                            address: addr + u64::from(salt) % size / 64 * 64,
                            latency_cycles: f64::from(salt % 1000) + 90.0,
                            function: FuncId(salt % 8),
                        });
                    }
                }
                _ => {
                    events.push(TraceEvent::PhaseMarker { time: t, phase: u32::from(salt) % 100 });
                }
            }
        }
        events
    })
}

fn trace_with(events: Vec<TraceEvent>) -> TraceFile {
    let duration = events.last().map(|e| e.time() + 1.0).unwrap_or(1.0);
    TraceFile {
        app_name: "prop".into(),
        seed: 7,
        ranks: 2,
        sampling_hz: 100.0,
        load_sample_period: 12.5,
        store_sample_period: 8.0,
        duration,
        stacks: (0..4)
            .map(|i| {
                (
                    SiteId(i),
                    CallStack::new(vec![Frame::new(ModuleId((i % 2) as u16), 64 * u64::from(i))]),
                )
            })
            .collect(),
        binmap: image(),
        events,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Valid generated traces pass validation and survive the JSON and
    /// binary encodings (binary with µs timestamp fidelity).
    #[test]
    fn traces_survive_both_encodings(events in arb_events()) {
        let t = trace_with(events);
        t.validate().unwrap();

        let json = t.to_json().unwrap();
        prop_assert_eq!(&TraceFile::from_json(&json).unwrap(), &t);

        let mut bin = Vec::new();
        write_trace(&t, &mut bin).unwrap();
        let back = read_trace(&bin[..]).unwrap();
        back.validate().unwrap();
        prop_assert_eq!(back.events.len(), t.events.len());
        for (a, b) in t.events.iter().zip(&back.events) {
            prop_assert!((a.time() - b.time()).abs() < 2e-6);
        }
    }

    /// Binary decoding never panics on arbitrary corruption — it returns
    /// errors (or, for payload-only corruption, a decoded trace).
    #[test]
    fn binary_decoder_is_panic_free(
        events in arb_events(),
        flip in 0usize..4096,
        byte in any::<u8>(),
    ) {
        let t = trace_with(events);
        let mut bin = Vec::new();
        write_trace(&t, &mut bin).unwrap();
        if !bin.is_empty() {
            let i = flip % bin.len();
            bin[i] ^= byte;
            let _ = read_trace(&bin[..]); // must not panic
        }
    }

    /// Text report rendering and parsing are inverse for any BOM report
    /// over the image.
    #[test]
    fn text_reports_round_trip(offsets in proptest::collection::hash_set((0u16..2, 0u64..1000), 1..20)) {
        let map = image();
        let mut report = PlacementReport::new(StackFormat::Bom, TierId::PMEM);
        for (i, (m, o)) in offsets.iter().enumerate() {
            report.push(ReportEntry {
                stack: ReportStack::Bom(CallStack::new(vec![Frame::new(
                    ModuleId(*m),
                    o * 64,
                )])),
                tier: if i % 2 == 0 { TierId::DRAM } else { TierId::PMEM },
                max_size: 64 + i as u64,
            });
        }
        let text = report.render_text(&map, |t| {
            if t == TierId::DRAM { "dram".into() } else { "pmem".into() }
        });
        let parsed = memtrace::parse_report(&text, &map, &|n| match n {
            "dram" => Some(TierId::DRAM),
            "pmem" => Some(TierId::PMEM),
            _ => None,
        })
        .unwrap();
        prop_assert_eq!(parsed, report);
    }

    /// Lenient JSON loading never panics on a truncated document: it
    /// either salvages a sanitizable prefix (flagging the truncation) or
    /// returns the original parse error.
    #[test]
    fn lenient_load_survives_truncation(events in arb_events(), keep in 0.0f64..1.0) {
        let t = trace_with(events);
        let json = t.to_json().unwrap();
        let cut = (json.len() as f64 * keep) as usize; // to_json output is ASCII
        if let Ok((mut tr, warnings)) = TraceFile::from_json_lenient(&json[..cut]) {
            prop_assert!(!warnings.is_empty(), "a truncated document must be flagged");
            tr.sanitize();
            prop_assert!(tr.validate().is_ok());
        }
    }

    /// Lenient JSON loading never panics when any byte is corrupted, and
    /// whatever it salvages sanitizes into a valid trace.
    #[test]
    fn lenient_load_survives_byte_corruption(
        events in arb_events(),
        flip in 0usize..1 << 20,
        byte in any::<u8>(),
    ) {
        let t = trace_with(events);
        let mut raw = t.to_json().unwrap().into_bytes();
        let i = flip % raw.len();
        raw[i] ^= byte;
        let text = String::from_utf8_lossy(&raw);
        if let Ok((mut tr, _)) = TraceFile::from_json_lenient(&text) {
            tr.sanitize();
            prop_assert!(tr.validate().is_ok());
        }
    }

    /// `sanitize` warns exactly when it changed the trace, and always
    /// leaves it valid — under every fault injector at any severity.
    #[test]
    fn sanitize_warns_iff_it_changed_something(
        events in arb_events(),
        kind_idx in 0usize..FaultKind::ALL.len(),
        severity in 0.0f64..=1.0,
        seed in any::<u64>(),
    ) {
        let mut mutated = trace_with(events);
        let spec = FaultSpec::with_seed(FaultKind::ALL[kind_idx], severity, seed);
        spec.apply_to_trace(&mut mutated);
        let before = mutated.clone();
        let warnings = mutated.sanitize();
        prop_assert_eq!(warnings.is_empty(), mutated == before);
        prop_assert!(mutated.validate().is_ok());
    }
}
