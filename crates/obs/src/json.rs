//! A small, dependency-free JSON value model, writer and parser.
//!
//! Every artifact the toolchain persists — trace files, placement reports,
//! advisor configurations, metrics documents, the JSONL event sink — goes
//! through this module. It exists because the pipeline must keep working on
//! air-gapped HPC login nodes where we control exactly what ships; the
//! grammar is RFC 8259 with two deliberate choices:
//!
//! * Numbers preserve integer-ness: a literal without `.`/`e` that fits in
//!   `u64`/`i64` round-trips exactly (addresses and byte sizes exceed 2^53,
//!   where `f64` starts dropping bits).
//! * Non-finite floats serialize as `null`; [`Json::as_f64`] reads `null`
//!   back as NaN. JSON has no NaN literal and the fault injector produces
//!   NaN timestamps on purpose, so the round-trip must not invent one.

use std::fmt;

/// A parsed JSON value. Objects keep insertion order so that serialized
/// documents (golden files, metrics reports) are byte-stable.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer literal.
    U64(u64),
    /// A negative integer literal.
    I64(i64),
    /// Any literal with a fraction or exponent.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs (keeps the given order).
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// A float value; non-finite inputs become `null` (see module docs).
    pub fn f64(v: f64) -> Json {
        if v.is_finite() {
            Json::F64(v)
        } else {
            Json::Null
        }
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Mutable lookup of a key in an object.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Json> {
        match self {
            Json::Obj(pairs) => pairs.iter_mut().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64` when it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(v) => Some(*v),
            Json::I64(v) => u64::try_from(*v).ok(),
            Json::F64(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= u64::MAX as f64 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The value as `i64` when it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::I64(v) => Some(*v),
            Json::U64(v) => i64::try_from(*v).ok(),
            Json::F64(v) if v.fract() == 0.0 && v.abs() <= i64::MAX as f64 => Some(*v as i64),
            _ => None,
        }
    }

    /// The value as `f64`. `null` reads back as NaN (see module docs).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::F64(v) => Some(*v),
            Json::U64(v) => Some(*v as f64),
            Json::I64(v) => Some(*v as f64),
            Json::Null => Some(f64::NAN),
            _ => None,
        }
    }

    /// The value as a borrowed string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a borrowed array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes compactly (no whitespace).
    pub fn to_string_compact(&self) -> String {
        let mut out = String::with_capacity(64);
        write_value(self, &mut out, None, 0);
        out
    }

    /// Serializes with 2-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::with_capacity(256);
        write_value(self, &mut out, Some(2), 0);
        out
    }

    /// Parses a JSON document. Trailing non-whitespace is an error.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string_compact())
    }
}

/// A parse failure with 1-based line/column of the offending byte.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// 1-based line of the first offending byte.
    pub line: usize,
    /// 1-based column of the first offending byte.
    pub column: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at line {} column {}", self.message, self.line, self.column)
    }
}

impl std::error::Error for JsonError {}

fn write_value(v: &Json, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::U64(n) => {
            let mut buf = [0u8; 20];
            out.push_str(fmt_u64(*n, &mut buf));
        }
        Json::I64(n) => out.push_str(&n.to_string()),
        Json::F64(f) => write_f64(*f, out),
        Json::Str(s) => write_string(s, out),
        Json::Arr(items) => write_seq(out, indent, depth, items.is_empty(), b'[', |out| {
            for (i, item) in items.iter().enumerate() {
                sep(out, indent, depth + 1, i > 0);
                write_value(item, out, indent, depth + 1);
            }
        }),
        Json::Obj(pairs) => write_seq(out, indent, depth, pairs.is_empty(), b'{', |out| {
            for (i, (k, item)) in pairs.iter().enumerate() {
                sep(out, indent, depth + 1, i > 0);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1);
            }
        }),
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    empty: bool,
    open: u8,
    body: impl FnOnce(&mut String),
) {
    let close = if open == b'[' { ']' } else { '}' };
    out.push(open as char);
    if empty {
        out.push(close);
        return;
    }
    body(out);
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..depth * w {
            out.push(' ');
        }
    }
    out.push(close);
}

fn sep(out: &mut String, indent: Option<usize>, depth: usize, comma: bool) {
    if comma {
        out.push(',');
    }
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..depth * w {
            out.push(' ');
        }
    }
}

fn fmt_u64(mut n: u64, buf: &mut [u8; 20]) -> &str {
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + (n % 10) as u8;
        n /= 10;
        if n == 0 {
            break;
        }
    }
    std::str::from_utf8(&buf[i..]).expect("digits are ascii")
}

fn write_f64(f: f64, out: &mut String) {
    if !f.is_finite() {
        out.push_str("null");
        return;
    }
    // Rust's Display for f64 is the shortest string that round-trips, but
    // it omits the fraction for integral values ("3") — re-add ".0" so the
    // parser preserves float-ness on the way back in.
    let s = format!("{f}");
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            // DEL is legal unescaped JSON, but these strings end up in
            // JSONL sinks read by terminals and line-oriented tools —
            // escape the whole control range, C0 and DEL alike.
            c if (c as u32) < 0x20 || c == '\u{7f}' => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Nesting deeper than this is rejected rather than risking stack overflow
/// on adversarial input (the fault injector feeds us damaged files).
const MAX_DEPTH: usize = 128;

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        let (mut line, mut col) = (1usize, 1usize);
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        JsonError { line, column: col, message: message.into() }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.keyword("null", Json::Null),
            Some(b't') => self.keyword("true", Json::Bool(true)),
            Some(b'f') => self.keyword("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn keyword(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value(depth + 1)?;
            pairs.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => out.push(self.unicode_escape()?),
                        c => {
                            return Err(self.err(format!("bad escape '\\{}'", c as char)));
                        }
                    }
                }
                Some(_) => return Err(self.err("control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            // Surrogate pair: require the low half.
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let lo = self.hex4()?;
                if (0xDC00..0xE000).contains(&lo) {
                    let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    return char::from_u32(c).ok_or_else(|| self.err("bad surrogate pair"));
                }
            }
            return Err(self.err("unpaired surrogate"));
        }
        char::from_u32(hi).ok_or_else(|| self.err("bad \\u escape"))
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self.peek().ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (b as char).to_digit(16).ok_or_else(|| self.err("bad hex digit"))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ascii");
        if !float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::I64(v));
            }
        }
        match text.parse::<f64>() {
            Ok(v) if v.is_finite() => Ok(Json::F64(v)),
            Ok(_) => Err(self.err("number out of range")),
            Err(_) => Err(self.err(format!("invalid number '{text}'"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for doc in ["null", "true", "false", "0", "-7", "18446744073709551615", "\"hi\""] {
            let v = Json::parse(doc).unwrap();
            assert_eq!(v.to_string_compact(), doc, "{doc}");
        }
    }

    #[test]
    fn big_integers_are_exact() {
        let v = Json::parse("9007199254740993").unwrap(); // 2^53 + 1: f64 would lose it
        assert_eq!(v.as_u64(), Some(9007199254740993));
    }

    #[test]
    fn floats_keep_float_ness() {
        let v = Json::parse("3.0").unwrap();
        assert_eq!(v, Json::F64(3.0));
        assert_eq!(v.to_string_compact(), "3.0");
        let v = Json::parse("1e3").unwrap();
        assert_eq!(v.as_f64(), Some(1000.0));
    }

    #[test]
    fn non_finite_serializes_as_null_and_reads_back_nan() {
        assert_eq!(Json::f64(f64::NAN), Json::Null);
        assert_eq!(Json::f64(f64::INFINITY).to_string_compact(), "null");
        assert!(Json::parse("null").unwrap().as_f64().unwrap().is_nan());
    }

    #[test]
    fn objects_preserve_order_and_nest() {
        let doc = r#"{"b":[1,2,{"c":null}],"a":"x\n\"y\""}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.to_string_compact(), doc);
        assert_eq!(v.get("a").unwrap().as_str(), Some("x\n\"y\""));
        let pretty = v.to_string_pretty();
        assert_eq!(Json::parse(&pretty).unwrap(), v);
    }

    #[test]
    fn escapes_and_unicode() {
        let v = Json::parse(r#""A😀\t""#).unwrap();
        assert_eq!(v.as_str(), Some("A😀\t"));
        let s = Json::str("tab\tctl\u{1}").to_string_compact();
        assert_eq!(Json::parse(&s).unwrap().as_str(), Some("tab\tctl\u{1}"));
    }

    #[test]
    fn errors_carry_position() {
        let e = Json::parse("{\n  \"a\": nope\n}").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.column > 1);
        assert!(Json::parse("[1,").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn deep_nesting_is_rejected_not_a_stack_overflow() {
        let deep = "[".repeat(100_000);
        assert!(Json::parse(&deep).is_err());
    }
}
