//! Structured observability for the ecoHMEM toolchain.
//!
//! The paper's methodology is only trustworthy because every stage is
//! measurable — Extrae events, Paramedir metrics, per-site miss densities,
//! Algorithm 1's bandwidth classes. This crate gives the reproduction the
//! same property: named counters/gauges/histograms in a sharded
//! [`MetricsRegistry`], monotonic nested timing [spans](span), a JSON
//! Lines event sink, and a `RunMetrics` document that ties a placement
//! decision back to the numbers that produced it.
//!
//! # Cost model
//!
//! Instrumentation is *always compiled in* and gated at run time: every
//! free function here starts with a branch on one relaxed atomic load.
//! When observability is off (the default) that branch is the entire cost
//! — under a nanosecond per call on current hardware; the
//! `obs_overhead` bench bin measures it. Hot loops therefore do not need
//! `#[cfg]`s or feature flags.
//!
//! # Enabling
//!
//! `ECOHMEM_OBS` controls the subsystem process-wide:
//!
//! | value           | effect                                   |
//! |-----------------|------------------------------------------|
//! | unset, `0`, `off` | disabled (free functions are no-ops)   |
//! | `1`, `on`       | metrics on, no event sink                |
//! | `human`         | metrics on, indented span log on stderr  |
//! | `jsonl:PATH`    | metrics on, JSON Lines span events to PATH |
//!
//! Programs can override the environment with [`set_enabled`] (the CLI's
//! `--metrics-out` does; tests do for isolation).
//!
//! This crate deliberately has **zero dependencies**: `memtrace` sits on
//! top of it for JSON (de)serialization, so it must stay at the bottom of
//! the workspace graph.

pub mod json;
pub mod metrics;
pub mod sink;
pub mod span;

pub use json::{Json, JsonError};
pub use metrics::{registry, Counter, Gauge, Histogram, MetricsRegistry, MetricsSnapshot};
pub use span::{thread_span_depth, SpanGuard};

use std::sync::atomic::{AtomicU8, Ordering};

/// 0 = not yet initialized, 1 = disabled, 2 = enabled.
static STATE: AtomicU8 = AtomicU8::new(0);

/// True when observability is on. This is the hot-path gate: one relaxed
/// atomic load and a compare; the environment is consulted only on the
/// very first call in the process.
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        0 => init_from_env(),
        s => s == 2,
    }
}

#[cold]
fn init_from_env() -> bool {
    let setting = std::env::var("ECOHMEM_OBS").unwrap_or_default();
    let on = match setting.as_str() {
        "" | "0" | "off" => false,
        "human" => {
            sink::install_human();
            true
        }
        s if s.starts_with("jsonl:") => {
            if let Err(e) = sink::install_jsonl(&s["jsonl:".len()..]) {
                eprintln!("[obs] cannot open {s}: {e}; events will not be sinked");
            }
            true
        }
        // "1", "on", and anything unrecognized-but-set: metrics only.
        _ => true,
    };
    STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
    on
}

/// Forces observability on or off, overriding `ECOHMEM_OBS`.
pub fn set_enabled(on: bool) {
    STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// Adds `delta` to the counter `name`. No-op while disabled.
#[inline]
pub fn count(name: &str, delta: u64) {
    if enabled() {
        registry().counter(name).add(delta);
    }
}

/// Adds 1 to the counter `name`. No-op while disabled.
#[inline]
pub fn incr(name: &str) {
    count(name, 1);
}

/// Sets the gauge `name`. No-op while disabled.
#[inline]
pub fn gauge_set(name: &str, v: f64) {
    if enabled() {
        registry().gauge(name).set(v);
    }
}

/// Raises the gauge `name` to `v` if larger (high-water mark). No-op
/// while disabled.
#[inline]
pub fn gauge_raise(name: &str, v: f64) {
    if enabled() {
        registry().gauge(name).raise(v);
    }
}

/// Records `v` in the histogram `name`. No-op while disabled.
#[inline]
pub fn observe(name: &str, v: u64) {
    if enabled() {
        registry().histogram(name).observe(v);
    }
}

/// Opens a timing span; the returned guard ends it on drop. Inert (and
/// nearly free) while disabled.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if enabled() {
        SpanGuard::begin(name)
    } else {
        SpanGuard::disabled()
    }
}

/// Snapshot of the global registry (empty while nothing was recorded).
pub fn snapshot() -> MetricsSnapshot {
    registry().snapshot()
}

/// Clears the global registry. Tests use this between scenarios.
pub fn reset() {
    registry().reset();
}

/// Builds the `RunMetrics` JSON document for one run: per-stage timings
/// (derived from `span.*.ns` histograms) plus the full metric snapshot.
///
/// Schema (`ecohmem.run_metrics/1`):
///
/// ```json
/// {
///   "schema": "ecohmem.run_metrics/1",
///   "label": "fig6_sweep",
///   "wall_seconds": 1.62,
///   "stages": {"pipeline.advise": {"count": 12, "total_ns": 48211, "mean_ns": 4017.6}},
///   "metrics": {"counters": {...}, "gauges": {...}, "histograms": {...}}
/// }
/// ```
pub fn run_metrics(label: &str, wall_seconds: f64) -> Json {
    let snap = snapshot();
    let mut stages = Vec::new();
    for (name, h) in &snap.histograms {
        if let Some(stage) = name.strip_prefix("span.").and_then(|n| n.strip_suffix(".ns")) {
            stages.push((
                stage.to_string(),
                Json::obj(vec![
                    ("count", Json::U64(h.count)),
                    ("total_ns", Json::U64(h.sum)),
                    ("mean_ns", Json::f64(h.mean)),
                ]),
            ));
        }
    }
    Json::Obj(vec![
        ("schema".into(), Json::str("ecohmem.run_metrics/1")),
        ("label".into(), Json::str(label)),
        ("wall_seconds".into(), Json::f64(wall_seconds)),
        ("stages".into(), Json::Obj(stages)),
        ("metrics".into(), snap.to_json()),
    ])
}

/// Serializes tests that flip the global enabled flag (they would race
/// under the default parallel test harness otherwise).
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_calls_are_no_ops() {
        let _l = test_lock();
        set_enabled(false);
        let before = registry().counter("off.test").get();
        count("off.test", 5);
        incr("off.test");
        observe("off.hist", 3);
        gauge_set("off.g", 1.0);
        assert_eq!(registry().counter("off.test").get(), before);
        let g = span("off.span");
        drop(g);
        set_enabled(true);
    }

    #[test]
    fn enabled_calls_record() {
        let _l = test_lock();
        set_enabled(true);
        count("on.test", 2);
        incr("on.test");
        observe("on.hist", 10);
        gauge_raise("on.g", 4.0);
        assert_eq!(registry().counter("on.test").get(), 3);
        assert_eq!(registry().histogram("on.hist").sum(), 10);
        assert_eq!(registry().gauge("on.g").get(), 4.0);
    }

    #[test]
    fn run_metrics_document_has_stages_and_metrics() {
        let _l = test_lock();
        set_enabled(true);
        {
            let _s = span("unit.stage");
        }
        count("unit.counter", 7);
        let doc = run_metrics("unit-test", 0.5);
        let text = doc.to_string_pretty();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed.get("schema").unwrap().as_str(), Some("ecohmem.run_metrics/1"));
        assert_eq!(parsed.get("label").unwrap().as_str(), Some("unit-test"));
        let stage = parsed.get("stages").unwrap().get("unit.stage").unwrap();
        assert!(stage.get("count").unwrap().as_u64().unwrap() >= 1);
        let counters = parsed.get("metrics").unwrap().get("counters").unwrap();
        assert_eq!(counters.get("unit.counter").unwrap().as_u64(), Some(7));
    }

    #[test]
    fn disabled_path_is_cheap() {
        // The real number comes from the obs_overhead bench bin; this is a
        // coarse regression tripwire with generous CI headroom.
        let _l = test_lock();
        set_enabled(false);
        let n = 2_000_000u64;
        let t0 = std::time::Instant::now();
        for i in 0..n {
            count("overhead.probe", i & 1);
        }
        let per_call = t0.elapsed().as_nanos() as f64 / n as f64;
        set_enabled(true);
        assert!(per_call < 100.0, "disabled obs::count costs {per_call:.1} ns/call");
    }
}
