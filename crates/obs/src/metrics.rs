//! The metrics registry: named atomic counters, gauges and histograms.
//!
//! Hot paths (the simulator engine, the sampler) update metrics from many
//! threads at once, so the registry is sharded: a metric name hashes to one
//! of [`SHARDS`] independently-locked maps, and the lock is only taken to
//! *find* a metric — updates land on the returned `Arc`'d atomics without
//! any lock. Call sites that care can cache the handle; casual call sites
//! use the free functions in the crate root, which are a no-op branch on a
//! relaxed atomic while observability is disabled.

use crate::json::Json;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Number of independently-locked name→metric maps.
const SHARDS: usize = 16;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `delta`.
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge storing an `f64` (as bits in an atomic).
#[derive(Debug)]
pub struct Gauge(AtomicU64);

impl Default for Gauge {
    fn default() -> Self {
        Gauge(AtomicU64::new(0f64.to_bits()))
    }
}

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if `v` is larger — a high-water mark.
    /// NaN inputs are ignored.
    pub fn raise(&self, v: f64) {
        if v.is_nan() {
            return;
        }
        let mut cur = self.0.load(Ordering::Relaxed);
        while v > f64::from_bits(cur) {
            match self.0.compare_exchange_weak(
                cur,
                v.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Number of power-of-two buckets: bucket *i* counts values whose highest
/// set bit is *i* (value 0 lands in bucket 0).
const BUCKETS: usize = 64;

/// A histogram over `u64` values (durations in nanoseconds, byte counts)
/// with power-of-two buckets. The sum is an exact integer — concurrent
/// `observe`s conserve it bit-for-bit, which the property tests rely on.
#[derive(Debug)]
pub struct Histogram {
    counts: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one value.
    pub fn observe(&self, v: u64) {
        let bucket = (63 - v.max(1).leading_zeros()) as usize;
        self.counts[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Exact sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    fn nonzero_buckets(&self) -> Vec<(u32, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter_map(|(i, c)| {
                let n = c.load(Ordering::Relaxed);
                (n > 0).then_some((i as u32, n))
            })
            .collect()
    }
}

#[derive(Default)]
struct Shard {
    counters: Mutex<HashMap<String, Arc<Counter>>>,
    gauges: Mutex<HashMap<String, Arc<Gauge>>>,
    histograms: Mutex<HashMap<String, Arc<Histogram>>>,
}

/// The sharded name→metric registry. One global instance lives behind
/// [`registry`]; tests construct their own for isolation.
#[derive(Default)]
pub struct MetricsRegistry {
    shards: [Shard; SHARDS],
}

fn shard_of(name: &str) -> usize {
    // FNV-1a over the name; only the lock for this shard is contended.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    (h % SHARDS as u64) as usize
}

impl MetricsRegistry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.shards[shard_of(name)].counters.lock().expect("metrics lock");
        map.entry(name.to_string()).or_default().clone()
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.shards[shard_of(name)].gauges.lock().expect("metrics lock");
        map.entry(name.to_string()).or_default().clone()
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.shards[shard_of(name)].histograms.lock().expect("metrics lock");
        map.entry(name.to_string()).or_default().clone()
    }

    /// Drops every metric. Handles cached by call sites keep working but
    /// are no longer visible to [`Self::snapshot`].
    pub fn reset(&self) {
        for shard in &self.shards {
            shard.counters.lock().expect("metrics lock").clear();
            shard.gauges.lock().expect("metrics lock").clear();
            shard.histograms.lock().expect("metrics lock").clear();
        }
    }

    /// A point-in-time copy of every metric, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        for shard in &self.shards {
            for (name, c) in shard.counters.lock().expect("metrics lock").iter() {
                snap.counters.push((name.clone(), c.get()));
            }
            for (name, g) in shard.gauges.lock().expect("metrics lock").iter() {
                snap.gauges.push((name.clone(), g.get()));
            }
            for (name, h) in shard.histograms.lock().expect("metrics lock").iter() {
                snap.histograms.push((
                    name.clone(),
                    HistogramSnapshot {
                        count: h.count(),
                        sum: h.sum(),
                        max: h.max(),
                        mean: h.mean(),
                        buckets: h.nonzero_buckets(),
                    },
                ));
            }
        }
        snap.counters.sort_by(|a, b| a.0.cmp(&b.0));
        snap.gauges.sort_by(|a, b| a.0.cmp(&b.0));
        snap.histograms.sort_by(|a, b| a.0.cmp(&b.0));
        snap
    }
}

/// Frozen histogram state inside a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Exact integer sum of observations.
    pub sum: u64,
    /// Largest observation.
    pub max: u64,
    /// Mean observation.
    pub mean: f64,
    /// `(log2 bucket, count)` pairs for non-empty buckets.
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramSnapshot {
    /// Estimates the `q`-quantile (`0.0..=1.0`) from the power-of-two
    /// buckets: the upper bound of the bucket holding the ranked
    /// observation, clamped to the recorded maximum. Resolution is a
    /// factor of two — good enough for the p50/p99 latency surfaces the
    /// serve daemon exports, without storing raw samples.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for &(bucket, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                let hi = if bucket >= 63 { u64::MAX } else { (1u64 << (bucket + 1)) - 1 };
                return hi.min(self.max);
            }
        }
        self.max
    }
}

/// A point-in-time copy of a registry, name-sorted for stable output.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge values by name.
    pub gauges: Vec<(String, f64)>,
    /// Histogram states by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// The value of a counter, 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.iter().find(|(n, _)| n == name).map_or(0, |(_, v)| *v)
    }

    /// The value of a gauge, when present.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// The state of a histogram, when present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// Renders the snapshot as a JSON value.
    pub fn to_json(&self) -> Json {
        let counters =
            self.counters.iter().map(|(n, v)| (n.clone(), Json::U64(*v))).collect::<Vec<_>>();
        let gauges =
            self.gauges.iter().map(|(n, v)| (n.clone(), Json::f64(*v))).collect::<Vec<_>>();
        let histograms = self
            .histograms
            .iter()
            .map(|(n, h)| {
                (
                    n.clone(),
                    Json::obj(vec![
                        ("count", Json::U64(h.count)),
                        ("sum", Json::U64(h.sum)),
                        ("max", Json::U64(h.max)),
                        ("mean", Json::f64(h.mean)),
                        (
                            "buckets",
                            Json::Arr(
                                h.buckets
                                    .iter()
                                    .map(|(log2, n)| {
                                        Json::Arr(vec![Json::U64(*log2 as u64), Json::U64(*n)])
                                    })
                                    .collect(),
                            ),
                        ),
                    ]),
                )
            })
            .collect::<Vec<_>>();
        Json::Obj(vec![
            ("counters".into(), Json::Obj(counters)),
            ("gauges".into(), Json::Obj(gauges)),
            ("histograms".into(), Json::Obj(histograms)),
        ])
    }
}

/// The process-global registry.
pub fn registry() -> &'static MetricsRegistry {
    static REGISTRY: OnceLock<MetricsRegistry> = OnceLock::new();
    REGISTRY.get_or_init(MetricsRegistry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_come_from_the_right_bucket() {
        let h = Histogram::default();
        for v in [1u64, 2, 3, 100, 100, 100, 100, 100, 100, 5000] {
            h.observe(v);
        }
        let snap = HistogramSnapshot {
            count: h.count(),
            sum: h.sum(),
            max: h.max(),
            mean: h.mean(),
            buckets: h.nonzero_buckets(),
        };
        // p50 lands in the 100s bucket [64, 127]; p99 in the 5000s
        // bucket, clamped to the observed max.
        let p50 = snap.quantile(0.5);
        assert!((64..=127).contains(&p50), "p50 = {p50}");
        assert_eq!(snap.quantile(0.99), 5000);
        assert_eq!(snap.quantile(0.0), 1);
        let empty = HistogramSnapshot { count: 0, sum: 0, max: 0, mean: 0.0, buckets: Vec::new() };
        assert_eq!(empty.quantile(0.99), 0);
    }

    #[test]
    fn counters_accumulate_and_snapshot() {
        let r = MetricsRegistry::new();
        r.counter("a.b").add(3);
        r.counter("a.b").inc();
        r.counter("z").inc();
        let snap = r.snapshot();
        assert_eq!(snap.counter("a.b"), 4);
        assert_eq!(snap.counter("z"), 1);
        assert_eq!(snap.counter("missing"), 0);
        assert_eq!(snap.counters.first().map(|(n, _)| n.as_str()), Some("a.b"));
    }

    #[test]
    fn gauge_raise_is_a_high_water_mark() {
        let g = Gauge::default();
        g.raise(3.0);
        g.raise(1.0);
        assert_eq!(g.get(), 3.0);
        g.raise(f64::NAN);
        assert_eq!(g.get(), 3.0);
        g.set(0.5);
        assert_eq!(g.get(), 0.5);
    }

    #[test]
    fn histogram_sum_is_exact() {
        let h = Histogram::default();
        for v in [0u64, 1, 2, 3, 1 << 40, u32::MAX as u64] {
            h.observe(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 6 + (1 << 40) + u32::MAX as u64);
        assert_eq!(h.max(), 1 << 40);
        let total: u64 = h.nonzero_buckets().iter().map(|(_, n)| n).sum();
        assert_eq!(total, h.count());
    }

    #[test]
    fn concurrent_updates_conserve_totals() {
        let r = MetricsRegistry::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let c = r.counter("hits");
                    let h = r.histogram("lat");
                    for i in 0..1000u64 {
                        c.inc();
                        h.observe(i);
                    }
                });
            }
        });
        let snap = r.snapshot();
        assert_eq!(snap.counter("hits"), 4000);
        let h = snap.histogram("lat").unwrap();
        assert_eq!(h.count, 4000);
        assert_eq!(h.sum, 4 * (999 * 1000 / 2));
    }

    #[test]
    fn snapshot_renders_json() {
        let r = MetricsRegistry::new();
        r.counter("c").add(2);
        r.gauge("g").set(1.5);
        r.histogram("h").observe(7);
        let j = r.snapshot().to_json();
        let parsed = crate::json::Json::parse(&j.to_string_pretty()).unwrap();
        assert_eq!(parsed.get("counters").unwrap().get("c").unwrap().as_u64(), Some(2));
        assert_eq!(parsed.get("gauges").unwrap().get("g").unwrap().as_f64(), Some(1.5));
        let h = parsed.get("histograms").unwrap().get("h").unwrap();
        assert_eq!(h.get("sum").unwrap().as_u64(), Some(7));
    }

    #[test]
    fn reset_clears_names() {
        let r = MetricsRegistry::new();
        r.counter("x").inc();
        r.reset();
        assert!(r.snapshot().counters.is_empty());
    }
}
