//! Event sinks: where span events go when someone is watching.
//!
//! Two sinks exist. The JSON Lines sink appends one compact JSON object
//! per event to a file — machine-readable, safe to `tail -f`, and the
//! format the analysis notebooks ingest. The human sink writes indented
//! `[obs]` lines to stderr for `--verbose` interactive runs. At most one
//! sink is installed at a time; with no sink installed, span events cost
//! only their metric updates.

use crate::json::Json;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::sync::Mutex;
use std::time::Duration;

enum Sink {
    Jsonl(BufWriter<File>),
    Human,
}

static SINK: Mutex<Option<Sink>> = Mutex::new(None);

/// Installs the JSON Lines sink, truncating `path`. Replaces (and
/// flushes) any previously installed sink.
pub fn install_jsonl(path: &str) -> std::io::Result<()> {
    let file = File::create(path)?;
    *SINK.lock().expect("sink lock") = Some(Sink::Jsonl(BufWriter::new(file)));
    Ok(())
}

/// Installs the human-readable stderr sink.
pub fn install_human() {
    *SINK.lock().expect("sink lock") = Some(Sink::Human);
}

/// Removes the installed sink, flushing buffered output.
pub fn uninstall() {
    let mut guard = SINK.lock().expect("sink lock");
    if let Some(Sink::Jsonl(mut w)) = guard.take() {
        let _ = w.flush();
    }
}

pub(crate) fn emit_span(kind: &str, name: &str, depth: usize, t: Duration, dur: Option<Duration>) {
    let mut guard = SINK.lock().expect("sink lock");
    let Some(sink) = guard.as_mut() else { return };
    match sink {
        Sink::Jsonl(w) => {
            let mut pairs = vec![
                ("ev", Json::str(kind)),
                ("name", Json::str(name)),
                ("depth", Json::U64(depth as u64)),
                ("t_ns", Json::U64(t.as_nanos() as u64)),
            ];
            if let Some(d) = dur {
                pairs.push(("dur_ns", Json::U64(d.as_nanos() as u64)));
            }
            let _ = writeln!(w, "{}", Json::obj(pairs).to_string_compact());
        }
        Sink::Human => {
            let indent = "  ".repeat(depth);
            match dur {
                Some(d) => {
                    eprintln!("[obs] {indent}{name} done in {:.3} ms", d.as_secs_f64() * 1e3)
                }
                None => eprintln!("[obs] {indent}{name} ..."),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let path = std::env::temp_dir().join("obs_sink_test.jsonl");
        let path = path.to_str().unwrap();
        install_jsonl(path).unwrap();
        emit_span("span_begin", "stage", 0, Duration::from_nanos(5), None);
        emit_span("span_end", "stage", 0, Duration::from_nanos(5), Some(Duration::from_nanos(7)));
        uninstall();
        let text = std::fs::read_to_string(path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let end = Json::parse(lines[1]).unwrap();
        assert_eq!(end.get("ev").unwrap().as_str(), Some("span_end"));
        assert_eq!(end.get("dur_ns").unwrap().as_u64(), Some(7));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn no_sink_is_a_quiet_no_op() {
        uninstall();
        emit_span("span_begin", "quiet", 1, Duration::ZERO, None);
    }
}
