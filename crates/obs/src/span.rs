//! Monotonic timing spans with nesting.
//!
//! A span measures one stage of work on one thread: [`crate::span`] returns
//! a guard, dropping it ends the span. Spans nest — a per-thread stack
//! tracks depth, and the begin/end bookkeeping is counted globally so tests
//! can assert pairing (every end has a begin, depth returns to zero) even
//! when the work in between panicked and unwound through the guard.
//!
//! Timing uses [`Instant`] (monotonic; wall clocks step under NTP), and
//! each completed span feeds the histogram `span.<name>.ns`, which is where
//! per-stage timings in `RunMetrics` come from.

use crate::metrics::registry;
use crate::sink;
use std::cell::RefCell;
use std::sync::OnceLock;
use std::time::Instant;

thread_local! {
    static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

fn process_epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Live guard for one span; ends the span (and records its duration) on
/// drop. Inert when observability was disabled at creation time.
#[derive(Debug)]
pub struct SpanGuard {
    name: &'static str,
    start: Option<Instant>,
}

impl SpanGuard {
    pub(crate) fn disabled() -> SpanGuard {
        SpanGuard { name: "", start: None }
    }

    pub(crate) fn begin(name: &'static str) -> SpanGuard {
        let depth = STACK.with(|s| {
            let mut s = s.borrow_mut();
            s.push(name);
            s.len() - 1
        });
        registry().counter("obs.span.begin").inc();
        let start = Instant::now();
        sink::emit_span("span_begin", name, depth, start - process_epoch(), None);
        SpanGuard { name, start: Some(start) }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let dur = start.elapsed();
        let depth = STACK.with(|s| {
            let mut s = s.borrow_mut();
            // Pop our own frame. Unwinding drops inner guards first, so the
            // top is ours unless a caller leaked a guard across threads;
            // search defensively rather than corrupting the stack.
            match s.iter().rposition(|n| *n == self.name) {
                Some(i) => {
                    s.remove(i);
                    i
                }
                None => 0,
            }
        });
        registry().counter("obs.span.end").inc();
        registry().histogram(&format!("span.{}.ns", self.name)).observe(dur.as_nanos() as u64);
        sink::emit_span("span_end", self.name, depth, start - process_epoch(), Some(dur));
    }
}

/// Depth of the current thread's span stack (0 when no span is open).
/// Tests use this to assert that unwinding restored balance.
pub fn thread_span_depth() -> usize {
    STACK.with(|s| s.borrow().len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::set_enabled;

    #[test]
    fn spans_nest_and_unwind_cleanly() {
        let _l = crate::test_lock();
        set_enabled(true);
        let before_begin = registry().counter("obs.span.begin").get();
        let before_end = registry().counter("obs.span.end").get();
        {
            let _a = SpanGuard::begin("outer");
            assert_eq!(thread_span_depth(), 1);
            let _b = SpanGuard::begin("inner");
            assert_eq!(thread_span_depth(), 2);
        }
        assert_eq!(thread_span_depth(), 0);
        // A panic that unwinds through guards still ends them.
        let r = std::panic::catch_unwind(|| {
            let _g = SpanGuard::begin("doomed");
            panic!("boom");
        });
        assert!(r.is_err());
        assert_eq!(thread_span_depth(), 0);
        let begun = registry().counter("obs.span.begin").get() - before_begin;
        let ended = registry().counter("obs.span.end").get() - before_end;
        assert_eq!(begun, 3);
        assert_eq!(ended, 3);
        assert!(registry().histogram("span.doomed.ns").count() >= 1);
    }
}
