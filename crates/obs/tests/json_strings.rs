//! String-escaping contract of the hand-rolled JSON layer.
//!
//! Serve-daemon tenant names and error strings flow through
//! [`Json::Str`] into JSONL sinks, so the writer must produce a valid,
//! single-line encoding for *any* Rust string — control characters,
//! quotes, backslashes, astral-plane scalars — and the parser must read
//! back exactly the original. The proptests below pin that contract.

use ecohmem_obs::Json;
use proptest::prelude::*;

/// Maps raw u32s onto chars with the control range over-represented:
/// roughly a third of generated scalars land in C0/DEL, the rest range
/// over the whole scalar-value space (surrogates folded away).
fn char_from(raw: u32) -> char {
    match raw % 3 {
        0 => char::from_u32(raw % 0x20).unwrap(),
        1 => ['"', '\\', '\n', '\r', '\t', '\u{7f}', '\u{1b}'][(raw % 7) as usize],
        _ => char::from_u32(raw % 0x11_0000).unwrap_or('\u{fffd}'),
    }
}

fn string_from(raws: Vec<u32>) -> String {
    raws.into_iter().map(char_from).collect()
}

proptest! {
    /// Any string survives a print → parse round trip bit-for-bit.
    #[test]
    fn arbitrary_strings_round_trip(
        raws in prop::collection::vec(0u32..u32::MAX, 0..64),
    ) {
        let s = string_from(raws);
        let printed = Json::str(s.clone()).to_string_compact();
        let parsed = Json::parse(&printed).expect("writer output parses");
        prop_assert_eq!(parsed.as_str(), Some(s.as_str()));
    }

    /// The compact encoding of any string is a single line with no raw
    /// control bytes — the invariant JSONL sinks depend on.
    #[test]
    fn compact_output_is_always_one_clean_line(
        raws in prop::collection::vec(0u32..u32::MAX, 0..64),
    ) {
        let printed = Json::str(string_from(raws)).to_string_compact();
        prop_assert!(
            !printed.bytes().any(|b| b < 0x20 || b == 0x7f),
            "raw control byte in {:?}", printed
        );
    }
}

#[test]
fn tenant_names_with_control_characters_stay_on_one_jsonl_line() {
    let name = "tenant\nwith\tcontrol\r\u{1b}[31mchars\u{7f}";
    let line =
        Json::obj(vec![("tenant", Json::str(name)), ("ok", Json::Bool(true))]).to_string_compact();
    assert_eq!(line.lines().count(), 1, "JSONL line split by raw control char: {line:?}");
    assert!(!line.contains('\u{1b}'), "raw escape byte leaked into {line:?}");
    let parsed = Json::parse(&line).unwrap();
    assert_eq!(parsed.get("tenant").and_then(Json::as_str), Some(name));
}
