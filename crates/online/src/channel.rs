//! Bounded-channel streaming: the producer/consumer seam of the online
//! engine.
//!
//! A real streaming profiler produces events faster than a planner wants
//! to consume them in bursts; an unbounded buffer would quietly grow to
//! the size of the trace and defeat the point of streaming. A
//! [`StreamSession`] therefore moves *columnar batches* ([`EventBatch`])
//! over the bounded queue from [`crate::durability::queue`]: when the
//! consumer thread (which drives a [`StreamIngestor`]) falls behind,
//! `send` blocks — backpressure, not buffering. Batching amortizes the
//! per-message synchronization over [`STREAM_BATCH`] events without
//! changing the result: the ingestor's batch entry point is defined as
//! event-at-a-time ingestion, so batch boundaries are unobservable in
//! the profile.
//!
//! Failure flows in both directions, and a dead consumer is never a
//! hang: the queue's senders observe the receiver's death *even while
//! blocked on a full queue*, so a `Strict` ingestor error terminates the
//! consumer, in-flight and subsequent `send`s fail with
//! [`IngestError::ConsumerGone`], and [`StreamSession::finish`] surfaces
//! the original [`TraceError`].

use crate::config::OnlineConfig;
use crate::durability::queue::{self, Sender};
use crate::error::IngestError;
use crate::ingest::{StreamIngestor, StreamMeta};
use memtrace::columns::EventBatch;
use memtrace::{DegradationPolicy, TraceError, TraceEvent, TraceFile, Warning};
use profiler::ProfileSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Events per batch when streaming a whole trace ([`stream_profile`]).
/// Amortizes channel synchronization; small enough that backpressure
/// still engages within a fraction of `channel_capacity` batches.
pub const STREAM_BATCH: usize = 256;

/// A live streaming-ingestion session: producer handle on this side, the
/// ingestor running on its own consumer thread.
#[derive(Debug)]
pub struct StreamSession {
    tx: Option<Sender<EventBatch>>,
    consumer: JoinHandle<Result<StreamIngestor, TraceError>>,
    /// Events sent but not yet consumed — the observed channel depth.
    in_flight: Arc<AtomicU64>,
}

impl StreamSession {
    /// Spawns the consumer thread. The channel depth comes from
    /// `cfg.channel_capacity` (clamped to ≥ 1), counted in batches.
    pub fn spawn(meta: StreamMeta, policy: DegradationPolicy, cfg: OnlineConfig) -> Self {
        let (tx, rx) = queue::bounded::<EventBatch>(cfg.channel_capacity.max(1));
        let in_flight = Arc::new(AtomicU64::new(0));
        let consumer_depth = Arc::clone(&in_flight);
        let consumer = std::thread::spawn(move || {
            let mut ingestor = StreamIngestor::new(meta, policy, cfg);
            while let Some(batch) = rx.recv() {
                consumer_depth.fetch_sub(batch.len() as u64, Ordering::Relaxed);
                ingestor.push_batch(&batch)?;
            }
            Ok(ingestor)
        });
        StreamSession { tx: Some(tx), consumer, in_flight }
    }

    /// Offers one event, blocking while the channel is full. Fails with
    /// [`IngestError::ConsumerGone`] when the consumer has hung up (a
    /// `Strict` failure) — the producer should stop and call
    /// [`Self::finish`] for the underlying error.
    pub fn send(&self, event: TraceEvent) -> Result<(), IngestError> {
        self.send_batch(EventBatch::from_events(std::slice::from_ref(&event)))
    }

    /// Offers a columnar batch, blocking while the channel is full.
    /// Fails with [`IngestError::ConsumerGone`] when the consumer has
    /// hung up (a `Strict` failure), *including* when the hangup happens
    /// while this call is blocked on a full queue — the producer should
    /// stop and call [`Self::finish`] for the underlying error. Empty
    /// batches are accepted and ignored.
    pub fn send_batch(&self, batch: EventBatch) -> Result<(), IngestError> {
        let Some(tx) = &self.tx else {
            return Err(IngestError::ConsumerGone);
        };
        if batch.is_empty() {
            return Ok(());
        }
        let n = batch.len() as u64;
        let depth = self.in_flight.fetch_add(n, Ordering::Relaxed) + n;
        ecohmem_obs::gauge_raise("online.channel.depth_hwm", depth as f64);
        ecohmem_obs::count("online.events.streamed", n);
        ecohmem_obs::incr("online.batches.streamed");
        match tx.send(batch) {
            Ok(()) => Ok(()),
            Err(_) => {
                self.in_flight.fetch_sub(n, Ordering::Relaxed);
                Err(IngestError::ConsumerGone)
            }
        }
    }

    /// Closes the stream and joins the consumer: the final profile (as of
    /// `duration`) plus warnings, or the error that stopped ingestion.
    pub fn finish(mut self, duration: f64) -> Result<(ProfileSet, Vec<Warning>), TraceError> {
        drop(self.tx.take());
        let ingestor = self
            .consumer
            .join()
            .map_err(|_| TraceError::Malformed("stream consumer thread panicked".into()))??;
        ingestor.finish(duration)
    }
}

/// Streams a whole trace file through a bounded-channel session — the
/// drop-in streaming replacement for `profiler::analyze` (strict) and
/// `profiler::analyze_lenient` (with a lenient policy).
pub fn stream_profile(
    trace: &TraceFile,
    policy: DegradationPolicy,
    cfg: OnlineConfig,
) -> Result<(ProfileSet, Vec<Warning>), TraceError> {
    let session = StreamSession::spawn(StreamMeta::of(trace), policy, cfg);
    for chunk in trace.events.chunks(STREAM_BATCH) {
        if session.send_batch(EventBatch::from_events(chunk)).is_err() {
            break; // consumer died; finish() reports why
        }
    }
    session.finish(trace.duration)
}

/// [`stream_profile`] over the profiler's native columnar output: batches
/// are sliced straight off the trace's [`EventBatch`] — no
/// `Vec<TraceEvent>` is built on the producer side either.
pub fn stream_profile_columnar(
    trace: &memtrace::ColumnarTrace,
    policy: DegradationPolicy,
    cfg: OnlineConfig,
) -> Result<(ProfileSet, Vec<Warning>), TraceError> {
    let session = StreamSession::spawn(StreamMeta::of_columnar(trace), policy, cfg);
    let n = trace.len();
    let mut lo = 0;
    while lo < n {
        let hi = (lo + STREAM_BATCH).min(n);
        if session.send_batch(trace.events.slice_ops(lo..hi)).is_err() {
            break; // consumer died; finish() reports why
        }
        lo = hi;
    }
    session.finish(trace.duration)
}

#[cfg(test)]
mod tests {
    use super::*;
    use memtrace::{BinaryMap, CallStack, Frame, ModuleId, ObjectId, SiteId};

    fn toy_trace(events: Vec<TraceEvent>) -> TraceFile {
        TraceFile {
            app_name: "toy".into(),
            seed: 1,
            ranks: 1,
            sampling_hz: 100.0,
            load_sample_period: 1.0,
            store_sample_period: 1.0,
            duration: 2.0,
            stacks: vec![(SiteId(0), CallStack::new(vec![Frame::new(ModuleId(0), 0x10)]))],
            binmap: BinaryMap::default(),
            events,
        }
    }

    fn valid_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::Alloc {
                time: 0.0,
                object: ObjectId(1),
                site: SiteId(0),
                size: 128,
                address: 0x1000,
            },
            TraceEvent::LoadMissSample {
                time: 0.5,
                address: 0x1040,
                latency_cycles: 300.0,
                function: memtrace::FuncId(0),
            },
            TraceEvent::Free { time: 1.0, object: ObjectId(1) },
        ]
    }

    #[test]
    fn streams_a_valid_trace() {
        let trace = toy_trace(valid_events());
        let (profile, warnings) =
            stream_profile(&trace, DegradationPolicy::Strict, OnlineConfig::default()).unwrap();
        assert!(warnings.is_empty());
        assert_eq!(profile.sites.len(), 1);
        assert_eq!(profile.sites[0].load_misses_est, 1.0);
    }

    #[test]
    fn capacity_one_still_delivers_everything() {
        // The smallest possible channel forces a block on every send;
        // correctness must not depend on the channel depth.
        let trace = toy_trace(valid_events());
        let cfg = OnlineConfig { channel_capacity: 1, ..OnlineConfig::default() };
        let (p1, _) = stream_profile(&trace, DegradationPolicy::Strict, cfg).unwrap();
        let (p2, _) =
            stream_profile(&trace, DegradationPolicy::Strict, OnlineConfig::default()).unwrap();
        assert_eq!(p1, p2);
    }

    #[test]
    fn batch_boundaries_are_unobservable() {
        // Singleton sends and STREAM_BATCH-chunked sends must converge on
        // the same profile: batching is transport, not semantics.
        let trace = toy_trace(valid_events());
        let session = StreamSession::spawn(
            StreamMeta::of(&trace),
            DegradationPolicy::Strict,
            OnlineConfig::default(),
        );
        for e in &trace.events {
            session.send(e.clone()).unwrap();
        }
        let (one_by_one, _) = session.finish(trace.duration).unwrap();
        let (chunked, _) =
            stream_profile(&trace, DegradationPolicy::Strict, OnlineConfig::default()).unwrap();
        assert_eq!(one_by_one, chunked);
    }

    #[test]
    fn columnar_streaming_matches_aos_streaming() {
        let trace = toy_trace(valid_events());
        let columnar = memtrace::ColumnarTrace::from_trace_file(&trace);
        let (aos, _) =
            stream_profile(&trace, DegradationPolicy::Strict, OnlineConfig::default()).unwrap();
        let (cols, _) =
            stream_profile_columnar(&columnar, DegradationPolicy::Strict, OnlineConfig::default())
                .unwrap();
        assert_eq!(aos, cols);
    }

    #[test]
    fn strict_failure_propagates_through_the_channel() {
        let mut events = valid_events();
        events.push(TraceEvent::Free { time: 1.5, object: ObjectId(1) }); // double free
        let trace = toy_trace(events);
        let err =
            stream_profile(&trace, DegradationPolicy::Strict, OnlineConfig::default()).unwrap_err();
        assert!(err.to_string().contains("double free"), "{err}");
        // The lenient policies salvage the same stream.
        let (p, w) =
            stream_profile(&trace, DegradationPolicy::Warn, OnlineConfig::default()).unwrap();
        assert_eq!(p.sites.len(), 1);
        assert!(!w.is_empty());
    }

    #[test]
    fn dead_consumer_unblocks_senders_with_consumer_gone() {
        // Regression: a producer blocked on a full channel used to hang
        // forever when the consumer died. The bounded queue now wakes
        // blocked senders on receiver death, and the session reports the
        // hangup as a structured error instead of a bare `false`.
        let trace = toy_trace(valid_events());
        let cfg = OnlineConfig { channel_capacity: 1, ..OnlineConfig::default() };
        let session = StreamSession::spawn(StreamMeta::of(&trace), DegradationPolicy::Strict, cfg);
        // Kill the consumer with a Strict violation: free of an unknown
        // object. Then keep pushing until the producer observes the death
        // — every send either lands in the dying queue or fails, but none
        // may hang.
        let poison = TraceEvent::Free { time: 0.1, object: ObjectId(999) };
        let mut saw_gone = None;
        for _ in 0..1000 {
            if let Err(e) = session.send(poison.clone()) {
                saw_gone = Some(e);
                break;
            }
        }
        let err = saw_gone.expect("producer observed the dead consumer");
        assert!(matches!(err, IngestError::ConsumerGone), "{err}");
        assert!(err.to_string().contains("consumer is gone"), "{err}");
        // The root cause is still reported at finish.
        let fin = session.finish(trace.duration).unwrap_err();
        assert!(fin.to_string().contains("never-allocated"), "{fin}");
    }
}
