//! Configuration for the online engine: how miss statistics age and how
//! often the incremental advisor re-plans.

use serde::{Deserialize, Serialize};

/// Tuning knobs shared by the streaming ingestor, the incremental advisor
/// and the dynamic placement policy.
///
/// The two aging knobs select the estimator a site's miss statistic
/// reports (see [`crate::stats::DecayedWindow`]):
///
/// * both `None` — the raw running total. This is the *offline-equivalent*
///   setting: feeding a full trace through the ingestor reproduces the
///   batch analyzer's estimates exactly (property-tested).
/// * `window: Some(w)` — a sliding window: only activity in the last `w`
///   time units counts.
/// * `half_life: Some(h)` — exponential decay with half-life `h`; takes
///   precedence over the window when both are set.
///
/// Time units are seconds on the trace path and *phases* on the simulator
/// policy path (the engine reports per-phase heat, not timestamps).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OnlineConfig {
    /// Sliding-window length for miss statistics (`None` = unbounded).
    pub window: Option<f64>,
    /// Exponential-decay half-life for miss statistics (`None` = no decay).
    pub half_life: Option<f64>,
    /// The incremental advisor re-plans every this many phases (policy
    /// path) — the "epoch tick". Clamped to ≥ 1.
    pub epoch_phases: u32,
    /// Fixed time cost per applied migration, seconds: the syscall and
    /// page-table work of a `move_pages`-style remap, on top of the
    /// bytes-moved / tier-bandwidth transfer term charged by the engine.
    pub migration_overhead: f64,
    /// Depth of the bounded event channel used by [`crate::StreamSession`];
    /// a full channel blocks the producer (backpressure) instead of
    /// buffering the whole trace. Clamped to ≥ 1.
    pub channel_capacity: usize,
    /// Plan hysteresis: a challenger must look this fraction hotter than an
    /// incumbent fast-tier site to evict it. `0.0` disables (required for
    /// exact offline equivalence); the reactive preset uses a positive
    /// value so windowed-estimate noise between near-equal sites does not
    /// thrash migrations back and forth.
    pub hysteresis: f64,
}

impl Default for OnlineConfig {
    /// The offline-equivalent configuration: unbounded statistics, re-plan
    /// every phase, no artificial channel depth.
    fn default() -> Self {
        OnlineConfig {
            window: None,
            half_life: None,
            epoch_phases: 1,
            migration_overhead: 50e-6,
            channel_capacity: 1024,
            hysteresis: 0.0,
        }
    }
}

impl OnlineConfig {
    /// A reactive preset for phase-adaptive placement: a short sliding
    /// window so the advisor tracks the *current* hot set instead of the
    /// whole-run aggregate, re-planning every phase, with enough hysteresis
    /// that estimate noise between near-equal sites does not churn.
    pub fn reactive() -> Self {
        OnlineConfig { window: Some(4.0), hysteresis: 0.5, ..OnlineConfig::default() }
    }

    /// Epoch length with the ≥ 1 clamp applied.
    pub fn epoch(&self) -> u32 {
        self.epoch_phases.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_offline_equivalent() {
        let c = OnlineConfig::default();
        assert!(c.window.is_none());
        assert!(c.half_life.is_none());
        assert_eq!(c.epoch(), 1);
    }

    #[test]
    fn reactive_has_a_window() {
        assert!(OnlineConfig::reactive().window.is_some());
    }

    #[test]
    fn epoch_clamps_to_one() {
        let c = OnlineConfig { epoch_phases: 0, ..OnlineConfig::default() };
        assert_eq!(c.epoch(), 1);
    }
}
