//! Atomic checkpoint storage: tmp-write + rename, CRC-guarded load with
//! fallback to the newest intact checkpoint.
//!
//! A checkpoint file `ckpt-{seq:016x}-{cursor:016x}.ck` is `magic ||
//! version || crc32(payload) || payload`, written to a `.tmp` sibling
//! first and published with an atomic rename — a crash mid-checkpoint
//! leaves either the previous checkpoint set intact plus a junk `.tmp`
//! (ignored and swept on open), or the new file fully in place.
//! `load_latest` walks checkpoints newest-first and skips any that fail
//! the CRC, so a corrupted latest checkpoint degrades recovery to the
//! previous one (plus a longer journal replay), never to a crash.
//!
//! The `cursor` in the filename is the journal position the checkpoint
//! covers (its `applied` watermark). It lives in the name — readable
//! without decoding, and trustworthy even when the payload is corrupt —
//! so the engine can prune the journal only below the *oldest retained*
//! checkpoint's cursor ([`CheckpointStore::min_retained_cursor`]): the
//! replay suffix every fallback checkpoint needs stays on disk.

use memtrace::binfmt::crc32;
use memtrace::TraceError;
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

const CKPT_MAGIC: &[u8; 8] = b"ECOHCKP\0";
const CKPT_VERSION: u32 = 1;

/// What a checkpoint load found.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LoadReport {
    /// Sequence number of the checkpoint served, if any.
    pub seq: Option<u64>,
    /// Checkpoints skipped because their CRC or header failed.
    pub corrupt_skipped: u64,
    /// Leftover `.tmp` files from interrupted checkpoints, swept.
    pub tmp_swept: u64,
}

/// Directory-backed checkpoint storage.
#[derive(Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
}

fn ckpt_path(dir: &Path, seq: u64, cursor: u64) -> PathBuf {
    dir.join(format!("ckpt-{seq:016x}-{cursor:016x}.ck"))
}

impl CheckpointStore {
    /// Opens (or creates) the store in `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> Result<CheckpointStore, TraceError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(CheckpointStore { dir })
    }

    /// `(seq, journal cursor, path)` per checkpoint file, seq-sorted.
    fn list(&self) -> Result<Vec<(u64, u64, PathBuf)>, TraceError> {
        let mut out = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let path = entry?.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else { continue };
            if let Some(body) = name.strip_prefix("ckpt-").and_then(|n| n.strip_suffix(".ck")) {
                if let Some((s, c)) = body.split_once('-') {
                    if let (Ok(seq), Ok(cursor)) =
                        (u64::from_str_radix(s, 16), u64::from_str_radix(c, 16))
                    {
                        out.push((seq, cursor, path));
                    }
                }
            }
        }
        out.sort();
        Ok(out)
    }

    /// Atomically publishes checkpoint `seq` covering journal records
    /// below `cursor` (the engine's `applied` watermark at save time).
    pub fn save(&self, seq: u64, cursor: u64, payload: &[u8]) -> Result<(), TraceError> {
        let fin = ckpt_path(&self.dir, seq, cursor);
        let tmp = fin.with_extension("ck.tmp");
        {
            let mut f = OpenOptions::new().create(true).write(true).truncate(true).open(&tmp)?;
            f.write_all(CKPT_MAGIC)?;
            f.write_all(&CKPT_VERSION.to_le_bytes())?;
            f.write_all(&crc32(payload).to_le_bytes())?;
            f.write_all(payload)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, &fin)?;
        Ok(())
    }

    /// Loads the newest intact checkpoint, sweeping `.tmp` leftovers and
    /// skipping corrupt files. Returns `(payload, report)`.
    pub fn load_latest(&self) -> Result<(Option<Vec<u8>>, LoadReport), TraceError> {
        let mut report = LoadReport::default();
        for entry in fs::read_dir(&self.dir)? {
            let path = entry?.path();
            if path.extension().and_then(|e| e.to_str()) == Some("tmp") {
                fs::remove_file(&path)?;
                report.tmp_swept += 1;
            }
        }
        for (seq, _cursor, path) in self.list()?.into_iter().rev() {
            let mut data = Vec::new();
            File::open(&path)?.read_to_end(&mut data)?;
            let intact = data.len() >= 16
                && &data[..8] == CKPT_MAGIC
                && u32::from_le_bytes(data[8..12].try_into().unwrap()) == CKPT_VERSION
                && u32::from_le_bytes(data[12..16].try_into().unwrap()) == crc32(&data[16..]);
            if intact {
                report.seq = Some(seq);
                return Ok((Some(data[16..].to_vec()), report));
            }
            report.corrupt_skipped += 1;
        }
        Ok((None, report))
    }

    /// Removes all checkpoints but the newest `keep`.
    pub fn prune(&self, keep: usize) -> Result<usize, TraceError> {
        let list = self.list()?;
        let mut removed = 0;
        if list.len() > keep {
            for (_, _, path) in &list[..list.len() - keep] {
                fs::remove_file(path)?;
                removed += 1;
            }
        }
        Ok(removed)
    }

    /// The smallest journal cursor any retained checkpoint still needs
    /// its replay suffix from — journal records at or above it must stay
    /// on disk or falling back to an older checkpoint (after a corrupt
    /// newest one) would replay across a gap. `None` when no checkpoints
    /// exist.
    pub fn min_retained_cursor(&self) -> Result<Option<u64>, TraceError> {
        Ok(self.list()?.iter().map(|(_, cursor, _)| *cursor).min())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "ecohmem-ckpt-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn save_load_round_trips_and_serves_the_newest() {
        let dir = tmpdir("roundtrip");
        let store = CheckpointStore::open(&dir).unwrap();
        assert_eq!(store.load_latest().unwrap().0, None);
        store.save(0, 10, b"first").unwrap();
        store.save(1, 20, b"second").unwrap();
        let (payload, report) = store.load_latest().unwrap();
        assert_eq!(payload.as_deref(), Some(&b"second"[..]));
        assert_eq!(report.seq, Some(1));
        assert_eq!(report.corrupt_skipped, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_latest_falls_back_to_the_previous() {
        let dir = tmpdir("fallback");
        let store = CheckpointStore::open(&dir).unwrap();
        store.save(0, 10, b"good").unwrap();
        store.save(1, 20, b"soon-bad").unwrap();
        // Corrupt the newest checkpoint's payload.
        let path = ckpt_path(&dir, 1, 20);
        let mut data = fs::read(&path).unwrap();
        let n = data.len();
        data[n - 1] ^= 0xff;
        fs::write(&path, &data).unwrap();
        let (payload, report) = store.load_latest().unwrap();
        assert_eq!(payload.as_deref(), Some(&b"good"[..]));
        assert_eq!(report.seq, Some(0));
        assert_eq!(report.corrupt_skipped, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn interrupted_checkpoint_leaves_previous_intact() {
        let dir = tmpdir("interrupted");
        let store = CheckpointStore::open(&dir).unwrap();
        store.save(0, 10, b"stable").unwrap();
        // Simulate a crash mid-checkpoint: a half-written .tmp never renamed.
        fs::write(dir.join("ckpt-0000000000000001-000000000000000b.ck.tmp"), b"ECOHCKP\0gar")
            .unwrap();
        let (payload, report) = store.load_latest().unwrap();
        assert_eq!(payload.as_deref(), Some(&b"stable"[..]));
        assert_eq!(report.tmp_swept, 1);
        assert!(
            !dir.join("ckpt-0000000000000001-000000000000000b.ck.tmp").exists(),
            "tmp junk swept"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn prune_keeps_the_newest() {
        let dir = tmpdir("prune");
        let store = CheckpointStore::open(&dir).unwrap();
        for seq in 0..5 {
            store.save(seq, seq * 100, format!("p{seq}").as_bytes()).unwrap();
        }
        assert_eq!(store.prune(2).unwrap(), 3);
        let (payload, report) = store.load_latest().unwrap();
        assert_eq!(payload.as_deref(), Some(&b"p4"[..]));
        assert_eq!(report.seq, Some(4));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn min_retained_cursor_tracks_the_oldest_survivor() {
        let dir = tmpdir("min-cursor");
        let store = CheckpointStore::open(&dir).unwrap();
        assert_eq!(store.min_retained_cursor().unwrap(), None);
        for seq in 0..4 {
            store.save(seq, seq * 10, format!("p{seq}").as_bytes()).unwrap();
        }
        assert_eq!(store.min_retained_cursor().unwrap(), Some(0));
        store.prune(2).unwrap();
        // Survivors are seq 2 (cursor 20) and seq 3 (cursor 30): journal
        // records >= 20 must stay replayable for the fallback checkpoint.
        assert_eq!(store.min_retained_cursor().unwrap(), Some(20));
        fs::remove_dir_all(&dir).unwrap();
    }
}
