//! Bit-exact binary encoding of the online engine's mutable state.
//!
//! The recovery proof obligation is *byte identity*: a run recovered from
//! `checkpoint + journal suffix` must emit exactly the revision sequence
//! of an uninterrupted run. That rules out any lossy serialization of the
//! floating-point statistics, so every `f64` here travels as its IEEE-754
//! bit pattern (`to_bits`/`from_bits`) varint-encoded with the shared
//! [`memtrace::binfmt`] primitives — including NaN payloads and negative
//! zero, which a decimal round-trip would quietly normalize.
//!
//! Hash containers (`HashMap`/`HashSet`) have no stable iteration order,
//! so they are encoded as key-sorted vectors; the ingestor's per-site
//! `objects` vectors, `grace` list and `tallies` are **order-carrying**
//! state and are encoded verbatim. The only non-binary section is the
//! stream header ([`StreamMeta`]): stacks and binary map ride the
//! existing `TraceFile` JSON codec (all integer/string fields), while the
//! header's three `f64` scalars are re-pinned bit-exactly beside it.

use crate::config::OnlineConfig;
use crate::incremental::IncrementalAdvisor;
use crate::ingest::{ObjAcc, SiteAcc, StreamIngestor, StreamMeta};
use crate::stats::DecayedWindow;
use crate::PlacementRevision;
use advisor::{AdvisorConfig, Algorithm, Assignment, BwThresholds, TierBudget};
use memtrace::binfmt::{get_varint, put_varint};
use memtrace::{
    DegradationPolicy, DroppedWindow, ObjectId, SiteId, TierId, TraceError, TraceFile, WarningKind,
};
use profiler::{ObjectLifetime, SiteProfile};
use std::collections::VecDeque;

/// Every [`WarningKind`], in a frozen order that IS the wire encoding.
/// Append-only: inserting in the middle would re-number checkpoints.
const WARNING_KINDS: [WarningKind; 17] = [
    WarningKind::TruncatedInput,
    WarningKind::NonFiniteTime,
    WarningKind::OutOfOrderEvent,
    WarningKind::UnknownSite,
    WarningKind::ZeroSizeAlloc,
    WarningKind::DuplicateAlloc,
    WarningKind::DoubleFree,
    WarningKind::OrphanFree,
    WarningKind::BadMetadata,
    WarningKind::UnresolvableEntry,
    WarningKind::DuplicateEntry,
    WarningKind::CollidingEntry,
    WarningKind::MixedFormatEntry,
    WarningKind::EmptyProfile,
    WarningKind::UnusableReport,
    WarningKind::FaultInjected,
    WarningKind::DroppedEvents,
];

fn corrupt(what: &str) -> TraceError {
    TraceError::Malformed(format!("corrupt durability record: {what}"))
}

// ---------------------------------------------------------------- scalars

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    put_varint(out, v);
}

pub(crate) fn get_u64(data: &[u8], pos: &mut usize) -> Result<u64, TraceError> {
    get_varint(data, pos)
}

pub(crate) fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_varint(out, v.to_bits());
}

pub(crate) fn get_f64(data: &[u8], pos: &mut usize) -> Result<f64, TraceError> {
    Ok(f64::from_bits(get_varint(data, pos)?))
}

pub(crate) fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(v as u8);
}

pub(crate) fn get_bool(data: &[u8], pos: &mut usize) -> Result<bool, TraceError> {
    match get_varint(data, pos)? {
        0 => Ok(false),
        1 => Ok(true),
        _ => Err(corrupt("boolean out of range")),
    }
}

pub(crate) fn put_opt_f64(out: &mut Vec<u8>, v: Option<f64>) {
    match v {
        Some(x) => {
            out.push(1);
            put_f64(out, x);
        }
        None => out.push(0),
    }
}

pub(crate) fn get_opt_f64(data: &[u8], pos: &mut usize) -> Result<Option<f64>, TraceError> {
    Ok(if get_bool(data, pos)? { Some(get_f64(data, pos)?) } else { None })
}

pub(crate) fn put_str(out: &mut Vec<u8>, s: &str) {
    put_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

pub(crate) fn get_str(data: &[u8], pos: &mut usize) -> Result<String, TraceError> {
    let n = get_varint(data, pos)? as usize;
    if n > data.len().saturating_sub(*pos) {
        return Err(corrupt("string length exceeds payload"));
    }
    let s = std::str::from_utf8(&data[*pos..*pos + n])
        .map_err(|_| corrupt("string is not UTF-8"))?
        .to_string();
    *pos += n;
    Ok(s)
}

fn checked_len(data: &[u8], pos: &mut usize, item_floor: usize) -> Result<usize, TraceError> {
    let n = get_varint(data, pos)? as usize;
    // Every encoded item costs ≥ `item_floor` bytes; an absurd count means
    // a corrupt length field, caught before any huge allocation.
    if n.saturating_mul(item_floor.max(1)) > data.len().saturating_sub(*pos) {
        return Err(corrupt("collection length exceeds payload"));
    }
    Ok(n)
}

// --------------------------------------------------------- small structs

fn put_window(out: &mut Vec<u8>, w: &DroppedWindow) {
    put_u64(out, w.count);
    put_opt_f64(out, w.first_time);
    put_opt_f64(out, w.last_time);
}

fn get_window(data: &[u8], pos: &mut usize) -> Result<DroppedWindow, TraceError> {
    Ok(DroppedWindow {
        count: get_u64(data, pos)?,
        first_time: get_opt_f64(data, pos)?,
        last_time: get_opt_f64(data, pos)?,
    })
}

/// Encodes a [`DroppedWindow`] (shed-record payloads reuse this).
pub(crate) fn encode_window(out: &mut Vec<u8>, w: &DroppedWindow) {
    put_window(out, w);
}

/// Decodes a [`DroppedWindow`].
pub(crate) fn decode_window(data: &[u8], pos: &mut usize) -> Result<DroppedWindow, TraceError> {
    get_window(data, pos)
}

fn put_decayed(out: &mut Vec<u8>, d: &DecayedWindow) {
    put_f64(out, d.total);
    put_f64(out, d.decayed);
    put_f64(out, d.last);
    put_u64(out, d.samples.len() as u64);
    for &(t, w) in &d.samples {
        put_f64(out, t);
        put_f64(out, w);
    }
}

fn get_decayed(data: &[u8], pos: &mut usize) -> Result<DecayedWindow, TraceError> {
    let total = get_f64(data, pos)?;
    let decayed = get_f64(data, pos)?;
    let last = get_f64(data, pos)?;
    let n = checked_len(data, pos, 2)?;
    let mut samples = VecDeque::with_capacity(n);
    for _ in 0..n {
        let t = get_f64(data, pos)?;
        let w = get_f64(data, pos)?;
        samples.push_back((t, w));
    }
    Ok(DecayedWindow { total, decayed, last, samples })
}

fn put_policy(out: &mut Vec<u8>, p: DegradationPolicy) {
    out.push(match p {
        DegradationPolicy::Strict => 0,
        DegradationPolicy::Warn => 1,
        DegradationPolicy::BestEffort => 2,
    });
}

fn get_policy(data: &[u8], pos: &mut usize) -> Result<DegradationPolicy, TraceError> {
    match get_varint(data, pos)? {
        0 => Ok(DegradationPolicy::Strict),
        1 => Ok(DegradationPolicy::Warn),
        2 => Ok(DegradationPolicy::BestEffort),
        _ => Err(corrupt("degradation policy out of range")),
    }
}

fn put_online_cfg(out: &mut Vec<u8>, cfg: &OnlineConfig) {
    put_opt_f64(out, cfg.window);
    put_opt_f64(out, cfg.half_life);
    put_u64(out, cfg.epoch_phases as u64);
    put_f64(out, cfg.migration_overhead);
    put_u64(out, cfg.channel_capacity as u64);
    put_f64(out, cfg.hysteresis);
}

fn get_online_cfg(data: &[u8], pos: &mut usize) -> Result<OnlineConfig, TraceError> {
    Ok(OnlineConfig {
        window: get_opt_f64(data, pos)?,
        half_life: get_opt_f64(data, pos)?,
        epoch_phases: get_u64(data, pos)? as u32,
        migration_overhead: get_f64(data, pos)?,
        channel_capacity: get_u64(data, pos)? as usize,
        hysteresis: get_f64(data, pos)?,
    })
}

// ---------------------------------------------------------- the ingestor

/// Serializes a [`StreamIngestor`] so that [`decode_ingestor`] rebuilds a
/// behaviorally identical twin (equal snapshots, equal future behavior).
pub fn encode_ingestor(ing: &StreamIngestor, out: &mut Vec<u8>) {
    // Header: stacks + binmap via the TraceFile JSON codec; f64 scalars
    // re-pinned bit-exactly after it (JSON may round them).
    let header = TraceFile {
        app_name: ing.meta.app_name.clone(),
        seed: 0,
        ranks: 1,
        sampling_hz: ing.meta.sampling_hz,
        load_sample_period: ing.meta.load_sample_period,
        store_sample_period: ing.meta.store_sample_period,
        duration: 0.0,
        stacks: (*ing.meta.stacks).clone(),
        binmap: (*ing.meta.binmap).clone(),
        events: Vec::new(),
    };
    put_str(out, &header.to_json().expect("stream header serializes"));
    put_f64(out, ing.meta.sampling_hz);
    put_f64(out, ing.meta.load_sample_period);
    put_f64(out, ing.meta.store_sample_period);

    put_online_cfg(out, &ing.cfg);
    put_policy(out, ing.policy);

    // Validation state. `known_sites` is derived from the header's stacks.
    let mut live_ids: Vec<ObjectId> = ing.live_ids.iter().copied().collect();
    live_ids.sort();
    put_u64(out, live_ids.len() as u64);
    for id in live_ids {
        put_u64(out, id.0);
    }
    let mut freed_ids: Vec<ObjectId> = ing.freed_ids.iter().copied().collect();
    freed_ids.sort();
    put_u64(out, freed_ids.len() as u64);
    for id in freed_ids {
        put_u64(out, id.0);
    }
    put_f64(out, ing.last_t);
    put_u64(out, ing.seen);
    put_u64(out, ing.dropped);
    put_u64(out, ing.tallies.len() as u64);
    for &(kind, n, first) in &ing.tallies {
        let idx = WARNING_KINDS.iter().position(|&k| k == kind).expect("kind in table");
        put_u64(out, idx as u64);
        put_u64(out, n);
        put_u64(out, first);
    }
    put_window(out, &ing.dropped_window);

    // Object store, key-sorted.
    let mut obj_ids: Vec<ObjectId> = ing.objects.keys().copied().collect();
    obj_ids.sort();
    put_u64(out, obj_ids.len() as u64);
    for id in obj_ids {
        let o = &ing.objects[&id];
        put_u64(out, id.0);
        put_u64(out, o.site.0 as u64);
        put_u64(out, o.size);
        put_u64(out, o.address);
        put_f64(out, o.alloc_time);
        put_opt_f64(out, o.free_time);
        put_u64(out, o.load_samples);
        put_u64(out, o.store_samples);
        put_u64(out, o.store_l1d_miss_samples);
    }

    // Per-site accumulators, key-sorted; each site's `objects` vector is
    // arrival-ordered state and is stored verbatim.
    let mut site_ids: Vec<SiteId> = ing.sites.keys().copied().collect();
    site_ids.sort();
    put_u64(out, site_ids.len() as u64);
    for id in site_ids {
        let s = &ing.sites[&id];
        put_u64(out, id.0 as u64);
        put_u64(out, s.objects.len() as u64);
        for o in &s.objects {
            put_u64(out, o.0);
        }
        put_decayed(out, &s.load_stat);
        put_decayed(out, &s.store_stat);
    }

    // Address index (BTreeMap iterates sorted) and the order-carrying
    // grace list.
    put_u64(out, ing.live.len() as u64);
    for (&start, &(end, id)) in &ing.live {
        put_u64(out, start);
        put_u64(out, end);
        put_u64(out, id.0);
    }
    put_u64(out, ing.grace.len() as u64);
    for &(start, end, id, free_time) in &ing.grace {
        put_u64(out, start);
        put_u64(out, end);
        put_u64(out, id.0);
        put_f64(out, free_time);
    }
    put_u64(out, ing.unmatched_samples);

    let mut dirty: Vec<SiteId> = ing.dirty.iter().copied().collect();
    dirty.sort();
    put_u64(out, dirty.len() as u64);
    for s in dirty {
        put_u64(out, s.0 as u64);
    }

    // Bandwidth bins.
    put_u64(out, ing.bins.len() as u64);
    for &b in &ing.bins {
        put_f64(out, b);
    }
    for counts in [&ing.bin_load, &ing.bin_store_miss] {
        put_u64(out, counts.len() as u64);
        for &c in counts {
            put_u64(out, c);
        }
    }
    put_u64(out, ing.pending_load);
    put_u64(out, ing.pending_store_miss);
}

/// Rebuilds the ingestor encoded by [`encode_ingestor`].
pub fn decode_ingestor(data: &[u8], pos: &mut usize) -> Result<StreamIngestor, TraceError> {
    let header = TraceFile::from_json(&get_str(data, pos)?)?;
    let meta = StreamMeta {
        app_name: header.app_name,
        sampling_hz: get_f64(data, pos)?,
        load_sample_period: get_f64(data, pos)?,
        store_sample_period: get_f64(data, pos)?,
        stacks: std::sync::Arc::new(header.stacks),
        binmap: std::sync::Arc::new(header.binmap),
    };
    let cfg = get_online_cfg(data, pos)?;
    let policy = get_policy(data, pos)?;
    let mut ing = StreamIngestor::new(meta, policy, cfg);

    for _ in 0..checked_len(data, pos, 1)? {
        ing.live_ids.insert(ObjectId(get_u64(data, pos)?));
    }
    for _ in 0..checked_len(data, pos, 1)? {
        ing.freed_ids.insert(ObjectId(get_u64(data, pos)?));
    }
    ing.last_t = get_f64(data, pos)?;
    ing.seen = get_u64(data, pos)?;
    ing.dropped = get_u64(data, pos)?;
    for _ in 0..checked_len(data, pos, 3)? {
        let idx = get_u64(data, pos)? as usize;
        let kind = *WARNING_KINDS.get(idx).ok_or_else(|| corrupt("warning kind out of range"))?;
        let n = get_u64(data, pos)?;
        let first = get_u64(data, pos)?;
        ing.tallies.push((kind, n, first));
    }
    ing.dropped_window = get_window(data, pos)?;

    for _ in 0..checked_len(data, pos, 9)? {
        let id = ObjectId(get_u64(data, pos)?);
        let acc = ObjAcc {
            site: SiteId(get_u64(data, pos)? as u32),
            size: get_u64(data, pos)?,
            address: get_u64(data, pos)?,
            alloc_time: get_f64(data, pos)?,
            free_time: get_opt_f64(data, pos)?,
            load_samples: get_u64(data, pos)?,
            store_samples: get_u64(data, pos)?,
            store_l1d_miss_samples: get_u64(data, pos)?,
        };
        ing.objects.insert(id, acc);
    }

    for _ in 0..checked_len(data, pos, 4)? {
        let id = SiteId(get_u64(data, pos)? as u32);
        let mut acc = SiteAcc::default();
        for _ in 0..checked_len(data, pos, 1)? {
            acc.objects.push(ObjectId(get_u64(data, pos)?));
        }
        acc.load_stat = get_decayed(data, pos)?;
        acc.store_stat = get_decayed(data, pos)?;
        ing.sites.insert(id, acc);
    }

    for _ in 0..checked_len(data, pos, 3)? {
        let start = get_u64(data, pos)?;
        let end = get_u64(data, pos)?;
        let id = ObjectId(get_u64(data, pos)?);
        ing.live.insert(start, (end, id));
    }
    for _ in 0..checked_len(data, pos, 4)? {
        let start = get_u64(data, pos)?;
        let end = get_u64(data, pos)?;
        let id = ObjectId(get_u64(data, pos)?);
        let free_time = get_f64(data, pos)?;
        ing.grace.push((start, end, id, free_time));
    }
    ing.unmatched_samples = get_u64(data, pos)?;

    for _ in 0..checked_len(data, pos, 1)? {
        ing.dirty.insert(SiteId(get_u64(data, pos)? as u32));
    }

    for _ in 0..checked_len(data, pos, 1)? {
        ing.bins.push(get_f64(data, pos)?);
    }
    for _ in 0..checked_len(data, pos, 1)? {
        ing.bin_load.push(get_u64(data, pos)?);
    }
    for _ in 0..checked_len(data, pos, 1)? {
        ing.bin_store_miss.push(get_u64(data, pos)?);
    }
    ing.pending_load = get_u64(data, pos)?;
    ing.pending_store_miss = get_u64(data, pos)?;
    Ok(ing)
}

// ----------------------------------------------------------- the advisor

fn put_tier(out: &mut Vec<u8>, t: TierId) {
    put_u64(out, t.0 as u64);
}

fn get_tier(data: &[u8], pos: &mut usize) -> Result<TierId, TraceError> {
    Ok(TierId(get_u64(data, pos)? as u8))
}

fn put_site_profile(out: &mut Vec<u8>, p: &SiteProfile) {
    put_u64(out, p.site.0 as u64);
    put_u64(out, p.stack.frames().len() as u64);
    for f in p.stack.frames() {
        put_u64(out, f.module.0 as u64);
        put_u64(out, f.offset);
    }
    put_u64(out, p.alloc_count);
    put_u64(out, p.max_size);
    put_u64(out, p.total_bytes);
    put_u64(out, p.peak_live_bytes);
    put_f64(out, p.load_misses_est);
    put_f64(out, p.store_misses_est);
    put_bool(out, p.has_stores);
    put_f64(out, p.first_alloc);
    put_f64(out, p.last_free);
    put_f64(out, p.bw_at_alloc);
    put_f64(out, p.avg_bw);
    put_u64(out, p.objects.len() as u64);
    for o in &p.objects {
        put_u64(out, o.object.0);
        put_u64(out, o.size);
        put_f64(out, o.alloc_time);
        put_f64(out, o.free_time);
        put_u64(out, o.load_samples);
        put_u64(out, o.store_samples);
        put_u64(out, o.store_l1d_miss_samples);
        put_f64(out, o.bw_at_alloc);
    }
}

fn get_site_profile(data: &[u8], pos: &mut usize) -> Result<SiteProfile, TraceError> {
    let site = SiteId(get_u64(data, pos)? as u32);
    let mut frames = Vec::new();
    for _ in 0..checked_len(data, pos, 2)? {
        let module = memtrace::ModuleId(get_u64(data, pos)? as u16);
        let offset = get_u64(data, pos)?;
        frames.push(memtrace::Frame::new(module, offset));
    }
    let stack = memtrace::CallStack::new(frames);
    let alloc_count = get_u64(data, pos)?;
    let max_size = get_u64(data, pos)?;
    let total_bytes = get_u64(data, pos)?;
    let peak_live_bytes = get_u64(data, pos)?;
    let load_misses_est = get_f64(data, pos)?;
    let store_misses_est = get_f64(data, pos)?;
    let has_stores = get_bool(data, pos)?;
    let first_alloc = get_f64(data, pos)?;
    let last_free = get_f64(data, pos)?;
    let bw_at_alloc = get_f64(data, pos)?;
    let avg_bw = get_f64(data, pos)?;
    let mut objects = Vec::new();
    for _ in 0..checked_len(data, pos, 8)? {
        objects.push(ObjectLifetime {
            object: ObjectId(get_u64(data, pos)?),
            size: get_u64(data, pos)?,
            alloc_time: get_f64(data, pos)?,
            free_time: get_f64(data, pos)?,
            load_samples: get_u64(data, pos)?,
            store_samples: get_u64(data, pos)?,
            store_l1d_miss_samples: get_u64(data, pos)?,
            bw_at_alloc: get_f64(data, pos)?,
        });
    }
    Ok(SiteProfile {
        site,
        stack,
        alloc_count,
        max_size,
        total_bytes,
        peak_live_bytes,
        load_misses_est,
        store_misses_est,
        has_stores,
        first_alloc,
        last_free,
        bw_at_alloc,
        avg_bw,
        objects,
    })
}

fn put_assignment(out: &mut Vec<u8>, a: &Assignment) {
    let mut sites: Vec<SiteId> = a.tiers.keys().copied().collect();
    sites.sort();
    put_u64(out, sites.len() as u64);
    for s in sites {
        put_u64(out, s.0 as u64);
        put_tier(out, a.tiers[&s]);
    }
    put_tier(out, a.fallback);
    put_u64(out, a.charged.len() as u64);
    for &(tier, bytes) in &a.charged {
        put_tier(out, tier);
        put_u64(out, bytes);
    }
}

fn get_assignment(data: &[u8], pos: &mut usize) -> Result<Assignment, TraceError> {
    let mut tiers = std::collections::HashMap::new();
    for _ in 0..checked_len(data, pos, 2)? {
        let s = SiteId(get_u64(data, pos)? as u32);
        let t = get_tier(data, pos)?;
        tiers.insert(s, t);
    }
    let fallback = get_tier(data, pos)?;
    let mut charged = Vec::new();
    for _ in 0..checked_len(data, pos, 2)? {
        let t = get_tier(data, pos)?;
        let b = get_u64(data, pos)?;
        charged.push((t, b));
    }
    Ok(Assignment { tiers, fallback, charged })
}

/// Serializes an [`IncrementalAdvisor`] — configuration, cached site
/// profiles, the incumbent assignment, and epoch counters.
pub fn encode_advisor(adv: &IncrementalAdvisor, out: &mut Vec<u8>) {
    put_u64(out, adv.config.tiers.len() as u64);
    for t in &adv.config.tiers {
        put_tier(out, t.tier);
        put_u64(out, t.capacity);
        put_f64(out, t.load_coeff);
        put_f64(out, t.store_coeff);
    }
    put_tier(out, adv.config.fallback);
    out.push(match adv.algorithm {
        Algorithm::Base => 0,
        Algorithm::BandwidthAware => 1,
    });
    put_u64(out, adv.thresholds.t_alloc);
    put_f64(out, adv.thresholds.low_frac);
    put_f64(out, adv.thresholds.high_frac);
    put_f64(out, adv.hysteresis);
    put_u64(out, adv.epoch);
    put_u64(out, adv.rebuilt_sites);

    let mut cached: Vec<SiteId> = adv.cache.keys().copied().collect();
    cached.sort();
    put_u64(out, cached.len() as u64);
    for s in cached {
        put_site_profile(out, &adv.cache[&s]);
    }
    match &adv.assignment {
        Some(a) => {
            out.push(1);
            put_assignment(out, a);
        }
        None => out.push(0),
    }
}

/// Rebuilds the advisor encoded by [`encode_advisor`].
pub fn decode_advisor(data: &[u8], pos: &mut usize) -> Result<IncrementalAdvisor, TraceError> {
    let mut tiers = Vec::new();
    for _ in 0..checked_len(data, pos, 4)? {
        tiers.push(TierBudget {
            tier: get_tier(data, pos)?,
            capacity: get_u64(data, pos)?,
            load_coeff: get_f64(data, pos)?,
            store_coeff: get_f64(data, pos)?,
        });
    }
    let fallback = get_tier(data, pos)?;
    let config = AdvisorConfig { tiers, fallback };
    let algorithm = match get_u64(data, pos)? {
        0 => Algorithm::Base,
        1 => Algorithm::BandwidthAware,
        _ => return Err(corrupt("algorithm out of range")),
    };
    let thresholds = BwThresholds {
        t_alloc: get_u64(data, pos)?,
        low_frac: get_f64(data, pos)?,
        high_frac: get_f64(data, pos)?,
    };
    let hysteresis = get_f64(data, pos)?;
    let epoch = get_u64(data, pos)?;
    let rebuilt_sites = get_u64(data, pos)?;
    let mut cache = std::collections::HashMap::new();
    for _ in 0..checked_len(data, pos, 8)? {
        let p = get_site_profile(data, pos)?;
        cache.insert(p.site, p);
    }
    let assignment = if get_bool(data, pos)? { Some(get_assignment(data, pos)?) } else { None };
    Ok(IncrementalAdvisor {
        config,
        algorithm,
        thresholds,
        hysteresis,
        cache,
        assignment,
        epoch,
        rebuilt_sites,
    })
}

// --------------------------------------------------------- revision log

/// Serializes the accumulated revision log.
pub fn encode_revisions(revs: &[PlacementRevision], out: &mut Vec<u8>) {
    put_u64(out, revs.len() as u64);
    for r in revs {
        put_u64(out, r.epoch);
        put_f64(out, r.time);
        put_u64(out, r.site.0 as u64);
        put_tier(out, r.from);
        put_tier(out, r.to);
    }
}

/// Decodes the revision log.
pub fn decode_revisions(
    data: &[u8],
    pos: &mut usize,
) -> Result<Vec<PlacementRevision>, TraceError> {
    let mut revs = Vec::new();
    for _ in 0..checked_len(data, pos, 5)? {
        revs.push(PlacementRevision {
            epoch: get_u64(data, pos)?,
            time: get_f64(data, pos)?,
            site: SiteId(get_u64(data, pos)? as u32),
            from: get_tier(data, pos)?,
            to: get_tier(data, pos)?,
        });
    }
    Ok(revs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use memtrace::{CallStack, Frame, ModuleId, TraceEvent};

    fn meta() -> StreamMeta {
        StreamMeta {
            app_name: "codec-test".into(),
            sampling_hz: 1000.0,
            load_sample_period: 7.0,
            store_sample_period: 3.0,
            stacks: std::sync::Arc::new(vec![
                (SiteId(0), CallStack::new(vec![Frame::new(ModuleId(0), 0x10)])),
                (SiteId(1), CallStack::new(vec![Frame::new(ModuleId(0), 0x20)])),
            ]),
            binmap: std::sync::Arc::new(memtrace::BinaryMap::default()),
        }
    }

    fn busy_ingestor(policy: DegradationPolicy) -> StreamIngestor {
        let cfg = OnlineConfig { window: Some(2.0), ..OnlineConfig::default() };
        let mut ing = StreamIngestor::new(meta(), policy, cfg);
        let events = vec![
            TraceEvent::Alloc {
                time: 0.1 + 0.2, // deliberately non-representable sum
                object: ObjectId(1),
                site: SiteId(0),
                size: 4096,
                address: 0x1000,
            },
            TraceEvent::LoadMissSample {
                time: 1.0 / 3.0,
                address: 0x1100,
                latency_cycles: 333.0,
                function: memtrace::FuncId(0),
            },
            TraceEvent::PhaseMarker { time: 0.5, phase: 0 },
            TraceEvent::Alloc {
                time: 0.75,
                object: ObjectId(2),
                site: SiteId(1),
                size: 64,
                address: 0x9000,
            },
            TraceEvent::StoreSample {
                time: 0.8,
                address: 0x9010,
                l1d_miss: true,
                function: memtrace::FuncId(1),
            },
            TraceEvent::Free { time: 0.9, object: ObjectId(1) },
        ];
        for e in events {
            ing.push(e).unwrap();
        }
        if policy != DegradationPolicy::Strict {
            // Exercise the drop bookkeeping too.
            ing.push(TraceEvent::Free { time: 0.95, object: ObjectId(77) }).unwrap();
            ing.push(TraceEvent::PhaseMarker { time: f64::NAN, phase: 1 }).unwrap();
        }
        ing
    }

    #[test]
    fn ingestor_round_trips_to_an_identical_snapshot() {
        for policy in [DegradationPolicy::Strict, DegradationPolicy::BestEffort] {
            let original = busy_ingestor(policy);
            let mut buf = Vec::new();
            encode_ingestor(&original, &mut buf);
            let mut pos = 0;
            let mut restored = decode_ingestor(&buf, &mut pos).unwrap();
            assert_eq!(pos, buf.len(), "decoder consumed the whole payload");
            assert_eq!(original.snapshot(2.0), restored.snapshot(2.0));
            assert_eq!(original.events_seen(), restored.events_seen());
            assert_eq!(original.dropped(), restored.dropped());
            assert_eq!(original.dropped_window(), restored.dropped_window());
            assert_eq!(original.warnings(), restored.warnings());
            // Dirty-set state survives: both drain the same pending sites.
            let mut a = original;
            assert_eq!(a.take_dirty(), restored.take_dirty());
        }
    }

    #[test]
    fn restored_ingestor_continues_identically() {
        let mut original = busy_ingestor(DegradationPolicy::Strict);
        let mut buf = Vec::new();
        encode_ingestor(&original, &mut buf);
        let mut pos = 0;
        let mut restored = decode_ingestor(&buf, &mut pos).unwrap();
        // Feed both the same suffix; the profiles must stay identical —
        // including the grace-list window behavior around the free at 0.9.
        let suffix = vec![
            TraceEvent::LoadMissSample {
                time: 0.9,
                address: 0x1200,
                latency_cycles: 100.0,
                function: memtrace::FuncId(0),
            },
            TraceEvent::PhaseMarker { time: 1.0, phase: 1 },
        ];
        for e in suffix {
            original.push(e.clone()).unwrap();
            restored.push(e).unwrap();
        }
        assert_eq!(original.snapshot(2.0), restored.snapshot(2.0));
    }

    #[test]
    fn advisor_round_trips_with_assignment_and_cache() {
        let mut ing = busy_ingestor(DegradationPolicy::Strict);
        let mut adv = IncrementalAdvisor::new(AdvisorConfig::loads_only(12), Algorithm::Base)
            .with_hysteresis(0.25);
        let revs = adv.tick(&mut ing, 1.0);
        let mut buf = Vec::new();
        encode_advisor(&adv, &mut buf);
        let mut pos = 0;
        let restored = decode_advisor(&buf, &mut pos).unwrap();
        assert_eq!(pos, buf.len());
        assert_eq!(restored.epochs(), adv.epochs());
        assert_eq!(restored.rebuilt_sites(), adv.rebuilt_sites());
        assert_eq!(
            restored.assignment().map(|a| a.tiers.len()),
            adv.assignment().map(|a| a.tiers.len())
        );
        for (s, _) in meta().stacks.iter() {
            assert_eq!(restored.tier_of(*s), adv.tier_of(*s));
        }
        // Revisions codec.
        let mut rbuf = Vec::new();
        encode_revisions(&revs, &mut rbuf);
        let mut rpos = 0;
        assert_eq!(decode_revisions(&rbuf, &mut rpos).unwrap(), revs);
    }

    #[test]
    fn truncated_payloads_fail_without_panicking() {
        let ing = busy_ingestor(DegradationPolicy::BestEffort);
        let mut buf = Vec::new();
        encode_ingestor(&ing, &mut buf);
        for cut in [0, 1, buf.len() / 2, buf.len() - 1] {
            let mut pos = 0;
            assert!(decode_ingestor(&buf[..cut], &mut pos).is_err(), "cut at {cut}");
        }
    }
}
